(** Binary min-heap keyed by a user-supplied comparison.

    The discrete-event engine keeps its future event list in this heap;
    pops must be deterministic, so ties are broken by insertion order
    (FIFO among equal keys). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp]; the minimum element pops first.  Among
    elements that compare equal, the earliest-pushed pops first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order of the backing array). *)

val drain : 'a t -> 'a list
(** Pop everything; result is in ascending key order. *)
