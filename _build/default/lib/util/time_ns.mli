(** Virtual time as integer nanoseconds.

    The virtual engine advances a deterministic clock; using integer
    nanoseconds (63-bit, ~292 years of range) avoids floating-point
    drift when accumulating millions of small events. *)

type t = int
(** Nanoseconds.  Always non-negative in engine use. *)

val zero : t
val of_ns : int -> t
val of_us : float -> t
val of_ms : float -> t
val of_sec : float -> t
val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float
val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] clamps at zero rather than going negative. *)

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
