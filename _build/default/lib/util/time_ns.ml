type t = int

let zero = 0
let of_ns ns = ns
let of_us us = int_of_float (Float.round (us *. 1e3))
let of_ms ms = int_of_float (Float.round (ms *. 1e6))
let of_sec s = int_of_float (Float.round (s *. 1e9))
let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9
let add = ( + )
let sub a b = Stdlib.max 0 (a - b)
let max = Stdlib.max
let min = Stdlib.min
let compare = Stdlib.compare

let pp fmt t =
  let ft = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (ft /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (ft /. 1e6)
  else Format.fprintf fmt "%.4fs" (ft /. 1e9)

let to_string t = Format.asprintf "%a" pp t
