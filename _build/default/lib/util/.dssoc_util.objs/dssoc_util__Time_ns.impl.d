lib/util/time_ns.ml: Float Format Stdlib
