lib/util/prng.mli:
