lib/util/heap.mli:
