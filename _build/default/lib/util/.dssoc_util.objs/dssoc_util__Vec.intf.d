lib/util/vec.mli:
