(** Growable array, used for hot per-tick buffers in the engines where
    list churn would be wasteful. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Stable in-place sort. *)
