type 'a t = { mutable data : 'a array; mutable size : int }

let create ?(capacity = 0) () =
  ignore capacity;
  { data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let push t v =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nd = Array.make ncap v in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let check t i = if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i = check t i; t.data.(i)
let set t i v = check t i; t.data.(i) <- v

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let clear t = t.size <- 0

let iter f t = for i = 0 to t.size - 1 do f t.data.(i) done
let iteri f t = for i = 0 to t.size - 1 do f i t.data.(i) done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do acc := f !acc t.data.(i) done;
  !acc

let exists p t =
  let rec go i = i < t.size && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.size - 1) []

let to_array t = Array.sub t.data 0 t.size

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  t.size <- !j

let sort cmp t =
  let a = to_array t in
  Array.stable_sort cmp a;
  Array.blit a 0 t.data 0 t.size
