type value = Vint of int | Vfloat of float

type cell = Scalar of value ref | Farr of float array | Iarr of int array

type env = (string, cell) Hashtbl.t

type trace = { blocks : int array; ops_per_block : (int, int) Hashtbl.t; total_ops : int }

type outcome = { env : env; outputs : (int * float array) list; trace : trace option }

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let to_float = function Vint i -> float_of_int i | Vfloat f -> f
let to_int = function Vint i -> i | Vfloat f -> int_of_float f
let truthy = function Vint 0 -> false | Vint _ -> true | Vfloat f -> f <> 0.0

let arith op a b =
  (* C-style promotion: float wins. *)
  match (a, b) with
  | Vint x, Vint y -> (
    match op with
    | Ast.Add -> Vint (x + y)
    | Ast.Sub -> Vint (x - y)
    | Ast.Mul -> Vint (x * y)
    | Ast.Div -> if y = 0 then err "integer division by zero" else Vint (x / y)
    | Ast.Mod -> if y = 0 then err "integer modulo by zero" else Vint (x mod y)
    | _ -> assert false)
  | _ ->
    let x = to_float a and y = to_float b in
    (match op with
    | Ast.Add -> Vfloat (x +. y)
    | Ast.Sub -> Vfloat (x -. y)
    | Ast.Mul -> Vfloat (x *. y)
    | Ast.Div -> Vfloat (x /. y)
    | Ast.Mod -> Vfloat (Float.rem x y)
    | _ -> assert false)

let compare_op op a b =
  let c =
    match (a, b) with
    | Vint x, Vint y -> compare x y
    | _ -> compare (to_float a) (to_float b)
  in
  let r =
    match op with
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | _ -> assert false
  in
  Vint (if r then 1 else 0)

type io = {
  inputs : (int, float array) Hashtbl.t;
  outputs : (int, float array) Hashtbl.t;
}

let output_capacity = 8192

let out_channel_arr io c =
  match Hashtbl.find_opt io.outputs c with
  | Some a -> a
  | None ->
    let a = Array.make output_capacity 0.0 in
    Hashtbl.replace io.outputs c a;
    a

let lookup env name =
  match Hashtbl.find_opt env name with
  | Some c -> c
  | None -> err "unknown variable %S" name

let rec eval env io e =
  match e with
  | Ast.Int_lit i -> Vint i
  | Ast.Float_lit f -> Vfloat f
  | Ast.Var name -> (
    match lookup env name with
    | Scalar r -> !r
    | Farr _ | Iarr _ -> err "array %S used as a scalar" name)
  | Ast.Index (name, ie) -> (
    let i = to_int (eval env io ie) in
    match lookup env name with
    | Farr a ->
      if i < 0 || i >= Array.length a then err "index %d out of bounds for %S" i name
      else Vfloat a.(i)
    | Iarr a ->
      if i < 0 || i >= Array.length a then err "index %d out of bounds for %S" i name
      else Vint a.(i)
    | Scalar _ -> err "scalar %S indexed" name)
  | Ast.Binop (Ast.And, a, b) ->
    if truthy (eval env io a) then Vint (if truthy (eval env io b) then 1 else 0) else Vint 0
  | Ast.Binop (Ast.Or, a, b) ->
    if truthy (eval env io a) then Vint 1 else Vint (if truthy (eval env io b) then 1 else 0)
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) ->
    arith op (eval env io a) (eval env io b)
  | Ast.Binop (op, a, b) -> compare_op op (eval env io a) (eval env io b)
  | Ast.Unop (Ast.Neg, e) -> (
    match eval env io e with Vint i -> Vint (-i) | Vfloat f -> Vfloat (-.f))
  | Ast.Unop (Ast.Not, e) -> Vint (if truthy (eval env io e) then 0 else 1)
  | Ast.Call (f, args) -> (
    let vs = List.map (eval env io) args in
    match (f, vs) with
    | "sin", [ v ] -> Vfloat (sin (to_float v))
    | "cos", [ v ] -> Vfloat (cos (to_float v))
    | "sqrt", [ v ] -> Vfloat (sqrt (to_float v))
    | "fabs", [ v ] -> Vfloat (Float.abs (to_float v))
    | "floor", [ v ] -> Vfloat (Float.floor (to_float v))
    | "read_ch", [ c; i ] -> (
      let c = to_int c and i = to_int i in
      match Hashtbl.find_opt io.inputs c with
      | None -> err "read_ch: unknown input channel %d" c
      | Some a ->
        if i < 0 || i >= Array.length a then err "read_ch: index %d out of channel %d" i c
        else Vfloat a.(i))
    | "write_ch", [ c; i; v ] ->
      let c = to_int c and i = to_int i in
      let a = out_channel_arr io c in
      if i < 0 || i >= Array.length a then err "write_ch: index %d out of channel %d" i c
      else begin
        a.(i) <- to_float v;
        Vint 0
      end
    | _ -> err "bad intrinsic call %s/%d" f (List.length vs))

let store_value env name index v io =
  match index with
  | None -> (
    match lookup env name with
    | Scalar r -> (
      (* Preserve the declared type, C-style. *)
      match !r with
      | Vint _ -> r := Vint (to_int v)
      | Vfloat _ -> r := Vfloat (to_float v))
    | Farr _ | Iarr _ -> err "array %S assigned as a scalar" name)
  | Some ie -> (
    let i = to_int (eval env io ie) in
    match lookup env name with
    | Farr a ->
      if i < 0 || i >= Array.length a then err "index %d out of bounds for %S" i name
      else a.(i) <- to_float v
    | Iarr a ->
      if i < 0 || i >= Array.length a then err "index %d out of bounds for %S" i name
      else a.(i) <- to_int v
    | Scalar _ -> err "scalar %S indexed in assignment" name)

let default_value = function Ast.Tint -> Vint 0 | Ast.Tfloat -> Vfloat 0.0

let exec_instr env io (i : Ir.instr) =
  match i with
  | Ir.Decl { name; ty; init } ->
    let v = match init with None -> default_value ty | Some e -> eval env io e in
    let v = match ty with Ast.Tint -> Vint (to_int v) | Ast.Tfloat -> Vfloat (to_float v) in
    Hashtbl.replace env name (Scalar (ref v))
  | Ir.Decl_array { name; ty; size } ->
    if size <= 0 then err "array %S has non-positive size" name;
    Hashtbl.replace env name
      (match ty with Ast.Tint -> Iarr (Array.make size 0) | Ast.Tfloat -> Farr (Array.make size 0.0))
  | Ir.Decl_malloc { name; ty; count } ->
    let bytes = to_int (eval env io count) in
    if bytes <= 0 then err "malloc of %d bytes for %S" bytes name;
    let n = bytes / 4 in
    Hashtbl.replace env name
      (match ty with Ast.Tint -> Iarr (Array.make n 0) | Ast.Tfloat -> Farr (Array.make n 0.0))
  | Ir.Assign { name; index; value } -> store_value env name index (eval env io value) io
  | Ir.Eval e -> ignore (eval env io e)

let block_of (ir : Ir.t) bid =
  if bid < 0 || bid >= Array.length ir.Ir.blocks then err "invalid block id %d" bid
  else ir.Ir.blocks.(bid)

let exec_block env io blk =
  List.iter (exec_instr env io) blk.Ir.instrs;
  match blk.Ir.term with
  | Ir.Jump b -> Some b
  | Ir.Return -> None
  | Ir.Branch { cond; then_; else_ } ->
    Some (if truthy (eval env io cond) then then_ else else_)

let run ?(trace = true) ?(max_steps = 50_000_000) ~inputs (ir : Ir.t) =
  let env : env = Hashtbl.create 64 in
  let io = { inputs = Hashtbl.create 4; outputs = Hashtbl.create 4 } in
  List.iter (fun (c, a) -> Hashtbl.replace io.inputs c (Array.copy a)) inputs;
  let trace_blocks = if trace then Some (Buffer.create 4096) else None in
  let ops_per_block = Hashtbl.create 32 in
  let total_ops = ref 0 in
  let steps = ref 0 in
  let rec go bid =
    incr steps;
    if !steps > max_steps then err "interpreter exceeded %d block executions" max_steps;
    let blk = block_of ir bid in
    (match trace_blocks with
    | Some buf ->
      (* Block ids are stored as 3 bytes, plenty for mini-C programs. *)
      Buffer.add_char buf (Char.chr (bid land 0xFF));
      Buffer.add_char buf (Char.chr ((bid lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr ((bid lsr 16) land 0xFF));
      let ops = List.length blk.Ir.instrs + 1 in
      total_ops := !total_ops + ops;
      Hashtbl.replace ops_per_block bid
        (ops + Option.value ~default:0 (Hashtbl.find_opt ops_per_block bid))
    | None -> ());
    match exec_block env io blk with None -> () | Some next -> go next
  in
  go ir.Ir.entry;
  let trace =
    Option.map
      (fun buf ->
        let raw = Buffer.contents buf in
        let n = String.length raw / 3 in
        let blocks =
          Array.init n (fun i ->
              Char.code raw.[3 * i]
              lor (Char.code raw.[(3 * i) + 1] lsl 8)
              lor (Char.code raw.[(3 * i) + 2] lsl 16))
        in
        { blocks; ops_per_block; total_ops = !total_ops })
      trace_blocks
  in
  let outputs =
    Hashtbl.fold (fun c a acc -> (c, a) :: acc) io.outputs [] |> List.sort compare
  in
  { env; outputs; trace }

let run_range ~env ~inputs ~outputs ~first ~last (ir : Ir.t) =
  let io = { inputs = Hashtbl.create 4; outputs } in
  List.iter (fun (c, a) -> Hashtbl.replace io.inputs c a) inputs;
  let rec go bid =
    if bid < first || bid > last then ()
    else begin
      let blk = block_of ir bid in
      match exec_block env io blk with None -> () | Some next -> go next
    end
  in
  go first

let eval_const_int env e =
  let io = { inputs = Hashtbl.create 1; outputs = Hashtbl.create 1 } in
  match eval env io e with
  | v -> Some (to_int v)
  | exception Runtime_error _ -> None
