lib/compiler/driver.ml: Array Buffer Dag_gen Dssoc_apps Dssoc_dsp Interp Ir Kernel_detect List Option Outline Parser Printf Recognize Result String
