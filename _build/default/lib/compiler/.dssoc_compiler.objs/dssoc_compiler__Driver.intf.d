lib/compiler/driver.mli: Dssoc_apps Ir Kernel_detect Outline Recognize
