lib/compiler/ir.mli: Ast Format
