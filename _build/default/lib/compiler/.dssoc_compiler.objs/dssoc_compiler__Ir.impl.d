lib/compiler/ir.ml: Array Ast Format List Option
