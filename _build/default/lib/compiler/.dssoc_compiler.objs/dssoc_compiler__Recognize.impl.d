lib/compiler/recognize.ml: Array Ast Buffer Digest Float Hashtbl Ir List Option Outline Printf
