lib/compiler/dag_gen.mli: Dssoc_apps Hashtbl Interp Ir Outline Recognize
