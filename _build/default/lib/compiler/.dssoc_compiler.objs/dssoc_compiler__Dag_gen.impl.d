lib/compiler/dag_gen.ml: Array Ast Deps Dssoc_apps Dssoc_dsp Hashtbl Int32 Interp Ir List Option Outline Printf Recognize String
