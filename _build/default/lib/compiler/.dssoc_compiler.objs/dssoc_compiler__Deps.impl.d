lib/compiler/deps.ml: Array Ast Hashtbl Ir List Option Outline Printf Set String
