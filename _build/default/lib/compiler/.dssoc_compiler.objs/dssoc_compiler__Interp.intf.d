lib/compiler/interp.mli: Ast Hashtbl Ir
