lib/compiler/kernel_detect.ml: Array Ast Format Hashtbl Interp Ir List Option
