lib/compiler/outline.ml: Array Format Hashtbl Interp Ir Kernel_detect List Option Printf String
