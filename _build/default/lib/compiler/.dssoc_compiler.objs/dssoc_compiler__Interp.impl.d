lib/compiler/interp.ml: Array Ast Buffer Char Float Hashtbl Ir List Option Printf String
