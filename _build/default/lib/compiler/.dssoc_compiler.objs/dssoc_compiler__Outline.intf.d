lib/compiler/outline.mli: Format Interp Ir Kernel_detect
