lib/compiler/deps.mli: Ir Outline
