lib/compiler/ast.ml: Format Hashtbl List
