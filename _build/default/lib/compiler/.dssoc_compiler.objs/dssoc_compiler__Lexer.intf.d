lib/compiler/lexer.mli:
