lib/compiler/parser.mli: Ast
