lib/compiler/recognize.mli: Hashtbl Ir Outline
