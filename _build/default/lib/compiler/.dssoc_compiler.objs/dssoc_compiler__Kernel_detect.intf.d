lib/compiler/kernel_detect.mli: Format Interp Ir
