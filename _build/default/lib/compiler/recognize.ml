type dft_info = {
  n : int;
  in_re : string;
  in_im : string;
  out_re : string;
  out_im : string;
  inverse : bool;
  scaled : bool;
}

type classification = Pure_dft of dft_info | Io_kernel | Opaque

(* ------------------------------------------------------------------ *)
(* Normalized digest                                                   *)
(* ------------------------------------------------------------------ *)

let digest ~(ir : Ir.t) ~(group : Outline.group) =
  let rename = Hashtbl.create 16 in
  let fresh = ref 0 in
  let name v =
    match Hashtbl.find_opt rename v with
    | Some r -> r
    | None ->
      let r = Printf.sprintf "v%d" !fresh in
      incr fresh;
      Hashtbl.replace rename v r;
      r
  in
  let buf = Buffer.create 256 in
  let rec expr = function
    | Ast.Int_lit i -> Buffer.add_string buf (string_of_int i)
    | Ast.Float_lit f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Ast.Var v -> Buffer.add_string buf (name v)
    | Ast.Index (a, e) ->
      Buffer.add_string buf (name a);
      Buffer.add_char buf '[';
      expr e;
      Buffer.add_char buf ']'
    | Ast.Binop (op, a, b) ->
      Buffer.add_char buf '(';
      expr a;
      Buffer.add_string buf (match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Mod -> "%"
        | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">=" | Ast.Eq -> "=="
        | Ast.Ne -> "!=" | Ast.And -> "&&" | Ast.Or -> "||");
      expr b;
      Buffer.add_char buf ')'
    | Ast.Unop (Ast.Neg, e) ->
      Buffer.add_string buf "(-";
      expr e;
      Buffer.add_char buf ')'
    | Ast.Unop (Ast.Not, e) ->
      Buffer.add_string buf "(!";
      expr e;
      Buffer.add_char buf ')'
    | Ast.Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iter (fun a -> expr a; Buffer.add_char buf ',') args;
      Buffer.add_char buf ')'
  in
  for b = group.Outline.first_block to group.Outline.last_block do
    let blk = ir.Ir.blocks.(b) in
    List.iter
      (fun i ->
        (match i with
        | Ir.Decl { name = v; init; _ } ->
          Buffer.add_string buf ("decl " ^ name v ^ "=");
          Option.iter expr init
        | Ir.Decl_array { name = v; size; _ } ->
          Buffer.add_string buf (Printf.sprintf "decla %s[%d]" (name v) size)
        | Ir.Decl_malloc { name = v; count; _ } ->
          Buffer.add_string buf ("malloc " ^ name v ^ "=");
          expr count
        | Ir.Assign { name = v; index; value } ->
          Buffer.add_string buf (name v);
          (match index with
          | None -> ()
          | Some e ->
            Buffer.add_char buf '[';
            expr e;
            Buffer.add_char buf ']');
          Buffer.add_char buf '=';
          expr value
        | Ir.Eval e -> expr e);
        Buffer.add_char buf ';')
      blk.Ir.instrs;
    (match blk.Ir.term with
    | Ir.Jump _ -> Buffer.add_string buf "j;"
    | Ir.Return -> Buffer.add_string buf "r;"
    | Ir.Branch { cond; _ } ->
      Buffer.add_string buf "b:";
      expr cond;
      Buffer.add_char buf ';')
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Structural DFT classifier                                           *)
(* ------------------------------------------------------------------ *)

let rec expr_calls f = function
  | Ast.Call (g, args) -> g = f || List.exists (expr_calls f) args
  | Ast.Binop (_, a, b) -> expr_calls f a || expr_calls f b
  | Ast.Unop (_, e) -> expr_calls f e
  | Ast.Index (_, e) -> expr_calls f e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> false

let rec expr_has_two_pi = function
  | Ast.Float_lit f -> Float.abs (Float.abs f -. (2.0 *. Float.pi)) < 1e-3
  | Ast.Binop (_, a, b) -> expr_has_two_pi a || expr_has_two_pi b
  | Ast.Unop (_, e) -> expr_has_two_pi e
  | Ast.Call (_, args) -> List.exists expr_has_two_pi args
  | Ast.Index (_, e) -> expr_has_two_pi e
  | Ast.Int_lit _ | Ast.Var _ -> false

(* A negative angle constant (-2*pi or 0 - 2*pi*...) marks the forward
   transform; a positive one marks the inverse. *)
let rec angle_sign_negative = function
  | Ast.Unop (Ast.Neg, e) when expr_has_two_pi e -> true
  | Ast.Float_lit f when Float.abs (Float.abs f -. (2.0 *. Float.pi)) < 1e-3 -> f < 0.0
  | Ast.Binop (Ast.Sub, Ast.Int_lit 0, e) when expr_has_two_pi e -> true
  | Ast.Binop (_, a, b) -> (
    match (expr_has_two_pi a, expr_has_two_pi b) with
    | true, _ -> angle_sign_negative a
    | _, true -> angle_sign_negative b
    | _ -> false)
  | Ast.Call (_, args) -> List.exists angle_sign_negative args
  | _ -> false

type group_scan = {
  arrays_read : string list;
  arrays_written : string list;
  mac_targets : string list;  (** scalars accumulated with s = s + ... *)
  has_sin : bool;
  has_cos : bool;
  has_two_pi : bool;
  negative_angle : bool;
  scaled_store : bool;  (** array store divides by a scalar *)
  loop_bounds : (string * Ast.expr) list;  (** (loop var, bound expr) per branch *)
}

let scan (ir : Ir.t) (group : Outline.group) =
  let arrays_read = ref [] and arrays_written = ref [] and mac_targets = ref [] in
  let has_sin = ref false and has_cos = ref false and has_two_pi = ref false in
  let negative_angle = ref false and scaled_store = ref false in
  let loop_bounds = ref [] in
  let add l v = if not (List.mem v !l) then l := !l @ [ v ] in
  let rec expr_arrays e =
    match e with
    | Ast.Index (a, i) ->
      add arrays_read a;
      expr_arrays i
    | Ast.Binop (_, a, b) ->
      expr_arrays a;
      expr_arrays b
    | Ast.Unop (_, e) -> expr_arrays e
    | Ast.Call (_, args) -> List.iter expr_arrays args
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> ()
  in
  for b = group.Outline.first_block to group.Outline.last_block do
    let blk = ir.Ir.blocks.(b) in
    List.iter
      (fun i ->
        (match i with
        | Ir.Assign { name; index = Some idx; value } ->
          add arrays_written name;
          expr_arrays idx;
          expr_arrays value;
          (match value with
          | Ast.Binop (Ast.Div, _, Ast.Var _) -> scaled_store := true
          | _ -> ())
        | Ir.Assign { name; index = None; value } ->
          expr_arrays value;
          (match value with
          | Ast.Binop ((Ast.Add | Ast.Sub), Ast.Var v, _) when v = name -> add mac_targets name
          | _ -> ())
        | Ir.Decl { init = Some e; _ } -> expr_arrays e
        | Ir.Decl { init = None; _ } | Ir.Decl_array _ | Ir.Decl_malloc _ -> ()
        | Ir.Eval e -> expr_arrays e);
        let all_exprs =
          match i with
          | Ir.Assign { value; _ } -> [ value ]
          | Ir.Decl { init = Some e; _ } -> [ e ]
          | Ir.Eval e -> [ e ]
          | _ -> []
        in
        List.iter
          (fun e ->
            if expr_calls "sin" e then has_sin := true;
            if expr_calls "cos" e then has_cos := true;
            if expr_has_two_pi e then begin
              has_two_pi := true;
              if angle_sign_negative e then negative_angle := true
            end)
          all_exprs)
      blk.Ir.instrs;
    match blk.Ir.term with
    | Ir.Branch { cond = Ast.Binop (Ast.Lt, Ast.Var v, bound); _ } ->
      loop_bounds := !loop_bounds @ [ (v, bound) ]
    | _ -> ()
  done;
  {
    arrays_read =
      List.filter (fun a -> not (List.mem a !arrays_written)) !arrays_read;
    arrays_written = !arrays_written;
    mac_targets = !mac_targets;
    has_sin = !has_sin;
    has_cos = !has_cos;
    has_two_pi = !has_two_pi;
    negative_angle = !negative_angle;
    scaled_store = !scaled_store;
    loop_bounds = !loop_bounds;
  }

let classify ~(ir : Ir.t) ~(consts : (string, int) Hashtbl.t) ~(group : Outline.group) =
  if group.Outline.does_io then Io_kernel
  else begin
    let s = scan ir group in
    let bound_value e =
      match e with
      | Ast.Int_lit i -> Some i
      | Ast.Var v -> Hashtbl.find_opt consts v
      | _ -> None
    in
    match (s.arrays_read, s.arrays_written) with
    | [ in_re; in_im ], [ out_re; out_im ]
      when s.has_sin && s.has_cos && s.has_two_pi
           && List.length s.mac_targets >= 2
           && List.length s.loop_bounds >= 2 -> (
      let n =
        List.fold_left
          (fun acc (_, bound) -> match bound_value bound with Some v -> max acc v | None -> acc)
          0 s.loop_bounds
      in
      if n <= 1 then Opaque
      else
        Pure_dft
          {
            n;
            in_re;
            in_im;
            out_re;
            out_im;
            inverse = not s.negative_angle;
            scaled = s.scaled_store;
          })
    | _ -> Opaque
  end

(* ------------------------------------------------------------------ *)
(* Hash table of learned kernels                                       *)
(* ------------------------------------------------------------------ *)

let table : (string, classification) Hashtbl.t = Hashtbl.create 16

let lookup_table d = Hashtbl.find_opt table d

let learn d c = Hashtbl.replace table d c
