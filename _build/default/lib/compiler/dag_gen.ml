module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Kernels = Dssoc_apps.Kernels
module Cbuf = Dssoc_dsp.Cbuf
module Fft = Dssoc_dsp.Fft

type generated = {
  spec : App_spec.t;
  substitutions : (string * Recognize.dft_info) list;
  consts : (string, int) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Static analyses                                                     *)
(* ------------------------------------------------------------------ *)

let fold_constants (ir : Ir.t) =
  let consts = Hashtbl.create 16 in
  let rec fold e =
    match e with
    | Ast.Int_lit i -> Some i
    | Ast.Var v -> Hashtbl.find_opt consts v
    | Ast.Binop (op, a, b) -> (
      match (fold a, fold b) with
      | Some x, Some y -> (
        match op with
        | Ast.Add -> Some (x + y)
        | Ast.Sub -> Some (x - y)
        | Ast.Mul -> Some (x * y)
        | Ast.Div -> if y = 0 then None else Some (x / y)
        | Ast.Mod -> if y = 0 then None else Some (x mod y)
        | _ -> None)
      | _ -> None)
    | Ast.Unop (Ast.Neg, e) -> Option.map (fun v -> -v) (fold e)
    | _ -> None
  in
  (* Walk the entry block's straight-line code only: the "initial"
     declarations the paper's memory analysis targets. *)
  let entry = ir.Ir.blocks.(ir.Ir.entry) in
  List.iter
    (fun i ->
      match i with
      | Ir.Decl { name; ty = Ast.Tint; init = Some e } | Ir.Assign { name; index = None; value = e }
        -> (
        match fold e with
        | Some v -> Hashtbl.replace consts name v
        | None -> Hashtbl.remove consts name)
      | _ -> ())
    entry.Ir.instrs;
  consts

type vkind = Kint | Kfloat | Kfarr of int | Kiarr of int

let variable_kinds (ir : Ir.t) consts =
  let kinds = Hashtbl.create 32 in
  Array.iter
    (fun blk ->
      List.iter
        (fun i ->
          match i with
          | Ir.Decl { name; ty; _ } ->
            Hashtbl.replace kinds name (match ty with Ast.Tint -> Kint | Ast.Tfloat -> Kfloat)
          | Ir.Decl_array { name; ty; size } ->
            Hashtbl.replace kinds name
              (match ty with Ast.Tint -> Kiarr size | Ast.Tfloat -> Kfarr size)
          | Ir.Decl_malloc { name; ty; count } -> (
            let bytes =
              let rec f e =
                match e with
                | Ast.Int_lit v -> Some v
                | Ast.Var v -> Hashtbl.find_opt consts v
                | Ast.Binop (Ast.Mul, a, b) -> (
                  match (f a, f b) with Some x, Some y -> Some (x * y) | _ -> None)
                | Ast.Binop (Ast.Add, a, b) -> (
                  match (f a, f b) with Some x, Some y -> Some (x + y) | _ -> None)
                | _ -> None
              in
              f count
            in
            match bytes with
            | Some b when b > 0 ->
              let n = b / 4 in
              Hashtbl.replace kinds name
                (match ty with Ast.Tint -> Kiarr n | Ast.Tfloat -> Kfarr n)
            | _ ->
              invalid_arg
                (Printf.sprintf
                   "Dag_gen: cannot statically size malloc of %S (the paper's toolchain has the \
                    same restriction)"
                   name))
          | Ir.Assign _ | Ir.Eval _ -> ())
        blk.Ir.instrs)
    ir.Ir.blocks;
  kinds

(* Channels referenced with literal ids. *)
let channels_used (ir : Ir.t) first last =
  let reads = ref [] and writes = ref [] in
  let add l c = if not (List.mem c !l) then l := !l @ [ c ] in
  let rec expr = function
    | Ast.Call ("read_ch", Ast.Int_lit c :: rest) ->
      add reads c;
      List.iter expr rest
    | Ast.Call ("write_ch", Ast.Int_lit c :: rest) ->
      add writes c;
      List.iter expr rest
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Unop (_, e) | Ast.Index (_, e) -> expr e
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> ()
  in
  for b = first to last do
    let blk = ir.Ir.blocks.(b) in
    List.iter
      (fun i ->
        match i with
        | Ir.Decl { init = Some e; _ } -> expr e
        | Ir.Decl { init = None; _ } | Ir.Decl_array _ -> ()
        | Ir.Decl_malloc { count; _ } -> expr count
        | Ir.Assign { index; value; _ } ->
          Option.iter expr index;
          expr value
        | Ir.Eval e -> expr e)
      blk.Ir.instrs;
    match blk.Ir.term with Ir.Branch { cond; _ } -> expr cond | _ -> ()
  done;
  (!reads, !writes)

let in_ch_name c = Printf.sprintf "__in_ch%d" c
let out_ch_name c = Printf.sprintf "__out_ch%d" c

(* ------------------------------------------------------------------ *)
(* Kernel closures                                                     *)
(* ------------------------------------------------------------------ *)

let load_env store kinds vars =
  let env : Interp.env = Hashtbl.create 32 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt kinds v with
      | Some Kint -> Hashtbl.replace env v (Interp.Scalar (ref (Interp.Vint (Store.get_i32 store v))))
      | Some Kfloat ->
        Hashtbl.replace env v (Interp.Scalar (ref (Interp.Vfloat (Store.get_f32 store v))))
      | Some (Kfarr _) -> Hashtbl.replace env v (Interp.Farr (Store.get_f32_array store v))
      | Some (Kiarr _) -> Hashtbl.replace env v (Interp.Iarr (Store.get_i32_array store v))
      | None -> ())
    vars;
  env

let flush_env store kinds vars (env : Interp.env) =
  List.iter
    (fun v ->
      match (Hashtbl.find_opt kinds v, Hashtbl.find_opt env v) with
      | Some Kint, Some (Interp.Scalar r) -> Store.set_i32 store v (Interp.(match !r with Vint i -> i | Vfloat f -> int_of_float f))
      | Some Kfloat, Some (Interp.Scalar r) ->
        Store.set_f32 store v (Interp.(match !r with Vfloat f -> f | Vint i -> float_of_int i))
      | Some (Kfarr _), Some (Interp.Farr a) -> Store.set_f32_array store v a
      | Some (Kiarr _), Some (Interp.Iarr a) -> Store.set_i32_array store v a
      | _ -> ())
    vars

let make_group_kernel ~ir ~kinds ~(group : Outline.group) ~all_in_chs ~out_chs ~flush_vars :
    Kernels.kernel =
  fun store _args ->
   let env = load_env store kinds group.Outline.vars in
   let inputs = List.map (fun c -> (c, Store.get_f32_array store (in_ch_name c))) all_in_chs in
   let outputs = Hashtbl.create 4 in
   List.iter
     (fun c -> Hashtbl.replace outputs c (Store.get_f32_array store (out_ch_name c)))
     out_chs;
   Interp.run_range ~env ~inputs ~outputs ~first:group.Outline.first_block
     ~last:group.Outline.last_block ir;
   (* Only live-out state is written back, so independent groups never
      race on dead scratch variables when they execute in parallel. *)
   flush_env store kinds flush_vars env;
   List.iter (fun c -> Store.set_f32_array store (out_ch_name c) (Hashtbl.find outputs c)) out_chs

let make_fft_kernel (info : Recognize.dft_info) : Kernels.kernel =
  fun store _args ->
   let n = info.Recognize.n in
   let re = Store.get_f32_array store info.Recognize.in_re in
   let im = Store.get_f32_array store info.Recognize.in_im in
   let buf = { Cbuf.re = Array.sub re 0 n; im = Array.sub im 0 n } in
   let out =
     if info.Recognize.inverse then begin
       let y = Fft.ifft buf in
       (* Fft.ifft already applies 1/n; an unscaled source IDFT needs
          the factor undone. *)
       if info.Recognize.scaled then y else Cbuf.scale y (float_of_int n)
     end
     else Fft.fft buf
   in
   Store.set_f32_array store info.Recognize.out_re out.Cbuf.re;
   Store.set_f32_array store info.Recognize.out_im out.Cbuf.im

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let verify_linear_chain (ir : Ir.t) (groups : Outline.group list) (trace : Interp.trace) =
  let n = Ir.block_count ir in
  let gmap = Array.make n (-1) in
  List.iter
    (fun g ->
      for b = g.Outline.first_block to g.Outline.last_block do
        gmap.(b) <- g.Outline.gid
      done)
    groups;
  let seq = ref [] in
  Array.iter
    (fun bid ->
      if bid < n && gmap.(bid) >= 0 then
        match !seq with
        | g :: _ when g = gmap.(bid) -> ()
        | _ -> seq := gmap.(bid) :: !seq)
    trace.Interp.blocks;
  let seq = List.rev !seq in
  let expected = List.map (fun g -> g.Outline.gid) groups in
  if seq = expected then Ok ()
  else
    Error
      (Printf.sprintf
         "traced group sequence [%s] is not the linear chain [%s]; the program's control flow \
          cannot be outlined into a sequential DAG"
         (String.concat ";" (List.map string_of_int seq))
         (String.concat ";" (List.map string_of_int expected)))

let le32 v = [ v land 0xFF; (v lsr 8) land 0xFF; (v lsr 16) land 0xFF; (v lsr 24) land 0xFF ]

let f32_bytes f = le32 (Int32.to_int (Int32.logand (Int32.bits_of_float f) 0xFFFFFFFFl))

let farr_init a = Array.to_list a |> List.concat_map f32_bytes

let generate ?(optimize = true) ?(parallelize = false) ~name ~(ir : Ir.t)
    ~(groups : Outline.group list) ~(trace : Interp.trace) ~inputs () =
  let groups = if parallelize then Outline.merge_prologues ~ir ~trace groups else groups in
  let dependence = if parallelize then Some (Deps.analyse ir groups) else None in
  match verify_linear_chain ir groups trace with
  | Error _ as e -> e
  | Ok () ->
    let consts = fold_constants ir in
    let kinds = variable_kinds ir consts in
    let all_in_chs, all_out_chs = channels_used ir 0 (Ir.block_count ir - 1) in
    let missing =
      List.filter (fun c -> not (List.mem_assoc c inputs)) all_in_chs
    in
    if missing <> [] then
      Error
        (Printf.sprintf "program reads input channel(s) %s but no data was supplied"
           (String.concat ", " (List.map string_of_int missing)))
    else begin
      let shared_object = name ^ ".gen.so" in
      (* Variables: program variables + channels. *)
      let scalar_var () : Store.var_spec = { bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] } in
      let ptr_var ?(init = []) alloc : Store.var_spec =
        { bytes = 8; is_ptr = true; ptr_alloc_bytes = alloc; init }
      in
      let variables =
        Hashtbl.fold
          (fun v kind acc ->
            let spec =
              match kind with
              | Kint | Kfloat -> scalar_var ()
              | Kfarr n | Kiarr n -> ptr_var (4 * n)
            in
            (v, spec) :: acc)
          kinds []
        |> List.sort compare
      in
      let variables =
        variables
        @ List.map
            (fun c ->
              let data = List.assoc c inputs in
              (in_ch_name c, ptr_var (4 * Array.length data) ~init:(farr_init data)))
            all_in_chs
        @ List.map (fun c -> (out_ch_name c, ptr_var (4 * Interp.output_capacity))) all_out_chs
      in
      (* Nodes: one per group, chained linearly. *)
      let substitutions = ref [] in
      let prev = ref None in
      let node_name_of_gid : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let nodes =
        List.map
          (fun (g : Outline.group) ->
            let gid_of_this = g.Outline.gid in
            let classification =
              if not optimize then Recognize.Opaque
              else begin
                match g.Outline.kind with
                | Outline.Cold -> Recognize.Opaque
                | Outline.Kernel _ ->
                  let d = Recognize.digest ~ir ~group:g in
                  (match Recognize.lookup_table d with
                  | Some (Recognize.Pure_dft _) ->
                    (* Hash hit: the kernel's shape is known, but the
                       substitution must bind to *this* occurrence's
                       arrays, so re-extract the roles. *)
                    Recognize.classify ~ir ~consts ~group:g
                  | Some c -> c
                  | None ->
                    let c = Recognize.classify ~ir ~consts ~group:g in
                    Recognize.learn d c;
                    c)
              end
            in
            let kind_tag =
              match (g.Outline.kind, classification) with
              | Outline.Cold, _ -> "NONKERNEL"
              | _, Recognize.Pure_dft info ->
                if info.Recognize.inverse then "IDFT" else "DFT"
              | Outline.Kernel _, _ -> if g.Outline.does_io then "IO_KERNEL" else "KERNEL"
            in
            let node_name = Printf.sprintf "%s_%d" kind_tag g.Outline.gid in
            Hashtbl.replace node_name_of_gid gid_of_this node_name;
            let base_sym = Printf.sprintf "%s_g%d" name g.Outline.gid in
            let g_reads, g_writes = channels_used ir g.Outline.first_block g.Outline.last_block in
            let args =
              g.Outline.vars
              @ List.map in_ch_name g_reads
              @ List.map out_ch_name g_writes
            in
            let flush_vars =
              match dependence with
              | None -> g.Outline.vars
              | Some d -> List.assoc g.Outline.gid d.Deps.flush
            in
            Kernels.register_object shared_object
              [
                ( base_sym,
                  make_group_kernel ~ir ~kinds ~group:g ~all_in_chs ~out_chs:g_writes ~flush_vars );
              ];
            let kernel_class, size, platforms =
              match classification with
              | Recognize.Pure_dft info ->
                substitutions := (node_name, info) :: !substitutions;
                let fft_sym = base_sym ^ "_fft" in
                let k = make_fft_kernel info in
                Kernels.register_object "fft_lib.so" [ (fft_sym, k) ];
                Kernels.register_object "fft_accel.so" [ (fft_sym, k) ];
                ( "fft_lib",
                  info.Recognize.n,
                  [
                    {
                      App_spec.platform = "cpu";
                      runfunc = fft_sym;
                      shared_object = Some "fft_lib.so";
                      cost_us = None;
                    };
                    {
                      App_spec.platform = "fft";
                      runfunc = fft_sym;
                      shared_object = Some "fft_accel.so";
                      cost_us = None;
                    };
                  ] )
              | Recognize.Io_kernel | Recognize.Opaque ->
                let cls =
                  match g.Outline.kind with
                  | Outline.Kernel _ when g.Outline.does_io -> "file_io"
                  | _ -> "interp_ops"
                in
                ( cls,
                  g.Outline.ops,
                  [
                    {
                      App_spec.platform = "cpu";
                      runfunc = base_sym;
                      shared_object = None;
                      cost_us = None;
                    };
                  ] )
            in
            let node =
              {
                App_spec.node_name;
                arguments = args;
                predecessors =
                  (match dependence with
                  | None -> (match !prev with None -> [] | Some p -> [ p ])
                  | Some d ->
                    List.filter_map
                      (fun gid -> Hashtbl.find_opt node_name_of_gid gid)
                      (Deps.predecessors d gid_of_this));
                successors = [];
                platforms;
                kernel_class;
                size;
                bytes_in = (match classification with Recognize.Pure_dft i -> 8 * i.Recognize.n | _ -> 0);
                bytes_out = (match classification with Recognize.Pure_dft i -> 8 * i.Recognize.n | _ -> 0);
              }
            in
            prev := Some node_name;
            node)
          groups
      in
      match
        App_spec.validate
          {
            App_spec.app_name = name;
            shared_object;
            variables;
            nodes =
              (let succs = Hashtbl.create 16 in
               List.iter
                 (fun (n : App_spec.node) ->
                   List.iter
                     (fun p ->
                       Hashtbl.replace succs p
                         (Option.value ~default:[] (Hashtbl.find_opt succs p) @ [ n.App_spec.node_name ]))
                     n.App_spec.predecessors)
                 nodes;
               List.map
                 (fun (n : App_spec.node) ->
                   { n with App_spec.successors = Option.value ~default:[] (Hashtbl.find_opt succs n.App_spec.node_name) })
                 nodes);
          }
      with
      | Ok spec -> Ok { spec; substitutions = List.rev !substitutions; consts }
      | Error msg -> Error msg
    end
