(** Hash-based kernel recognition (Case Study 4).

    Classifies outlined kernels structurally and, once a kernel's
    normalized-IR digest is known, recognises later occurrences by
    hash alone.  The only built-in pattern is the one the paper
    exploits: a textbook doubly nested for-loop DFT/IDFT —
    sin/cos of a [2*pi*k*t/n] angle feeding four multiply-accumulates
    into two output arrays.  A match is substituted with an optimized
    FFT-library call and an FFT-accelerator platform entry. *)

type dft_info = {
  n : int;  (** transform size (statically folded loop bound) *)
  in_re : string;
  in_im : string;
  out_re : string;
  out_im : string;
  inverse : bool;  (** positive angle sign *)
  scaled : bool;  (** output divided by n (IDFT normalisation) *)
}

type classification =
  | Pure_dft of dft_info  (** substitutable *)
  | Io_kernel
  | Opaque  (** hot but unrecognised (e.g. the fused mul+IDFT+max) *)

val classify :
  ir:Ir.t ->
  consts:(string, int) Hashtbl.t ->
  group:Outline.group ->
  classification
(** [consts] maps scalars to statically folded values (from
    {!Dag_gen.fold_constants}) for resolving loop bounds. *)

val digest : ir:Ir.t -> group:Outline.group -> string
(** Digest of the group's normalized IR (variables renamed by first
    use), the key of the recognition table. *)

val lookup_table : string -> classification option
(** Previously learned digest -> classification. *)

val learn : string -> classification -> unit
(** Record a digest so future occurrences hit by hash. *)
