type ty = Tint | Tfloat

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list

type stmt =
  | Decl of { name : string; ty : ty; init : expr option }
  | Decl_array of { name : string; ty : ty; size : int }
  | Decl_malloc of { name : string; ty : ty; count : expr }
  | Assign of { name : string; index : expr option; value : expr }
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { init : stmt; cond : expr; step : stmt; body : stmt list }
  | Return of expr option

type program = stmt list

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let rec pp_expr fmt = function
  | Int_lit i -> Format.fprintf fmt "%d" i
  | Float_lit f -> Format.fprintf fmt "%g" f
  | Var v -> Format.fprintf fmt "%s" v
  | Index (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (Neg, e) -> Format.fprintf fmt "(-%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf fmt "(!%a)" pp_expr e
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_expr)
      args

let ty_str = function Tint -> "int" | Tfloat -> "float"

let rec pp_stmt fmt = function
  | Decl { name; ty; init = None } -> Format.fprintf fmt "%s %s;" (ty_str ty) name
  | Decl { name; ty; init = Some e } ->
    Format.fprintf fmt "%s %s = %a;" (ty_str ty) name pp_expr e
  | Decl_array { name; ty; size } -> Format.fprintf fmt "%s %s[%d];" (ty_str ty) name size
  | Decl_malloc { name; ty; count } ->
    Format.fprintf fmt "%s *%s = malloc(%a);" (ty_str ty) name pp_expr count
  | Assign { name; index = None; value } -> Format.fprintf fmt "%s = %a;" name pp_expr value
  | Assign { name; index = Some i; value } ->
    Format.fprintf fmt "%s[%a] = %a;" name pp_expr i pp_expr value
  | Expr e -> Format.fprintf fmt "%a;" pp_expr e
  | If (c, t, []) -> Format.fprintf fmt "if (%a) { %a }" pp_expr c pp_block t
  | If (c, t, e) -> Format.fprintf fmt "if (%a) { %a } else { %a }" pp_expr c pp_block t pp_block e
  | While (c, b) -> Format.fprintf fmt "while (%a) { %a }" pp_expr c pp_block b
  | For { init; cond; step; body } ->
    Format.fprintf fmt "for (%a %a; %a) { %a }" pp_stmt init pp_expr cond pp_for_step step
      pp_block body
  | Return None -> Format.fprintf fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e

and pp_for_step fmt = function
  | Assign { name; index = None; value } -> Format.fprintf fmt "%s = %a" name pp_expr value
  | s -> pp_stmt fmt s

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_stmt fmt stmts

let expr_vars e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go = function
    | Int_lit _ | Float_lit _ -> ()
    | Var v -> add v
    | Index (a, e) ->
      add a;
      go e
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, e) -> go e
    | Call (_, args) -> List.iter go args
  in
  go e;
  List.rev !out

let intrinsics = [ "sin"; "cos"; "sqrt"; "fabs"; "floor"; "read_ch"; "write_ch" ]
