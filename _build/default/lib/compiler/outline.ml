type kind = Kernel of Kernel_detect.kernel | Cold

type group = {
  gid : int;
  kind : kind;
  first_block : int;
  last_block : int;
  vars : string list;
  ops : int;
  does_io : bool;
}

let range_vars (ir : Ir.t) first last =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  for b = first to last do
    let blk = ir.Ir.blocks.(b) in
    List.iter
      (fun i ->
        List.iter add (Ir.instr_reads i);
        Option.iter add (Ir.instr_writes i))
      blk.Ir.instrs;
    List.iter add (Ir.term_reads blk.Ir.term)
  done;
  List.rev !out

let range_ops (trace : Interp.trace) first last =
  let total = ref 0 in
  for b = first to last do
    total := !total + Option.value ~default:0 (Hashtbl.find_opt trace.Interp.ops_per_block b)
  done;
  !total

let range_io (ir : Ir.t) first last =
  let io = ref false in
  for b = first to last do
    if Kernel_detect.block_does_io ir.Ir.blocks.(b) then io := true
  done;
  !io

let range_has_instrs (ir : Ir.t) first last =
  let has = ref false in
  for b = first to last do
    if ir.Ir.blocks.(b).Ir.instrs <> [] then has := true
  done;
  !has

let outline ~(ir : Ir.t) ~(detection : Kernel_detect.result) ~trace =
  let n = Ir.block_count ir in
  let kernels = detection.Kernel_detect.kernels in
  let groups = ref [] in
  let next_gid = ref 0 in
  let emit kind first last =
    if first <= last && (match kind with Kernel _ -> true | Cold -> range_has_instrs ir first last)
    then begin
      let g =
        {
          gid = !next_gid;
          kind;
          first_block = first;
          last_block = last;
          vars = range_vars ir first last;
          ops = range_ops trace first last;
          does_io = range_io ir first last;
        }
      in
      incr next_gid;
      groups := g :: !groups
    end
  in
  let rec walk bid remaining_kernels =
    if bid < n then begin
      match remaining_kernels with
      | k :: rest when k.Kernel_detect.first_block = bid ->
        emit (Kernel k) k.Kernel_detect.first_block k.Kernel_detect.last_block;
        walk (k.Kernel_detect.last_block + 1) rest
      | k :: _ ->
        emit Cold bid (k.Kernel_detect.first_block - 1);
        walk k.Kernel_detect.first_block remaining_kernels
      | [] -> emit Cold bid (n - 1)
    end
  in
  walk 0 kernels;
  List.rev !groups

let merge_prologues ?(max_ops = 8) ~(ir : Ir.t) ~trace groups =
  let rebuild kind first last =
    {
      gid = 0;
      kind;
      first_block = first;
      last_block = last;
      vars = range_vars ir first last;
      ops = range_ops trace first last;
      does_io = range_io ir first last;
    }
  in
  let rec go = function
    | ({ kind = Cold; _ } as cold) :: ({ kind = Kernel k; _ } as kern) :: rest
      when cold.ops <= max_ops && cold.last_block + 1 = kern.first_block ->
      rebuild (Kernel k) cold.first_block kern.last_block :: go rest
    | g :: rest -> g :: go rest
    | [] -> []
  in
  List.mapi (fun i g -> { g with gid = i }) (go groups)

let pp_group fmt g =
  Format.fprintf fmt "G%d %s blocks %d-%d ops %d%s vars [%s]" g.gid
    (match g.kind with Kernel k -> Printf.sprintf "kernel(K%d)" k.Kernel_detect.kid | Cold -> "cold")
    g.first_block g.last_block g.ops
    (if g.does_io then " io" else "")
    (String.concat "; " g.vars)
