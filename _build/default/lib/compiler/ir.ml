type instr =
  | Decl of { name : string; ty : Ast.ty; init : Ast.expr option }
  | Decl_array of { name : string; ty : Ast.ty; size : int }
  | Decl_malloc of { name : string; ty : Ast.ty; count : Ast.expr }
  | Assign of { name : string; index : Ast.expr option; value : Ast.expr }
  | Eval of Ast.expr

type terminator = Jump of int | Branch of { cond : Ast.expr; then_ : int; else_ : int } | Return

type block = { bid : int; instrs : instr list; term : terminator }

type t = { blocks : block array; entry : int }

(* Lowering allocates block ids strictly in execution order: a join
   (or loop exit) block is only numbered after the bodies it follows,
   so the bid sequence is monotone along forward control flow and the
   only backward transfers are loop back-edges into the block range of
   their own loop.  The outliner relies on this to cut the program
   into contiguous single-entry regions. *)
type block_rec = { rbid : int; mutable rinstrs : instr list (* reversed *); mutable rterm : terminator option }

type builder = { mutable recs : block_rec list; mutable next_bid : int; mutable cur : block_rec }

let new_rec b =
  let r = { rbid = b.next_bid; rinstrs = []; rterm = None } in
  b.next_bid <- b.next_bid + 1;
  b.recs <- r :: b.recs;
  r

let instr_of_stmt = function
  | Ast.Decl { name; ty; init } -> Decl { name; ty; init }
  | Ast.Decl_array { name; ty; size } -> Decl_array { name; ty; size }
  | Ast.Decl_malloc { name; ty; count } -> Decl_malloc { name; ty; count }
  | Ast.Assign { name; index; value } -> Assign { name; index; value }
  | Ast.Expr e -> Eval e
  | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Return _ ->
    invalid_arg "Ir.instr_of_stmt: not a simple statement"

let lower program =
  let b =
    let first = { rbid = 0; rinstrs = []; rterm = None } in
    { recs = [ first ]; next_bid = 1; cur = first }
  in
  let rec lower_stmts stmts = List.iter lower_stmt stmts
  and lower_stmt = function
    | (Ast.Decl _ | Ast.Decl_array _ | Ast.Decl_malloc _ | Ast.Assign _ | Ast.Expr _) as s ->
      b.cur.rinstrs <- instr_of_stmt s :: b.cur.rinstrs
    | Ast.Return _ ->
      (* Monolithic main: return ends the program; anything after is
         unreachable but still lowered into a fresh block. *)
      b.cur.rterm <- Some Return;
      b.cur <- new_rec b
    | Ast.If (cond, then_stmts, else_stmts) ->
      let branch_src = b.cur in
      let then_rec = new_rec b in
      b.cur <- then_rec;
      lower_stmts then_stmts;
      let then_end = b.cur in
      if else_stmts = [] then begin
        let join = new_rec b in
        branch_src.rterm <- Some (Branch { cond; then_ = then_rec.rbid; else_ = join.rbid });
        then_end.rterm <- Some (Jump join.rbid);
        b.cur <- join
      end
      else begin
        let else_rec = new_rec b in
        b.cur <- else_rec;
        lower_stmts else_stmts;
        let else_end = b.cur in
        let join = new_rec b in
        branch_src.rterm <- Some (Branch { cond; then_ = then_rec.rbid; else_ = else_rec.rbid });
        then_end.rterm <- Some (Jump join.rbid);
        else_end.rterm <- Some (Jump join.rbid);
        b.cur <- join
      end
    | Ast.While (cond, body) -> lower_loop cond body None
    | Ast.For { init; cond; step; body } ->
      lower_stmt init;
      lower_loop cond body (Some step)
  and lower_loop cond body step =
    let header = new_rec b in
    b.cur.rterm <- Some (Jump header.rbid);
    let body_rec = new_rec b in
    b.cur <- body_rec;
    lower_stmts body;
    (match step with None -> () | Some s -> lower_stmt s);
    b.cur.rterm <- Some (Jump header.rbid);
    let exit_rec = new_rec b in
    header.rterm <- Some (Branch { cond; then_ = body_rec.rbid; else_ = exit_rec.rbid });
    b.cur <- exit_rec
  in
  lower_stmts program;
  if b.cur.rterm = None then b.cur.rterm <- Some Return;
  let blocks =
    List.rev_map
      (fun r ->
        { bid = r.rbid; instrs = List.rev r.rinstrs; term = Option.value ~default:Return r.rterm })
      b.recs
    |> List.sort (fun x y -> compare x.bid y.bid)
    |> Array.of_list
  in
  { blocks; entry = 0 }

let block_count t = Array.length t.blocks

let instr_reads = function
  | Decl { init = Some e; _ } -> Ast.expr_vars e
  | Decl { init = None; _ } | Decl_array _ -> []
  | Decl_malloc { count; _ } -> Ast.expr_vars count
  | Assign { index; value; _ } ->
    let idx_vars = match index with None -> [] | Some e -> Ast.expr_vars e in
    idx_vars @ Ast.expr_vars value
  | Eval e -> Ast.expr_vars e

let instr_writes = function
  | Decl { name; _ } | Decl_array { name; _ } | Decl_malloc { name; _ } | Assign { name; _ } ->
    Some name
  | Eval _ -> None

let term_reads = function
  | Jump _ | Return -> []
  | Branch { cond; _ } -> Ast.expr_vars cond

let successors block =
  match block.term with
  | Jump b -> [ b ]
  | Branch { then_; else_; _ } -> [ then_; else_ ]
  | Return -> []

let pp fmt t =
  Array.iter
    (fun blk ->
      Format.fprintf fmt "B%d:@." blk.bid;
      List.iter
        (fun i ->
          match i with
          | Decl { name; init = None; _ } -> Format.fprintf fmt "  decl %s@." name
          | Decl { name; init = Some e; _ } -> Format.fprintf fmt "  decl %s = %a@." name Ast.pp_expr e
          | Decl_array { name; size; _ } -> Format.fprintf fmt "  decl %s[%d]@." name size
          | Decl_malloc { name; count; _ } ->
            Format.fprintf fmt "  %s = malloc(%a)@." name Ast.pp_expr count
          | Assign { name; index = None; value } ->
            Format.fprintf fmt "  %s = %a@." name Ast.pp_expr value
          | Assign { name; index = Some i; value } ->
            Format.fprintf fmt "  %s[%a] = %a@." name Ast.pp_expr i Ast.pp_expr value
          | Eval e -> Format.fprintf fmt "  %a@." Ast.pp_expr e)
        blk.instrs;
      (match blk.term with
      | Jump bid -> Format.fprintf fmt "  jmp B%d@." bid
      | Branch { cond; then_; else_ } ->
        Format.fprintf fmt "  br %a ? B%d : B%d@." Ast.pp_expr cond then_ else_
      | Return -> Format.fprintf fmt "  ret@."))
    t.blocks
