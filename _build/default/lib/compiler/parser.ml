open Lexer

type state = { mutable toks : located list }

exception Parse_failure of string

let fail l msg = raise (Parse_failure (Printf.sprintf "parse error at line %d, column %d: %s" l.line l.col msg))

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_punct st p =
  let t = peek st in
  match t.tok with
  | PUNCT q when q = p -> advance st
  | _ -> fail t (Printf.sprintf "expected %S, got %S" p (token_to_string t.tok))

let expect_kw st kw =
  let t = peek st in
  match t.tok with
  | KW q when q = kw -> advance st
  | _ -> fail t (Printf.sprintf "expected %S, got %S" kw (token_to_string t.tok))

let expect_ident st =
  let t = peek st in
  match t.tok with
  | IDENT name ->
    advance st;
    name
  | _ -> fail t (Printf.sprintf "expected identifier, got %S" (token_to_string t.tok))

let is_punct st p = match (peek st).tok with PUNCT q -> q = p | _ -> false
let is_kw st k = match (peek st).tok with KW q -> q = k | _ -> false

(* ---------------- expressions (precedence climbing) ---------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while is_punct st "||" do
    advance st;
    let rhs = parse_and st in
    lhs := Ast.Binop (Ast.Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while is_punct st "&&" do
    advance st;
    let rhs = parse_cmp st in
    lhs := Ast.Binop (Ast.And, !lhs, rhs)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).tok with
    | PUNCT "<" -> Some Ast.Lt
    | PUNCT "<=" -> Some Ast.Le
    | PUNCT ">" -> Some Ast.Gt
    | PUNCT ">=" -> Some Ast.Ge
    | PUNCT "==" -> Some Ast.Eq
    | PUNCT "!=" -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    let rhs = parse_add st in
    Ast.Binop (op, lhs, rhs)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec loop () =
    match (peek st).tok with
    | PUNCT "+" ->
      advance st;
      lhs := Ast.Binop (Ast.Add, !lhs, parse_mul st);
      loop ()
    | PUNCT "-" ->
      advance st;
      lhs := Ast.Binop (Ast.Sub, !lhs, parse_mul st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match (peek st).tok with
    | PUNCT "*" ->
      advance st;
      lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st);
      loop ()
    | PUNCT "/" ->
      advance st;
      lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st);
      loop ()
    | PUNCT "%" ->
      advance st;
      lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match (peek st).tok with
  | PUNCT "-" ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | PUNCT "!" ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.tok with
  | INT_LIT i ->
    advance st;
    Ast.Int_lit i
  | FLOAT_LIT f ->
    advance st;
    Ast.Float_lit f
  | PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | IDENT name ->
    advance st;
    if is_punct st "(" then begin
      advance st;
      let args = ref [] in
      if not (is_punct st ")") then begin
        args := [ parse_expr st ];
        while is_punct st "," do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      expect_punct st ")";
      if not (List.mem name Ast.intrinsics) then
        fail t (Printf.sprintf "unknown function %S (user functions are not supported)" name);
      Ast.Call (name, List.rev !args)
    end
    else if is_punct st "[" then begin
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      Ast.Index (name, idx)
    end
    else Ast.Var name
  | _ -> fail t (Printf.sprintf "unexpected token %S" (token_to_string t.tok))

(* ---------------- statements ---------------- *)

let parse_ty st =
  if is_kw st "int" then begin
    advance st;
    Ast.Tint
  end
  else begin
    expect_kw st "float";
    Ast.Tfloat
  end

let rec parse_stmt st =
  let t = peek st in
  match t.tok with
  | KW ("int" | "float") -> parse_decl st
  | KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block st in
    let else_ =
      if is_kw st "else" then begin
        advance st;
        parse_block st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    Ast.While (cond, parse_block st)
  | KW "for" ->
    advance st;
    expect_punct st "(";
    let init = parse_simple st in
    expect_punct st ";";
    let cond = parse_expr st in
    expect_punct st ";";
    let step = parse_simple st in
    expect_punct st ")";
    Ast.For { init; cond; step; body = parse_block st }
  | KW "return" ->
    advance st;
    if is_punct st ";" then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Return (Some e)
    end
  | IDENT _ ->
    let s = parse_simple st in
    expect_punct st ";";
    s
  | _ -> fail t (Printf.sprintf "unexpected token %S" (token_to_string t.tok))

(* Declaration, assignment or expression statement, without the
   trailing semicolon (shared by [for] headers and plain statements). *)
and parse_simple st =
  let t = peek st in
  match t.tok with
  | KW ("int" | "float") -> parse_decl_body st
  | IDENT name ->
    advance st;
    if is_punct st "[" then begin
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      expect_punct st "=";
      let v = parse_expr st in
      Ast.Assign { name; index = Some idx; value = v }
    end
    else if is_punct st "=" then begin
      advance st;
      let v = parse_expr st in
      Ast.Assign { name; index = None; value = v }
    end
    else if is_punct st "(" then begin
      (* call statement: rewind is awkward, reparse as call *)
      advance st;
      let args = ref [] in
      if not (is_punct st ")") then begin
        args := [ parse_expr st ];
        while is_punct st "," do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      expect_punct st ")";
      if not (List.mem name Ast.intrinsics) then
        fail t (Printf.sprintf "unknown function %S" name);
      Ast.Expr (Ast.Call (name, List.rev !args))
    end
    else fail t "expected assignment or call"
  | _ -> fail t (Printf.sprintf "unexpected token %S" (token_to_string t.tok))

and parse_decl st =
  let d = parse_decl_body st in
  expect_punct st ";";
  d

and parse_decl_body st =
  let ty = parse_ty st in
  if is_punct st "*" then begin
    advance st;
    let name = expect_ident st in
    expect_punct st "=";
    expect_kw st "malloc";
    expect_punct st "(";
    let count = parse_expr st in
    expect_punct st ")";
    Ast.Decl_malloc { name; ty; count }
  end
  else begin
    let name = expect_ident st in
    if is_punct st "[" then begin
      advance st;
      let t = peek st in
      match t.tok with
      | INT_LIT size ->
        advance st;
        expect_punct st "]";
        Ast.Decl_array { name; ty; size }
      | _ -> fail t "array sizes must be integer literals"
    end
    else if is_punct st "=" then begin
      advance st;
      Ast.Decl { name; ty; init = Some (parse_expr st) }
    end
    else Ast.Decl { name; ty; init = None }
  end

and parse_block st =
  if is_punct st "{" then begin
    advance st;
    let stmts = ref [] in
    while not (is_punct st "}") do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    List.rev !stmts
  end
  else [ parse_stmt st ]

let parse src =
  match Lexer.tokenize src with
  | Error msg -> Error msg
  | Ok toks -> (
    let st = { toks } in
    try
      (* Optional `int main() {` wrapper. *)
      let wrapped =
        match st.toks with
        | { tok = KW "int"; _ } :: { tok = IDENT "main"; _ } :: { tok = PUNCT "("; _ }
          :: { tok = PUNCT ")"; _ } :: { tok = PUNCT "{"; _ } :: rest ->
          st.toks <- rest;
          true
        | _ -> false
      in
      let stmts = ref [] in
      let at_end () =
        match (peek st).tok with
        | EOF -> true
        | PUNCT "}" when wrapped -> true
        | _ -> false
      in
      while not (at_end ()) do
        stmts := parse_stmt st :: !stmts
      done;
      if wrapped then begin
        expect_punct st "}";
        match (peek st).tok with
        | EOF -> ()
        | _ -> fail (peek st) "trailing content after main"
      end;
      Ok (List.rev !stmts)
    with Parse_failure msg -> Error msg)

let parse_exn src =
  match parse src with
  | Ok p -> p
  | Error msg -> failwith msg
