(** IR interpreter with dynamic-trace instrumentation.

    Plays the role of the instrumented tracing executable in the
    TraceAtlas flow (Fig. 5): running a program produces its outputs
    *and* a block-level execution trace that kernel detection analyses.

    I/O: [read_ch c i] reads element [i] of input channel [c];
    [write_ch c i v] writes element [i] of output channel [c].
    Channels stand in for the original applications' file I/O. *)

type value = Vint of int | Vfloat of float

type cell =
  | Scalar of value ref
  | Farr of float array
  | Iarr of int array

type env = (string, cell) Hashtbl.t

type trace = {
  blocks : int array;  (** block id sequence, in execution order *)
  ops_per_block : (int, int) Hashtbl.t;  (** total instructions executed per block *)
  total_ops : int;
}

type outcome = {
  env : env;  (** final variable state *)
  outputs : (int * float array) list;  (** written output channels *)
  trace : trace option;  (** present when tracing was enabled *)
}

exception Runtime_error of string

val output_capacity : int
(** Fixed element capacity of each output channel (8192). *)

val run :
  ?trace:bool ->
  ?max_steps:int ->
  inputs:(int * float array) list ->
  Ir.t ->
  outcome
(** Interpret from the entry block until [Return].
    @raise Runtime_error on type errors, unknown variables,
    out-of-bounds accesses, or when [max_steps] (default 50 million
    block executions) is exceeded. *)

val run_range :
  env:env ->
  inputs:(int * float array) list ->
  outputs:(int, float array) Hashtbl.t ->
  first:int ->
  last:int ->
  Ir.t ->
  unit
(** Execute the single-entry region of blocks [first..last] starting
    at [first], sharing the caller's environment and channel state;
    returns when control leaves the range or the program returns.
    This is how outlined kernels are invoked at emulation time. *)

val eval_const_int : env -> Ast.expr -> int option
(** Best-effort constant evaluation against the current environment —
    the memory analysis uses it to size malloc blocks statically. *)
