type access = { live_in : string list; writes : string list }

(* ------------------------------------------------------------------ *)
(* Per-instruction reads/writes, including channel pseudo-variables    *)
(* ------------------------------------------------------------------ *)

let in_ch c = Printf.sprintf "__in_ch%d" c
let out_ch c = Printf.sprintf "__out_ch%d" c

(* Collect variable reads of an expression in evaluation order,
   mapping channel intrinsics onto their pseudo-variables.  write_ch
   both reads and writes its channel block (the outlined kernels flush
   whole blocks). *)
let rec expr_accesses e ~read ~write =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ -> ()
  | Ast.Var v -> read v
  | Ast.Index (a, i) ->
    expr_accesses i ~read ~write;
    read a
  | Ast.Binop (_, a, b) ->
    expr_accesses a ~read ~write;
    expr_accesses b ~read ~write
  | Ast.Unop (_, e) -> expr_accesses e ~read ~write
  | Ast.Call ("read_ch", (Ast.Int_lit c :: _ as args)) ->
    List.iter (fun a -> expr_accesses a ~read ~write) args;
    read (in_ch c)
  | Ast.Call ("write_ch", (Ast.Int_lit c :: _ as args)) ->
    List.iter (fun a -> expr_accesses a ~read ~write) args;
    read (out_ch c);
    write (out_ch c)
  | Ast.Call (_, args) -> List.iter (fun a -> expr_accesses a ~read ~write) args

(* (reads-in-order, full-kill write option, partial-write option) *)
let instr_accesses (i : Ir.instr) ~read ~write ~kill =
  match i with
  | Ir.Decl { name; init; _ } ->
    Option.iter (fun e -> expr_accesses e ~read ~write) init;
    kill name
  | Ir.Decl_array { name; _ } -> kill name
  | Ir.Decl_malloc { name; count; _ } ->
    expr_accesses count ~read ~write;
    kill name
  | Ir.Assign { name; index = None; value } ->
    expr_accesses value ~read ~write;
    kill name
  | Ir.Assign { name; index = Some idx; value } ->
    expr_accesses idx ~read ~write;
    expr_accesses value ~read ~write;
    (* Partial update: the location is written but earlier contents
       survive, so it does not kill upward-exposed reads. *)
    write name
  | Ir.Eval e -> expr_accesses e ~read ~write

module S = Set.Make (String)

(* Per-block upward-exposed reads (gen) and full definitions (kill),
   computed by a sequential walk. *)
let block_gen_kill (blk : Ir.block) =
  let gen = ref S.empty and killed = ref S.empty and writes = ref S.empty in
  let read v = if not (S.mem v !killed) then gen := S.add v !gen in
  let write v = writes := S.add v !writes in
  let kill v =
    killed := S.add v !killed;
    writes := S.add v !writes
  in
  List.iter (fun i -> instr_accesses i ~read ~write ~kill) blk.Ir.instrs;
  (match blk.Ir.term with
  | Ir.Branch { cond; _ } -> expr_accesses cond ~read ~write
  | Ir.Jump _ | Ir.Return -> ());
  (!gen, !killed, !writes)

let group_access (ir : Ir.t) (g : Outline.group) =
  let first = g.Outline.first_block and last = g.Outline.last_block in
  let n = last - first + 1 in
  let gen = Array.make n S.empty and kill = Array.make n S.empty in
  let writes = ref S.empty in
  for b = first to last do
    let ge, ki, wr = block_gen_kill ir.Ir.blocks.(b) in
    gen.(b - first) <- ge;
    kill.(b - first) <- ki;
    writes := S.union !writes wr
  done;
  (* Backward liveness restricted to the group's internal edges:
     live_in(b) = gen(b) + (live_out(b) - kill(b)). *)
  let live_in = Array.make n S.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = last downto first do
      let out =
        List.fold_left
          (fun acc s ->
            if s >= first && s <= last then S.union acc live_in.(s - first) else acc)
          S.empty
          (Ir.successors ir.Ir.blocks.(b))
      in
      let v = S.union gen.(b - first) (S.diff out kill.(b - first)) in
      if not (S.equal v live_in.(b - first)) then begin
        live_in.(b - first) <- v;
        changed := true
      end
    done
  done;
  { live_in = S.elements live_in.(0); writes = S.elements !writes }

(* ------------------------------------------------------------------ *)
(* Inter-group dependence edges                                        *)
(* ------------------------------------------------------------------ *)

type analysis = {
  accesses : (int * access) list;
  edges : (int * int) list;
  flush : (int * string list) list;
}

let analyse (ir : Ir.t) (groups : Outline.group list) =
  let accesses = List.map (fun g -> (g.Outline.gid, group_access ir g)) groups in
  let acc_of gid = List.assoc gid accesses in
  (* Variables with partial (indexed) writes anywhere are array-like:
     their writers are kept fully ordered. *)
  let array_like =
    let s = ref S.empty in
    Array.iter
      (fun blk ->
        List.iter
          (fun i ->
            match i with
            | Ir.Assign { name; index = Some _; _ } -> s := S.add name !s
            | Ir.Decl_array { name; _ } | Ir.Decl_malloc { name; _ } -> s := S.add name !s
            | _ -> ())
          blk.Ir.instrs)
      ir.Ir.blocks;
    !s
  in
  let ordered_gids = List.map (fun g -> g.Outline.gid) groups in
  (* For the output-dependence rule: does any group after [gid] read v? *)
  let read_later v gid =
    List.exists (fun g -> g > gid && List.mem v (acc_of g).live_in) ordered_gids
  in
  let edges = Hashtbl.create 64 in
  let add_edge a b = if a <> b then Hashtbl.replace edges (a, b) () in
  let all_vars =
    List.fold_left
      (fun s (_, a) -> S.union s (S.union (S.of_list a.live_in) (S.of_list a.writes)))
      S.empty accesses
  in
  S.iter
    (fun v ->
      let last_writer = ref None in
      let readers = ref [] in
      List.iter
        (fun gid ->
          let a = acc_of gid in
          let reads = List.mem v a.live_in and writes_v = List.mem v a.writes in
          if reads then begin
            Option.iter (fun w -> add_edge w gid) !last_writer;
            readers := gid :: !readers
          end;
          if writes_v then begin
            (* anti: outstanding readers must finish first *)
            List.iter (fun r -> add_edge r gid) !readers;
            (* output: keep writers ordered when the old value is still
               wanted downstream, and always for array-like blocks *)
            (match !last_writer with
            | Some w when S.mem v array_like || read_later v gid -> add_edge w gid
            | _ -> ());
            last_writer := Some gid;
            readers := []
          end)
        ordered_gids)
    all_vars;
  let flush =
    List.map
      (fun gid ->
        let a = acc_of gid in
        ( gid,
          List.filter (fun v -> S.mem v array_like || read_later v gid) a.writes ))
      ordered_gids
  in
  {
    accesses;
    edges = Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) edges [] |> List.sort compare;
    flush;
  }

let predecessors t gid =
  List.filter_map (fun (a, b) -> if b = gid then Some a else None) t.edges |> List.sort_uniq compare
