(** DAG generation: the final stage of the conversion toolchain.

    Turns the outlined groups into a framework-compatible application
    (the JSON-based DAG of Listing 1) plus registered kernels:

    - every program variable becomes a [Variables] entry sized by the
      memory analysis (scalars 4 bytes; arrays 4 bytes per element;
      malloc blocks by statically folding their byte-count argument);
    - input channels are baked into [__in_ch<c>] variables, output
      channels become [__out_ch<c>] blocks;
    - each group becomes a DAG node calling an interpreter closure
      registered in ["<name>.gen.so"]; nodes chain linearly (automatic
      parallelisation of independent kernels is the paper's future
      work);
    - with [optimize], kernels classified {!Recognize.Pure_dft} are
      redirected to an optimized FFT-library runfunc in ["fft_lib.so"]
      plus an FFT-accelerator platform entry in ["fft_accel.so"] — the
      Case Study 4 substitution;
    - node costs come from the dynamic trace ([interp_ops] x traced
      statement count; [file_io] for I/O kernels; [dft_naive] /
      [fft_lib] for recognised transforms). *)

type generated = {
  spec : Dssoc_apps.App_spec.t;
  substitutions : (string * Recognize.dft_info) list;
      (** (node name, transform) pairs that were redirected *)
  consts : (string, int) Hashtbl.t;  (** folded scalar constants *)
}

val fold_constants : Ir.t -> (string, int) Hashtbl.t
(** Abstract interpretation of the entry block's straight-line scalar
    code; used to size mallocs and resolve DFT loop bounds. *)

val generate :
  ?optimize:bool ->
  ?parallelize:bool ->
  name:string ->
  ir:Ir.t ->
  groups:Outline.group list ->
  trace:Interp.trace ->
  inputs:(int * float array) list ->
  unit ->
  (generated, string) result
(** Fails when the traced group-entry sequence is not the linear chain
    the conversion assumes (each group entered exactly once, in
    order).

    With [parallelize] (default false, the paper's released tool), the
    nodes are linked by {!Deps} memory-dependence edges instead of a
    sequential chain — loop prologues are merged into their kernels,
    scratch scalars privatised, and independent kernels (the two DFTs
    of the range-detection case study) become parallel DAG branches:
    the "automatic parallelization of independent kernels via analysis
    of their runtime memory access patterns" the paper lists as future
    work. *)
