(** Abstract syntax of mini-C, the monolithic unlabeled-C subset the
    automatic application-conversion toolchain accepts (Section II-E).

    The subset covers what the paper's motivating programs need:
    int/float scalars, fixed-size arrays, malloc'd float buffers,
    assignments, arithmetic/relational/logical expressions, [for],
    [while], [if]/[else], math intrinsics, and channel I/O builtins
    ([read_ch]/[write_ch]) standing in for file I/O. *)

type ty = Tint | Tfloat

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** a\[e\] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
      (** intrinsics: sin, cos, sqrt, fabs, read_ch; [write_ch] appears
          only in expression statements *)

type stmt =
  | Decl of { name : string; ty : ty; init : expr option }
  | Decl_array of { name : string; ty : ty; size : int }
  | Decl_malloc of { name : string; ty : ty; count : expr }
      (** [float *p = malloc(e);] — e in bytes, statically analysed *)
  | Assign of { name : string; index : expr option; value : expr }
  | Expr of expr  (** expression statement, e.g. a write_ch call *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { init : stmt; cond : expr; step : stmt; body : stmt list }
  | Return of expr option

type program = stmt list
(** The body of [main]. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val expr_vars : expr -> string list
(** Variable (and array) names read by an expression, without
    duplicates, in first-use order. *)

val intrinsics : string list
(** Names callable in expressions: sin, cos, sqrt, fabs, floor,
    read_ch, write_ch. *)
