type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type located = { tok : token; line : int; col : int }

let keywords = [ "int"; "float"; "if"; "else"; "for"; "while"; "return"; "malloc" ]

let token_to_string = function
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and bol = ref 0 in
  let out = ref [] in
  let error msg =
    Error (Printf.sprintf "lexical error at line %d, column %d: %s" !line (!pos - !bol + 1) msg)
  in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let advance () =
    if !pos < n then begin
      if src.[!pos] = '\n' then begin
        incr line;
        bol := !pos + 1
      end;
      incr pos
    end
  in
  let emit tok col = out := { tok; line = !line; col } :: !out in
  let rec loop () =
    if !pos >= n then Ok ()
    else begin
      let c = peek 0 in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        advance ();
        loop ()
      end
      else if c = '/' && peek 1 = '/' then begin
        while !pos < n && peek 0 <> '\n' do advance () done;
        loop ()
      end
      else if c = '/' && peek 1 = '*' then begin
        advance ();
        advance ();
        let rec skip () =
          if !pos >= n then error "unterminated comment"
          else if peek 0 = '*' && peek 1 = '/' then begin
            advance ();
            advance ();
            Ok ()
          end
          else begin
            advance ();
            skip ()
          end
        in
        match skip () with Ok () -> loop () | Error _ as e -> e
      end
      else begin
        let col = !pos - !bol + 1 in
        if is_ident_start c then begin
          let start = !pos in
          while !pos < n && is_ident_char (peek 0) do advance () done;
          let word = String.sub src start (!pos - start) in
          emit (if List.mem word keywords then KW word else IDENT word) col;
          loop ()
        end
        else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
          let start = !pos in
          while is_digit (peek 0) do advance () done;
          let is_float = ref false in
          if peek 0 = '.' then begin
            is_float := true;
            advance ();
            while is_digit (peek 0) do advance () done
          end;
          if peek 0 = 'e' || peek 0 = 'E' then begin
            is_float := true;
            advance ();
            if peek 0 = '+' || peek 0 = '-' then advance ();
            while is_digit (peek 0) do advance () done
          end;
          let text = String.sub src start (!pos - start) in
          if !is_float then begin
            emit (FLOAT_LIT (float_of_string text)) col;
            loop ()
          end
          else begin
            match int_of_string_opt text with
            | Some i ->
              emit (INT_LIT i) col;
              loop ()
            | None -> error (Printf.sprintf "bad integer literal %S" text)
          end
        end
        else begin
          let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
          if List.mem two [ "<="; ">="; "=="; "!="; "&&"; "||" ] then begin
            advance ();
            advance ();
            emit (PUNCT two) col;
            loop ()
          end
          else if String.contains "+-*/%<>=!(){}[];,." c then begin
            advance ();
            emit (PUNCT (String.make 1 c)) col;
            loop ()
          end
          else error (Printf.sprintf "unexpected character %C" c)
        end
      end
    end
  in
  match loop () with
  | Ok () ->
    out := { tok = EOF; line = !line; col = 1 } :: !out;
    Ok (List.rev !out)
  | Error _ as e -> e
