(** Memory-access dependence analysis between outlined groups — the
    paper's future-work item "support for automatic parallelization of
    independent kernels via analysis of their runtime memory access
    patterns" (Case Study 4 discussion).

    For each group the analysis computes:

    - [live_in]: variables possibly read before being written (a
      forward must-write dataflow over the group's internal CFG, so
      loop counters initialised by a merged prologue are *privatised*
      rather than serialising every loop on a shared temporary);
    - [writes]: variables the group may write.

    Channel I/O is modelled with pseudo-variables: [read_ch c] reads
    [__in_ch<c>]; [write_ch c] reads and writes [__out_ch<c>] (the
    outlined kernels flush whole channel blocks, so same-channel
    writers must stay ordered).

    Dependence edges between groups (in program order) are the minimal
    set that keeps every shared-store access race-free when
    independent groups execute in parallel:

    - flow: a group with [v] live-in depends on the nearest preceding
      writer of [v];
    - anti: a group with [v] live-in blocks the next writer of [v];
    - output: consecutive writers of [v] stay ordered when a later
      group still reads [v].

    A written variable that is never live-in to any later group is
    dead at group boundaries; it is excluded from the flush set so
    parallel groups never race on scratch scalars. *)

type access = {
  live_in : string list;  (** possibly read before written, in first-use order *)
  writes : string list;  (** possibly written *)
}

val group_access : Ir.t -> Outline.group -> access

type analysis = {
  accesses : (int * access) list;  (** by gid, in program order *)
  edges : (int * int) list;  (** (from gid, to gid), deduplicated *)
  flush : (int * string list) list;
      (** per gid: written variables some later group still reads
          (always including arrays and channels) *)
}

val analyse : Ir.t -> Outline.group list -> analysis

val predecessors : analysis -> int -> int list
(** Direct dependence predecessors of a group, sorted. *)
