(** Recursive-descent parser for mini-C.

    Accepts either a bare statement sequence or a monolithic
    [int main() { ... }] wrapper (the form the paper's toolchain
    consumes).  All errors are located. *)

val parse : string -> (Ast.program, string) result

val parse_exn : string -> Ast.program
(** @raise Failure with the parse error. *)
