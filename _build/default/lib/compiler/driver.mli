(** End-to-end automatic application conversion (Fig. 5):

    source text -> mini-C AST -> basic-block IR -> traced reference run
    -> kernel detection -> outlining -> (optional) kernel recognition
    and FFT substitution -> framework-ready {!Dssoc_apps.App_spec} with
    registered kernels. *)

type conversion = {
  spec : Dssoc_apps.App_spec.t;
  ir : Ir.t;
  detection : Kernel_detect.result;
  groups : Outline.group list;
  substitutions : (string * Recognize.dft_info) list;
  trace_ops : int;  (** dynamic statements executed by the traced run *)
  reference_outputs : (int * float array) list;
      (** output channels of the direct (monolithic) interpretation —
          the gold data DAG executions must reproduce *)
}

val convert :
  ?optimize:bool ->
  ?parallelize:bool ->
  name:string ->
  source:string ->
  inputs:(int * float array) list ->
  unit ->
  (conversion, string) result
(** [optimize] (default true) enables hash-based kernel recognition
    and FFT substitution; [parallelize] (default false) links nodes by
    memory-dependence edges instead of a sequential chain (see
    {!Dag_gen.generate}). *)

val summary : conversion -> string
(** Human-readable conversion report (kernel counts by kind,
    substitutions) — what Case Study 4 narrates. *)

(** {1 The monolithic range-detection program of Case Study 4} *)

val range_detection_source : string
(** Unlabeled C implementing range detection with for-loop DFT/IDFT
    and channel I/O standing in for file I/O; n = 512 to match the
    case study's transform size. *)

val range_detection_n : int
val range_detection_echo_delay : int

val range_detection_inputs : unit -> (int * float array) list
(** Channel 0: LFM reference waveform; channel 1: received signal with
    the echo at {!range_detection_echo_delay}. *)
