type kernel = {
  kid : int;
  first_block : int;
  last_block : int;
  exec_count : int;
  ops : int;
  does_io : bool;
}

type result = { kernels : kernel list; hot_blocks : int list }

let block_does_io (blk : Ir.block) =
  let rec expr_io = function
    | Ast.Call (("read_ch" | "write_ch"), _) -> true
    | Ast.Call (_, args) -> List.exists expr_io args
    | Ast.Binop (_, a, b) -> expr_io a || expr_io b
    | Ast.Unop (_, e) -> expr_io e
    | Ast.Index (_, e) -> expr_io e
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> false
  in
  let instr_io = function
    | Ir.Decl { init = Some e; _ } -> expr_io e
    | Ir.Decl { init = None; _ } | Ir.Decl_array _ -> false
    | Ir.Decl_malloc { count; _ } -> expr_io count
    | Ir.Assign { index; value; _ } ->
      expr_io value || (match index with None -> false | Some e -> expr_io e)
    | Ir.Eval e -> expr_io e
  in
  List.exists instr_io blk.Ir.instrs

let detect ?(hot_threshold = 64) ?(edge_threshold = 16) ~(ir : Ir.t) ~(trace : Interp.trace) () =
  let n = Ir.block_count ir in
  let exec = Array.make n 0 in
  Array.iter (fun bid -> if bid < n then exec.(bid) <- exec.(bid) + 1) trace.Interp.blocks;
  let hot = Array.map (fun c -> c >= hot_threshold) exec in
  (* Transition counts between consecutive trace entries. *)
  let edges = Hashtbl.create 64 in
  Array.iteri
    (fun i bid ->
      if i > 0 then begin
        let prev = trace.Interp.blocks.(i - 1) in
        let key = (min prev bid, max prev bid) in
        Hashtbl.replace edges key (1 + Option.value ~default:0 (Hashtbl.find_opt edges key))
      end)
    trace.Interp.blocks;
  (* Union-find over hot blocks connected by strong transitions. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  Hashtbl.iter
    (fun (a, b) count ->
      if count >= edge_threshold && a < n && b < n && hot.(a) && hot.(b) then union a b)
    edges;
  let components = Hashtbl.create 8 in
  for bid = 0 to n - 1 do
    if hot.(bid) then begin
      let root = find bid in
      let members = Option.value ~default:[] (Hashtbl.find_opt components root) in
      Hashtbl.replace components root (bid :: members)
    end
  done;
  let kernels =
    Hashtbl.fold
      (fun _root members acc ->
        let members = List.sort compare members in
        let first_block = List.hd members and last_block = List.hd (List.rev members) in
        let exec_count = List.fold_left (fun m b -> max m exec.(b)) 0 members in
        let ops =
          (* Attribute every dynamic op in the spanned range, including
             cool blocks sandwiched inside a loop body. *)
          let total = ref 0 in
          for b = first_block to last_block do
            total := !total + Option.value ~default:0 (Hashtbl.find_opt trace.Interp.ops_per_block b)
          done;
          !total
        in
        let does_io =
          List.exists (fun b -> block_does_io ir.Ir.blocks.(b)) members
        in
        { kid = 0; first_block; last_block; exec_count; ops; does_io } :: acc)
      components []
    |> List.sort (fun a b -> compare a.first_block b.first_block)
  in
  (* Merge kernels whose block ranges overlap (nested loops detected as
     separate components inside the same region). *)
  let merged =
    List.fold_left
      (fun acc k ->
        match acc with
        | prev :: rest when k.first_block <= prev.last_block ->
          {
            prev with
            last_block = max prev.last_block k.last_block;
            exec_count = max prev.exec_count k.exec_count;
            ops = prev.ops + (if k.last_block > prev.last_block then k.ops else 0);
            does_io = prev.does_io || k.does_io;
          }
          :: rest
        | _ -> k :: acc)
      [] kernels
    |> List.rev
    |> List.mapi (fun i k -> { k with kid = i })
  in
  let hot_blocks =
    List.concat_map (fun i -> if hot.(i) then [ i ] else []) (List.init n (fun i -> i))
  in
  { kernels = merged; hot_blocks }

let pp_result fmt r =
  Format.fprintf fmt "%d kernel(s):@." (List.length r.kernels);
  List.iter
    (fun k ->
      Format.fprintf fmt "  K%d: blocks %d-%d, hottest %d execs, %d ops%s@." k.kid k.first_block
        k.last_block k.exec_count k.ops
        (if k.does_io then " [io]" else ""))
    r.kernels
