(** Trace-based kernel detection (the TraceAtlas stage of Fig. 5).

    A *kernel* is a set of highly correlated basic blocks that execute
    frequently in the traced run — "hot" regions, typically loops.
    Detection works purely on the dynamic trace:

    + count executions per block and transitions between consecutive
      trace entries;
    + blocks whose execution count reaches [hot_threshold] are hot;
    + hot blocks joined by strong transitions (count >=
      [edge_threshold]) cluster into connected components;
    + each component becomes one kernel, reported as the contiguous
      block-id range it spans (structured lowering guarantees loop
      regions are contiguous). *)

type kernel = {
  kid : int;
  first_block : int;
  last_block : int;  (** inclusive *)
  exec_count : int;  (** executions of the hottest member block *)
  ops : int;  (** total dynamic instructions attributed to the kernel *)
  does_io : bool;  (** contains read_ch / write_ch calls *)
}

type result = {
  kernels : kernel list;  (** sorted by first_block *)
  hot_blocks : int list;
}

val detect :
  ?hot_threshold:int ->
  ?edge_threshold:int ->
  ir:Ir.t ->
  trace:Interp.trace ->
  unit ->
  result
(** Defaults: [hot_threshold] 64, [edge_threshold] 16. *)

val pp_result : Format.formatter -> result -> unit

val block_does_io : Ir.block -> bool
(** Whether the block calls [read_ch] or [write_ch] anywhere (shared
    with the outliner, which tags I/O groups for the cost model). *)
