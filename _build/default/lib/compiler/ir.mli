(** Basic-block intermediate representation.

    The lowering mirrors what the paper's flow obtains from Clang:
    structured statements become a control-flow graph of basic blocks,
    each holding straight-line instructions and one terminator.  Block
    ids are assigned in source order, so a structured (goto-free)
    program executes its blocks in non-decreasing id ranges — the
    property the outliner relies on to extract contiguous single-entry
    regions. *)

type instr =
  | Decl of { name : string; ty : Ast.ty; init : Ast.expr option }
  | Decl_array of { name : string; ty : Ast.ty; size : int }
  | Decl_malloc of { name : string; ty : Ast.ty; count : Ast.expr }
  | Assign of { name : string; index : Ast.expr option; value : Ast.expr }
  | Eval of Ast.expr

type terminator =
  | Jump of int
  | Branch of { cond : Ast.expr; then_ : int; else_ : int }
  | Return

type block = { bid : int; instrs : instr list; term : terminator }

type t = { blocks : block array; entry : int }

val lower : Ast.program -> t
(** Lower a program; block 0 is the entry and the last block returns. *)

val block_count : t -> int

val instr_reads : instr -> string list
(** Variables read by an instruction (without duplicates). *)

val instr_writes : instr -> string option
(** The variable written (declared or assigned), if any. *)

val term_reads : terminator -> string list

val successors : block -> int list

val pp : Format.formatter -> t -> unit
