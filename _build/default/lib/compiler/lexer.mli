(** Mini-C lexer. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string  (** int float if else for while return malloc *)
  | PUNCT of string  (** operators and delimiters, e.g. "+" "<=" "(" "]" ";" *)
  | EOF

type located = { tok : token; line : int; col : int }

val tokenize : string -> (located list, string) result
(** Full-input tokenisation; C ([/* */]) and C++ ([//]) comments are
    skipped.  Errors carry line/column context. *)

val token_to_string : token -> string
