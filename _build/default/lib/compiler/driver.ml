module App_spec = Dssoc_apps.App_spec
module Radar = Dssoc_dsp.Radar
module Cbuf = Dssoc_dsp.Cbuf

type conversion = {
  spec : App_spec.t;
  ir : Ir.t;
  detection : Kernel_detect.result;
  groups : Outline.group list;
  substitutions : (string * Recognize.dft_info) list;
  trace_ops : int;
  reference_outputs : (int * float array) list;
}

let ( let* ) = Result.bind

let convert ?(optimize = true) ?(parallelize = false) ~name ~source ~inputs () =
  let* program = Parser.parse source in
  let ir = Ir.lower program in
  let* outcome =
    match Interp.run ~trace:true ~inputs ir with
    | o -> Ok o
    | exception Interp.Runtime_error msg -> Error ("reference run failed: " ^ msg)
  in
  let trace = Option.get outcome.Interp.trace in
  let detection = Kernel_detect.detect ~ir ~trace () in
  let groups = Outline.outline ~ir ~detection ~trace in
  let* generated = Dag_gen.generate ~optimize ~parallelize ~name ~ir ~groups ~trace ~inputs () in
  Ok
    {
      spec = generated.Dag_gen.spec;
      ir;
      detection;
      groups;
      substitutions = generated.Dag_gen.substitutions;
      trace_ops = trace.Interp.total_ops;
      reference_outputs = outcome.Interp.outputs;
    }

let summary conv =
  let buf = Buffer.create 256 in
  let kernels = conv.detection.Kernel_detect.kernels in
  let io = List.length (List.filter (fun k -> k.Kernel_detect.does_io) kernels) in
  let dft =
    List.length
      (List.filter
         (fun (n, _) -> String.length n >= 3 && String.sub n 0 3 = "DFT")
         conv.substitutions)
  in
  Buffer.add_string buf
    (Printf.sprintf "converted %S: %d blocks, %d dynamic statements\n"
       conv.spec.App_spec.app_name (Ir.block_count conv.ir) conv.trace_ops);
  Buffer.add_string buf
    (Printf.sprintf "kernels detected: %d (%d file-I/O, %d substitutable DFT, %d other)\n"
       (List.length kernels) io dft
       (List.length kernels - io - dft));
  Buffer.add_string buf (Printf.sprintf "DAG nodes: %d\n" (App_spec.task_count conv.spec));
  List.iter
    (fun (node, (info : Recognize.dft_info)) ->
      Buffer.add_string buf
        (Printf.sprintf "substituted %s: %s-%d on [%s/%s] -> fft_lib.so + fft accelerator entry\n"
           node
           (if info.Recognize.inverse then "IDFT" else "DFT")
           info.Recognize.n info.Recognize.in_re info.Recognize.in_im))
    conv.substitutions;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Case Study 4's monolithic program                                   *)
(* ------------------------------------------------------------------ *)

let range_detection_n = 512
let range_detection_echo_delay = 137

let range_detection_source =
  {|
int main() {
  int n = 512;
  int i = 0;
  int k = 0;
  int t = 0;
  float wave_re[512];
  float wave_im[512];
  float rx_re[512];
  float rx_im[512];
  float WF_re[512];
  float WF_im[512];
  float RX_re[512];
  float RX_im[512];
  float *corr_mag = malloc(4 * n);
  float ang = 0.0;
  float c = 0.0;
  float s = 0.0;
  float sr = 0.0;
  float si = 0.0;
  float pr = 0.0;
  float pi = 0.0;
  float mag = 0.0;
  int best = 0;
  float bestv = 0.0;

  /* load the reference waveform from disk */
  for (i = 0; i < n; i = i + 1) {
    wave_re[i] = read_ch(0, 2 * i);
    wave_im[i] = read_ch(0, 2 * i + 1);
  }
  /* load the received samples from disk */
  for (i = 0; i < n; i = i + 1) {
    rx_re[i] = read_ch(1, 2 * i);
    rx_im[i] = read_ch(1, 2 * i + 1);
  }
  /* naive for-loop DFT of the reference waveform */
  for (k = 0; k < n; k = k + 1) {
    sr = 0.0;
    si = 0.0;
    for (t = 0; t < n; t = t + 1) {
      ang = -6.28318530718 * k * t / n;
      c = cos(ang);
      s = sin(ang);
      sr = sr + wave_re[t] * c - wave_im[t] * s;
      si = si + wave_re[t] * s + wave_im[t] * c;
    }
    WF_re[k] = sr;
    WF_im[k] = si;
  }
  /* naive for-loop DFT of the received signal */
  for (k = 0; k < n; k = k + 1) {
    sr = 0.0;
    si = 0.0;
    for (t = 0; t < n; t = t + 1) {
      ang = -6.28318530718 * k * t / n;
      c = cos(ang);
      s = sin(ang);
      sr = sr + rx_re[t] * c - rx_im[t] * s;
      si = si + rx_re[t] * s + rx_im[t] * c;
    }
    RX_re[k] = sr;
    RX_im[k] = si;
  }
  /* conjugate multiply and inverse DFT, tracking the correlation peak */
  for (t = 0; t < n; t = t + 1) {
    sr = 0.0;
    si = 0.0;
    for (k = 0; k < n; k = k + 1) {
      pr = RX_re[k] * WF_re[k] + RX_im[k] * WF_im[k];
      pi = RX_im[k] * WF_re[k] - RX_re[k] * WF_im[k];
      ang = 6.28318530718 * k * t / n;
      c = cos(ang);
      s = sin(ang);
      sr = sr + pr * c - pi * s;
      si = si + pr * s + pi * c;
    }
    sr = sr / n;
    si = si / n;
    mag = sr * sr + si * si;
    corr_mag[t] = mag;
    if (mag > bestv) {
      bestv = mag;
      best = t;
    }
  }
  /* dump the correlation profile back to disk */
  for (t = 0; t < n; t = t + 1) {
    write_ch(2, t, corr_mag[t]);
  }
  write_ch(3, 0, best);
  write_ch(3, 1, bestv);
  return 0;
}
|}

let interleave buf =
  let n = Cbuf.length buf in
  Array.init (2 * n) (fun i ->
      let re, im = Cbuf.get buf (i / 2) in
      if i mod 2 = 0 then re else im)

let range_detection_inputs () =
  let n = range_detection_n in
  let wave = Radar.lfm_chirp ~n ~bandwidth:0.4e6 ~sample_rate:1.0e6 in
  let rx =
    Radar.delayed_echo None ~waveform:wave ~total:n ~delay:range_detection_echo_delay
      ~attenuation:0.7 ~noise_sigma:0.0
  in
  [ (0, interleave wave); (1, interleave rx) ]
