(** Code outlining: the LLVM-CodeExtractor stage of the toolchain.

    Partitions the program's block-id space into alternating cold /
    kernel groups.  Thanks to the id-ordered lowering, each group is a
    contiguous, single-entry block range that control enters at its
    first block and leaves past its last block, so executing the range
    with {!Interp.run_range} is exactly one outlined function call —
    the "sequence of function calls" the paper's in-house tool
    produces. *)

type kind = Kernel of Kernel_detect.kernel | Cold

type group = {
  gid : int;
  kind : kind;
  first_block : int;
  last_block : int;  (** inclusive *)
  vars : string list;  (** variables read or written, in block order *)
  ops : int;  (** dynamic instruction count from the trace *)
  does_io : bool;
}

val outline : ir:Ir.t -> detection:Kernel_detect.result -> trace:Interp.trace -> group list
(** Groups in execution (block-id) order, covering all blocks.  Cold
    groups that contain no instructions at all are dropped (pure
    control-flow glue folds into the neighbouring group's range). *)

val merge_prologues : ?max_ops:int -> ir:Ir.t -> trace:Interp.trace -> group list -> group list
(** Fold each tiny cold group (at most [max_ops] dynamic instructions,
    default 8) that immediately precedes a kernel into that kernel —
    typically the loop-counter initialisation the lowering left in the
    preceding block.  After merging, a kernel writes its induction
    variables before reading them, which is what lets the dependence
    analysis privatise them and extract kernel-level parallelism. *)

val pp_group : Format.formatter -> group -> unit
