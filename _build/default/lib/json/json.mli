(** Minimal standalone JSON implementation.

    The application-description format of the emulation framework
    (Listing 1 of the paper) is JSON; no JSON package is vendored in
    the build environment, so this module provides the subset the
    framework needs: full RFC 8259 parsing (with the usual OCaml
    int/float split), deterministic pretty-printing, and combinator
    accessors returning [result] for recoverable errors. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Member order is preserved; duplicate keys are rejected at
          parse time. *)

(** {1 Parsing} *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse : string -> (t, error) result
(** Parse a complete JSON document.  Trailing non-whitespace input is an
    error. *)

val parse_exn : string -> t
(** @raise Failure with a located message on malformed input. *)

val of_file : string -> (t, error) result
(** Read and parse a file.  I/O failures are reported as an [error]
    with line 0. *)

(** {1 Printing} *)

val to_string : ?minify:bool -> t -> string
(** Render; default is 2-space indented pretty output with members in
    their stored order.  [print |> parse] is the identity. *)

val to_file : ?minify:bool -> string -> t -> unit

val pp : Format.formatter -> t -> unit

(** {1 Accessors}

    Accessors return [Error msg] describing the path that failed, so
    application-spec validation can produce usable diagnostics. *)

val member : string -> t -> (t, string) result
(** Object member lookup. *)

val member_opt : string -> t -> t option
(** [None] when absent or when the value is not an object. *)

val to_bool : t -> (bool, string) result
val to_int : t -> (int, string) result
(** Accepts [Int] and integral [Float]s. *)

val to_float : t -> (float, string) result
(** Accepts [Float] and [Int]. *)

val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val to_obj : t -> ((string * t) list, string) result

val keys : t -> string list
(** Keys of an object, in stored order; [[]] for non-objects. *)

(** {1 Construction helpers} *)

val obj : (string * t) list -> t
val list : t list -> t
val str : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t
