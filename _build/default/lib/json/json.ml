type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { line : int; col : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d, column %d: %s" e.line e.col e.message
let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Lexing / parsing state                                              *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

exception Parse_error of error

let fail st message =
  raise (Parse_error { line = st.line; col = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\255' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let rec skip_ws st =
  match peek st with
  | ' ' | '\t' | '\n' | '\r' ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected '%c'" c);
  advance st

let expect_keyword st kw value =
  let n = String.length kw in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = kw then begin
    for _ = 1 to n do advance st done;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" kw)

let is_digit c = c >= '0' && c <= '9'

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = peek st in
    let d =
      if is_digit c then Char.code c - Char.code '0'
      else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
      else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
      else fail st "invalid \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

(* Encode a Unicode scalar value as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated string";
    let c = peek st in
    if c = '"' then begin advance st; Buffer.contents buf end
    else if c = '\\' then begin
      advance st;
      (match peek st with
      | '"' -> Buffer.add_char buf '"'; advance st
      | '\\' -> Buffer.add_char buf '\\'; advance st
      | '/' -> Buffer.add_char buf '/'; advance st
      | 'b' -> Buffer.add_char buf '\b'; advance st
      | 'f' -> Buffer.add_char buf '\012'; advance st
      | 'n' -> Buffer.add_char buf '\n'; advance st
      | 'r' -> Buffer.add_char buf '\r'; advance st
      | 't' -> Buffer.add_char buf '\t'; advance st
      | 'u' ->
        advance st;
        let hi = parse_hex4 st in
        if hi >= 0xD800 && hi <= 0xDBFF then begin
          (* Surrogate pair. *)
          expect st '\\';
          expect st 'u';
          let lo = parse_hex4 st in
          if lo < 0xDC00 || lo > 0xDFFF then fail st "invalid low surrogate";
          let cp = 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00) in
          add_utf8 buf cp
        end
        else if hi >= 0xDC00 && hi <= 0xDFFF then fail st "unpaired low surrogate"
        else add_utf8 buf hi
      | _ -> fail st "invalid escape sequence");
      loop ()
    end
    else if Char.code c < 0x20 then fail st "unescaped control character in string"
    else begin
      Buffer.add_char buf c;
      advance st;
      loop ()
    end
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = '-' then advance st;
  if peek st = '0' then advance st
  else if is_digit (peek st) then while is_digit (peek st) do advance st done
  else fail st "invalid number";
  if peek st = '.' then begin
    is_float := true;
    advance st;
    if not (is_digit (peek st)) then fail st "digit expected after '.'";
    while is_digit (peek st) do advance st done
  end;
  (match peek st with
  | 'e' | 'E' ->
    is_float := true;
    advance st;
    (match peek st with '+' | '-' -> advance st | _ -> ());
    if not (is_digit (peek st)) then fail st "digit expected in exponent";
    while is_digit (peek st) do advance st done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | '{' -> parse_obj st
  | '[' -> parse_list st
  | '"' -> String (parse_string_body st)
  | 't' -> expect_keyword st "true" (Bool true)
  | 'f' -> expect_keyword st "false" (Bool false)
  | 'n' -> expect_keyword st "null" Null
  | c when c = '-' || is_digit c -> parse_number st
  | '\255' -> fail st "unexpected end of input"
  | c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = '}' then begin advance st; Obj [] end
  else begin
    let members = ref [] in
    let seen = Hashtbl.create 8 in
    let rec loop () =
      skip_ws st;
      let key = parse_string_body st in
      if Hashtbl.mem seen key then fail st (Printf.sprintf "duplicate key %S" key);
      Hashtbl.add seen key ();
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      members := (key, v) :: !members;
      skip_ws st;
      match peek st with
      | ',' -> advance st; loop ()
      | '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    loop ();
    Obj (List.rev !members)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = ']' then begin advance st; List [] end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | ',' -> advance st; loop ()
      | ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    loop ();
    List (List.rev !items)
  end

let parse src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if eof st then Ok v
    else Error { line = st.line; col = st.pos - st.bol + 1; message = "trailing content" }
  | exception Parse_error e -> Error e

let parse_exn src =
  match parse src with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Json.parse_exn: %s" (error_to_string e))

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error { line = 0; col = 0; message = msg }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_nan f || Float.is_integer f = false && Float.abs f = Float.infinity then
        invalid_arg "Json.to_string: non-finite float"
      else if Float.abs f = Float.infinity then invalid_arg "Json.to_string: non-finite float"
      else Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      if minify then begin
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go depth item)
          items;
        Buffer.add_char buf ']'
      end
      else begin
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
      end
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      if minify then begin
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go depth v)
          members;
        Buffer.add_char buf '}'
      end
      else begin
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          members;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
      end
  in
  go 0 v;
  Buffer.contents buf

let to_file ?minify path v =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string ?minify v);
      Out_channel.output_char oc '\n')

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member key = function
  | Obj members -> (
    match List.assoc_opt key members with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %S" key))
  | v -> Error (Printf.sprintf "expected object for key %S, got %s" key (type_name v))

let member_opt key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, got %s" (type_name v))

let to_int = function
  | Int i -> Ok i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Ok (int_of_float f)
  | v -> Error (Printf.sprintf "expected int, got %s" (type_name v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected number, got %s" (type_name v))

let to_str = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, got %s" (type_name v))

let to_list = function
  | List l -> Ok l
  | v -> Error (Printf.sprintf "expected list, got %s" (type_name v))

let to_obj = function
  | Obj m -> Ok m
  | v -> Error (Printf.sprintf "expected object, got %s" (type_name v))

let keys = function
  | Obj m -> List.map fst m
  | _ -> []

let obj m = Obj m
let list l = List l
let str s = String s
let int i = Int i
let float f = Float f
let bool b = Bool b
