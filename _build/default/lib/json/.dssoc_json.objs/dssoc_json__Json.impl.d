lib/json/json.ml: Buffer Char Float Format Hashtbl In_channel List Out_channel Printf String
