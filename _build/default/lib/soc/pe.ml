type cpu_class = {
  cpu_name : string;
  micro_arch : string;
  freq_mhz : float;
  perf_factor : float;
  busy_w : float;
  idle_w : float;
}

type accel_class = {
  accel_name : string;
  device : string;
  local_mem_bytes : int;
  setup_ns : int;
  per_sample_ns : float;
  dma : Dma.t;
  busy_w : float;
  idle_w : float;
}

type kind = Cpu of cpu_class | Accel of accel_class

let kind_name = function Cpu c -> c.cpu_name | Accel a -> a.accel_name

let busy_w = function Cpu c -> c.busy_w | Accel a -> a.busy_w
let idle_w = function Cpu c -> c.idle_w | Accel a -> a.idle_w

let is_cpu = function Cpu _ -> true | Accel _ -> false

type t = { id : int; kind : kind; label : string }

let make ~id ~kind =
  let label = Printf.sprintf "%s%d" (kind_name kind) id in
  { id; kind; label }

let pp fmt t =
  match t.kind with
  | Cpu c -> Format.fprintf fmt "%s(%s@@%.0fMHz)" t.label c.micro_arch c.freq_mhz
  | Accel a -> Format.fprintf fmt "%s(%s)" t.label a.device

(* Power figures are per-core active/idle estimates in line with
   published Zynq UltraScale+ and Exynos 5422 measurements; they feed
   the energy accounting and the POWER scheduling policy (the paper's
   future-work "power aware heuristics"). *)
let a53 =
  { cpu_name = "cpu"; micro_arch = "Cortex-A53"; freq_mhz = 1200.0; perf_factor = 1.0;
    busy_w = 0.35; idle_w = 0.05 }

let a15_big =
  { cpu_name = "big"; micro_arch = "Cortex-A15"; freq_mhz = 2000.0; perf_factor = 2.6;
    busy_w = 1.60; idle_w = 0.18 }

let a7_little =
  { cpu_name = "little"; micro_arch = "Cortex-A7"; freq_mhz = 1400.0; perf_factor = 0.75;
    busy_w = 0.30; idle_w = 0.04 }

let zynq_fft =
  {
    accel_name = "fft";
    device = "PL FFT (AXI4-Stream)";
    local_mem_bytes = 32 * 1024;
    setup_ns = 2_000;
    per_sample_ns = 15.0;
    dma = Dma.make ~latency_ns:4_000 ~bandwidth_mb_s:400.0;
    busy_w = 0.45;
    idle_w = 0.08;
  }
