lib/soc/dma.ml: Float
