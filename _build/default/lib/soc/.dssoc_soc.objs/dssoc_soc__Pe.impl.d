lib/soc/pe.ml: Dma Format Printf
