lib/soc/cost_model.ml: Dma Float Hashtbl List Pe Printf
