lib/soc/config.ml: Format Hashtbl Host List Option Pe Printf Result String
