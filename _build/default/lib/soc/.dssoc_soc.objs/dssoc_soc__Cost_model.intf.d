lib/soc/cost_model.mli: Pe
