lib/soc/dma.mli:
