lib/soc/config.mli: Format Host Pe
