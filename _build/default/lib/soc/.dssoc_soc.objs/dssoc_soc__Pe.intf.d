lib/soc/pe.mli: Dma Format
