lib/soc/host.ml: Format List Pe Printf String
