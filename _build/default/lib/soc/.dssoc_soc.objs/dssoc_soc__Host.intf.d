lib/soc/host.mli: Format Pe
