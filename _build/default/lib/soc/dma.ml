type t = { latency_ns : int; bandwidth_bytes_per_us : float }

let make ~latency_ns ~bandwidth_mb_s =
  if latency_ns < 0 then invalid_arg "Dma.make: negative latency";
  if bandwidth_mb_s <= 0.0 then invalid_arg "Dma.make: bandwidth must be positive";
  (* 1 MB/s = 1 byte/us. *)
  { latency_ns; bandwidth_bytes_per_us = bandwidth_mb_s }

let transfer_ns t ~bytes =
  if bytes < 0 then invalid_arg "Dma.transfer_ns: negative size";
  t.latency_ns + int_of_float (Float.round (float_of_int bytes /. t.bandwidth_bytes_per_us *. 1e3))

let round_trip_ns t ~bytes_in ~bytes_out =
  transfer_ns t ~bytes:bytes_in + transfer_ns t ~bytes:bytes_out
