(** Host (COTS) platform description.

    The emulation framework runs on a commercial SoC and builds
    hypothetical DSSoC configurations out of its real cores plus
    attached accelerators.  One host core is reserved as the *overlay*
    processor running the application handler and workload manager;
    the remaining cores form the resource pool (Section III-B). *)

type core = {
  core_id : int;
  core_class : Pe.cpu_class;
  quantum_ns : int;  (** round-robin timeslice when threads share the core *)
  ctx_switch_ns : int;  (** cost charged at each preemption *)
}

type t = {
  name : string;
  overlay : core;  (** runs application handler + workload manager *)
  pool : core list;  (** resource-pool cores, in allocation order *)
  accel_slots : Pe.accel_class list;
      (** accelerator classes this host can instantiate (e.g. PL FFTs);
          slots bound how many can exist in one configuration *)
}

val zcu102 : t
(** Zynq UltraScale+ MPSoC: 4x Cortex-A53; core 0 is the overlay, cores
    1-3 the pool; two PL FFT accelerator slots (Section III-B). *)

val odroid_xu3 : t
(** Exynos 5422: one Cortex-A7 LITTLE overlay, pool of 4x A15 big then
    3x A7 LITTLE; no accelerator slots. *)

val pool_size : t -> int

val pp : Format.formatter -> t -> unit
