(** Processing-element classes and instances.

    A DSSoC configuration instantiates PEs drawn from two families:
    general-purpose CPU cores (identified to the scheduler by the
    platform name ["cpu"], or ["big"]/["little"] on Odroid) and
    fixed-function accelerators (["fft"]).  Application DAG nodes list
    which PE names they support (the [platforms] key of Listing 1). *)

type cpu_class = {
  cpu_name : string;  (** scheduler-visible platform name, e.g. "cpu", "big", "little" *)
  micro_arch : string;  (** descriptive, e.g. "Cortex-A53" *)
  freq_mhz : float;
  perf_factor : float;
      (** execution-speed multiplier relative to the calibration
          reference core (ZCU102 Cortex-A53 @ 1200 MHz = 1.0); kernel
          base costs are divided by this *)
  busy_w : float;  (** active power draw (W) while executing a task *)
  idle_w : float;  (** idle power draw (W) *)
}

type accel_class = {
  accel_name : string;  (** scheduler-visible platform name, e.g. "fft" *)
  device : string;  (** descriptive, e.g. "PL FFT (AXI4-Stream)" *)
  local_mem_bytes : int;  (** BRAM capacity; transfers beyond it are chunked *)
  setup_ns : int;  (** per-invocation device programming cost *)
  per_sample_ns : float;  (** streaming compute cost per complex sample *)
  dma : Dma.t;
  busy_w : float;  (** device power while processing *)
  idle_w : float;  (** static fabric power *)
}

type kind = Cpu of cpu_class | Accel of accel_class

val kind_name : kind -> string
(** Scheduler-visible platform name of the class. *)

val busy_w : kind -> float
val idle_w : kind -> float
(** Power figures of the class, for the energy accounting and the
    power-aware scheduling extension. *)

val is_cpu : kind -> bool

type t = {
  id : int;  (** dense index within a configuration *)
  kind : kind;
  label : string;  (** e.g. "cpu0", "fft1" *)
}

val make : id:int -> kind:kind -> t

val pp : Format.formatter -> t -> unit

(** {1 Built-in classes} *)

val a53 : cpu_class
(** ZCU102 Cortex-A53 @ 1200 MHz — the calibration reference. *)

val a15_big : cpu_class
(** Odroid XU3 Cortex-A15 @ 2000 MHz (platform name "big"). *)

val a7_little : cpu_class
(** Odroid XU3 Cortex-A7 @ 1400 MHz (platform name "little"). *)

val zynq_fft : accel_class
(** ZCU102 programmable-logic FFT with AXI DMA, calibrated so that a
    128-point transform loses to an A53 core once both DMA directions
    are counted (Case Study 1) while larger transforms win. *)
