type core = {
  core_id : int;
  core_class : Pe.cpu_class;
  quantum_ns : int;
  ctx_switch_ns : int;
}

type t = {
  name : string;
  overlay : core;
  pool : core list;
  accel_slots : Pe.accel_class list;
}

(* Linux CFS-scale timeslices; the context-switch figure folds in cache
   disturbance, which is why two accelerator-manager threads sharing a
   core visibly hurt (Fig. 9, 2Core+2FFT). *)
let mk_core ~id ~cls = { core_id = id; core_class = cls; quantum_ns = 100_000; ctx_switch_ns = 25_000 }

let zcu102 =
  {
    name = "ZCU102";
    overlay = mk_core ~id:0 ~cls:Pe.a53;
    pool = List.map (fun id -> mk_core ~id ~cls:Pe.a53) [ 1; 2; 3 ];
    accel_slots = [ Pe.zynq_fft; Pe.zynq_fft ];
  }

let odroid_xu3 =
  {
    name = "Odroid-XU3";
    overlay = mk_core ~id:0 ~cls:Pe.a7_little;
    pool =
      List.map (fun id -> mk_core ~id ~cls:Pe.a15_big) [ 1; 2; 3; 4 ]
      @ List.map (fun id -> mk_core ~id ~cls:Pe.a7_little) [ 5; 6; 7 ];
    accel_slots = [];
  }

let pool_size t = List.length t.pool

let pp fmt t =
  Format.fprintf fmt "%s: overlay %s, pool [%s], %d accel slot(s)" t.name
    t.overlay.core_class.Pe.micro_arch
    (String.concat "; "
       (List.map (fun c -> Printf.sprintf "%d:%s" c.core_id c.core_class.Pe.micro_arch) t.pool))
    (List.length t.accel_slots)
