(** Application archetypes: the JSON-described DAG applications of
    Listing 1, plus validation and graph utilities.

    Schema (keys exactly as in the paper):

    {v
    { "AppName": "...", "SharedObject": "....so",
      "Variables": { name: { "bytes": int, "is_ptr": bool,
                             "ptr_alloc_bytes": int, "val": [int...] } },
      "DAG": { node: { "arguments": [var...],
                       "predecessors": [node...],
                       "successors": [node...],
                       "platforms": [ { "name": pe, "runfunc": sym,
                                        "shared_object"?: "....so",
                                        "cost_us"?: float } ],
                       "kernel"?: string, "size"?: int,
                       "bytes_in"?: int, "bytes_out"?: int } } }
    v}

    The [kernel]/[size]/[bytes_in]/[bytes_out] keys are this
    implementation's encoding of the "execution time cost on supported
    platforms" and "communication costs (data transfer volumes)" the
    paper says each DAG carries; [cost_us] lets a platform entry pin an
    explicit measured time that overrides the cost model. *)

type platform_entry = {
  platform : string;  (** PE class name: "cpu", "fft", "big", "little", ... *)
  runfunc : string;  (** symbol looked up in the shared object *)
  shared_object : string option;  (** per-entry override (e.g. "fft_accel.so") *)
  cost_us : float option;  (** explicit execution-time override *)
}

type node = {
  node_name : string;
  arguments : string list;
  predecessors : string list;
  successors : string list;
  platforms : platform_entry list;
  kernel_class : string;  (** cost-model key; defaults to "generic" *)
  size : int;  (** problem size n for the cost model; defaults to 1 *)
  bytes_in : int;  (** DMA volume to an accelerator (0 = derive from arguments) *)
  bytes_out : int;
}

type t = {
  app_name : string;
  shared_object : string;
  variables : (string * Store.var_spec) list;
  nodes : node list;  (** stored in declaration order *)
}

(** {1 Construction and validation} *)

val validate : t -> (t, string) result
(** Checks: nonempty, unique node names, predecessors/successors refer
    to existing nodes and are mutually consistent, node arguments refer
    to declared variables, every node has at least one platform entry,
    and the graph is acyclic. *)

val of_edges :
  app_name:string ->
  shared_object:string ->
  variables:(string * Store.var_spec) list ->
  nodes:node list ->
  t
(** Builder that fills [successors] automatically from [predecessors]
    (whatever was supplied in [successors] is ignored) and validates.
    @raise Invalid_argument when validation fails. *)

val node : t -> string -> node
(** @raise Not_found. *)

val entry_nodes : t -> node list
(** Nodes with no predecessors (injected when an instance arrives). *)

val topological_order : t -> node list
(** Stable topological order (declaration order among ready peers). *)

val critical_path_length : t -> int
(** Number of nodes on the longest dependency chain. *)

val task_count : t -> int

(** {1 JSON} *)

val of_json : Dssoc_json.Json.t -> (t, string) result
val to_json : t -> Dssoc_json.Json.t
(** [of_json (to_json t) = Ok t]. *)

val of_file : string -> (t, string) result
val to_file : string -> t -> unit
