type kernel = Store.t -> string list -> unit

let registry : (string, (string, kernel) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let register_object name syms =
  let tbl =
    match Hashtbl.find_opt registry name with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace registry name tbl;
      tbl
  in
  List.iter (fun (sym, k) -> Hashtbl.replace tbl sym k) syms

let lookup ~shared_object ~symbol =
  match Hashtbl.find_opt registry shared_object with
  | None -> Error (Printf.sprintf "shared object %S is not registered" shared_object)
  | Some tbl -> (
    match Hashtbl.find_opt tbl symbol with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "symbol %S not found in %S" symbol shared_object))

let lookup_exn ~shared_object ~symbol =
  match lookup ~shared_object ~symbol with
  | Ok k -> k
  | Error msg -> invalid_arg (Printf.sprintf "Kernels.lookup_exn: %s" msg)

let objects () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let symbols name =
  match Hashtbl.find_opt registry name with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let resolve ~(app : App_spec.t) ~(node : App_spec.node) ~(platform : App_spec.platform_entry) =
  ignore node;
  let shared_object =
    Option.value platform.App_spec.shared_object ~default:app.App_spec.shared_object
  in
  lookup ~shared_object ~symbol:platform.App_spec.runfunc
