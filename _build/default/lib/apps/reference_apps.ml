module Cbuf = Dssoc_dsp.Cbuf
module Fft = Dssoc_dsp.Fft
module Radar = Dssoc_dsp.Radar
module Scrambler = Dssoc_dsp.Scrambler
module Conv_code = Dssoc_dsp.Conv_code
module Viterbi = Dssoc_dsp.Viterbi
module Interleaver = Dssoc_dsp.Interleaver
module Modulation = Dssoc_dsp.Modulation
module Crc = Dssoc_dsp.Crc
module Window = Dssoc_dsp.Window
module Prng = Dssoc_util.Prng

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)
(* ------------------------------------------------------------------ *)

module Truth = struct
  let rd_n_samples = 256
  let rd_fft_size = 512
  let rd_echo_delay = 37
  let pd_n_samples = 128
  let pd_n_pulses = 256
  let pd_range_bin = 50
  let pd_doppler_bin = 64
  let pd_prf = 10_000.0
  let pd_carrier_hz = 1.0e9

  let pd_velocity =
    Radar.doppler_velocity ~peak_bin:pd_doppler_bin ~n_pulses:pd_n_pulses ~prf:pd_prf
      ~carrier_hz:pd_carrier_hz

  let wifi_payload =
    (* Deterministic 64-bit payload drawn from a fixed-seed stream. *)
    let g = Prng.create ~seed:0x57F1L in
    Array.init 64 (fun _ -> Prng.bool g)

  let wifi_scramble_seed = 93
  let wifi_fft_size = 128
  let wifi_data_bits = 96
end

(* ------------------------------------------------------------------ *)
(* Variable-spec helpers                                               *)
(* ------------------------------------------------------------------ *)

let le32 v = [ v land 0xFF; (v lsr 8) land 0xFF; (v lsr 16) land 0xFF; (v lsr 24) land 0xFF ]

let f32_bytes f = le32 (Int32.to_int (Int32.logand (Int32.bits_of_float f) 0xFFFFFFFFl))

let cbuf_init buf =
  let out = ref [] in
  for i = Cbuf.length buf - 1 downto 0 do
    let re, im = Cbuf.get buf i in
    out := f32_bytes re @ f32_bytes im @ !out
  done;
  !out

let bits_init bits = Array.to_list (Array.map (fun b -> if b then 1 else 0) bits)

let i32_var v : Store.var_spec = { bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = le32 v }
let f32_var v : Store.var_spec = { bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = f32_bytes v }

let ptr_var ?(init = []) alloc : Store.var_spec =
  { bytes = 8; is_ptr = true; ptr_alloc_bytes = alloc; init }

(* Platform-entry helpers.  The generic platform name "cpu" matches any
   CPU-class PE at dispatch time (so the same JSON runs on ZCU102 A53s
   and Odroid big/LITTLE clusters, as in Case Study 3). *)
let cpu e : App_spec.platform_entry =
  { platform = "cpu"; runfunc = e; shared_object = None; cost_us = None }

let accel e : App_spec.platform_entry =
  { platform = "fft"; runfunc = e; shared_object = Some "fft_accel.so"; cost_us = None }

let mk_node ?(kernel = "generic") ?(size = 1) ?(bytes_in = 0) ?(bytes_out = 0) ~args ~preds
    ~platforms name : App_spec.node =
  {
    App_spec.node_name = name;
    arguments = args;
    predecessors = preds;
    successors = [];
    platforms;
    kernel_class = kernel;
    size;
    bytes_in;
    bytes_out;
  }

(* ------------------------------------------------------------------ *)
(* Range detection (Listing 1 / Fig. 2)                                *)
(* ------------------------------------------------------------------ *)

let rd_sample_rate = 1.0e6
let rd_bandwidth = 0.4e6

let rd_reference_waveform () =
  Radar.lfm_chirp ~n:Truth.rd_n_samples ~bandwidth:rd_bandwidth ~sample_rate:rd_sample_rate

let rd_received () =
  Radar.delayed_echo None ~waveform:(rd_reference_waveform ())
    ~total:Truth.rd_n_samples ~delay:Truth.rd_echo_delay ~attenuation:0.6 ~noise_sigma:0.0

let pad_to n buf =
  let out = Cbuf.create n in
  let m = min n (Cbuf.length buf) in
  Array.blit buf.Cbuf.re 0 out.Cbuf.re 0 m;
  Array.blit buf.Cbuf.im 0 out.Cbuf.im 0 m;
  out

let rd_fft_kernel ~src ~dst store args =
  ignore args;
  let x = Store.get_cbuf store src in
  Store.set_cbuf store dst (Fft.fft (pad_to Truth.rd_fft_size x))

let register_range_detection_kernels () =
  let open Kernels in
  let lfm store _args =
    let n = Store.get_i32 store "n_samples" in
    Store.set_cbuf store "lfm_waveform"
      (Radar.lfm_chirp ~n ~bandwidth:rd_bandwidth ~sample_rate:rd_sample_rate)
  in
  let fft_0 = rd_fft_kernel ~src:"rx" ~dst:"X1" in
  let fft_1 = rd_fft_kernel ~src:"lfm_waveform" ~dst:"X2" in
  let mul store _args =
    let x1 = Store.get_cbuf store "X1" and x2 = Store.get_cbuf store "X2" in
    Store.set_cbuf store "corr" (Cbuf.mul_pointwise x1 (Cbuf.conj x2))
  in
  let ifft store _args = Store.set_cbuf store "corr" (Fft.ifft (Store.get_cbuf store "corr")) in
  let max_k store _args =
    let corr = Store.get_cbuf store "corr" in
    let idx, mag = Radar.peak corr in
    let lag = if idx > Truth.rd_fft_size / 2 then idx - Truth.rd_fft_size else idx in
    Store.set_i32 store "index" idx;
    Store.set_f32 store "max_corr" mag;
    Store.set_i32 store "lag" lag
  in
  register_object "range_detection.so"
    [
      ("range_detect_LFM", lfm);
      ("range_detect_FFT_0_CPU", fft_0);
      ("range_detect_FFT_1_CPU", fft_1);
      ("range_detect_MUL", mul);
      ("range_detect_IFFT_CPU", ifft);
      ("range_detect_MAX", max_k);
    ];
  register_object "fft_accel.so"
    [
      ("range_detect_FFT_0_ACCEL", fft_0);
      ("range_detect_FFT_1_ACCEL", fft_1);
      ("range_detect_IFFT_ACCEL", ifft);
    ]

let range_detection () =
  register_range_detection_kernels ();
  let n = Truth.rd_n_samples and nf = Truth.rd_fft_size in
  let cbytes k = 8 * k in
  let variables =
    [
      ("n_samples", i32_var n);
      ("sampling_rate", f32_var rd_sample_rate);
      ("lfm_waveform", ptr_var (cbytes n));
      ("rx", ptr_var (cbytes n) ~init:(cbuf_init (rd_received ())));
      ("X1", ptr_var (cbytes nf));
      ("X2", ptr_var (cbytes nf));
      ("corr", ptr_var (cbytes nf));
      ("index", i32_var 0);
      ("max_corr", f32_var 0.0);
      ("lag", i32_var 0);
    ]
  in
  let nodes =
    [
      mk_node "LFM" ~kernel:"lfm_gen" ~size:n
        ~args:[ "n_samples"; "lfm_waveform" ]
        ~preds:[]
        ~platforms:[ cpu "range_detect_LFM" ];
      mk_node "FFT_0" ~kernel:"fft" ~size:nf ~bytes_in:(cbytes nf) ~bytes_out:(cbytes nf)
        ~args:[ "n_samples"; "rx"; "X1" ]
        ~preds:[]
        ~platforms:[ cpu "range_detect_FFT_0_CPU"; accel "range_detect_FFT_0_ACCEL" ];
      mk_node "FFT_1" ~kernel:"fft" ~size:nf ~bytes_in:(cbytes nf) ~bytes_out:(cbytes nf)
        ~args:[ "n_samples"; "lfm_waveform"; "X2" ]
        ~preds:[ "LFM" ]
        ~platforms:[ cpu "range_detect_FFT_1_CPU"; accel "range_detect_FFT_1_ACCEL" ];
      mk_node "MUL" ~kernel:"vec_mul" ~size:nf
        ~args:[ "n_samples"; "X1"; "X2"; "corr" ]
        ~preds:[ "FFT_0"; "FFT_1" ]
        ~platforms:[ cpu "range_detect_MUL" ];
      mk_node "IFFT" ~kernel:"ifft" ~size:nf ~bytes_in:(cbytes nf) ~bytes_out:(cbytes nf)
        ~args:[ "n_samples"; "corr" ]
        ~preds:[ "MUL" ]
        ~platforms:[ cpu "range_detect_IFFT_CPU"; accel "range_detect_IFFT_ACCEL" ];
      mk_node "MAX" ~kernel:"peak_max" ~size:nf
        ~args:[ "n_samples"; "corr"; "index"; "max_corr"; "lag"; "sampling_rate" ]
        ~preds:[ "IFFT" ]
        ~platforms:[ cpu "range_detect_MAX" ];
    ]
  in
  App_spec.of_edges ~app_name:"range_detection" ~shared_object:"range_detection.so" ~variables
    ~nodes

(* ------------------------------------------------------------------ *)
(* Pulse Doppler (Fig. 8): 1 GEN + 256 x (FFT, MUL, IFFT) + 1 DOP      *)
(* ------------------------------------------------------------------ *)

let pd_pulse_slice store name p =
  Store.get_cbuf_slice store name ~off:(p * Truth.pd_n_samples) ~len:Truth.pd_n_samples

let pd_store_slice store name p buf =
  Store.set_cbuf_slice store name ~off:(p * Truth.pd_n_samples) buf

let pd_reference () =
  Radar.lfm_chirp ~n:Truth.pd_n_samples ~bandwidth:0.4e6 ~sample_rate:1.0e6

let register_pulse_doppler_kernels () =
  let open Kernels in
  let n = Truth.pd_n_samples and m = Truth.pd_n_pulses in
  let gen store _args =
    let reference = pd_reference () in
    Store.set_cbuf store "ref_fft" (Cbuf.conj (Fft.fft reference));
    let all = Cbuf.create (m * n) in
    (* Target echo at range bin pd_range_bin; slow-time phase advances
       by 2*pi*doppler_bin/m per pulse, landing the Doppler FFT peak on
       pd_doppler_bin exactly. *)
    let phase_step = 2.0 *. Float.pi *. float_of_int Truth.pd_doppler_bin /. float_of_int m in
    for p = 0 to m - 1 do
      let phase = phase_step *. float_of_int p in
      let c = cos phase and s = sin phase in
      (* Echo truncated at the pulse end (delay + chirp may overrun). *)
      let len = min (n - Truth.pd_range_bin) n in
      for i = 0 to len - 1 do
        let re = 0.8 *. reference.Cbuf.re.(i) and im = 0.8 *. reference.Cbuf.im.(i) in
        all.Cbuf.re.(((p * n) + Truth.pd_range_bin + i)) <- (re *. c) -. (im *. s);
        all.Cbuf.im.(((p * n) + Truth.pd_range_bin + i)) <- (re *. s) +. (im *. c)
      done
    done;
    Store.set_cbuf store "rx_all" all
  in
  let fft_p p store _args = pd_store_slice store "x_all" p (Fft.fft (pd_pulse_slice store "rx_all" p)) in
  let mul_p p store _args =
    let x = pd_pulse_slice store "x_all" p in
    let r = Store.get_cbuf store "ref_fft" in
    pd_store_slice store "corr_all" p (Cbuf.mul_pointwise x r)
  in
  let ifft_p p store _args = pd_store_slice store "corr_all" p (Fft.ifft (pd_pulse_slice store "corr_all" p)) in
  let dop store _args =
    (* Non-coherent integration across pulses to find the range bin. *)
    let acc = Array.make n 0.0 in
    for p = 0 to m - 1 do
      let c = pd_pulse_slice store "corr_all" p in
      let pw = Cbuf.power c in
      for i = 0 to n - 1 do acc.(i) <- acc.(i) +. pw.(i) done
    done;
    let range_bin = ref 0 in
    for i = 1 to n - 1 do
      if acc.(i) > acc.(!range_bin) then range_bin := i
    done;
    (* Slow-time FFT at the detected range bin. *)
    let pulses = Array.init m (fun p -> pd_pulse_slice store "corr_all" p) in
    let slow = Radar.doppler_bins pulses ~bin:!range_bin in
    let spectrum = Fft.fft (Window.apply Window.Rectangular slow) in
    let dbin, _ = Radar.peak spectrum in
    let prf = Store.get_f32 store "prf" and carrier = Store.get_f32 store "carrier" in
    Store.set_i32 store "range_bin" !range_bin;
    Store.set_i32 store "doppler_bin" dbin;
    Store.set_f32 store "velocity"
      (Radar.doppler_velocity ~peak_bin:dbin ~n_pulses:m ~prf ~carrier_hz:carrier)
  in
  let cpu_syms =
    ("pd_GEN", gen) :: ("pd_DOP", dop)
    :: List.concat
         (List.init m (fun p ->
              [
                (Printf.sprintf "pd_FFT_%d_CPU" p, fft_p p);
                (Printf.sprintf "pd_MUL_%d" p, mul_p p);
                (Printf.sprintf "pd_IFFT_%d_CPU" p, ifft_p p);
              ]))
  in
  register_object "pulse_doppler.so" cpu_syms;
  register_object "fft_accel.so"
    (List.concat
       (List.init m (fun p ->
            [
              (Printf.sprintf "pd_FFT_%d_ACCEL" p, fft_p p);
              (Printf.sprintf "pd_IFFT_%d_ACCEL" p, ifft_p p);
            ])))

let pulse_doppler () =
  register_pulse_doppler_kernels ();
  let n = Truth.pd_n_samples and m = Truth.pd_n_pulses in
  let cbytes k = 8 * k in
  let variables =
    [
      ("n_samples", i32_var n);
      ("n_pulses", i32_var m);
      ("prf", f32_var Truth.pd_prf);
      ("carrier", f32_var Truth.pd_carrier_hz);
      ("ref_fft", ptr_var (cbytes n));
      ("rx_all", ptr_var (cbytes (m * n)));
      ("x_all", ptr_var (cbytes (m * n)));
      ("corr_all", ptr_var (cbytes (m * n)));
      ("range_bin", i32_var 0);
      ("doppler_bin", i32_var 0);
      ("velocity", f32_var 0.0);
    ]
  in
  let gen_node =
    mk_node "GEN" ~kernel:"pd_gen" ~size:(m * n)
      ~args:[ "n_samples"; "n_pulses"; "ref_fft"; "rx_all" ]
      ~preds:[]
      ~platforms:[ cpu "pd_GEN" ]
  in
  let pulse_nodes =
    List.concat
      (List.init m (fun p ->
           let fft_name = Printf.sprintf "FFT_%d" p
           and mul_name = Printf.sprintf "MUL_%d" p
           and ifft_name = Printf.sprintf "IFFT_%d" p in
           [
             mk_node fft_name ~kernel:"fft" ~size:n ~bytes_in:(cbytes n) ~bytes_out:(cbytes n)
               ~args:[ "n_samples"; "rx_all"; "x_all" ]
               ~preds:[ "GEN" ]
               ~platforms:
                 [ cpu (Printf.sprintf "pd_FFT_%d_CPU" p); accel (Printf.sprintf "pd_FFT_%d_ACCEL" p) ];
             mk_node mul_name ~kernel:"vec_mul" ~size:n
               ~args:[ "n_samples"; "x_all"; "ref_fft"; "corr_all" ]
               ~preds:[ fft_name ]
               ~platforms:[ cpu (Printf.sprintf "pd_MUL_%d" p) ];
             mk_node ifft_name ~kernel:"ifft" ~size:n ~bytes_in:(cbytes n) ~bytes_out:(cbytes n)
               ~args:[ "n_samples"; "corr_all" ]
               ~preds:[ mul_name ]
               ~platforms:
                 [ cpu (Printf.sprintf "pd_IFFT_%d_CPU" p); accel (Printf.sprintf "pd_IFFT_%d_ACCEL" p) ];
           ]))
  in
  let dop_node =
    mk_node "DOP" ~kernel:"doppler_proc" ~size:m
      ~args:
        [ "n_samples"; "n_pulses"; "prf"; "carrier"; "corr_all"; "range_bin"; "doppler_bin"; "velocity" ]
      ~preds:(List.init m (Printf.sprintf "IFFT_%d"))
      ~platforms:[ cpu "pd_DOP" ]
  in
  App_spec.of_edges ~app_name:"pulse_doppler" ~shared_object:"pulse_doppler.so" ~variables
    ~nodes:((gen_node :: pulse_nodes) @ [ dop_node ])

(* ------------------------------------------------------------------ *)
(* WiFi TX / RX (Fig. 7)                                               *)
(* ------------------------------------------------------------------ *)

let wifi_rows = 4
let wifi_coded_bits = Conv_code.encoded_length Truth.wifi_data_bits (* 204 *)
let wifi_symbols = wifi_coded_bits / 2 (* 102 QPSK symbols *)

(* OFDM grid: pilots (1+0i) at bins 0 and 64; data on bins 1..51 and
   77..127; the rest are guard bins. *)
let data_bins =
  Array.append (Array.init 51 (fun i -> i + 1)) (Array.init 51 (fun i -> i + 77))

let pilot_bins = [| 0; 64 |]

let pilot_insert symbols =
  let grid = Cbuf.create Truth.wifi_fft_size in
  Array.iter (fun b -> Cbuf.set grid b 1.0 0.0) pilot_bins;
  Array.iteri
    (fun i b ->
      let re, im = Cbuf.get symbols i in
      Cbuf.set grid b re im)
    data_bins;
  grid

let pilot_remove grid =
  let out = Cbuf.create wifi_symbols in
  Array.iteri
    (fun i b ->
      let re, im = Cbuf.get grid b in
      Cbuf.set out i re im)
    data_bins;
  out

let channel_estimate grid =
  (* Average received pilot value; transmitted pilots are 1+0i. *)
  let acc_re = ref 0.0 and acc_im = ref 0.0 in
  Array.iter
    (fun b ->
      let re, im = Cbuf.get grid b in
      acc_re := !acc_re +. re;
      acc_im := !acc_im +. im)
    pilot_bins;
  let k = float_of_int (Array.length pilot_bins) in
  (!acc_re /. k, !acc_im /. k)

let tx_chain payload =
  let framed = Crc.append_bits payload in
  let scrambled = Scrambler.run ~seed:Truth.wifi_scramble_seed framed in
  let coded = Conv_code.encode scrambled in
  let interleaved = Interleaver.interleave ~rows:wifi_rows coded in
  let symbols = Modulation.modulate Modulation.Qpsk interleaved in
  Fft.ifft (pilot_insert symbols)

let register_wifi_kernels () =
  let open Kernels in
  (* --- TX --- *)
  let crc store _ =
    Store.set_bits store "framed" (Crc.append_bits (Array.sub (Store.get_bits store "payload") 0 64))
  in
  let scramble store _ =
    let seed = Store.get_i32 store "scramble_seed" in
    Store.set_bits store "scrambled" (Scrambler.run ~seed (Store.get_bits store "framed"))
  in
  let encode store _ = Store.set_bits store "coded" (Conv_code.encode (Store.get_bits store "scrambled")) in
  let interleave store _ =
    Store.set_bits store "interleaved" (Interleaver.interleave ~rows:wifi_rows (Store.get_bits store "coded"))
  in
  let modulate store _ =
    Store.set_cbuf store "symbols" (Modulation.modulate Modulation.Qpsk (Store.get_bits store "interleaved"))
  in
  let pilot store _ = Store.set_cbuf store "grid" (pilot_insert (Store.get_cbuf store "symbols")) in
  let ifft store _ = Store.set_cbuf store "tx_time" (Fft.ifft (Store.get_cbuf store "grid")) in
  register_object "wifi_tx.so"
    [
      ("wifi_tx_CRC", crc);
      ("wifi_tx_SCRAMBLE", scramble);
      ("wifi_tx_ENCODE", encode);
      ("wifi_tx_INTERLEAVE", interleave);
      ("wifi_tx_MODULATE", modulate);
      ("wifi_tx_PILOT", pilot);
      ("wifi_tx_IFFT_CPU", ifft);
    ];
  register_object "fft_accel.so" [ ("wifi_tx_IFFT_ACCEL", ifft) ];
  (* --- RX --- *)
  let sync store _ =
    (* Frame detection: verify signal energy and pass the samples on. *)
    let x = Store.get_cbuf store "rx_time" in
    ignore (Cbuf.energy x);
    Store.set_cbuf store "rx_time" x
  in
  let rx_fft store _ = Store.set_cbuf store "freq" (Fft.fft (Store.get_cbuf store "rx_time")) in
  let pilot_rm store _ = Store.set_cbuf store "symbols" (pilot_remove (Store.get_cbuf store "freq")) in
  let equalize store _ =
    let h_re, h_im = channel_estimate (Store.get_cbuf store "freq") in
    let denom = (h_re *. h_re) +. (h_im *. h_im) in
    let syms = Store.get_cbuf store "symbols" in
    let out = Cbuf.create (Cbuf.length syms) in
    for i = 0 to Cbuf.length syms - 1 do
      let re, im = Cbuf.get syms i in
      Cbuf.set out i
        (((re *. h_re) +. (im *. h_im)) /. denom)
        (((im *. h_re) -. (re *. h_im)) /. denom)
    done;
    Store.set_cbuf store "eq_symbols" out
  in
  let demod store _ =
    Store.set_bits store "demod_bits" (Modulation.demodulate Modulation.Qpsk (Store.get_cbuf store "eq_symbols"))
  in
  let deinterleave store _ =
    Store.set_bits store "deint" (Interleaver.deinterleave ~rows:wifi_rows (Store.get_bits store "demod_bits"))
  in
  let viterbi store _ =
    Store.set_bits store "decoded"
      (Viterbi.decode ~message_length:Truth.wifi_data_bits (Store.get_bits store "deint"))
  in
  let descramble store _ =
    let seed = Store.get_i32 store "scramble_seed" in
    Store.set_bits store "descrambled" (Scrambler.descramble ~seed (Store.get_bits store "decoded"))
  in
  let crc_check store _ =
    let framed = Store.get_bits store "descrambled" in
    Store.set_bits store "payload_out" (Array.sub framed 0 64);
    Store.set_i32 store "crc_ok" (if Crc.check_bits framed then 1 else 0)
  in
  register_object "wifi_rx.so"
    [
      ("wifi_rx_SYNC", sync);
      ("wifi_rx_FFT_CPU", rx_fft);
      ("wifi_rx_PILOT_RM", pilot_rm);
      ("wifi_rx_EQUALIZE", equalize);
      ("wifi_rx_DEMOD", demod);
      ("wifi_rx_DEINTERLEAVE", deinterleave);
      ("wifi_rx_VITERBI", viterbi);
      ("wifi_rx_DESCRAMBLE", descramble);
      ("wifi_rx_CRC_CHECK", crc_check);
    ];
  register_object "fft_accel.so" [ ("wifi_rx_FFT_ACCEL", rx_fft) ]

let wifi_tx () =
  register_wifi_kernels ();
  let cbytes k = 8 * k in
  let variables =
    [
      ("scramble_seed", i32_var Truth.wifi_scramble_seed);
      ("payload", ptr_var 64 ~init:(bits_init Truth.wifi_payload));
      ("framed", ptr_var Truth.wifi_data_bits);
      ("scrambled", ptr_var Truth.wifi_data_bits);
      ("coded", ptr_var wifi_coded_bits);
      ("interleaved", ptr_var wifi_coded_bits);
      ("symbols", ptr_var (cbytes wifi_symbols));
      ("grid", ptr_var (cbytes Truth.wifi_fft_size));
      ("tx_time", ptr_var (cbytes Truth.wifi_fft_size));
    ]
  in
  let chain = [
    ("CRC", "crc32", 64, [ "payload"; "framed" ], "wifi_tx_CRC");
    ("SCRAMBLE", "scramble", Truth.wifi_data_bits, [ "scramble_seed"; "framed"; "scrambled" ], "wifi_tx_SCRAMBLE");
    ("ENCODE", "conv_encode", Truth.wifi_data_bits, [ "scrambled"; "coded" ], "wifi_tx_ENCODE");
    ("INTERLEAVE", "interleave", wifi_coded_bits, [ "coded"; "interleaved" ], "wifi_tx_INTERLEAVE");
    ("MODULATE", "modulate", wifi_coded_bits, [ "interleaved"; "symbols" ], "wifi_tx_MODULATE");
    ("PILOT", "pilot_insert", wifi_symbols, [ "symbols"; "grid" ], "wifi_tx_PILOT");
  ] in
  let rec build prev = function
    | [] -> []
    | (name, kernel, size, args, sym) :: rest ->
      mk_node name ~kernel ~size ~args ~preds:(match prev with None -> [] | Some p -> [ p ])
        ~platforms:[ cpu sym ]
      :: build (Some name) rest
  in
  let nodes = build None chain in
  let ifft_node =
    mk_node "IFFT" ~kernel:"ifft" ~size:Truth.wifi_fft_size
      ~bytes_in:(cbytes Truth.wifi_fft_size) ~bytes_out:(cbytes Truth.wifi_fft_size)
      ~args:[ "grid"; "tx_time" ]
      ~preds:[ "PILOT" ]
      ~platforms:[ cpu "wifi_tx_IFFT_CPU"; accel "wifi_tx_IFFT_ACCEL" ]
  in
  App_spec.of_edges ~app_name:"wifi_tx" ~shared_object:"wifi_tx.so" ~variables
    ~nodes:(nodes @ [ ifft_node ])

let wifi_rx () =
  register_wifi_kernels ();
  let cbytes k = 8 * k in
  let rx_time = tx_chain Truth.wifi_payload in
  let variables =
    [
      ("scramble_seed", i32_var Truth.wifi_scramble_seed);
      ("rx_time", ptr_var (cbytes Truth.wifi_fft_size) ~init:(cbuf_init rx_time));
      ("freq", ptr_var (cbytes Truth.wifi_fft_size));
      ("symbols", ptr_var (cbytes wifi_symbols));
      ("eq_symbols", ptr_var (cbytes wifi_symbols));
      ("demod_bits", ptr_var wifi_coded_bits);
      ("deint", ptr_var wifi_coded_bits);
      ("decoded", ptr_var Truth.wifi_data_bits);
      ("descrambled", ptr_var Truth.wifi_data_bits);
      ("payload_out", ptr_var 64);
      ("crc_ok", i32_var 0);
    ]
  in
  let nodes =
    [
      mk_node "SYNC" ~kernel:"sync_detect" ~size:Truth.wifi_fft_size
        ~args:[ "rx_time" ] ~preds:[]
        ~platforms:[ cpu "wifi_rx_SYNC" ];
      mk_node "FFT" ~kernel:"fft" ~size:Truth.wifi_fft_size
        ~bytes_in:(cbytes Truth.wifi_fft_size) ~bytes_out:(cbytes Truth.wifi_fft_size)
        ~args:[ "rx_time"; "freq" ] ~preds:[ "SYNC" ]
        ~platforms:[ cpu "wifi_rx_FFT_CPU"; accel "wifi_rx_FFT_ACCEL" ];
      mk_node "PILOT_RM" ~kernel:"pilot_remove" ~size:wifi_symbols
        ~args:[ "freq"; "symbols" ] ~preds:[ "FFT" ]
        ~platforms:[ cpu "wifi_rx_PILOT_RM" ];
      mk_node "EQUALIZE" ~kernel:"equalize" ~size:wifi_symbols
        ~args:[ "freq"; "symbols"; "eq_symbols" ] ~preds:[ "PILOT_RM" ]
        ~platforms:[ cpu "wifi_rx_EQUALIZE" ];
      mk_node "DEMOD" ~kernel:"demodulate" ~size:wifi_coded_bits
        ~args:[ "eq_symbols"; "demod_bits" ] ~preds:[ "EQUALIZE" ]
        ~platforms:[ cpu "wifi_rx_DEMOD" ];
      mk_node "DEINTERLEAVE" ~kernel:"interleave" ~size:wifi_coded_bits
        ~args:[ "demod_bits"; "deint" ] ~preds:[ "DEMOD" ]
        ~platforms:[ cpu "wifi_rx_DEINTERLEAVE" ];
      mk_node "VITERBI" ~kernel:"viterbi" ~size:Truth.wifi_data_bits
        ~args:[ "deint"; "decoded" ] ~preds:[ "DEINTERLEAVE" ]
        ~platforms:[ cpu "wifi_rx_VITERBI" ];
      mk_node "DESCRAMBLE" ~kernel:"descramble" ~size:Truth.wifi_data_bits
        ~args:[ "scramble_seed"; "decoded"; "descrambled" ] ~preds:[ "VITERBI" ]
        ~platforms:[ cpu "wifi_rx_DESCRAMBLE" ];
      mk_node "CRC_CHECK" ~kernel:"crc32" ~size:Truth.wifi_data_bits
        ~args:[ "descrambled"; "payload_out"; "crc_ok" ] ~preds:[ "DESCRAMBLE" ]
        ~platforms:[ cpu "wifi_rx_CRC_CHECK" ];
    ]
  in
  App_spec.of_edges ~app_name:"wifi_rx" ~shared_object:"wifi_rx.so" ~variables ~nodes

(* ------------------------------------------------------------------ *)

let ensure_kernels_registered () =
  register_range_detection_kernels ();
  register_pulse_doppler_kernels ();
  register_wifi_kernels ()

let all () = [ pulse_doppler (); range_detection (); wifi_tx (); wifi_rx () ]

let by_name = function
  | "range_detection" -> Ok (range_detection ())
  | "pulse_doppler" -> Ok (pulse_doppler ())
  | "wifi_tx" -> Ok (wifi_tx ())
  | "wifi_rx" -> Ok (wifi_rx ())
  | other -> Error (Printf.sprintf "unknown application %S" other)
