(** Kernel ("shared object") registry.

    The paper's applications ship compute kernels as functions in
    shared-object files; the JSON DAG references them by
    [shared_object] + [runfunc] symbol, and a per-platform entry can
    point at a different object (e.g. ["fft_accel.so"]).  This
    registry reproduces that indirection: named objects map symbol
    names to OCaml closures over the instance's variable {!Store}. *)

type kernel = Store.t -> string list -> unit
(** A kernel receives the instance store and the node's argument list
    (variable names, in JSON order) and communicates only through the
    store. *)

val register_object : string -> (string * kernel) list -> unit
(** Register (or extend) a shared object.  Re-registering a symbol
    replaces it — mirroring dlopen symbol interposition, which Case
    Study 4 exploits to swap a naive DFT for an optimized FFT. *)

val lookup : shared_object:string -> symbol:string -> (kernel, string) result

val lookup_exn : shared_object:string -> symbol:string -> kernel

val objects : unit -> string list
(** Registered object names, sorted. *)

val symbols : string -> string list
(** Symbols of one object, sorted; [[]] if the object is unknown. *)

val resolve :
  app:App_spec.t -> node:App_spec.node -> platform:App_spec.platform_entry ->
  (kernel, string) result
(** Resolve a node's runfunc for a chosen platform entry, honouring the
    per-entry [shared_object] override and defaulting to the
    application's object. *)
