(** The four reference applications of the paper's SDR domain
    (Section III-B): radar range detection (Fig. 2 / Listing 1),
    pulse Doppler (Fig. 8), and the WiFi transmitter and receiver
    chains (Fig. 7).

    Every builder registers the kernels it needs in the {!Kernels}
    registry (idempotently) and returns a validated archetype whose
    task counts match Table I: range detection 6, pulse Doppler 770,
    WiFi TX 7, WiFi RX 9.

    The applications are functionally real: range detection carries a
    synthetic echo baked into the JSON initial values and recovers its
    delay; pulse Doppler synthesises a Doppler-shifted echo train and
    recovers range and velocity; WiFi RX decodes the baked TX waveform
    back to the exact payload with a passing CRC.  Integration tests
    assert all of these after full emulated runs. *)

val range_detection : unit -> App_spec.t
val pulse_doppler : unit -> App_spec.t
val wifi_tx : unit -> App_spec.t
val wifi_rx : unit -> App_spec.t

val all : unit -> App_spec.t list
(** All four, in the order used by the paper's workload tables. *)

val by_name : string -> (App_spec.t, string) result
(** Lookup by [AppName] ("range_detection", "pulse_doppler",
    "wifi_tx", "wifi_rx"). *)

val ensure_kernels_registered : unit -> unit
(** Force registration of every reference shared object without
    building the specs.  Idempotent. *)

(** Ground-truth values the built-in workloads embed, exposed so tests
    and examples can assert end-to-end functional correctness. *)
module Truth : sig
  val rd_n_samples : int
  val rd_fft_size : int
  val rd_echo_delay : int
  (** Sample delay of the synthetic echo in [rx]; the MAX kernel must
      recover exactly this lag. *)

  val pd_n_samples : int
  val pd_n_pulses : int
  val pd_range_bin : int
  val pd_doppler_bin : int
  val pd_prf : float
  val pd_carrier_hz : float
  val pd_velocity : float
  (** Radial velocity (m/s) implied by {!pd_doppler_bin}. *)

  val wifi_payload : bool array
  (** The 64-bit payload the TX chain transmits and RX must recover. *)

  val wifi_scramble_seed : int
  val wifi_fft_size : int
  val wifi_data_bits : int
  (** Payload + CRC32 = 96 bits entering the scrambler/encoder. *)
end
