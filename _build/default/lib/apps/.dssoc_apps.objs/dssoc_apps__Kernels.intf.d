lib/apps/kernels.mli: App_spec Store
