lib/apps/store.ml: Array Bytes Char Dssoc_dsp Hashtbl Int32 List Printf
