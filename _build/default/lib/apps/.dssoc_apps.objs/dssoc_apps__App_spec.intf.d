lib/apps/app_spec.mli: Dssoc_json Store
