lib/apps/workload.mli: App_spec Dssoc_util
