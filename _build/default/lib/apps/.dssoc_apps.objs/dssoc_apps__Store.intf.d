lib/apps/store.mli: Bytes Dssoc_dsp
