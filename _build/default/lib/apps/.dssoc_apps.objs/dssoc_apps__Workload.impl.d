lib/apps/workload.ml: App_spec Dssoc_util Float Hashtbl List Option Printf Reference_apps
