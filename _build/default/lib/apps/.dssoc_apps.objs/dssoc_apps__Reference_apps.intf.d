lib/apps/reference_apps.mli: App_spec
