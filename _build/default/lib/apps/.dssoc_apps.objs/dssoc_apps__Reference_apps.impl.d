lib/apps/reference_apps.ml: App_spec Array Dssoc_dsp Dssoc_util Float Int32 Kernels List Printf Store
