lib/apps/kernels.ml: App_spec Hashtbl List Option Printf Store
