lib/apps/app_spec.ml: Dssoc_json Hashtbl List Option Printf Queue Result Store
