module Prng = Dssoc_util.Prng

type item = { spec : App_spec.t; arrival_ns : int; instance : int }

type t = { items : item list; window_ns : int }

let validation apps =
  let items =
    List.concat_map
      (fun (spec, count) ->
        if count < 0 then invalid_arg "Workload.validation: negative count";
        List.init count (fun instance -> { spec; arrival_ns = 0; instance }))
      apps
  in
  { items; window_ns = 0 }

type injection = { app : App_spec.t; period_ns : int; probability : float }

let performance ~prng ~window_ns injections =
  if window_ns <= 0 then invalid_arg "Workload.performance: window must be positive";
  let items =
    List.concat_map
      (fun inj ->
        if inj.period_ns <= 0 then invalid_arg "Workload.performance: period must be positive";
        if inj.probability < 0.0 || inj.probability > 1.0 then
          invalid_arg "Workload.performance: probability out of range";
        let rec attempts t acc =
          if t >= window_ns then List.rev acc
          else begin
            let inject = inj.probability >= 1.0 || Prng.bernoulli prng inj.probability in
            attempts (t + inj.period_ns) (if inject then t :: acc else acc)
          end
        in
        List.mapi (fun instance arrival_ns -> { spec = inj.app; arrival_ns; instance })
          (attempts 0 []))
      injections
  in
  let items = List.stable_sort (fun a b -> compare a.arrival_ns b.arrival_ns) items in
  { items; window_ns }

let job_count t = List.length t.items

let injection_rate_per_ms t =
  let span_ns =
    if t.window_ns > 0 then t.window_ns
    else List.fold_left (fun acc i -> max acc i.arrival_ns) 1 t.items
  in
  float_of_int (job_count t) /. (float_of_int span_ns /. 1e6)

let count_by_app t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let name = i.spec.App_spec.app_name in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    t.items;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Table II: instance counts per application at each average injection
   rate (jobs per msec) over the 100 ms window. *)
let table2 =
  [
    (1.71, [ ("pulse_doppler", 8); ("range_detection", 123); ("wifi_tx", 20); ("wifi_rx", 20) ]);
    (2.28, [ ("pulse_doppler", 10); ("range_detection", 164); ("wifi_tx", 27); ("wifi_rx", 27) ]);
    (3.42, [ ("pulse_doppler", 15); ("range_detection", 245); ("wifi_tx", 41); ("wifi_rx", 41) ]);
    (4.57, [ ("pulse_doppler", 18); ("range_detection", 329); ("wifi_tx", 55); ("wifi_rx", 55) ]);
    (6.92, [ ("pulse_doppler", 32); ("range_detection", 495); ("wifi_tx", 82); ("wifi_rx", 83) ]);
  ]

let table2_rates = List.map fst table2

let table2_counts rate =
  match List.assoc_opt rate table2 with
  | Some counts -> counts
  | None -> invalid_arg (Printf.sprintf "Workload.table2_counts: unknown rate %g" rate)

let table2_workload ?(window_ms = 100.0) ~rate () =
  let counts = table2_counts rate in
  let window_ns = int_of_float (window_ms *. 1e6) in
  let scale = window_ms /. 100.0 in
  let injections =
    List.map
      (fun (name, count) ->
        let app =
          match Reference_apps.by_name name with
          | Ok app -> app
          | Error msg -> invalid_arg msg
        in
        let count = max 1 (int_of_float (Float.round (float_of_int count *. scale))) in
        (* Attempts land at 0, p, 2p, ... < window; the ceiling division
           makes the attempt count exactly [count]. *)
        { app; period_ns = (window_ns + count - 1) / count; probability = 1.0 })
      counts
  in
  (* Probability 1 never consults the generator, but the API wants one. *)
  performance ~prng:(Prng.create ~seed:0L) ~window_ns injections
