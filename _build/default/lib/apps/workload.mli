(** Workload generation (Section II-B).

    A workload is a time-ordered queue of application instances.  In
    *validation mode* every instance arrives at t=0 and the emulation
    ends when all complete.  In *performance mode* each application is
    injected periodically with a given probability inside a time
    window, emulating dynamic job arrival (Case Studies 2 and 3). *)

type item = {
  spec : App_spec.t;
  arrival_ns : int;
  instance : int;  (** per-application instance counter, from 0 *)
}

type t = {
  items : item list;  (** sorted by arrival time (stable) *)
  window_ns : int;  (** performance-mode injection window; 0 in validation mode *)
}

val validation : (App_spec.t * int) list -> t
(** [(app, count)] pairs, all instances arriving at t=0, ordered as
    given. *)

type injection = {
  app : App_spec.t;
  period_ns : int;  (** injection attempt period *)
  probability : float;  (** chance that each attempt actually injects *)
}

val performance : prng:Dssoc_util.Prng.t -> window_ns:int -> injection list -> t
(** Attempts at t = 0, period, 2*period, ... < window; each succeeds
    with [probability] (the paper's evaluations use probability 1).
    Items are merged across applications and sorted by arrival. *)

val job_count : t -> int

val injection_rate_per_ms : t -> float
(** Jobs per millisecond over the window (or over the last arrival in
    validation mode); matches the x-axis of Figs. 10 and 11. *)

val count_by_app : t -> (string * int) list
(** Instance count per application name, sorted by name — the rows of
    Table II. *)

(** {1 Table II presets}

    The paper's five performance-mode traces over a 100 ms window.
    Periods are derived from the instance counts of Table II
    (count = ceil(window / period) with probability 1). *)

val table2_rates : float list
(** [1.71; 2.28; 3.42; 4.57; 6.92] jobs/ms. *)

val table2_counts : float -> (string * int) list
(** Expected instance counts for one of the rates above
    (pulse_doppler, range_detection, wifi_tx, wifi_rx).
    @raise Invalid_argument for an unknown rate. *)

val table2_workload : ?window_ms:float -> rate:float -> unit -> t
(** Build the trace for one of {!table2_rates} using the reference
    applications.  Probability 1 makes it deterministic. *)
