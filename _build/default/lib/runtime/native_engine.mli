(** Native emulation engine: the framework running for real.

    One OCaml 5 domain per PE plays the resource-manager thread; the
    calling domain plays the workload manager on the "overlay" core.
    The handler protocol is the paper's: status [idle]/[run]/[complete]
    guarded by a per-handler mutex, the workload manager polling
    completion and dispatching through the handler, the resource
    manager blocking on its condition variable until work arrives.

    Kernels execute for real and times are wall-clock measurements, so
    results vary with the machine — this engine demonstrates the
    framework is a genuine user-space runtime and cross-checks the
    virtual engine's functional outputs.  Hardware accelerators do not
    exist on the host, so an accelerator PE performs its DMA phases as
    real buffer copies and emulates device compute with a timed sleep
    of the modelled duration (substitution documented in DESIGN.md). *)

val run :
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report
(** Run to completion using real domains.
    @raise Invalid_argument if some task supports no PE of the
    configuration. *)

val run_detailed :
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report * Task.instance array
(** Like {!run} but also returns the executed instances so callers can
    inspect final variable stores. *)
