type engine = Virtual of Virtual_engine.params | Native

let virtual_seeded ?(jitter = 0.03) ?(reservation_depth = 0) seed =
  Virtual { Virtual_engine.seed; jitter; reservation_depth }

let run ?(engine = Virtual Virtual_engine.default_params) ?(policy = "FRFS") ~config ~workload () =
  match Scheduler.find policy with
  | Error _ as e -> e
  | Ok policy -> (
    try
      Ok
        (match engine with
        | Virtual params -> Virtual_engine.run ~params ~config ~workload ~policy ()
        | Native -> Native_engine.run ~config ~workload ~policy ())
    with Invalid_argument msg -> Error msg)

let run_exn ?engine ?policy ~config ~workload () =
  match run ?engine ?policy ~config ~workload () with
  | Ok r -> r
  | Error msg -> invalid_arg (Printf.sprintf "Emulator.run_exn: %s" msg)

let run_detailed ?(engine = Virtual Virtual_engine.default_params) ?(policy = "FRFS") ~config
    ~workload () =
  match Scheduler.find policy with
  | Error _ as e -> e
  | Ok policy -> (
    try
      Ok
        (match engine with
        | Virtual params -> Virtual_engine.run_detailed ~params ~config ~workload ~policy ()
        | Native -> Native_engine.run_detailed ~config ~workload ~policy ())
    with Invalid_argument msg -> Error msg)
