lib/runtime/stats.mli: Dssoc_json Format
