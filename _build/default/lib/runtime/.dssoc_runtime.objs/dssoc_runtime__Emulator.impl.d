lib/runtime/emulator.ml: Native_engine Printf Scheduler Virtual_engine
