lib/runtime/scheduler.ml: Array Dssoc_soc Dssoc_util Float Hashtbl List Printf String Task
