lib/runtime/task.ml: Array Dssoc_apps Dssoc_soc Hashtbl List Option
