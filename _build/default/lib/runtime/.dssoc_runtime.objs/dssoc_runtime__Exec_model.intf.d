lib/runtime/exec_model.mli: Dssoc_apps Dssoc_soc Task
