lib/runtime/virtual_engine.mli: Dssoc_apps Dssoc_soc Scheduler Stats Task
