lib/runtime/task.mli: Dssoc_apps Dssoc_soc
