lib/runtime/exec_model.ml: Dssoc_apps Dssoc_soc Float Hashtbl Printf Task
