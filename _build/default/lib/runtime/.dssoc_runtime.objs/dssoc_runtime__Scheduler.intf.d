lib/runtime/scheduler.mli: Dssoc_soc Dssoc_util Task
