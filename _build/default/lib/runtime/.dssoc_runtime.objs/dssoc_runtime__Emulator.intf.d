lib/runtime/emulator.mli: Dssoc_apps Dssoc_soc Stats Task Virtual_engine
