lib/runtime/stats.ml: Buffer Bytes Char Dssoc_json Format Hashtbl List Option Printf String
