lib/runtime/native_engine.mli: Dssoc_apps Dssoc_soc Scheduler Stats Task
