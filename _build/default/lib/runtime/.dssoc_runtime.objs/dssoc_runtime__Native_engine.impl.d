lib/runtime/native_engine.ml: Array Buffer Condition Domain Dssoc_apps Dssoc_soc Dssoc_util Exec_model Hashtbl List Mutex Option Printf Queue Scheduler Seq Stats Task Unix
