lib/runtime/virtual_engine.ml: Array Dssoc_apps Dssoc_soc Dssoc_util Effect Exec_model Float Hashtbl List Option Printf Queue Scheduler Seq Stats Task
