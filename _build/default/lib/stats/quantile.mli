(** Order statistics and summary statistics over float samples. *)

val mean : float array -> float
(** @raise Invalid_argument on empty input (as do all functions
    below). *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in \[0,1\], linear interpolation between
    order statistics (type-7, the R/NumPy default).  Input need not be
    sorted. *)

val median : float array -> float

type boxplot = { lo : float; q1 : float; med : float; q3 : float; hi : float }

val boxplot : float array -> boxplot
(** Five-number summary: min, quartiles, max — the Fig. 9a rendering. *)
