lib/stats/table.mli:
