lib/stats/table.ml: Buffer Bytes Float List Printf String
