lib/stats/quantile.mli:
