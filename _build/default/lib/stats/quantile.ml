let check xs name = if Array.length xs = 0 then invalid_arg ("Quantile." ^ name ^ ": empty input")

let mean xs =
  check xs "mean";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check xs "stddev";
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min xs =
  check xs "min";
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check xs "max";
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  check xs "quantile";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

type boxplot = { lo : float; q1 : float; med : float; q3 : float; hi : float }

let boxplot xs =
  { lo = min xs; q1 = quantile xs 0.25; med = median xs; q3 = quantile xs 0.75; hi = max xs }
