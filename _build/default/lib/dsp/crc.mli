(** CRC-32 (IEEE 802.3 polynomial, reflected).

    WiFi frames append a CRC so the RX pipeline can verify end-to-end
    correctness of the decoded payload — the framework's functional-
    verification signal. *)

val of_bytes : Bytes.t -> int32
val of_string : string -> int32

val of_bits : bool array -> int32
(** Bits are packed little-endian-first into bytes (trailing partial
    byte zero-padded) and then CRCed; used on decoded bit payloads. *)

val append_bits : bool array -> bool array
(** Payload followed by its 32 CRC bits (LSB first). *)

val check_bits : bool array -> bool
(** [check_bits (append_bits p)] is [true]; flipping any bit makes it
    [false] (with CRC-32 certainty). *)
