lib/dsp/modulation.mli: Cbuf
