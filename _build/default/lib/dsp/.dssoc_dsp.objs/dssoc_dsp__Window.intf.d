lib/dsp/window.mli: Cbuf
