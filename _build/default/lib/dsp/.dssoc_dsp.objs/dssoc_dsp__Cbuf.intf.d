lib/dsp/cbuf.mli: Format
