lib/dsp/radar.ml: Array Cbuf Dssoc_util Fft Float
