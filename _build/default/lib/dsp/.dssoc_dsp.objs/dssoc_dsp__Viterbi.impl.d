lib/dsp/viterbi.ml: Array Conv_code Lazy
