lib/dsp/modulation.ml: Array Cbuf Printf
