lib/dsp/fft.ml: Array Cbuf Float
