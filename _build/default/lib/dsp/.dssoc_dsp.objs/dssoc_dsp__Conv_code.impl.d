lib/dsp/conv_code.ml: Array
