lib/dsp/cbuf.ml: Array Float Format List Printf Stdlib
