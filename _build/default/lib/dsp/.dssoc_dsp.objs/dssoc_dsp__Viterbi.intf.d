lib/dsp/viterbi.mli:
