lib/dsp/conv_code.mli:
