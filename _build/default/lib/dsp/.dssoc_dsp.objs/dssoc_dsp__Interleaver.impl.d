lib/dsp/interleaver.ml: Array
