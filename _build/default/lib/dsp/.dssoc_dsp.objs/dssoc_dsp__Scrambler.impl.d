lib/dsp/scrambler.ml: Array
