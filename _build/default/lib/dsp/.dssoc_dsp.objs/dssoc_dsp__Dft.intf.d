lib/dsp/dft.mli: Cbuf
