lib/dsp/radar.mli: Cbuf Dssoc_util
