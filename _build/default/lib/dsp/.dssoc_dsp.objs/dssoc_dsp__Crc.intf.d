lib/dsp/crc.mli: Bytes
