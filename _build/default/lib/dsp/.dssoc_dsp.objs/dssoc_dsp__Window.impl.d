lib/dsp/window.ml: Array Cbuf Float Printf
