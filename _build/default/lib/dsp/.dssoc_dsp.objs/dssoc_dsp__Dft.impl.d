lib/dsp/dft.ml: Array Cbuf Float
