lib/dsp/interleaver.mli:
