lib/dsp/scrambler.mli:
