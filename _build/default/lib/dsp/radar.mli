(** Radar waveform kernels used by the range-detection and
    pulse-Doppler reference applications (Figures 2 and 8 of the
    paper). *)

val lfm_chirp : n:int -> bandwidth:float -> sample_rate:float -> Cbuf.t
(** Linear-FM (chirp) reference waveform of [n] complex samples
    sweeping [-bandwidth/2, +bandwidth/2] over the pulse. *)

val delayed_echo :
  Dssoc_util.Prng.t option ->
  waveform:Cbuf.t ->
  total:int ->
  delay:int ->
  attenuation:float ->
  noise_sigma:float ->
  Cbuf.t
(** Synthesises a received signal of [total] samples containing the
    [waveform] starting at sample [delay] (truncated at the window
    end), scaled by [attenuation], plus white Gaussian noise (none
    when the generator is [None] or [noise_sigma = 0.]).
    @raise Invalid_argument when [delay] lies outside the window. *)

val xcorr_freq : reference:Cbuf.t -> received:Cbuf.t -> Cbuf.t
(** Circular cross-correlation computed in the frequency domain:
    IFFT (FFT received .* conj (FFT reference)), both inputs zero-
    padded to the received length.  The range-detection DAG computes
    the same thing split into FFT/MUL/IFFT kernels. *)

val peak : Cbuf.t -> int * float
(** Index and magnitude of the largest-magnitude sample. *)

val lag_to_range : lag:int -> sample_rate:float -> float
(** One-way target range in metres for a correlation peak at [lag]
    (speed of light, two-way travel). *)

val doppler_bins : Cbuf.t array -> bin:int -> Cbuf.t
(** Slow-time vector across pulses for a fixed fast-time [bin]: input
    is one buffer per pulse; output has one sample per pulse.  The
    pulse-Doppler application FFTs these vectors to extract target
    velocity. *)

val doppler_velocity :
  peak_bin:int -> n_pulses:int -> prf:float -> carrier_hz:float -> float
(** Radial velocity (m/s) for a Doppler-FFT peak at [peak_bin], given
    the pulse repetition frequency and the carrier frequency. *)
