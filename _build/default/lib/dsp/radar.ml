module Prng = Dssoc_util.Prng

let lfm_chirp ~n ~bandwidth ~sample_rate =
  if n <= 0 then invalid_arg "Radar.lfm_chirp: n must be positive";
  let out = Cbuf.create n in
  let dt = 1.0 /. sample_rate in
  let duration = float_of_int n *. dt in
  let k = bandwidth /. duration in
  for i = 0 to n - 1 do
    let t = float_of_int i *. dt in
    (* Instantaneous frequency sweeps -B/2 .. +B/2: phase(t) = pi*k*t^2 - pi*B*t *)
    let phase = (Float.pi *. k *. t *. t) -. (Float.pi *. bandwidth *. t) in
    out.Cbuf.re.(i) <- cos phase;
    out.Cbuf.im.(i) <- sin phase
  done;
  out

let delayed_echo prng ~waveform ~total ~delay ~attenuation ~noise_sigma =
  if delay < 0 || delay >= total then invalid_arg "Radar.delayed_echo: delay out of window";
  (* An echo arriving late is truncated at the window end, like a
     target near the edge of the receive gate. *)
  let n = min (Cbuf.length waveform) (total - delay) in
  let out = Cbuf.create total in
  for i = 0 to n - 1 do
    out.Cbuf.re.(delay + i) <- attenuation *. waveform.Cbuf.re.(i);
    out.Cbuf.im.(delay + i) <- attenuation *. waveform.Cbuf.im.(i)
  done;
  (match prng with
  | Some g when noise_sigma > 0.0 ->
    for i = 0 to total - 1 do
      out.Cbuf.re.(i) <- out.Cbuf.re.(i) +. Prng.gaussian g ~mu:0.0 ~sigma:noise_sigma;
      out.Cbuf.im.(i) <- out.Cbuf.im.(i) +. Prng.gaussian g ~mu:0.0 ~sigma:noise_sigma
    done
  | _ -> ());
  out

let zero_pad buf n =
  let out = Cbuf.create n in
  let m = min n (Cbuf.length buf) in
  Array.blit buf.Cbuf.re 0 out.Cbuf.re 0 m;
  Array.blit buf.Cbuf.im 0 out.Cbuf.im 0 m;
  out

let xcorr_freq ~reference ~received =
  let n = Cbuf.length received in
  let ref_padded = zero_pad reference n in
  let fr = Fft.fft ref_padded in
  let fx = Fft.fft received in
  Fft.ifft (Cbuf.mul_pointwise fx (Cbuf.conj fr))

let peak buf =
  let mags = Cbuf.magnitude buf in
  let best = ref 0 in
  for i = 1 to Array.length mags - 1 do
    if mags.(i) > mags.(!best) then best := i
  done;
  (!best, mags.(!best))

let speed_of_light = 299_792_458.0

let lag_to_range ~lag ~sample_rate =
  float_of_int lag /. sample_rate *. speed_of_light /. 2.0

let doppler_bins pulses ~bin =
  let m = Array.length pulses in
  if m = 0 then invalid_arg "Radar.doppler_bins: no pulses";
  let out = Cbuf.create m in
  Array.iteri
    (fun p pulse ->
      out.Cbuf.re.(p) <- pulse.Cbuf.re.(bin);
      out.Cbuf.im.(p) <- pulse.Cbuf.im.(bin))
    pulses;
  out

let doppler_velocity ~peak_bin ~n_pulses ~prf ~carrier_hz =
  (* Map FFT bin to signed Doppler frequency, then to radial velocity. *)
  let bin = if peak_bin > n_pulses / 2 then peak_bin - n_pulses else peak_bin in
  let doppler_hz = float_of_int bin *. prf /. float_of_int n_pulses in
  doppler_hz *. speed_of_light /. (2.0 *. carrier_hz)
