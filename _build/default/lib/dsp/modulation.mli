(** Digital modulation: bit <-> complex-symbol mapping.

    BPSK, QPSK and 16-QAM with Gray mapping, unit average symbol
    energy.  The WiFi reference applications modulate coded bits onto
    subcarriers before the IFFT (TX) and demodulate after the FFT
    (RX). *)

type scheme = Bpsk | Qpsk | Qam16

val bits_per_symbol : scheme -> int

val modulate : scheme -> bool array -> Cbuf.t
(** Bit count must be a multiple of [bits_per_symbol].
    @raise Invalid_argument otherwise. *)

val demodulate : scheme -> Cbuf.t -> bool array
(** Hard-decision (minimum-distance) demapping;
    [demodulate s (modulate s bits) = bits]. *)

val scheme_to_string : scheme -> string
val scheme_of_string : string -> (scheme, string) result
