type kind = Rectangular | Hamming | Hann | Blackman

let coefficients kind n =
  if n <= 0 then invalid_arg "Window.coefficients: n must be positive";
  let denom = float_of_int (max 1 (n - 1)) in
  Array.init n (fun i ->
      let x = float_of_int i /. denom in
      match kind with
      | Rectangular -> 1.0
      | Hamming -> 0.54 -. (0.46 *. cos (2.0 *. Float.pi *. x))
      | Hann -> 0.5 -. (0.5 *. cos (2.0 *. Float.pi *. x))
      | Blackman ->
        0.42 -. (0.5 *. cos (2.0 *. Float.pi *. x)) +. (0.08 *. cos (4.0 *. Float.pi *. x)))

let apply kind buf =
  let n = Cbuf.length buf in
  let w = coefficients kind n in
  let out = Cbuf.create n in
  for i = 0 to n - 1 do
    out.Cbuf.re.(i) <- buf.Cbuf.re.(i) *. w.(i);
    out.Cbuf.im.(i) <- buf.Cbuf.im.(i) *. w.(i)
  done;
  out

let kind_to_string = function
  | Rectangular -> "rectangular"
  | Hamming -> "hamming"
  | Hann -> "hann"
  | Blackman -> "blackman"

let kind_of_string = function
  | "rectangular" -> Ok Rectangular
  | "hamming" -> Ok Hamming
  | "hann" -> Ok Hann
  | "blackman" -> Ok Blackman
  | s -> Error (Printf.sprintf "unknown window kind %S" s)
