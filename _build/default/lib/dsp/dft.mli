(** Naive O(n^2) discrete Fourier transform.

    These are the "simple for-loop based DFTs" that the automatic
    application-conversion toolchain detects inside monolithic range
    detection (Case Study 4) and substitutes with {!Fft} or an
    accelerator invocation.  Kept deliberately textbook so the
    hash-based recognizer has a canonical target and so the ~100x
    speedup factor of the paper is structurally reproduced. *)

val dft : Cbuf.t -> Cbuf.t
(** Forward transform. *)

val idft : Cbuf.t -> Cbuf.t
(** Inverse transform with 1/n normalisation. *)

val flop_count : int -> int
(** Approximate floating-point operation count of [dft] at size n,
    used by the cost model to price unoptimized kernels. *)
