(** 802.11-style frame scrambler.

    A 7-bit LFSR with polynomial x^7 + x^4 + 1 whitens the payload
    bits (WiFi TX) and, run again with the same seed, recovers them
    (WiFi RX descrambler) — scrambling is an involution. *)

val run : seed:int -> bool array -> bool array
(** [run ~seed bits] XORs the LFSR sequence into [bits].  Only the low
    7 bits of [seed] are used; a zero state is replaced by the standard
    all-ones state (a zero LFSR would be a fixed point). *)

val descramble : seed:int -> bool array -> bool array
(** Alias of {!run}; provided so application DAGs read naturally. *)
