(** Window functions for spectral shaping (pulse-Doppler uses a window
    before the slow-time FFT to control Doppler sidelobes). *)

type kind = Rectangular | Hamming | Hann | Blackman

val coefficients : kind -> int -> float array
(** [coefficients kind n] is the length-[n] window. *)

val apply : kind -> Cbuf.t -> Cbuf.t
(** Pointwise product of the signal with the window. *)

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result
