(** Block interleaver.

    An 802.11-style row/column interleaver: bits are written into a
    [rows x cols] matrix row-major and read out column-major, spreading
    adjacent coded bits across the OFDM symbol so burst errors hit
    separated codeword positions.  [deinterleave] inverts it exactly
    (the permutation is a bijection). *)

val interleave : rows:int -> bool array -> bool array
(** Length must be divisible by [rows].
    @raise Invalid_argument otherwise. *)

val deinterleave : rows:int -> bool array -> bool array

val permutation : rows:int -> n:int -> int array
(** [permutation ~rows ~n] is the index map [p] with
    [interleaved.(i) = original.(p.(i))]; exposed for property tests. *)
