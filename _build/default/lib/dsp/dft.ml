let transform ~inverse (x : Cbuf.t) =
  let n = Cbuf.length x in
  if n = 0 then invalid_arg "Dft: empty buffer";
  let sign = if inverse then 1.0 else -1.0 in
  let out = Cbuf.create n in
  for k = 0 to n - 1 do
    let sum_re = ref 0.0 and sum_im = ref 0.0 in
    for t = 0 to n - 1 do
      let ang = sign *. 2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
      let c = cos ang and s = sin ang in
      sum_re := !sum_re +. (x.Cbuf.re.(t) *. c) -. (x.Cbuf.im.(t) *. s);
      sum_im := !sum_im +. (x.Cbuf.re.(t) *. s) +. (x.Cbuf.im.(t) *. c)
    done;
    out.Cbuf.re.(k) <- !sum_re;
    out.Cbuf.im.(k) <- !sum_im
  done;
  if inverse then begin
    let inv_n = 1.0 /. float_of_int n in
    for k = 0 to n - 1 do
      out.Cbuf.re.(k) <- out.Cbuf.re.(k) *. inv_n;
      out.Cbuf.im.(k) <- out.Cbuf.im.(k) *. inv_n
    done
  end;
  out

let dft x = transform ~inverse:false x
let idft x = transform ~inverse:true x

let flop_count n = 8 * n * n
