let permutation ~rows ~n =
  if rows <= 0 then invalid_arg "Interleaver: rows must be positive";
  if n mod rows <> 0 then invalid_arg "Interleaver: length not divisible by rows";
  let cols = n / rows in
  (* Output position i reads column-major: i = c*rows + r maps to
     row-major input index r*cols + c. *)
  Array.init n (fun i ->
      let c = i / rows and r = i mod rows in
      (r * cols) + c)

let interleave ~rows bits =
  let n = Array.length bits in
  let p = permutation ~rows ~n in
  Array.init n (fun i -> bits.(p.(i)))

let deinterleave ~rows bits =
  let n = Array.length bits in
  let p = permutation ~rows ~n in
  let out = Array.make n false in
  Array.iteri (fun i src -> out.(src) <- bits.(i)) p;
  out
