let constraint_length = 7
let g0 = 0o133
let g1 = 0o171

let parity x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc lxor (x land 1)) in
  go x 0

let encoded_length n = 2 * (n + constraint_length - 1)

let encode bits =
  let n = Array.length bits in
  let tail = constraint_length - 1 in
  let out = Array.make (encoded_length n) false in
  let state = ref 0 in
  for i = 0 to n + tail - 1 do
    let input = if i < n then bits.(i) else false in
    let reg = ((if input then 1 else 0) lsl (constraint_length - 1)) lor !state in
    out.(2 * i) <- parity (reg land g0) = 1;
    out.((2 * i) + 1) <- parity (reg land g1) = 1;
    state := reg lsr 1
  done;
  out
