(** Complex sample buffers.

    All signal-processing kernels operate on [Cbuf.t]: a pair of equal-
    length float arrays holding the real and imaginary parts.  The
    split (planar) layout keeps the FFT inner loops free of tuple or
    record allocation. *)

type t = { re : float array; im : float array }

val create : int -> t
(** Zero-filled buffer of the given length. *)

val length : t -> int

val copy : t -> t

val of_complex_list : (float * float) list -> t
val to_complex_list : t -> (float * float) list

val of_real : float array -> t
(** Real signal with zero imaginary part. *)

val get : t -> int -> float * float
val set : t -> int -> float -> float -> unit

val fill : t -> float -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copies [src] into [dst]; lengths must match. *)

val mul_pointwise : t -> t -> t
(** Elementwise complex product; lengths must match. *)

val conj : t -> t

val scale : t -> float -> t

val add : t -> t -> t

val magnitude : t -> float array
(** Elementwise |z|. *)

val power : t -> float array
(** Elementwise |z|^2. *)

val energy : t -> float
(** Sum of |z|^2 — used by Parseval property tests. *)

val max_abs_diff : t -> t -> float
(** Largest elementwise distance between two buffers, measured as
    max(|re1-re2|, |im1-im2|); lengths must match. *)

val pp : Format.formatter -> t -> unit
