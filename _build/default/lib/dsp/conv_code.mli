(** Rate-1/2, constraint-length-7 convolutional encoder.

    Generator polynomials g0 = 133 (octal), g1 = 171 (octal) — the
    industry-standard code used by 802.11a/g, which the WiFi reference
    applications encode with and {!Viterbi} decodes. *)

val constraint_length : int
(** 7. *)

val g0 : int
(** 0o133. *)

val g1 : int
(** 0o171. *)

val encode : bool array -> bool array
(** [encode bits] produces [2 * (length bits + 6)] output bits: the
    message followed by 6 flush (tail) bits that return the encoder to
    the zero state, each input producing the (g0, g1) output pair. *)

val encoded_length : int -> int
(** Output length for a given message length. *)
