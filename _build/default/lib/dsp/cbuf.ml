type t = { re : float array; im : float array }

let create n = { re = Array.make n 0.0; im = Array.make n 0.0 }

let length t = Array.length t.re

let copy t = { re = Array.copy t.re; im = Array.copy t.im }

let of_complex_list l =
  let n = List.length l in
  let t = create n in
  List.iteri
    (fun i (re, im) ->
      t.re.(i) <- re;
      t.im.(i) <- im)
    l;
  t

let to_complex_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) ((t.re.(i), t.im.(i)) :: acc) in
  go (length t - 1) []

let of_real a = { re = Array.copy a; im = Array.make (Array.length a) 0.0 }

let get t i = (t.re.(i), t.im.(i))

let set t i re im =
  t.re.(i) <- re;
  t.im.(i) <- im

let fill t re im =
  Array.fill t.re 0 (length t) re;
  Array.fill t.im 0 (length t) im

let check_same_length a b name =
  if length a <> length b then invalid_arg (Printf.sprintf "Cbuf.%s: length mismatch" name)

let blit ~src ~dst =
  check_same_length src dst "blit";
  Array.blit src.re 0 dst.re 0 (length src);
  Array.blit src.im 0 dst.im 0 (length src)

let mul_pointwise a b =
  check_same_length a b "mul_pointwise";
  let n = length a in
  let out = create n in
  for i = 0 to n - 1 do
    out.re.(i) <- (a.re.(i) *. b.re.(i)) -. (a.im.(i) *. b.im.(i));
    out.im.(i) <- (a.re.(i) *. b.im.(i)) +. (a.im.(i) *. b.re.(i))
  done;
  out

let conj t =
  let n = length t in
  let out = create n in
  for i = 0 to n - 1 do
    out.re.(i) <- t.re.(i);
    out.im.(i) <- -.t.im.(i)
  done;
  out

let scale t k =
  let n = length t in
  let out = create n in
  for i = 0 to n - 1 do
    out.re.(i) <- t.re.(i) *. k;
    out.im.(i) <- t.im.(i) *. k
  done;
  out

let add a b =
  check_same_length a b "add";
  let n = length a in
  let out = create n in
  for i = 0 to n - 1 do
    out.re.(i) <- a.re.(i) +. b.re.(i);
    out.im.(i) <- a.im.(i) +. b.im.(i)
  done;
  out

let magnitude t =
  Array.init (length t) (fun i -> Float.hypot t.re.(i) t.im.(i))

let power t =
  Array.init (length t) (fun i -> (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)))

let energy t =
  let acc = ref 0.0 in
  for i = 0 to length t - 1 do
    acc := !acc +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  !acc

let max_abs_diff a b =
  check_same_length a b "max_abs_diff";
  let worst = ref 0.0 in
  for i = 0 to length a - 1 do
    worst := Float.max !worst (Float.abs (a.re.(i) -. b.re.(i)));
    worst := Float.max !worst (Float.abs (a.im.(i) -. b.im.(i)))
  done;
  !worst

let pp fmt t =
  Format.fprintf fmt "[@[";
  for i = 0 to Stdlib.min 7 (length t - 1) do
    if i > 0 then Format.fprintf fmt ";@ ";
    Format.fprintf fmt "%.4g%+.4gi" t.re.(i) t.im.(i)
  done;
  if length t > 8 then Format.fprintf fmt ";@ ... (%d samples)" (length t);
  Format.fprintf fmt "@]]"
