let run ~seed bits =
  let state = ref (seed land 0x7F) in
  if !state = 0 then state := 0x7F;
  Array.map
    (fun b ->
      (* Feedback bit = x7 xor x4 (bits 6 and 3 of the register). *)
      let fb = ((!state lsr 6) lxor (!state lsr 3)) land 1 in
      state := ((!state lsl 1) lor fb) land 0x7F;
      b <> (fb = 1))
    bits

let descramble = run
