type scheme = Bpsk | Qpsk | Qam16

let bits_per_symbol = function Bpsk -> 1 | Qpsk -> 2 | Qam16 -> 4

let inv_sqrt2 = 1.0 /. sqrt 2.0
let inv_sqrt10 = 1.0 /. sqrt 10.0

(* Gray-mapped 2-bit PAM level for one 16-QAM axis: 00 -> -3, 01 -> -1,
   11 -> +1, 10 -> +3 (scaled by 1/sqrt(10) for unit average energy). *)
let pam4_level b0 b1 =
  match (b0, b1) with
  | false, false -> -3.0
  | false, true -> -1.0
  | true, true -> 1.0
  | true, false -> 3.0

let pam4_bits level =
  if level < -2.0 then (false, false)
  else if level < 0.0 then (false, true)
  else if level < 2.0 then (true, true)
  else (true, false)

let modulate scheme bits =
  let bps = bits_per_symbol scheme in
  let n = Array.length bits in
  if n mod bps <> 0 then invalid_arg "Modulation.modulate: bit count not divisible";
  let n_sym = n / bps in
  let out = Cbuf.create n_sym in
  for s = 0 to n_sym - 1 do
    match scheme with
    | Bpsk ->
      out.Cbuf.re.(s) <- (if bits.(s) then 1.0 else -1.0);
      out.Cbuf.im.(s) <- 0.0
    | Qpsk ->
      out.Cbuf.re.(s) <- (if bits.(2 * s) then inv_sqrt2 else -.inv_sqrt2);
      out.Cbuf.im.(s) <- (if bits.((2 * s) + 1) then inv_sqrt2 else -.inv_sqrt2)
    | Qam16 ->
      out.Cbuf.re.(s) <- pam4_level bits.(4 * s) bits.((4 * s) + 1) *. inv_sqrt10;
      out.Cbuf.im.(s) <- pam4_level bits.((4 * s) + 2) bits.((4 * s) + 3) *. inv_sqrt10
  done;
  out

let demodulate scheme syms =
  let n_sym = Cbuf.length syms in
  let bps = bits_per_symbol scheme in
  let out = Array.make (n_sym * bps) false in
  for s = 0 to n_sym - 1 do
    let re = syms.Cbuf.re.(s) and im = syms.Cbuf.im.(s) in
    match scheme with
    | Bpsk -> out.(s) <- re >= 0.0
    | Qpsk ->
      out.(2 * s) <- re >= 0.0;
      out.((2 * s) + 1) <- im >= 0.0
    | Qam16 ->
      let b0, b1 = pam4_bits (re /. inv_sqrt10) in
      let b2, b3 = pam4_bits (im /. inv_sqrt10) in
      out.(4 * s) <- b0;
      out.((4 * s) + 1) <- b1;
      out.((4 * s) + 2) <- b2;
      out.((4 * s) + 3) <- b3
  done;
  out

let scheme_to_string = function Bpsk -> "bpsk" | Qpsk -> "qpsk" | Qam16 -> "qam16"

let scheme_of_string = function
  | "bpsk" -> Ok Bpsk
  | "qpsk" -> Ok Qpsk
  | "qam16" -> Ok Qam16
  | s -> Error (Printf.sprintf "unknown modulation scheme %S" s)
