(** Hard-decision Viterbi decoder for the {!Conv_code} encoder.

    Full 64-state trellis with traceback; the single most
    compute-intensive kernel in the WiFi RX application (it dominates
    the 2.22 ms standalone RX time of Table I). *)

val decode : message_length:int -> bool array -> bool array
(** [decode ~message_length coded] recovers the original message bits
    from [Conv_code.encode] output (message + 6 tail bits, rate 1/2).

    [coded] may contain bit errors; maximum-likelihood decoding
    corrects error patterns within the code's capability.

    @raise Invalid_argument if [coded] is shorter than
    [Conv_code.encoded_length message_length]. *)

val hamming_distance : bool array -> bool array -> int
(** Helper shared with tests: number of differing positions. *)
