module Json = Dssoc_json.Json

let qtest = QCheck_alcotest.to_alcotest

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected parse error: %s" (Json.error_to_string e)

let parse_err s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "expected parse error on %S" s
  | Error e -> e

let test_literals () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok "false" = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Int 42);
  Alcotest.(check bool) "negative" true (parse_ok "-17" = Json.Int (-17));
  Alcotest.(check bool) "float" true (parse_ok "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "exponent" true (parse_ok "1e3" = Json.Float 1000.0);
  Alcotest.(check bool) "string" true (parse_ok {|"hi"|} = Json.String "hi")

let test_containers () =
  Alcotest.(check bool) "empty list" true (parse_ok "[]" = Json.List []);
  Alcotest.(check bool) "empty obj" true (parse_ok "{}" = Json.Obj []);
  Alcotest.(check bool) "nested" true
    (parse_ok {|{"a": [1, 2], "b": {"c": null}}|}
    = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.Obj [ ("c", Json.Null) ]) ])

let test_order_preserved () =
  let v = parse_ok {|{"z": 1, "a": 2, "m": 3}|} in
  Alcotest.(check (list string)) "member order" [ "z"; "a"; "m" ] (Json.keys v)

let test_escapes () =
  Alcotest.(check bool) "basic escapes" true
    (parse_ok {|"a\nb\t\"\\"|} = Json.String "a\nb\t\"\\");
  Alcotest.(check bool) "unicode" true (parse_ok {|"A"|} = Json.String "A");
  Alcotest.(check bool) "2-byte utf8" true (parse_ok {|"é"|} = Json.String "\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80")

let test_errors () =
  ignore (parse_err "");
  ignore (parse_err "{");
  ignore (parse_err "[1,]");
  ignore (parse_err "[1 2]");
  ignore (parse_err {|{"a":1,"a":2}|});
  ignore (parse_err "tru");
  ignore (parse_err "1.2.3");
  ignore (parse_err {|"unterminated|});
  ignore (parse_err "1 trailing");
  let e = parse_err "[\n  1,\n  oops\n]" in
  Alcotest.(check int) "error line" 3 e.Json.line

let test_listing1_style () =
  (* A fragment shaped like the paper's Listing 1. *)
  let src =
    {|{
  "AppName": "range_detection",
  "SharedObject": "range_detection.so",
  "Variables": {
    "n_samples": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0, "val": [0, 1, 0, 0]},
    "lfm_waveform": {"bytes": 8, "is_ptr": true, "ptr_alloc_bytes": 2048, "val": []}
  },
  "DAG": {
    "LFM": {
      "arguments": ["n_samples", "lfm_waveform"],
      "predecessors": [],
      "successors": ["FFT_1"],
      "platforms": [{"name": "cpu", "runfunc": "range_detect_LFM"}]
    }
  }
}|}
  in
  let v = parse_ok src in
  let app_name = Result.bind (Json.member "AppName" v) Json.to_str in
  Alcotest.(check bool) "AppName" true (app_name = Ok "range_detection");
  let nsamp =
    Result.bind (Json.member "Variables" v) (fun vars ->
        Result.bind (Json.member "n_samples" vars) (fun ns ->
            Result.bind (Json.member "val" ns) Json.to_list))
  in
  Alcotest.(check bool) "val bytes" true
    (nsamp = Ok [ Json.Int 0; Json.Int 1; Json.Int 0; Json.Int 0 ])

let test_accessors () =
  let v = parse_ok {|{"i": 3, "f": 1.5, "s": "x", "b": true, "l": [1]}|} in
  Alcotest.(check bool) "to_int" true (Result.bind (Json.member "i" v) Json.to_int = Ok 3);
  Alcotest.(check bool) "int as float" true (Result.bind (Json.member "i" v) Json.to_float = Ok 3.0);
  Alcotest.(check bool) "to_float" true (Result.bind (Json.member "f" v) Json.to_float = Ok 1.5);
  Alcotest.(check bool) "to_str" true (Result.bind (Json.member "s" v) Json.to_str = Ok "x");
  Alcotest.(check bool) "to_bool" true (Result.bind (Json.member "b" v) Json.to_bool = Ok true);
  Alcotest.(check bool) "missing member" true (Result.is_error (Json.member "zz" v));
  Alcotest.(check bool) "type error" true (Result.is_error (Result.bind (Json.member "s" v) Json.to_int));
  Alcotest.(check bool) "member_opt" true (Json.member_opt "i" v = Some (Json.Int 3));
  Alcotest.(check bool) "member_opt none" true (Json.member_opt "zz" v = None)

(* Generator of arbitrary JSON values with printable strings. *)
let gen_json =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 0 then
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
                map (fun f -> Json.Float (Float.of_int f /. 16.0)) (int_range (-10000) 10000);
                map (fun s -> Json.String s) str;
              ]
          else
            oneof
              [
                map (fun l -> Json.List l) (list_size (int_range 0 4) (self (size / 2)));
                map
                  (fun kvs ->
                    (* unique keys *)
                    let seen = Hashtbl.create 4 in
                    Json.Obj
                      (List.filter
                         (fun (k, _) ->
                           if Hashtbl.mem seen k then false
                           else begin
                             Hashtbl.add seen k ();
                             true
                           end)
                         kvs))
                  (list_size (int_range 0 4) (pair str (self (size / 2))));
              ])
        size)

let arb_json = QCheck.make ~print:(fun j -> Json.to_string j) gen_json

let prop_roundtrip_pretty =
  QCheck.Test.make ~name:"parse (to_string v) = v" ~count:300 arb_json (fun v ->
      Json.parse (Json.to_string v) = Ok v)

let prop_roundtrip_minified =
  QCheck.Test.make ~name:"parse (to_string ~minify v) = v" ~count:300 arb_json (fun v ->
      Json.parse (Json.to_string ~minify:true v) = Ok v)

let () =
  Alcotest.run "json"
    [
      ( "parse",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "containers" `Quick test_containers;
          Alcotest.test_case "member order" `Quick test_order_preserved;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "listing-1 fragment" `Quick test_listing1_style;
        ] );
      ( "access",
        [ Alcotest.test_case "accessors" `Quick test_accessors ] );
      ( "roundtrip",
        [ qtest prop_roundtrip_pretty; qtest prop_roundtrip_minified ] );
    ]
