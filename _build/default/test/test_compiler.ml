module Lexer = Dssoc_compiler.Lexer
module Parser = Dssoc_compiler.Parser
module Ast = Dssoc_compiler.Ast
module Ir = Dssoc_compiler.Ir
module Interp = Dssoc_compiler.Interp
module Kernel_detect = Dssoc_compiler.Kernel_detect
module Outline = Dssoc_compiler.Outline
module Recognize = Dssoc_compiler.Recognize
module Dag_gen = Dssoc_compiler.Dag_gen
module Driver = Dssoc_compiler.Driver
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Task = Dssoc_runtime.Task
module Store = Dssoc_apps.Store
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config

let qtest = QCheck_alcotest.to_alcotest

let det_engine = Emulator.virtual_seeded ~jitter:0.0 1L

(* ---------------------- Lexer ---------------------- *)

let test_lexer_tokens () =
  match Lexer.tokenize "int x = 42; // comment\nfloat y = 1.5e2; /* block */ x <= y && !z" with
  | Error msg -> Alcotest.fail msg
  | Ok toks ->
    let kinds = List.map (fun (t : Lexer.located) -> Lexer.token_to_string t.Lexer.tok) toks in
    Alcotest.(check (list string)) "token stream"
      [ "int"; "x"; "="; "42"; ";"; "float"; "y"; "="; "150."; ";"; "x"; "<="; "y"; "&&"; "!"; "z"; "<eof>" ]
      kinds

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true (Result.is_error (Lexer.tokenize "int x = @;"));
  Alcotest.(check bool) "unterminated comment" true (Result.is_error (Lexer.tokenize "/* foo"))

let test_lexer_line_numbers () =
  match Lexer.tokenize "a\nb\nc" with
  | Ok [ _; b; _; _ ] -> Alcotest.(check int) "line of b" 2 b.Lexer.line
  | _ -> Alcotest.fail "unexpected token count"

(* ---------------------- Parser ---------------------- *)

let parse_ok s =
  match Parser.parse s with Ok p -> p | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_parser_precedence () =
  match parse_ok "x = 1 + 2 * 3;" with
  | [ Ast.Assign { value = Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3)); _ } ] ->
    ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parser_main_wrapper () =
  let bare = parse_ok "int x = 1;" in
  let wrapped = parse_ok "int main() { int x = 1; return 0; }" in
  Alcotest.(check int) "wrapper adds return" (List.length bare + 1) (List.length wrapped)

let test_parser_structures () =
  let p =
    parse_ok
      "int n = 4; float a[4]; for (int i = 0; i < n; i = i + 1) { a[i] = i; } if (n > 2) { n = 0; } else { n = 1; } while (n < 3) { n = n + 1; }"
  in
  Alcotest.(check int) "statement count" 5 (List.length p)

let test_parser_malloc () =
  match parse_ok "float *p = malloc(4 * 10);" with
  | [ Ast.Decl_malloc { name = "p"; ty = Ast.Tfloat; _ } ] -> ()
  | _ -> Alcotest.fail "malloc decl"

let test_parser_errors () =
  Alcotest.(check bool) "missing semi" true (Result.is_error (Parser.parse "int x = 1"));
  Alcotest.(check bool) "unknown function" true (Result.is_error (Parser.parse "x = foo(1);"));
  Alcotest.(check bool) "bad array size" true (Result.is_error (Parser.parse "int a[n];"));
  Alcotest.(check bool) "garbage" true (Result.is_error (Parser.parse "%%%"))

(* ---------------------- IR ---------------------- *)

let test_ir_loop_structure () =
  let ir = Ir.lower (parse_ok "int i = 0; for (i = 0; i < 3; i = i + 1) { i = i; } i = 9;") in
  (* entry, header, body, exit + final return block layout *)
  Alcotest.(check bool) "several blocks" true (Ir.block_count ir >= 4);
  (* every block's forward successors have larger bids except loop back-edges *)
  Array.iter
    (fun (blk : Ir.block) ->
      List.iter
        (fun s ->
          if s < blk.Ir.bid then
            (* back-edge target must be a branch header *)
            match ir.Ir.blocks.(s).Ir.term with
            | Ir.Branch _ -> ()
            | _ -> Alcotest.fail "backward edge to non-header")
        (Ir.successors blk))
    ir.Ir.blocks

let prop_lowering_monotone_joins =
  (* If/else and loops keep ids ordered: for structured random programs
     the entry block is 0 and every block is reachable. *)
  QCheck.Test.make ~name:"lowered blocks are dense and entry is 0" ~count:50
    (QCheck.make ~print:(fun d -> string_of_int d) QCheck.Gen.(int_range 0 3))
    (fun depth ->
      let rec gen_src d =
        if d = 0 then "x = x + 1;"
        else
          Printf.sprintf
            "if (x < 5) { %s } else { %s } for (int i = 0; i < 2; i = i + 1) { %s }"
            (gen_src (d - 1)) (gen_src (d - 1)) (gen_src (d - 1))
      in
      let src = "int x = 0;" ^ gen_src depth in
      let ir = Ir.lower (parse_ok src) in
      ir.Ir.entry = 0
      && Array.for_all
           (fun (b : Ir.block) -> List.for_all (fun s -> s >= 0 && s < Ir.block_count ir) (Ir.successors b))
           ir.Ir.blocks)

let test_instr_reads_writes () =
  let i = Ir.Assign { name = "a"; index = Some (Ast.Var "i"); value = Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int_lit 1) } in
  Alcotest.(check (list string)) "reads" [ "i"; "x" ] (Ir.instr_reads i);
  Alcotest.(check (option string)) "writes" (Some "a") (Ir.instr_writes i)

(* ---------------------- Interpreter ---------------------- *)

let run_src ?(inputs = []) src =
  Interp.run ~trace:true ~inputs (Ir.lower (parse_ok src))

let scalar_int outcome name =
  match Hashtbl.find_opt outcome.Interp.env name with
  | Some (Interp.Scalar { contents = Interp.Vint i }) -> i
  | _ -> Alcotest.failf "missing int %s" name

let test_interp_arithmetic () =
  let o = run_src "int x = 0; x = 2 + 3 * 4; int y = x % 5; int z = 0 - 7 / 2;" in
  Alcotest.(check int) "x" 14 (scalar_int o "x");
  Alcotest.(check int) "y" 4 (scalar_int o "y");
  Alcotest.(check int) "z" (-3) (scalar_int o "z")

let test_interp_factorial () =
  let o = run_src "int f = 1; for (int i = 1; i <= 6; i = i + 1) { f = f * i; }" in
  Alcotest.(check int) "6!" 720 (scalar_int o "f")

let test_interp_while_if () =
  let o = run_src "int n = 27; int steps = 0; while (n != 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } steps = steps + 1; }" in
  Alcotest.(check int) "collatz(27)" 111 (scalar_int o "steps")

let test_interp_arrays_and_malloc () =
  let o =
    run_src
      "int n = 8; float a[8]; float *b = malloc(4 * n); int i = 0; for (i = 0; i < n; i = i + 1) { a[i] = i * 2; b[i] = a[i] + 1; } float s = 0.0; for (i = 0; i < n; i = i + 1) { s = s + b[i]; }"
  in
  match Hashtbl.find_opt o.Interp.env "s" with
  | Some (Interp.Scalar { contents = Interp.Vfloat s }) ->
    Alcotest.(check (float 1e-9)) "sum" 64.0 s
  | _ -> Alcotest.fail "missing s"

let test_interp_channels () =
  let o =
    run_src ~inputs:[ (0, [| 1.0; 2.0; 3.0 |]) ]
      "float s = 0.0; for (int i = 0; i < 3; i = i + 1) { s = s + read_ch(0, i); } write_ch(1, 0, s);"
  in
  match List.assoc_opt 1 o.Interp.outputs with
  | Some arr -> Alcotest.(check (float 1e-9)) "sum written" 6.0 arr.(0)
  | None -> Alcotest.fail "no output channel"

let test_interp_errors () =
  let expect_err src =
    Alcotest.(check bool) src true
      (try
         ignore (run_src src);
         false
       with Interp.Runtime_error _ -> true)
  in
  expect_err "int x = y;";
  expect_err "float a[4]; a[9] = 1.0;";
  expect_err "int x = 1 / 0;";
  expect_err "float s = read_ch(0, 0);";
  expect_err "int x = 0; while (1 == 1) { x = x + 1; }"

let test_interp_trace_counts () =
  let o = run_src "int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; }" in
  let trace = Option.get o.Interp.trace in
  Alcotest.(check bool) "trace nonempty" true (Array.length trace.Interp.blocks > 10);
  Alcotest.(check bool) "ops counted" true (trace.Interp.total_ops > 20)

(* ---------------------- Detection / outlining on the case-study app -------- *)

let conv_cache = lazy (
  let inputs = Driver.range_detection_inputs () in
  ( Result.get_ok (Driver.convert ~optimize:false ~name:"rdm" ~source:Driver.range_detection_source ~inputs ()),
    Result.get_ok (Driver.convert ~optimize:true ~name:"rdm_opt" ~source:Driver.range_detection_source ~inputs ()) ))

let test_detects_six_kernels () =
  let conv, _ = Lazy.force conv_cache in
  let kernels = conv.Driver.detection.Kernel_detect.kernels in
  Alcotest.(check int) "6 kernels as in Case Study 4" 6 (List.length kernels);
  Alcotest.(check int) "3 file-I/O kernels" 3
    (List.length (List.filter (fun k -> k.Kernel_detect.does_io) kernels))

let test_dft_kernels_share_digest () =
  let conv, _ = Lazy.force conv_cache in
  let non_io =
    List.filter (fun (g : Outline.group) ->
        match g.Outline.kind with Outline.Kernel k -> not k.Kernel_detect.does_io | Outline.Cold -> false)
      conv.Driver.groups
  in
  match non_io with
  | [ dft1; dft2; _idft ] ->
    let d1 = Recognize.digest ~ir:conv.Driver.ir ~group:dft1 in
    let d2 = Recognize.digest ~ir:conv.Driver.ir ~group:dft2 in
    Alcotest.(check string) "identical normalized digests (hash-based recognition)" d1 d2;
    let d3 = Recognize.digest ~ir:conv.Driver.ir ~group:_idft in
    Alcotest.(check bool) "fused kernel digest differs" true (d3 <> d1)
  | l -> Alcotest.failf "expected 3 compute kernels, got %d" (List.length l)

let test_classification () =
  let conv, _ = Lazy.force conv_cache in
  let consts = Dag_gen.fold_constants conv.Driver.ir in
  Alcotest.(check (option int)) "n folded" (Some 512) (Hashtbl.find_opt consts "n");
  let classes =
    List.filter_map
      (fun (g : Outline.group) ->
        match g.Outline.kind with
        | Outline.Cold -> None
        | Outline.Kernel _ -> Some (Recognize.classify ~ir:conv.Driver.ir ~consts ~group:g))
      conv.Driver.groups
  in
  let dfts = List.filter (function Recognize.Pure_dft _ -> true | _ -> false) classes in
  let ios = List.filter (function Recognize.Io_kernel -> true | _ -> false) classes in
  let opaque = List.filter (function Recognize.Opaque -> true | _ -> false) classes in
  Alcotest.(check int) "2 pure DFTs" 2 (List.length dfts);
  Alcotest.(check int) "3 io kernels" 3 (List.length ios);
  Alcotest.(check int) "1 opaque (fused IDFT)" 1 (List.length opaque);
  List.iter
    (function
      | Recognize.Pure_dft info ->
        Alcotest.(check int) "n = 512" 512 info.Recognize.n;
        Alcotest.(check bool) "forward" false info.Recognize.inverse
      | _ -> ())
    dfts

let test_optimized_substitutions () =
  let _, conv = Lazy.force conv_cache in
  Alcotest.(check int) "two substitutions" 2 (List.length conv.Driver.substitutions);
  Alcotest.(check bool) "nodes exist" true
    (List.for_all
       (fun (n, _) -> List.exists (fun (nd : App_spec.node) -> nd.App_spec.node_name = n) conv.Driver.spec.App_spec.nodes)
       conv.Driver.substitutions);
  (* substituted nodes carry an fft accelerator platform entry *)
  List.iter
    (fun (name, _) ->
      let node = App_spec.node conv.Driver.spec name in
      Alcotest.(check bool) "has accel entry" true
        (List.exists (fun e -> e.App_spec.platform = "fft") node.App_spec.platforms))
    conv.Driver.substitutions

let test_generated_spec_valid () =
  let conv, conv_opt = Lazy.force conv_cache in
  Alcotest.(check bool) "unopt validates" true (Result.is_ok (App_spec.validate conv.Driver.spec));
  Alcotest.(check bool) "opt validates" true (Result.is_ok (App_spec.validate conv_opt.Driver.spec));
  (* linear chain: every non-entry node has exactly one predecessor *)
  List.iteri
    (fun i (n : App_spec.node) ->
      Alcotest.(check int) "chain arity" (if i = 0 then 0 else 1) (List.length n.App_spec.predecessors))
    conv.Driver.spec.App_spec.nodes

let run_dag spec =
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
  let wl = Workload.validation [ (spec, 1) ] in
  Result.get_ok (Emulator.run_detailed ~engine:det_engine ~config ~workload:wl ())

let check_outputs_match conv store =
  (* channel 2 (correlation profile) and channel 3 (best) must equal the
     direct monolithic interpretation *)
  List.iter
    (fun (c, expected) ->
      let got = Store.get_f32_array store (Printf.sprintf "__out_ch%d" c) in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. got.(i)) > 1e-3 *. Float.max 1.0 (Float.abs v) then
            Alcotest.failf "channel %d index %d: %f vs %f" c i v got.(i))
        expected)
    conv.Driver.reference_outputs

let test_dag_execution_matches_reference () =
  let conv, _ = Lazy.force conv_cache in
  let _, instances = run_dag conv.Driver.spec in
  check_outputs_match conv instances.(0).Task.store

let test_optimized_dag_matches_reference () =
  let _, conv_opt = Lazy.force conv_cache in
  let _, instances = run_dag conv_opt.Driver.spec in
  check_outputs_match conv_opt instances.(0).Task.store;
  (* the substituted FFT path still finds the right echo delay *)
  let ch3 = Store.get_f32_array instances.(0).Task.store "__out_ch3" in
  Alcotest.(check int) "best = echo delay" Driver.range_detection_echo_delay
    (int_of_float ch3.(0))

let test_substitution_speedup () =
  let conv, conv_opt = Lazy.force conv_cache in
  let r0, _ = run_dag conv.Driver.spec in
  let r1, _ = run_dag conv_opt.Driver.spec in
  let node_time (r : Stats.report) name =
    let t = List.find (fun (t : Stats.task_record) -> t.Stats.node = name) r.Stats.records in
    t.Stats.completed_ns - t.Stats.dispatched_ns
  in
  let naive = node_time r0 "KERNEL_5" in
  let opt = node_time r1 "DFT_5" in
  let speedup = float_of_int naive /. float_of_int opt in
  Alcotest.(check bool) "speedup ~100x" true (speedup > 80.0 && speedup < 130.0)

let test_linear_chain_rejection () =
  (* A hot loop revisited after other work breaks the chain: outlining
     must refuse rather than emit a wrong DAG. *)
  let src =
    "int s = 0; int j = 0; for (j = 0; j < 200; j = j + 1) { for (int i = 0; i < 100; i = i + 1) { s = s + i; } s = s - 1; }"
  in
  (* inner loop is one kernel entered 200 times with cold code between *)
  match Driver.convert ~name:"bad" ~source:src ~inputs:[] () with
  | Error _ -> ()
  | Ok conv ->
    (* acceptable alternative: detection merged everything into one
       kernel, in which case the chain is fine *)
    Alcotest.(check bool) "single merged kernel" true
      (List.length conv.Driver.detection.Kernel_detect.kernels <= 1
      || List.length conv.Driver.groups <= 3)

let test_convert_reports_missing_inputs () =
  match Driver.convert ~name:"x" ~source:"float v = read_ch(5, 0);" ~inputs:[] () with
  | Error msg -> Alcotest.(check bool) "mentions channel" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected missing-channel error"

(* ---------------------- parallelization (Deps) ---------------------- *)

let par_conv_cache = lazy (
  let inputs = Driver.range_detection_inputs () in
  Result.get_ok
    (Driver.convert ~optimize:false ~parallelize:true ~name:"rdm_par"
       ~source:Driver.range_detection_source ~inputs ()))

let test_merge_prologues () =
  let conv, _ = Lazy.force conv_cache in
  let merged =
    Dssoc_compiler.Outline.merge_prologues ~ir:conv.Driver.ir
      ~trace:(Option.get (Interp.run ~trace:true ~inputs:(Driver.range_detection_inputs ())
                            conv.Driver.ir).Interp.trace)
      conv.Driver.groups
  in
  Alcotest.(check bool) "fewer groups after merging" true
    (List.length merged < List.length conv.Driver.groups);
  (* gids re-densified *)
  List.iteri (fun i g -> Alcotest.(check int) "dense gid" i g.Outline.gid) merged

let test_group_liveness_privatises_counters () =
  let conv = Lazy.force par_conv_cache in
  (* The merged DFT kernel writes its loop counter before reading it,
     so k/t/sr/si must not be live-in; the input arrays must be. *)
  let dft_group =
    List.find
      (fun (g : Outline.group) ->
        match g.Outline.kind with
        | Outline.Kernel k -> (not k.Kernel_detect.does_io) && g.Outline.gid = 3
        | Outline.Cold -> false)
      (Dssoc_compiler.Outline.merge_prologues ~ir:conv.Driver.ir
         ~trace:(Option.get (Interp.run ~trace:true ~inputs:(Driver.range_detection_inputs ())
                               conv.Driver.ir).Interp.trace)
         (let base = Result.get_ok
              (Driver.convert ~optimize:false ~name:"rdm_tmp" ~source:Driver.range_detection_source
                 ~inputs:(Driver.range_detection_inputs ()) ()) in
          base.Driver.groups))
  in
  let access = Dssoc_compiler.Deps.group_access conv.Driver.ir dft_group in
  let live = access.Dssoc_compiler.Deps.live_in in
  Alcotest.(check bool) "loop counter privatised" false (List.mem "k" live);
  Alcotest.(check bool) "accumulator privatised" false (List.mem "sr" live);
  Alcotest.(check bool) "input array live-in" true (List.mem "wave_re" live);
  Alcotest.(check bool) "bound live-in" true (List.mem "n" live)

let test_parallel_dag_structure () =
  let conv = Lazy.force par_conv_cache in
  let spec = conv.Driver.spec in
  Alcotest.(check bool) "valid" true (Result.is_ok (App_spec.validate spec));
  Alcotest.(check bool) "shorter critical path than node count" true
    (App_spec.critical_path_length spec < App_spec.task_count spec);
  (* The two DFT kernels must not depend on each other. *)
  let kern_names =
    List.filter_map
      (fun (n : App_spec.node) ->
        if String.length n.App_spec.node_name >= 6 && String.sub n.App_spec.node_name 0 6 = "KERNEL"
        then Some n
        else None)
      spec.App_spec.nodes
  in
  match kern_names with
  | a :: b :: _ ->
    Alcotest.(check bool) "DFT kernels independent" false
      (List.mem a.App_spec.node_name b.App_spec.predecessors
      || List.mem b.App_spec.node_name a.App_spec.predecessors)
  | _ -> Alcotest.fail "expected at least two compute kernels"

let test_parallel_dag_outputs_match () =
  let conv = Lazy.force par_conv_cache in
  let _, instances = run_dag conv.Driver.spec in
  check_outputs_match conv instances.(0).Task.store

let test_parallel_beats_sequential () =
  let conv_seq, _ = Lazy.force conv_cache in
  let conv_par = Lazy.force par_conv_cache in
  let r_seq, _ = run_dag conv_seq.Driver.spec in
  let r_par, _ = run_dag conv_par.Driver.spec in
  Alcotest.(check bool) "parallel DAG finishes earlier" true
    (r_par.Stats.makespan_ns < r_seq.Stats.makespan_ns)

let test_parallel_with_scheduler_variants () =
  (* The parallel DAG must stay correct under every policy. *)
  let conv = Lazy.force par_conv_cache in
  List.iter
    (fun policy ->
      let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
      let wl = Workload.validation [ (conv.Driver.spec, 1) ] in
      match Emulator.run_detailed ~engine:det_engine ~policy ~config ~workload:wl () with
      | Error msg -> Alcotest.fail msg
      | Ok (_, instances) ->
        let ch3 = Store.get_f32_array instances.(0).Task.store "__out_ch3" in
        Alcotest.(check int) (policy ^ " correct") Driver.range_detection_echo_delay
          (int_of_float ch3.(0)))
    [ "FRFS"; "MET"; "EFT"; "RANDOM"; "POWER" ]

(* Random pipeline programs: N loop stages, each reading one of the
   previously written arrays, then a dump stage per array.  Whatever
   dependence structure falls out, the parallelized DAG must reproduce
   the monolithic run's outputs exactly. *)
let prop_parallel_conversion_equivalence =
  QCheck.Test.make ~name:"parallel conversion preserves semantics" ~count:8
    (QCheck.make
       ~print:(fun wiring -> String.concat ";" (List.map string_of_int wiring))
       QCheck.Gen.(list_size (int_range 2 4) (int_range 0 2)))
    (fun wiring ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "int n = 96; int i = 0; float a0[96];\n";
      Buffer.add_string buf "for (i = 0; i < n; i = i + 1) { a0[i] = read_ch(0, i); }\n";
      List.iteri
        (fun stage src ->
          let src = min src stage in
          Buffer.add_string buf (Printf.sprintf "float a%d[96];\n" (stage + 1));
          Buffer.add_string buf
            (Printf.sprintf
               "for (i = 0; i < n; i = i + 1) { a%d[i] = a%d[i] * 2.0 + %d.0; }\n" (stage + 1)
               src stage))
        wiring;
      List.iteri
        (fun stage _ ->
          Buffer.add_string buf
            (Printf.sprintf "for (i = 0; i < n; i = i + 1) { write_ch(%d, i, a%d[i]); }\n"
               (stage + 1) (stage + 1)))
        wiring;
      let source = Buffer.contents buf in
      let inputs = [ (0, Array.init 96 (fun i -> float_of_int i /. 7.0)) ] in
      match Driver.convert ~optimize:false ~parallelize:true ~name:"pipe" ~source ~inputs () with
      | Error _ -> QCheck.Test.fail_report "conversion failed"
      | Ok conv ->
        let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:0 in
        let wl = Workload.validation [ (conv.Driver.spec, 1) ] in
        (match Emulator.run_detailed ~engine:det_engine ~config ~workload:wl () with
        | Error _ -> QCheck.Test.fail_report "emulation failed"
        | Ok (_, instances) ->
          let store = instances.(0).Task.store in
          List.for_all
            (fun (c, expected) ->
              let got = Store.get_f32_array store (Printf.sprintf "__out_ch%d" c) in
              Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-4) expected
                (Array.sub got 0 (Array.length expected)))
            conv.Driver.reference_outputs
          ||
          (ignore (QCheck.Test.fail_report "outputs diverge");
           false)))

let test_pipeline_stage_independence () =
  (* Two stages both reading a0 must be mutually independent in the
     generated DAG. *)
  let source =
    "int n = 96; int i = 0; float a0[96]; float a1[96]; float a2[96];\n\
     for (i = 0; i < n; i = i + 1) { a0[i] = read_ch(0, i); }\n\
     for (i = 0; i < n; i = i + 1) { a1[i] = a0[i] + 1.0; }\n\
     for (i = 0; i < n; i = i + 1) { a2[i] = a0[i] + 2.0; }\n\
     for (i = 0; i < n; i = i + 1) { write_ch(1, i, a1[i] + a2[i]); }"
  in
  let inputs = [ (0, Array.init 96 float_of_int) ] in
  match Driver.convert ~optimize:false ~parallelize:true ~name:"indep" ~source ~inputs () with
  | Error msg -> Alcotest.fail msg
  | Ok conv ->
    let spec = conv.Driver.spec in
    (* critical path shorter than the chain proves the middle stages
       were recognised as independent *)
    Alcotest.(check bool) "stages parallelised" true
      (App_spec.critical_path_length spec < App_spec.task_count spec)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_summary_text () =
  let _, conv_opt = Lazy.force conv_cache in
  let s = Driver.summary conv_opt in
  Alcotest.(check bool) "mentions kernels" true (contains_substring s "kernels detected");
  Alcotest.(check bool) "mentions substitution" true (contains_substring s "fft_lib.so")

let () =
  Alcotest.run "compiler"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "main wrapper" `Quick test_parser_main_wrapper;
          Alcotest.test_case "structures" `Quick test_parser_structures;
          Alcotest.test_case "malloc" `Quick test_parser_malloc;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "ir",
        [
          Alcotest.test_case "loop structure" `Quick test_ir_loop_structure;
          qtest prop_lowering_monotone_joins;
          Alcotest.test_case "reads/writes" `Quick test_instr_reads_writes;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "factorial" `Quick test_interp_factorial;
          Alcotest.test_case "collatz" `Quick test_interp_while_if;
          Alcotest.test_case "arrays + malloc" `Quick test_interp_arrays_and_malloc;
          Alcotest.test_case "channels" `Quick test_interp_channels;
          Alcotest.test_case "runtime errors" `Quick test_interp_errors;
          Alcotest.test_case "trace counts" `Quick test_interp_trace_counts;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "six kernels" `Slow test_detects_six_kernels;
          Alcotest.test_case "DFT digests equal" `Slow test_dft_kernels_share_digest;
          Alcotest.test_case "classification" `Slow test_classification;
          Alcotest.test_case "substitutions" `Slow test_optimized_substitutions;
          Alcotest.test_case "spec validity" `Slow test_generated_spec_valid;
          Alcotest.test_case "DAG matches reference" `Slow test_dag_execution_matches_reference;
          Alcotest.test_case "optimized DAG matches reference" `Slow test_optimized_dag_matches_reference;
          Alcotest.test_case "substitution speedup ~100x" `Slow test_substitution_speedup;
          Alcotest.test_case "non-linear chain rejected" `Slow test_linear_chain_rejection;
          Alcotest.test_case "missing inputs" `Quick test_convert_reports_missing_inputs;
          Alcotest.test_case "summary" `Slow test_summary_text;
        ] );
      ( "parallelization",
        [
          Alcotest.test_case "prologue merging" `Slow test_merge_prologues;
          Alcotest.test_case "liveness privatises counters" `Slow test_group_liveness_privatises_counters;
          Alcotest.test_case "parallel DAG structure" `Slow test_parallel_dag_structure;
          Alcotest.test_case "outputs match reference" `Slow test_parallel_dag_outputs_match;
          Alcotest.test_case "beats sequential" `Slow test_parallel_beats_sequential;
          Alcotest.test_case "correct under all policies" `Slow test_parallel_with_scheduler_variants;
          Alcotest.test_case "stage independence" `Quick test_pipeline_stage_independence;
          qtest prop_parallel_conversion_equivalence;
        ] );
    ]
