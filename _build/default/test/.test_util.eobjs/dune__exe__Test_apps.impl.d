test/test_apps.ml: Alcotest Array Dssoc_apps Dssoc_dsp Dssoc_util Filename Float Fun Int64 List Printf QCheck QCheck_alcotest Result Sys
