test/test_soc.ml: Alcotest Dssoc_soc Float List QCheck QCheck_alcotest Result
