test/test_json.ml: Alcotest Dssoc_json Float Hashtbl List QCheck QCheck_alcotest Result
