test/test_dsp.ml: Alcotest Array Dssoc_dsp Dssoc_util Float Int64 List Printf QCheck QCheck_alcotest Result
