test/test_runtime.ml: Alcotest Array Dssoc_apps Dssoc_json Dssoc_runtime Dssoc_soc Dssoc_util Int64 List Printf QCheck QCheck_alcotest Result String
