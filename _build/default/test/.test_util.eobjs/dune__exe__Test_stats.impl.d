test/test_stats.ml: Alcotest Array Dssoc_stats Float List QCheck QCheck_alcotest String
