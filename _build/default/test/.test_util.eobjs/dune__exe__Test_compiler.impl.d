test/test_compiler.ml: Alcotest Array Buffer Dssoc_apps Dssoc_compiler Dssoc_runtime Dssoc_soc Float Hashtbl Lazy List Option Printf QCheck QCheck_alcotest Result String
