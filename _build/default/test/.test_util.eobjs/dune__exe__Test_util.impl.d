test/test_util.ml: Alcotest Array Dssoc_util Float Int64 List QCheck QCheck_alcotest
