(* Case Study 4: automatic conversion of monolithic, unlabeled C code
   into a framework-ready DAG application, with hash-based kernel
   recognition substituting the naive for-loop DFTs by an optimized
   FFT library call and an FFT-accelerator platform entry.

   Run with:  dune exec examples/auto_convert.exe *)

module Driver = Dssoc_compiler.Driver
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Task = Dssoc_runtime.Task

let engine = Emulator.virtual_seeded ~jitter:0.0 1L

let run spec =
  (* The paper targets a 3 core + 1 FFT ZCU102 configuration. *)
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
  let workload = Workload.validation [ (spec, 1) ] in
  Result.get_ok (Emulator.run_detailed ~engine ~config ~workload ())

let node_us (report : Stats.report) name =
  match List.find_opt (fun (t : Stats.task_record) -> t.Stats.node = name) report.Stats.records with
  | Some t -> float_of_int (t.Stats.completed_ns - t.Stats.dispatched_ns) /. 1e3
  | None -> nan

let () =
  Format.printf "--- monolithic input (%d lines of unlabeled C) ---@."
    (List.length (String.split_on_char '\n' Driver.range_detection_source));
  let inputs = Driver.range_detection_inputs () in
  let conv =
    Result.get_ok
      (Driver.convert ~optimize:false ~name:"rd_monolithic" ~source:Driver.range_detection_source
         ~inputs ())
  in
  let conv_opt =
    Result.get_ok
      (Driver.convert ~optimize:true ~name:"rd_monolithic_opt" ~source:Driver.range_detection_source
         ~inputs ())
  in
  print_string (Driver.summary conv_opt);
  let r0, _ = run conv.Driver.spec in
  let r1, inst1 = run conv_opt.Driver.spec in
  Format.printf "@.naive DAG:      %8.3f ms end to end@." (float_of_int r0.Stats.makespan_ns /. 1e6);
  Format.printf "optimized DAG:  %8.3f ms end to end@." (float_of_int r1.Stats.makespan_ns /. 1e6);
  List.iter2
    (fun naive opt ->
      let t0 = node_us r0 naive and t1 = node_us r1 opt in
      Format.printf "  %s: %8.1f us -> %6.1f us   (%.0fx speedup)@." opt t0 t1 (t0 /. t1))
    [ "KERNEL_5"; "KERNEL_7" ] [ "DFT_5"; "DFT_7" ];
  (* Functional verification: the converted, substituted application
     still finds the target at the right range bin. *)
  let ch3 = Store.get_f32_array inst1.(0).Task.store "__out_ch3" in
  Format.printf "@.detected echo delay: %d samples (ground truth %d) — output remains correct@."
    (int_of_float ch3.(0))
    Driver.range_detection_echo_delay;
  (* Future-work extension: memory-dependence analysis turns the chain
     into a parallel DAG (independent loads and DFTs run concurrently). *)
  let conv_par =
    Result.get_ok
      (Driver.convert ~optimize:true ~parallelize:true ~name:"rd_monolithic_par"
         ~source:Driver.range_detection_source ~inputs ())
  in
  let r_par, _ = run conv_par.Driver.spec in
  Format.printf
    "@.with --parallelize: %d nodes, critical path %d (was %d), makespan %.3f ms@."
    (App_spec.task_count conv_par.Driver.spec)
    (App_spec.critical_path_length conv_par.Driver.spec)
    (App_spec.critical_path_length conv_opt.Driver.spec)
    (float_of_int r_par.Stats.makespan_ns /. 1e6);
  (* Show the generated Listing-1-style JSON for one substituted node. *)
  let node = App_spec.node conv_opt.Driver.spec "DFT_5" in
  Format.printf "@.platform entries of the substituted DFT_5 node:@.";
  List.iter
    (fun (e : App_spec.platform_entry) ->
      Format.printf "  { name = %S; runfunc = %S%s }@." e.App_spec.platform e.App_spec.runfunc
        (match e.App_spec.shared_object with Some so -> Printf.sprintf "; shared_object = %S" so | None -> ""))
    node.App_spec.platforms
