examples/odroid_portability.mli:
