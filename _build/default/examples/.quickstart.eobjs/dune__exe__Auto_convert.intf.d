examples/auto_convert.mli:
