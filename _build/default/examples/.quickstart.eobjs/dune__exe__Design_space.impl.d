examples/design_space.ml: Array Dssoc_apps Dssoc_runtime Dssoc_soc Dssoc_stats Float Format Int64 List Sys
