examples/quickstart.ml: Array Dssoc_apps Dssoc_dsp Dssoc_json Dssoc_runtime Dssoc_soc Float Format List Result String
