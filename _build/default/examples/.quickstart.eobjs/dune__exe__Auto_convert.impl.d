examples/auto_convert.ml: Array Dssoc_apps Dssoc_compiler Dssoc_runtime Dssoc_soc Format List Printf Result String
