examples/quickstart.mli:
