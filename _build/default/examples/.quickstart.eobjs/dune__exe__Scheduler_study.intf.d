examples/scheduler_study.mli:
