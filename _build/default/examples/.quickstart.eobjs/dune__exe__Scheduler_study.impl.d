examples/scheduler_study.ml: Dssoc_apps Dssoc_runtime Dssoc_soc Dssoc_stats Format List Printf
