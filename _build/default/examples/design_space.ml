(* Case Study 1 (validation mode): sweep hypothetical ZCU102 DSSoC
   configurations for a mixed SDR workload and report execution time
   plus PE utilisation — the experiment behind Fig. 9 of the paper.

   Run with:  dune exec examples/design_space.exe [iterations] *)

module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Config = Dssoc_soc.Config
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Quantile = Dssoc_stats.Quantile
module Table = Dssoc_stats.Table

let configurations = [ (1, 0); (1, 1); (1, 2); (2, 0); (2, 1); (2, 2); (3, 0); (3, 1); (3, 2) ]

let () =
  let iterations =
    if Array.length Sys.argv > 1 then max 2 (int_of_string Sys.argv.(1)) else 20
  in
  let mix = Workload.validation (List.map (fun a -> (a, 1)) (Reference_apps.all ())) in
  Format.printf
    "Validation-mode design-space sweep (1x pulse_doppler + range_detection + wifi_tx + wifi_rx,@.\
     FRFS, %d jittered iterations per configuration)@.@."
    iterations;
  let results =
    List.map
      (fun (cores, ffts) ->
        let config = Config.zcu102_cores_ffts ~cores ~ffts in
        let samples =
          Array.init iterations (fun i ->
              let engine = Emulator.virtual_seeded (Int64.of_int (1000 + i)) in
              let r = Emulator.run_exn ~engine ~config ~workload:mix () in
              float_of_int r.Stats.makespan_ns /. 1e6)
        in
        let util =
          let r =
            Emulator.run_exn ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload:mix ()
          in
          Stats.mean_utilization_by_kind r
        in
        (config.Config.label, Quantile.boxplot samples, util))
      configurations
  in
  let scale_hi = List.fold_left (fun acc (_, b, _) -> Float.max acc b.Quantile.hi) 0.0 results in
  Format.printf "Execution time (ms) — box over %d iterations, scale 0..%.1f ms:@." iterations scale_hi;
  List.iter
    (fun (label, b, _) ->
      Format.printf "  %-12s %s  med %6.2f [%6.2f..%6.2f]@." label
        (Table.box_row ~width:46 ~scale_hi ~lo:b.Quantile.lo ~q1:b.Quantile.q1 ~med:b.Quantile.med
           ~q3:b.Quantile.q3 ~hi:b.Quantile.hi ())
        b.Quantile.med b.Quantile.lo b.Quantile.hi)
    results;
  Format.printf "@.Average PE utilisation per kind:@.";
  List.iter
    (fun (label, _, util) ->
      Format.printf "  %-12s" label;
      List.iter (fun (k, u) -> Format.printf "  %s %5.1f%%" k (100.0 *. u)) util;
      Format.printf "@.")
    results;
  Format.printf
    "@.Reading the sweep (cf. Fig. 9): CPU cores buy more than FFT accelerators at this FFT@.\
     size (DMA overhead), 2Core+2FFT barely improves on 2Core+1FFT because both accelerator@.\
     manager threads share the one remaining host core, and 3Core+0FFT has the best raw time@.\
     while 2Core+1FFT is the area-efficient alternative.@."
