(* Case Study 3 (portability): run the identical applications and
   workload traces on the Odroid XU3 big.LITTLE host model and sweep
   BIG/LITTLE cluster mixes — the experiment behind Fig. 11.

   Run with:  dune exec examples/odroid_portability.exe *)

module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Table = Dssoc_stats.Table

let mixes = [ (1, 1); (2, 1); (3, 1); (4, 1); (2, 3); (3, 2); (4, 2); (4, 3) ]

let () =
  let engine = Emulator.virtual_seeded ~jitter:0.0 1L in
  Format.printf
    "Odroid XU3 (Exynos 5422 big.LITTLE) — FRFS, performance mode.@.\
     One LITTLE core is the overlay processor; the pool offers 4 big + 3 LITTLE cores.@.@.";
  let curves =
    List.map
      (fun (big, little) ->
        let config = Config.odroid_big_little ~big ~little in
        ( config.Config.label,
          List.map
            (fun rate ->
              let wl = Workload.table2_workload ~rate () in
              let r = Emulator.run_exn ~engine ~config ~workload:wl () in
              float_of_int r.Stats.makespan_ns /. 1e6)
            Workload.table2_rates ))
      mixes
  in
  Format.printf "workload execution time (ms) vs injection rate (jobs/ms):@.";
  print_string (Table.series ~x_label:"rate" ~xs:Workload.table2_rates ~curves ());
  (* Rank at the top rate, as the paper's discussion does. *)
  let at_top = List.map (fun (l, ys) -> (l, List.nth ys (List.length ys - 1))) curves in
  let ranked = List.sort (fun (_, a) (_, b) -> compare a b) at_top in
  Format.printf "@.ranking at %.2f jobs/ms:@."
    (List.nth Workload.table2_rates (List.length Workload.table2_rates - 1));
  List.iteri (fun i (l, v) -> Format.printf "  %d. %-10s %8.2f ms@." (i + 1) l v) ranked;
  Format.printf
    "@.The same JSON applications run unmodified on this host (the generic \"cpu\" platform@.\
     entry matches both clusters).  Note the Fig. 11 anomaly: 4BIG+2LTL and 4BIG+3LTL lose@.\
     to 4BIG+1LTL because FRFS overhead grows with PE count and the slow LITTLE overlay@.\
     core pays for every extra PE on every task completion.@."
