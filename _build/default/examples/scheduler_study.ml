(* Case Study 2 (performance mode): compare FRFS, MET and EFT under
   increasing dynamic injection rates on a 3Core+2FFT ZCU102
   configuration — the experiment behind Fig. 10 and Tables I/II.

   Run with:  dune exec examples/scheduler_study.exe *)

module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module App_spec = Dssoc_apps.App_spec
module Config = Dssoc_soc.Config
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Table = Dssoc_stats.Table

let policies = [ "FRFS"; "MET"; "EFT" ]

let () =
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let engine = Emulator.virtual_seeded ~jitter:0.0 1L in
  (* Table I: standalone execution time per application. *)
  Format.printf "Standalone application runs on %s (FRFS):@.@." config.Config.label;
  let rows =
    List.map
      (fun app ->
        let wl = Workload.validation [ (app, 1) ] in
        let r = Emulator.run_exn ~engine ~config ~workload:wl () in
        [
          app.App_spec.app_name;
          Printf.sprintf "%.2f" (float_of_int r.Stats.makespan_ns /. 1e6);
          string_of_int r.Stats.task_count;
        ])
      (Reference_apps.all ())
  in
  print_string (Table.render ~header:[ "Application"; "Execution Time (ms)"; "Task Count" ] ~rows);
  (* Fig. 10: sweep the Table II injection rates. *)
  Format.printf "@.Performance mode, injection-rate sweep:@.@.";
  let results =
    List.map
      (fun rate ->
        let per_policy =
          List.map
            (fun policy ->
              let wl = Workload.table2_workload ~rate () in
              let r = Emulator.run_exn ~engine ~policy ~config ~workload:wl () in
              (policy, r))
            policies
        in
        (rate, per_policy))
      Workload.table2_rates
  in
  let exec_curves =
    List.map
      (fun policy ->
        ( policy,
          List.map
            (fun (_, per) -> float_of_int (List.assoc policy per).Stats.makespan_ns /. 1e6)
            results ))
      policies
  in
  Format.printf "(a) workload execution time (ms) vs injection rate (jobs/ms):@.";
  print_string (Table.series ~x_label:"rate" ~xs:Workload.table2_rates ~curves:exec_curves ());
  let ovh_curves =
    List.map
      (fun policy ->
        ( policy,
          List.map
            (fun (_, per) -> Stats.avg_sched_overhead_ns (List.assoc policy per) /. 1e3)
            results ))
      policies
  in
  Format.printf "@.(b) average scheduling overhead per invocation (us):@.";
  print_string (Table.series ~x_label:"rate" ~xs:Workload.table2_rates ~curves:ovh_curves ());
  Format.printf
    "@.FRFS wins despite its simplicity: without per-PE reservation queues the scheduler runs@.\
     on every task completion, so MET's O(n) and EFT's O(n^2) ready-list scans accumulate@.\
     into the workload execution time while FRFS stays at a constant per-invocation cost.@."
