(** Deterministic fork-join worker pool over OCaml 5 domains.

    The sharding substrate of the sweep engine: [n] independent work
    items are pulled from a shared queue by [jobs] domains (the
    calling domain works too, so [jobs = 1] spawns nothing).  Results
    land in an input-order array regardless of which worker evaluated
    which item. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : jobs:int -> n:int -> (int -> 'a) -> 'a array
(** [map ~jobs ~n f] evaluates [f 0 .. f (n-1)] on up to [jobs]
    domains and returns the results in index order.  [jobs] is
    clamped to \[1, n\].  If one or more applications of [f] raise,
    the remaining items still run and the exception of the
    lowest-index failure is re-raised — error behaviour, like result
    order, is independent of the worker count.  [f] must be safe to
    call from multiple domains concurrently.
    @raise Invalid_argument when [n < 0]. *)

val iter : jobs:int -> n:int -> (int -> unit) -> unit
(** [map] for effects only. *)
