(** Parallel design-space sweep engine.

    Evaluates every point of a {!Grid.t} through the deterministic
    virtual engine, sharding points across a {!Pool} of OCaml 5
    domains, and aggregates the per-point reports into a result table
    in point-enumeration order.

    Determinism contract: the same grid produces bit-identical rows —
    and therefore byte-identical {!to_csv}/{!to_json} output — for
    any worker count, because every point's randomness comes from its
    own index-derived seed and result slots are written by index. *)

type row = {
  index : int;
  config : string;
  policy : string;
  workload : string;
  replicate : int;
  seed : int64;
  makespan_ns : int;
  job_count : int;
  task_count : int;
  sched_invocations : int;
  sched_ns : int;
  wm_overhead_ns : int;
  busy_energy_mj : float;
  energy_mj : float;
  max_ready_depth : int;  (** peak live ready-queue depth (obs gauge) *)
  max_inflight : int;  (** peak dispatched-but-unmonitored task count *)
  mean_wait_us : float;  (** mean ready-to-dispatch latency *)
  p95_service_us : float;  (** p95 dispatch-to-completion latency *)
  util_by_kind : (string * float) list;  (** mean utilisation per PE kind, sorted by kind *)
  verdict : Dssoc_runtime.Stats.verdict;
      (** [Completed] on fault-free grids; under a grid fault plan,
          whether the point completed, degraded or aborted *)
  completed_fraction : float;  (** tasks completed / tasks injected, 1.0 when fault-free *)
  task_retries : int;  (** resilient-dispatch retries (0 when fault-free) *)
}

type table = { grid_label : string; rows : row list  (** in point order *) }

val run : ?jobs:int -> ?engine:[ `Virtual | `Compiled ] -> Grid.t -> table
(** Evaluate the grid on [jobs] domains (default
    {!Pool.default_jobs}; clamped to at least 1).  [engine] selects
    the evaluation backend (default [`Virtual]): [`Compiled] lowers
    each point through {!Dssoc_runtime.Compiled_engine} — the
    schedule-derived columns stay byte-identical to the virtual
    engine's, but the compiled engine rejects enabled observability,
    so the metrics-derived columns ([max_ready_depth],
    [max_inflight], [mean_wait_us], [p95_service_us]) read zero, and
    a grid fault plan aborts every point.
    @raise Invalid_argument when a point's workload cannot run on its
    configuration (reported for the lowest failing point index,
    independent of worker count). *)

val run_timed : ?jobs:int -> ?engine:[ `Virtual | `Compiled ] -> Grid.t -> table * float
(** [run] plus wall-clock seconds — kept out of {!table} so result
    tables stay byte-comparable across runs and worker counts. *)

val run_point : engine_kind:[ `Virtual | `Compiled ] -> Grid.t -> Grid.point -> row
(** Evaluate a single point (the unit of work {!run} shards).  A
    [`Virtual] point runs under a metrics-only observation bundle
    ({!Dssoc_obs.Obs}), which feeds the queueing/latency columns
    ([max_ready_depth], [max_inflight], [mean_wait_us],
    [p95_service_us]) without perturbing the deterministic virtual
    run; a [`Compiled] point runs with observation disabled. *)

val to_csv : table -> string
(** One line per point; floats rendered with fixed precision; string
    fields RFC 4180-escaped via {!Dssoc_stats.Table.csv_field}. *)

val to_json : table -> Dssoc_json.Json.t

val pp : Format.formatter -> table -> unit
(** Human-readable per-point table. *)

type summary = {
  s_config : string;
  s_policy : string;
  s_workload : string;
  n : int;  (** replicates aggregated *)
  makespan_ms : Dssoc_stats.Quantile.boxplot;
  mean_energy_mj : float;
  mean_util_by_kind : (string * float) list;
}

val summarize : table -> summary list
(** Collapse replicates: one summary per (config, policy, workload)
    cell, in grid order. *)

val pp_summary : Format.formatter -> table -> unit
