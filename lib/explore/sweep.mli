(** Parallel design-space sweep engine.

    Evaluates every point of a {!Grid.t} through the deterministic
    virtual engine, sharding points across a {!Pool} of OCaml 5
    domains, and aggregates the per-point reports into a result table
    in point-enumeration order.

    Determinism contract: the same grid produces bit-identical rows —
    and therefore byte-identical {!to_csv}/{!to_json} output — for
    any worker count, because every point's randomness comes from its
    own index-derived seed and result slots are written by index.
    The contract extends across processes and hosts: a point's result
    is content-addressed by {!point_digest} and may be served from a
    {!Cache.t} instead of being recomputed, and index shards
    ([?shard]) of one grid computed by separate processes merge
    ({!of_cache}) into a table byte-identical to a single-process
    run. *)

type row = {
  index : int;
  config : string;
  policy : string;
  workload : string;
  replicate : int;
  seed : int64;
  makespan_ns : int;
  job_count : int;
  task_count : int;
  sched_invocations : int;
  sched_ns : int;
  wm_overhead_ns : int;
  busy_energy_mj : float;
  energy_mj : float;
  max_ready_depth : int;  (** peak live ready-queue depth (obs gauge) *)
  max_inflight : int;  (** peak dispatched-but-unmonitored task count *)
  mean_wait_us : float;  (** mean ready-to-dispatch latency *)
  p95_service_us : float;  (** p95 dispatch-to-completion latency *)
  util_by_kind : (string * float) list;  (** mean utilisation per PE kind, sorted by kind *)
  verdict : Dssoc_runtime.Stats.verdict;
      (** [Completed] on fault-free grids; under a grid fault plan,
          whether the point completed, degraded or aborted *)
  completed_fraction : float;  (** tasks completed / tasks injected, 1.0 when fault-free *)
  task_retries : int;  (** resilient-dispatch retries (0 when fault-free) *)
  fabric_stall_ns : int;
      (** total ns DMA streams spent queued for a full interconnect
          FIFO (0 under {!Dssoc_soc.Fabric.Ideal}) *)
  crit_path_us : float;
      (** realized critical-path length ({!Dssoc_obs.Analyze}) — equal
          to the makespan by construction; the interesting signal is
          its decomposition, below *)
  crit_path_dma_frac : float;
      (** fraction of the critical path spent in accelerator DMA
          phases — how interconnect-bound the binding chain is *)
}

type table = { grid_label : string; rows : row list  (** in point order *) }

type engine_kind = [ `Virtual | `Compiled ]

val engine_name : engine_kind -> string

(** {1 Content addressing} *)

val point_digest : engine:engine_kind -> code_rev:string -> Grid.t -> Grid.point -> string
(** Stable digest of everything a point's row depends on: engine,
    [code_rev], platform configuration (structure, not just label),
    interconnect fabric, policy, the fully-instantiated workload
    trace, seed, jitter, reservation depth and the grid fault plan.
    Deliberately excludes the point index, so a grid grown with more
    replicates or cells re-uses every previously cached row.  The
    format tag is [dssoc-sweep-row/v3] (rows grew the critical-path
    columns and compiled points now carry real observability columns);
    v1/v2 rows never collide with v3 rows. *)

val row_payload : row -> string
(** Single-line JSON encoding of a row, floats as hex-float strings —
    {!row_of_payload} restores bit-identical values, so a cached row
    re-renders byte-identically in {!to_csv}. *)

val row_of_payload : string -> (row, string) result

(** {1 Running} *)

type stats = {
  points : int;  (** points this run covered (after shard filtering) *)
  cache_hits : int;
  cache_misses : int;  (** points actually evaluated *)
  plan_compiles : int;  (** compiled engine only: plans AOT-compiled *)
  plan_reuses : int;  (** compiled engine only: points served by a memoized plan *)
  elapsed_ns : int;  (** wall clock, {!Dssoc_util.Mclock} *)
}

val run_stats :
  ?jobs:int ->
  ?engine:engine_kind ->
  ?cache:Cache.t ->
  ?shard:int * int ->
  ?on_row:(row -> unit) ->
  Grid.t ->
  table * stats
(** Evaluate the grid on [jobs] domains (default
    {!Pool.default_jobs}; clamped to at least 1).

    [engine] selects the evaluation backend (default [`Virtual]):
    [`Compiled] lowers each grid cell through
    {!Dssoc_runtime.Compiled_engine} once per (config x policy x
    workload) per worker domain and replays the plan for every
    replicate (counted in [stats]).  Compiled runs are traced through
    the same lowered observability hooks, so every column — including
    the metrics-derived [max_ready_depth], [max_inflight],
    [mean_wait_us], [p95_service_us] and the analytics-derived
    [crit_path_us], [crit_path_dma_frac] — is byte-identical to the
    virtual engine's.  A grid fault plan still aborts every compiled
    point (outside the replay contract).

    [cache] consults the content-addressed store before evaluating a
    point and appends every newly computed row to it (flushed before
    returning), making warm re-sweeps near-free and aborted sweeps
    resumable.  [shard (i, n)] restricts the run to the deterministic
    index shard [{p | p.index mod n = i}] — combined with a cache,
    [n] separate processes cover the grid and {!of_cache} reassembles
    the full table.  [on_row] is called once per finished row
    (cached or computed), serialized but in completion order — the
    hook for streaming rows to disk as they complete.

    @raise Invalid_argument when a point's workload cannot run on its
    configuration (reported for the lowest failing point index,
    independent of worker count), or on a shard index outside
    [0 <= i < n]. *)

val run :
  ?jobs:int ->
  ?engine:engine_kind ->
  ?cache:Cache.t ->
  ?shard:int * int ->
  ?on_row:(row -> unit) ->
  Grid.t ->
  table
(** {!run_stats} without the stats. *)

val run_timed : ?jobs:int -> ?engine:engine_kind -> Grid.t -> table * int
(** [run] plus wall-clock nanoseconds ({!Dssoc_util.Mclock}) — kept
    out of {!table} so result tables stay byte-comparable across runs
    and worker counts. *)

val run_point : engine_kind:engine_kind -> Grid.t -> Grid.point -> row
(** Evaluate a single point (the unit of work {!run} shards).  Every
    point — virtual or compiled — runs under a metrics + ring-sink
    observation bundle ({!Dssoc_obs.Obs}): metrics feed the
    queueing/latency columns, the recorded events feed the
    {!Dssoc_obs.Analyze} critical-path columns.  Neither perturbs the
    deterministic run. *)

val of_cache : ?engine:engine_kind -> cache:Cache.t -> Grid.t -> (table, string) result
(** Reassemble the grid's full table purely from cached rows — the
    [--merge] path joining shard stores.  [Error] describes missing
    points (some shard has not finished) or a corrupt row; no point is
    ever evaluated. *)

(** {1 Adaptive exploration} *)

type adaptive = {
  a_table : table;  (** every evaluated row, in point order *)
  a_frontier : row list;  (** rows on the final Pareto frontier, in point order *)
  a_exhaustive_points : int;  (** what {!run} would have evaluated *)
  a_survivors : int list;  (** arms alive after the last rung *)
  a_rungs : Frontier.rung list;
  a_stats : stats;
}

val arm_cell : Grid.t -> int -> string * string * string
(** [(config_label, policy, wl_label)] of an arm index (a grid cell in
    enumeration order). *)

val objectives_of_row : row -> Frontier.objectives
(** The sweep's three-objective view of a row.  An [Aborted] row maps
    to the worst possible vector so it can never sit on a frontier. *)

val run_adaptive :
  ?jobs:int ->
  ?engine:engine_kind ->
  ?cache:Cache.t ->
  ?on_row:(row -> unit) ->
  Grid.t ->
  adaptive
(** Successive-halving sweep ({!Frontier.successive_halving}): each
    (config x policy x workload) cell is an arm, replicates are the
    rung budget, and dominated arms are pruned between rungs — never
    an arm owning a current-frontier point.  Deterministic: the
    promotion order derives from [grid.base_seed], and arm [a]'s
    replicate [r] is exactly grid point [a * replicates + r], so
    adaptive runs share cache entries with exhaustive runs of the same
    grid. *)

(** {1 Serialization} *)

val csv_header : string

val csv_row : row -> string
(** One CSV line (no newline) — the streaming unit behind [--out]. *)

val to_csv : table -> string
(** One line per point; floats rendered with fixed precision; string
    fields RFC 4180-escaped via {!Dssoc_stats.Table.csv_field}. *)

val to_json : table -> Dssoc_json.Json.t

val pp : Format.formatter -> table -> unit
(** Human-readable per-point table. *)

type summary = {
  s_config : string;
  s_policy : string;
  s_workload : string;
  n : int;  (** replicates aggregated *)
  makespan_ms : Dssoc_stats.Quantile.boxplot;
  mean_energy_mj : float;
  mean_util_by_kind : (string * float) list;
}

val summarize : table -> summary list
(** Collapse replicates: one summary per (config, policy, workload)
    cell, in grid order. *)

val pp_summary : Format.formatter -> table -> unit
