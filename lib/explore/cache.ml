(* Content-addressed append-only store: digest -> single-line payload,
   one JSONL file per shard, fsync-batched.  See cache.mli. *)

module Json = Dssoc_json.Json

exception Conflict of string

type t = {
  dir : string;
  shard : int * int;
  code_rev : string;
  readonly : bool;
  fsync_every : int;
  index : (string, string) Hashtbl.t;
  mutable oc : out_channel option;  (* lazily opened append channel *)
  mutable pending : int;  (* rows appended since the last fsync *)
  mu : Mutex.t;
}

let digest_of_parts parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let detect_code_rev () =
  match Sys.getenv_opt "DSSOC_CODE_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> (
    match
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = In_channel.input_line ic in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some rev when String.trim rev <> "" -> Some (String.trim rev)
      | _ -> None
    with
    | Some rev -> rev
    | None | (exception _) -> "unknown")

let shard_basename (i, n) = Printf.sprintf "shard-%d-of-%d.jsonl" i n

let is_shard_file name =
  String.length name > String.length "shard-"
  && String.sub name 0 6 = "shard-"
  && Filename.check_suffix name ".jsonl"

let record_entry index ~source digest payload =
  match Hashtbl.find_opt index digest with
  | Some existing when not (String.equal existing payload) ->
    raise
      (Conflict
         (Printf.sprintf
            "%s: digest %s maps to two different rows (corrupt store, or a code_rev reused \
             across incompatible builds)"
            source digest))
  | Some _ -> ()
  | None -> Hashtbl.add index digest payload

(* A crash or kill during an append tears at most one line, and it is
   necessarily the file's last: tolerate exactly that case (warn on
   stderr and drop the line — the row is simply re-evaluated), while
   corruption anywhere earlier in the stream still fails loudly. *)
let load_file index path =
  let lines =
    In_channel.with_open_bin path (fun ic ->
        let rec go acc n =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line -> go ((n, line) :: acc) (n + 1)
        in
        go [] 1)
  in
  let last_content =
    List.fold_left (fun acc (n, l) -> if l = "" then acc else n) 0 lines
  in
  List.iter
    (fun (lineno, line) ->
      if line <> "" then begin
        let fail msg = raise (Conflict (Printf.sprintf "%s:%d: %s" path lineno msg)) in
        let bad msg =
          if lineno = last_content then
            Printf.eprintf
              "warning: %s:%d: dropping torn final cache line (%s); the interrupted append \
               will be re-evaluated\n\
               %!"
              path lineno msg
          else fail msg
        in
        match Json.parse line with
        | Error e -> bad ("unreadable cache line: " ^ Json.error_to_string e)
        | Ok j -> (
          match
            (Result.bind (Json.member "digest" j) Json.to_str, Json.member "row" j)
          with
          | Ok digest, Ok row ->
            record_entry index ~source:path digest (Json.to_string ~minify:true row)
          | Error msg, _ | _, Error msg -> bad ("malformed cache line: " ^ msg))
      end)
    lines

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(readonly = false) ?(shard = (0, 1)) ?(fsync_every = 32) ?code_rev ~dir () =
  let i, n = shard in
  if n <= 0 || i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Cache.open_: shard %d/%d out of range" i n);
  if fsync_every <= 0 then invalid_arg "Cache.open_: non-positive fsync_every";
  let code_rev = match code_rev with Some r -> r | None -> detect_code_rev () in
  if not (Sys.file_exists dir) then
    if readonly then invalid_arg (Printf.sprintf "Cache.open_: no cache directory %s" dir)
    else mkdir_p dir;
  let index = Hashtbl.create 256 in
  Sys.readdir dir
  |> Array.to_list
  |> List.filter is_shard_file
  |> List.sort compare
  |> List.iter (fun name -> load_file index (Filename.concat dir name));
  {
    dir;
    shard;
    code_rev;
    readonly;
    fsync_every;
    index;
    oc = None;
    pending = 0;
    mu = Mutex.create ();
  }

let dir t = t.dir
let code_rev t = t.code_rev
let shard_file t = Filename.concat t.dir (shard_basename t.shard)
let size t = Mutex.protect t.mu (fun () -> Hashtbl.length t.index)
let find t ~digest = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.index digest)

let channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let oc =
      Out_channel.open_gen [ Open_append; Open_creat; Open_binary ] 0o644 (shard_file t)
    in
    t.oc <- Some oc;
    oc

let sync oc =
  Out_channel.flush oc;
  (* fsync may be unsupported on exotic filesystems; the flush above
     already handed the rows to the OS. *)
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let add t ~digest payload =
  (* The payload is embedded verbatim as the "row" member of the
     stored line, so it must itself be JSON; canonicalize so the
     in-memory copy equals what a reload would produce. *)
  let payload =
    match Json.parse payload with
    | Ok j -> Json.to_string ~minify:true j
    | Error e -> invalid_arg ("Cache.add: payload is not JSON: " ^ Json.error_to_string e)
  in
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.index digest with
      | Some existing when String.equal existing payload -> ()
      | Some _ ->
        raise
          (Conflict
             (Printf.sprintf "Cache.add: digest %s already holds a different row" digest))
      | None ->
        if t.readonly then invalid_arg "Cache.add: read-only cache";
        Hashtbl.add t.index digest payload;
        let oc = channel t in
        Out_channel.output_string oc
          (Printf.sprintf "{\"digest\":%s,\"row\":%s}\n"
             (Json.to_string ~minify:true (Json.str digest))
             payload);
        t.pending <- t.pending + 1;
        if t.pending >= t.fsync_every then begin
          sync oc;
          t.pending <- 0
        end)

let flush t =
  Mutex.protect t.mu (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        sync oc;
        t.pending <- 0)

let close t =
  Mutex.protect t.mu (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        sync oc;
        Out_channel.close oc;
        t.oc <- None;
        t.pending <- 0)
