(** Content-addressed, append-only result store for sweep campaigns.

    A cache directory holds one JSON-Lines file per shard
    ([shard-I-of-N.jsonl]); every line maps a stable digest of one
    grid point's full identity — configuration, policy, workload
    trace, seed, jitter, reservation depth, fault spec, engine and
    [code_rev] — to the serialized result row ({!Sweep} owns the row
    codec and digest recipe; this module is a generic digest → payload
    store).  Files are append-only and fsync-batched, so a sweep
    interrupted at any point keeps every finished row and a re-run
    only computes the delta: warm re-sweeps, resumption after faults
    and multi-host shard merging all fall out of the same store.

    Opening a cache loads {e every} shard file present in the
    directory, whatever shard the handle itself appends to — a worker
    sees rows computed by other shards, and {!Sweep.of_cache} merges
    them.  Digest collisions (one digest, two different payloads) are
    detected both at load and on {!add} and raise {!Conflict}: the
    store is content-addressed, so a collision means a corrupt file or
    a [code_rev] reused across incompatible builds.

    Handles are thread-safe: worker domains of one {!Pool} may call
    {!find}/{!add} concurrently. *)

exception Conflict of string
(** One digest, two different payloads (corrupt store, or a stale
    [code_rev] reused across incompatible code revisions). *)

type t

val open_ :
  ?readonly:bool ->
  ?shard:int * int ->
  ?fsync_every:int ->
  ?code_rev:string ->
  dir:string ->
  unit ->
  t
(** Open (creating the directory if needed) and load every
    [shard-*.jsonl] file under [dir].  New rows are appended to the
    file of [shard] (default [(0, 1)], the unsharded store; shard
    [(i, n)] must satisfy [0 <= i < n]).  Writes are batched: the
    shard file is flushed and fsynced every [fsync_every] rows
    (default 32) and on {!flush}/{!close}.  [code_rev] defaults to
    {!detect_code_rev} and is carried on the handle for digest
    construction — it is not itself part of the store.
    @raise Invalid_argument on a bad shard index, [readonly] with a
    missing directory, or a non-positive [fsync_every].
    @raise Conflict when the loaded files disagree on a digest, or on
    a corrupt line anywhere {e except} a file's final one — a torn
    final line is the signature of an append interrupted by a crash,
    so it is dropped with a warning on stderr and its point simply
    re-evaluated. *)

val close : t -> unit
(** Flush, fsync and close the append channel (idempotent).  The
    in-memory index stays readable. *)

val flush : t -> unit
(** Flush and fsync any buffered rows. *)

val find : t -> digest:string -> string option
(** The payload stored for [digest], from any shard file. *)

val add : t -> digest:string -> string -> unit
(** Append a payload under [digest].  The payload must parse as JSON
    (it is embedded verbatim in the stored line) and is canonicalized
    to its minified rendering before storage and comparison.  Adding
    an equivalent payload again is a no-op (shards may overlap after a
    resume); a different payload raises {!Conflict}.
    @raise Invalid_argument on a read-only handle or a non-JSON
    payload. *)

val size : t -> int
(** Number of distinct digests loaded or added. *)

val dir : t -> string

val shard_file : t -> string
(** Absolute path of the file this handle appends to. *)

val code_rev : t -> string

val detect_code_rev : unit -> string
(** The [DSSOC_CODE_REV] environment variable if set, else
    [git rev-parse --short HEAD], else ["unknown"].  Cache keys
    include it so rows computed by one code revision are never served
    to another; export [DSSOC_CODE_REV] to pin a logical revision
    across uncommitted changes (or to share a cache when the change is
    known to be result-irrelevant). *)

val digest_of_parts : string list -> string
(** Stable hex digest of a part list.  Parts are length-prefixed
    before hashing, so no concatenation of distinct part lists
    collides textually. *)
