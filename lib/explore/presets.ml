module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps

let sdr_mix () =
  Grid.fixed_workload ~label:"sdr_mix"
    (Workload.validation (List.map (fun a -> (a, 1)) (Reference_apps.all ())))

let rate_workloads () =
  List.map
    (fun rate ->
      Grid.fixed_workload
        ~label:(Printf.sprintf "rate%.2f" rate)
        (Workload.table2_workload ~rate ()))
    Workload.table2_rates

let zcu102_grid_configs = [ (1, 0); (1, 1); (1, 2); (2, 0); (2, 1); (2, 2); (3, 0); (3, 1); (3, 2) ]

let fig11_mixes = [ (1, 1); (2, 1); (3, 1); (4, 1); (2, 3); (3, 2); (4, 2); (4, 3) ]

let fig9 ?(replicates = 10) ?(base_seed = 1L) ?(jitter = 0.03) ?(policies = [ "FRFS" ]) () =
  Grid.make ~label:"fig9" ~replicates ~base_seed ~jitter
    ~configs:
      (List.map
         (fun (cores, ffts) ->
           let c = Config.zcu102_cores_ffts ~cores ~ffts in
           (c.Config.label, c))
         zcu102_grid_configs)
    ~policies
    ~workloads:[ sdr_mix () ]
    ()

let fig10 ?(policies = [ "FRFS"; "MET"; "EFT" ]) ?(base_seed = 1L) () =
  let c = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  Grid.make ~label:"fig10" ~replicates:1 ~base_seed ~jitter:0.0
    ~configs:[ (c.Config.label, c) ]
    ~policies
    ~workloads:(rate_workloads ())
    ()

let fig11 ?(policies = [ "FRFS" ]) ?(base_seed = 1L) () =
  Grid.make ~label:"fig11" ~replicates:1 ~base_seed ~jitter:0.0
    ~configs:
      (List.map
         (fun (big, little) ->
           let c = Config.odroid_big_little ~big ~little in
           (c.Config.label, c))
         fig11_mixes)
    ~policies
    ~workloads:(rate_workloads ())
    ()

(* Fig. 9 under a shared interconnect: the same (cores, ffts) axis,
   but every DMA stream rides one contended bus.  The default spec is
   narrow enough that FFT-heavy configurations queue on the link, so
   the cores-vs-accelerators crossover shifts relative to plain fig9. *)
let fig9_contended ?(replicates = 10) ?(base_seed = 1L) ?(jitter = 0.03)
    ?(policies = [ "FRFS" ]) ?(fabric = "bus:bw=200MB/s,fifo=2") () =
  let f =
    match Fabric.of_spec fabric with
    | Ok f -> f
    | Error msg -> invalid_arg ("Presets.fig9_contended: " ^ msg)
  in
  Grid.make ~label:"fig9-contended" ~replicates ~base_seed ~jitter
    ~configs:
      (List.map
         (fun (cores, ffts) ->
           let c = Config.with_fabric f (Config.zcu102_cores_ffts ~cores ~ffts) in
           (c.Config.label, c))
         zcu102_grid_configs)
    ~policies
    ~workloads:[ sdr_mix () ]
    ()

let fabric_widths_mb_s = [ 4000.0; 2000.0; 1000.0; 500.0; 250.0; 100.0 ]

(* Interconnect-width axis: one platform, the bus bandwidth swept from
   generous to starved, with the ideal (infinite) fabric as baseline.
   A 1-deep admission FIFO makes the two accelerators serialize on the
   link, so the fabric_stall_ns column turns from negligible to
   dominant along the axis (the platform only ever has two initiators;
   the 16-deep default FIFO would never fill and never stall). *)
let fabric_width ?(replicates = 5) ?(base_seed = 1L) ?(jitter = 0.03) ?(policies = [ "EFT" ])
    () =
  let base = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let configs =
    (base.Config.label ^ "/ideal", base)
    :: List.map
         (fun bw ->
           let f =
             Fabric.Bus { Fabric.default_bus with Fabric.bw_mb_s = bw; Fabric.fifo_depth = 1 }
           in
           ( Printf.sprintf "%s/bus%gMBs" base.Config.label bw,
             Config.with_fabric f base ))
         fabric_widths_mb_s
  in
  Grid.make ~label:"fabric-width" ~replicates ~base_seed ~jitter ~configs ~policies
    ~workloads:[ sdr_mix () ]
    ()

let names = [ "fig9"; "fig10"; "fig11"; "fig9-contended"; "fabric-width" ]

let by_name ?replicates ?base_seed ?jitter ?policies name =
  match String.lowercase_ascii name with
  | "fig9" -> Ok (fig9 ?replicates ?base_seed ?jitter ?policies ())
  | "fig9-contended" | "fig9_contended" ->
    Ok (fig9_contended ?replicates ?base_seed ?jitter ?policies ())
  | "fabric-width" | "fabric_width" ->
    Ok (fabric_width ?replicates ?base_seed ?jitter ?policies ())
  | "fig10" ->
    (* fig10/fig11 are deterministic single-replicate grids; replicate
       and jitter overrides still apply when given. *)
    let g = fig10 ?policies ?base_seed () in
    Ok
      {
        g with
        Grid.replicates = Option.value ~default:g.Grid.replicates replicates;
        jitter = Option.value ~default:g.Grid.jitter jitter;
      }
  | "fig11" ->
    let g = fig11 ?policies ?base_seed () in
    Ok
      {
        g with
        Grid.replicates = Option.value ~default:g.Grid.replicates replicates;
        jitter = Option.value ~default:g.Grid.jitter jitter;
      }
  | other ->
    Error
      (Printf.sprintf "unknown sweep grid %S (available: %s)" other (String.concat ", " names))
