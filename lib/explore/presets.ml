module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps

let sdr_mix () =
  Grid.fixed_workload ~label:"sdr_mix"
    (Workload.validation (List.map (fun a -> (a, 1)) (Reference_apps.all ())))

let rate_workloads () =
  List.map
    (fun rate ->
      Grid.fixed_workload
        ~label:(Printf.sprintf "rate%.2f" rate)
        (Workload.table2_workload ~rate ()))
    Workload.table2_rates

let zcu102_grid_configs = [ (1, 0); (1, 1); (1, 2); (2, 0); (2, 1); (2, 2); (3, 0); (3, 1); (3, 2) ]

let fig11_mixes = [ (1, 1); (2, 1); (3, 1); (4, 1); (2, 3); (3, 2); (4, 2); (4, 3) ]

let fig9 ?(replicates = 10) ?(base_seed = 1L) ?(jitter = 0.03) ?(policies = [ "FRFS" ]) () =
  Grid.make ~label:"fig9" ~replicates ~base_seed ~jitter
    ~configs:
      (List.map
         (fun (cores, ffts) ->
           let c = Config.zcu102_cores_ffts ~cores ~ffts in
           (c.Config.label, c))
         zcu102_grid_configs)
    ~policies
    ~workloads:[ sdr_mix () ]
    ()

let fig10 ?(policies = [ "FRFS"; "MET"; "EFT" ]) ?(base_seed = 1L) () =
  let c = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  Grid.make ~label:"fig10" ~replicates:1 ~base_seed ~jitter:0.0
    ~configs:[ (c.Config.label, c) ]
    ~policies
    ~workloads:(rate_workloads ())
    ()

let fig11 ?(policies = [ "FRFS" ]) ?(base_seed = 1L) () =
  Grid.make ~label:"fig11" ~replicates:1 ~base_seed ~jitter:0.0
    ~configs:
      (List.map
         (fun (big, little) ->
           let c = Config.odroid_big_little ~big ~little in
           (c.Config.label, c))
         fig11_mixes)
    ~policies
    ~workloads:(rate_workloads ())
    ()

let names = [ "fig9"; "fig10"; "fig11" ]

let by_name ?replicates ?base_seed ?jitter ?policies name =
  match String.lowercase_ascii name with
  | "fig9" -> Ok (fig9 ?replicates ?base_seed ?jitter ?policies ())
  | "fig10" ->
    (* fig10/fig11 are deterministic single-replicate grids; replicate
       and jitter overrides still apply when given. *)
    let g = fig10 ?policies ?base_seed () in
    Ok
      {
        g with
        Grid.replicates = Option.value ~default:g.Grid.replicates replicates;
        jitter = Option.value ~default:g.Grid.jitter jitter;
      }
  | "fig11" ->
    let g = fig11 ?policies ?base_seed () in
    Ok
      {
        g with
        Grid.replicates = Option.value ~default:g.Grid.replicates replicates;
        jitter = Option.value ~default:g.Grid.jitter jitter;
      }
  | other ->
    Error
      (Printf.sprintf "unknown sweep grid %S (available: %s)" other (String.concat ", " names))
