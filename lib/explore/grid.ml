module Config = Dssoc_soc.Config
module Workload = Dssoc_apps.Workload
module Scheduler = Dssoc_runtime.Scheduler
module Prng = Dssoc_util.Prng

type workload_spec = { wl_label : string; build : Prng.t -> Workload.t }

let workload ~label build = { wl_label = label; build }

let fixed_workload ~label wl = { wl_label = label; build = (fun _ -> wl) }

type t = {
  label : string;
  configs : (string * Config.t) list;
  policies : string list;
  workloads : workload_spec list;
  replicates : int;
  base_seed : int64;
  jitter : float;
  reservation_depth : int;
  fault : Dssoc_fault.Fault.plan option;
}

let make ?(label = "sweep") ?(replicates = 1) ?(base_seed = 1L) ?(jitter = 0.0)
    ?(reservation_depth = 0) ?fault ~configs ~policies ~workloads () =
  if configs = [] then invalid_arg "Grid.make: no configurations";
  if policies = [] then invalid_arg "Grid.make: no policies";
  if workloads = [] then invalid_arg "Grid.make: no workloads";
  if replicates <= 0 then invalid_arg "Grid.make: replicates must be positive";
  if jitter < 0.0 then invalid_arg "Grid.make: negative jitter";
  if reservation_depth < 0 then invalid_arg "Grid.make: negative reservation depth";
  (* Fail on unknown policies at grid-construction time, not from an
     arbitrary worker domain mid-sweep. *)
  List.iter
    (fun p -> match Scheduler.find p with Ok _ -> () | Error msg -> invalid_arg msg)
    policies;
  {
    label;
    configs;
    policies;
    workloads;
    replicates;
    base_seed;
    jitter;
    reservation_depth;
    fault;
  }

let size t =
  List.length t.configs * List.length t.policies * List.length t.workloads * t.replicates

type point = {
  index : int;
  config_label : string;
  config : Config.t;
  policy : string;
  wl_label : string;
  workload : Workload.t;
  replicate : int;
  seed : int64;
}

let points t =
  let out = ref [] and index = ref 0 in
  List.iter
    (fun (config_label, config) ->
      List.iter
        (fun policy ->
          List.iter
            (fun ws ->
              for replicate = 0 to t.replicates - 1 do
                let seed = Prng.derive_seed ~seed:t.base_seed ~index:!index in
                (* The workload generator gets a stream derived from
                   the point seed (not the point seed itself) so
                   workload randomness and engine jitter stay
                   uncorrelated. *)
                let workload = ws.build (Prng.derive ~seed ~index:1) in
                out :=
                  {
                    index = !index;
                    config_label;
                    config;
                    policy;
                    wl_label = ws.wl_label;
                    workload;
                    replicate;
                    seed;
                  }
                  :: !out;
                incr index
              done)
            t.workloads)
        t.policies)
    t.configs;
  Array.of_list (List.rev !out)
