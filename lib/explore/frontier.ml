(* Pareto-frontier tracking and deterministic successive halving.
   See frontier.mli. *)

module Prng = Dssoc_util.Prng

type objectives = {
  makespan_ns : int;
  energy_mj : float;
  completed_fraction : float;
}

let dominates a b =
  let no_worse =
    a.makespan_ns <= b.makespan_ns
    && a.energy_mj <= b.energy_mj
    && a.completed_fraction >= b.completed_fraction
  in
  let better =
    a.makespan_ns < b.makespan_ns
    || a.energy_mj < b.energy_mj
    || a.completed_fraction > b.completed_fraction
  in
  no_worse && better

type t = { mutable rev_entries : (int * objectives) list }

let create () = { rev_entries = [] }
let add t ~id obj = t.rev_entries <- (id, obj) :: t.rev_entries
let entries t = List.rev t.rev_entries

let nondominated all =
  List.filter (fun (_, o) -> not (List.exists (fun (_, o') -> dominates o' o) all)) all

let frontier t = nondominated (entries t)
let frontier_ids t = List.map fst (frontier t)

(* ------------------------------------------------------------------ *)

type rung = {
  rung : int;
  cumulative_replicates : int;
  arms_in : int list;
  frontier_arms : int list;
  pruned : int list;
}

type 'a outcome = {
  evaluated : (int * int * 'a) list;
  survivors : int list;
  rungs : rung list;
  frontier : (int * int) list;
}

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let successive_halving ~arms ~replicates ~seed ~eval ~objectives () =
  if arms <= 0 then invalid_arg "Frontier.successive_halving: non-positive arm count";
  if replicates <= 0 then invalid_arg "Frontier.successive_halving: non-positive replicates";
  (* Seed-derived promotion order: the only tie-breaker, drawn once so
     the whole run is a pure function of (grid, seed). *)
  let order = Array.init arms Fun.id in
  Prng.shuffle (Prng.derive ~seed ~index:0x5a17) order;
  let rank = Array.make arms 0 in
  Array.iteri (fun pos a -> rank.(a) <- pos) order;
  let evaluated = ref [] in
  let objs = ref [] (* ((arm, replicate), objectives), all rungs so far *) in
  let alive = ref (List.init arms Fun.id) in
  let rungs = ref [] in
  let cum = ref 0 in
  let rung_i = ref 0 in
  while !cum < replicates do
    let budget = if !cum = 0 then 1 else min (replicates - !cum) !cum in
    let pairs =
      Array.of_list
        (List.concat_map (fun a -> List.init budget (fun k -> (a, !cum + k))) !alive)
    in
    let values = eval pairs in
    if Array.length values <> Array.length pairs then
      invalid_arg "Frontier.successive_halving: eval returned the wrong number of values";
    Array.iteri
      (fun k (a, r) ->
        evaluated := (a, r, values.(k)) :: !evaluated;
        objs := ((a, r), objectives values.(k)) :: !objs)
      pairs;
    cum := !cum + budget;
    let arms_in = !alive in
    let frontier_arms, pruned =
      if !cum >= replicates || List.length !alive <= 1 then ([], [])
      else begin
        let all = !objs in
        let front_pts = nondominated all in
        let front_arms = List.sort_uniq compare (List.map (fun ((a, _), _) -> a) front_pts) in
        let frontier_alive = List.filter (fun a -> List.mem a front_arms) !alive in
        let target = max 1 ((List.length !alive + 1) / 2) in
        let chosen =
          if List.length frontier_alive >= target then frontier_alive
          else begin
            (* Fill the half with the least-dominated remaining arms:
               score = fewest dominators over the arm's best point. *)
            let score a =
              List.fold_left
                (fun best ((a', _), o) ->
                  if a' <> a then best
                  else
                    min best
                      (List.length (List.filter (fun (_, o') -> dominates o' o) all)))
                max_int all
            in
            let rest =
              List.filter (fun a -> not (List.mem a frontier_alive)) !alive
              |> List.sort (fun a b ->
                     match compare (score a) (score b) with
                     | 0 -> compare rank.(a) rank.(b)
                     | c -> c)
            in
            frontier_alive @ take (target - List.length frontier_alive) rest
          end
        in
        let survivors = List.filter (fun a -> List.mem a chosen) !alive in
        let pruned = List.filter (fun a -> not (List.mem a chosen)) !alive in
        alive := survivors;
        (frontier_alive, pruned)
      end
    in
    rungs :=
      { rung = !rung_i; cumulative_replicates = !cum; arms_in; frontier_arms; pruned }
      :: !rungs;
    incr rung_i
  done;
  let all = !objs in
  let frontier =
    List.filter_map
      (fun (pr, o) ->
        if List.exists (fun (_, o') -> dominates o' o) all then None else Some pr)
      all
    |> List.sort_uniq compare
  in
  {
    evaluated = List.rev !evaluated;
    survivors = !alive;
    rungs = List.rev !rungs;
    frontier;
  }
