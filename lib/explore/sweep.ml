module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Json = Dssoc_json.Json
module Table = Dssoc_stats.Table
module Quantile = Dssoc_stats.Quantile
module Obs = Dssoc_obs.Obs

type row = {
  index : int;
  config : string;
  policy : string;
  workload : string;
  replicate : int;
  seed : int64;
  makespan_ns : int;
  job_count : int;
  task_count : int;
  sched_invocations : int;
  sched_ns : int;
  wm_overhead_ns : int;
  busy_energy_mj : float;
  energy_mj : float;
  max_ready_depth : int;
  max_inflight : int;
  mean_wait_us : float;
  p95_service_us : float;
  util_by_kind : (string * float) list;
  verdict : Stats.verdict;
  completed_fraction : float;
  task_retries : int;
}

type table = { grid_label : string; rows : row list }

let run_point ~engine_kind (grid : Grid.t) (p : Grid.point) =
  let engine =
    match engine_kind with
    | `Virtual ->
      Emulator.virtual_seeded ~jitter:grid.Grid.jitter
        ~reservation_depth:grid.Grid.reservation_depth p.Grid.seed
    | `Compiled ->
      Emulator.compiled_seeded ~jitter:grid.Grid.jitter
        ~reservation_depth:grid.Grid.reservation_depth p.Grid.seed
  in
  (* Metrics-only observation (no event sink): a few counters/series
     per point, and the virtual engine is deterministic, so result
     tables stay byte-identical across worker counts.  The compiled
     engine rejects enabled observability, so its points run with the
     null bundle and report zeros in the metrics-derived columns; the
     schedule columns are byte-identical to the virtual engine's. *)
  let metrics = Obs.Metrics.create () in
  let obs =
    match engine_kind with
    | `Virtual -> Obs.make ~metrics ()
    | `Compiled -> Obs.disabled
  in
  match
    Emulator.run ~engine ~policy:p.Grid.policy ~obs ?fault:grid.Grid.fault
      ~config:p.Grid.config ~workload:p.Grid.workload ()
  with
  | Error msg when grid.Grid.fault <> None ->
    (* A grid can span configurations the fault plan cannot target
       (e.g. an [accel:...] rule over a 0-FFT point).  Record the
       rejection in the verdict column instead of killing the sweep. *)
    {
      index = p.Grid.index;
      config = p.Grid.config_label;
      policy = p.Grid.policy;
      workload = p.Grid.wl_label;
      replicate = p.Grid.replicate;
      seed = p.Grid.seed;
      makespan_ns = 0;
      job_count = 0;
      task_count = 0;
      sched_invocations = 0;
      sched_ns = 0;
      wm_overhead_ns = 0;
      busy_energy_mj = 0.0;
      energy_mj = 0.0;
      max_ready_depth = 0;
      max_inflight = 0;
      mean_wait_us = 0.0;
      p95_service_us = 0.0;
      util_by_kind = [];
      verdict = Stats.Aborted msg;
      completed_fraction = 0.0;
      task_retries = 0;
    }
  | Error msg -> invalid_arg msg
  | Ok r ->
  let gauge_max name =
    match Obs.Metrics.find_gauge metrics name with
    | Some g -> Obs.Metrics.gauge_max g
    | None -> 0
  in
  let hist f name =
    match Obs.Metrics.find_histogram metrics name with
    | Some h -> Option.value ~default:0.0 (f h)
    | None -> 0.0
  in
  {
    index = p.Grid.index;
    config = p.Grid.config_label;
    policy = p.Grid.policy;
    workload = p.Grid.wl_label;
    replicate = p.Grid.replicate;
    seed = p.Grid.seed;
    makespan_ns = r.Stats.makespan_ns;
    job_count = r.Stats.job_count;
    task_count = r.Stats.task_count;
    sched_invocations = r.Stats.sched_invocations;
    sched_ns = r.Stats.sched_ns;
    wm_overhead_ns = r.Stats.wm_overhead_ns;
    busy_energy_mj = Stats.total_busy_energy_mj r;
    energy_mj = Stats.total_energy_mj r;
    max_ready_depth = gauge_max "ready_queue_depth";
    max_inflight = gauge_max "in_flight_tasks";
    mean_wait_us = hist Obs.Metrics.histogram_mean "task_wait_us";
    p95_service_us = hist (fun h -> Obs.Metrics.histogram_quantile h 0.95) "task_service_us";
    util_by_kind = Stats.mean_utilization_by_kind r;
    verdict = r.Stats.verdict;
    completed_fraction = Stats.completed_fraction r;
    task_retries = r.Stats.resilience.Stats.task_retries;
  }

let run ?jobs ?(engine = `Virtual) grid =
  let points = Grid.points grid in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let rows =
    Pool.map ~jobs ~n:(Array.length points) (fun i ->
        run_point ~engine_kind:engine grid points.(i))
  in
  { grid_label = grid.Grid.label; rows = Array.to_list rows }

let run_timed ?jobs ?engine grid =
  let t0 = Unix.gettimeofday () in
  let t = run ?jobs ?engine grid in
  (t, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Serialization — all formats are pure functions of the rows, so a   *)
(* sweep's export is byte-identical across worker counts.             *)
(* ------------------------------------------------------------------ *)

let util_string u = String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%.6f" k v) u)

let csv_header =
  "config,policy,workload,replicate,seed,makespan_ns,job_count,task_count,sched_invocations,sched_ns,wm_overhead_ns,busy_energy_mj,energy_mj,max_ready_depth,max_inflight,mean_wait_us,p95_service_us,util_by_kind,verdict,completed_fraction,task_retries"

let to_csv t =
  let field = Table.csv_field in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%s,%d,%Ld,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%.3f,%.3f,%s,%s,%.6f,%d\n"
           (field r.config) (field r.policy) (field r.workload) r.replicate r.seed
           r.makespan_ns r.job_count r.task_count r.sched_invocations r.sched_ns
           r.wm_overhead_ns r.busy_energy_mj r.energy_mj r.max_ready_depth r.max_inflight
           r.mean_wait_us r.p95_service_us
           (field (util_string r.util_by_kind))
           (Stats.verdict_name r.verdict) r.completed_fraction r.task_retries))
    t.rows;
  Buffer.contents buf

let to_json t =
  Json.obj
    [
      ("grid", Json.str t.grid_label);
      ("points", Json.int (List.length t.rows));
      ( "rows",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [
                   ("config", Json.str r.config);
                   ("policy", Json.str r.policy);
                   ("workload", Json.str r.workload);
                   ("replicate", Json.int r.replicate);
                   ("seed", Json.str (Printf.sprintf "%Ld" r.seed));
                   ("makespan_ns", Json.int r.makespan_ns);
                   ("job_count", Json.int r.job_count);
                   ("task_count", Json.int r.task_count);
                   ("sched_invocations", Json.int r.sched_invocations);
                   ("sched_ns", Json.int r.sched_ns);
                   ("wm_overhead_ns", Json.int r.wm_overhead_ns);
                   ("busy_energy_mj", Json.float r.busy_energy_mj);
                   ("energy_mj", Json.float r.energy_mj);
                   ("max_ready_depth", Json.int r.max_ready_depth);
                   ("max_inflight", Json.int r.max_inflight);
                   ("mean_wait_us", Json.float r.mean_wait_us);
                   ("p95_service_us", Json.float r.p95_service_us);
                   ( "util_by_kind",
                     Json.obj (List.map (fun (k, v) -> (k, Json.float v)) r.util_by_kind) );
                   ("verdict", Json.str (Stats.verdict_name r.verdict));
                   ("completed_fraction", Json.float r.completed_fraction);
                   ("task_retries", Json.int r.task_retries);
                 ])
             t.rows) );
    ]

let pp fmt t =
  let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6) in
  let rows =
    List.map
      (fun r ->
        [
          r.config;
          r.policy;
          r.workload;
          string_of_int r.replicate;
          ms r.makespan_ns;
          string_of_int r.job_count;
          string_of_int r.sched_invocations;
          ms r.wm_overhead_ns;
          Printf.sprintf "%.2f" r.energy_mj;
          string_of_int r.max_ready_depth;
          Printf.sprintf "%.1f" r.mean_wait_us;
          util_string r.util_by_kind;
        ])
      t.rows
  in
  Format.fprintf fmt "%s"
    (Table.render
       ~header:
         [
           "config"; "policy"; "workload"; "rep"; "makespan ms"; "jobs"; "sched inv";
           "WM ms"; "energy mJ"; "max rdy"; "wait us"; "util";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Aggregation over replicates                                        *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_config : string;
  s_policy : string;
  s_workload : string;
  n : int;
  makespan_ms : Quantile.boxplot;
  mean_energy_mj : float;
  mean_util_by_kind : (string * float) list;
}

let summarize t =
  (* Group rows by (config, policy, workload) in first-appearance
     order; rows arrive in point order, so groups are exactly the
     grid cells in grid order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let key = (r.config, r.policy, r.workload) in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key (ref []);
        order := key :: !order
      end;
      let cell = Hashtbl.find tbl key in
      cell := r :: !cell)
    t.rows;
  List.rev_map
    (fun ((config, policy, workload) as key) ->
      let rows = List.rev !(Hashtbl.find tbl key) in
      let n = List.length rows in
      let makespans =
        Array.of_list (List.map (fun r -> float_of_int r.makespan_ns /. 1e6) rows)
      in
      let mean_energy =
        List.fold_left (fun acc r -> acc +. r.energy_mj) 0.0 rows /. float_of_int (max 1 n)
      in
      let kinds =
        List.sort_uniq compare (List.concat_map (fun r -> List.map fst r.util_by_kind) rows)
      in
      let mean_util k =
        let sum, cnt =
          List.fold_left
            (fun (sum, cnt) r ->
              match List.assoc_opt k r.util_by_kind with
              | Some u -> (sum +. u, cnt + 1)
              | None -> (sum, cnt))
            (0.0, 0) rows
        in
        sum /. float_of_int (max 1 cnt)
      in
      {
        s_config = config;
        s_policy = policy;
        s_workload = workload;
        n;
        makespan_ms = Quantile.boxplot makespans;
        mean_energy_mj = mean_energy;
        mean_util_by_kind = List.map (fun k -> (k, mean_util k)) kinds;
      })
    !order

let pp_summary fmt t =
  let rows =
    List.map
      (fun s ->
        [
          s.s_config;
          s.s_policy;
          s.s_workload;
          string_of_int s.n;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.med;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.lo;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.hi;
          Printf.sprintf "%.2f" s.mean_energy_mj;
          util_string s.mean_util_by_kind;
        ])
      (summarize t)
  in
  Format.fprintf fmt "%s"
    (Table.render
       ~header:
         [
           "config"; "policy"; "workload"; "n"; "med ms"; "lo ms"; "hi ms"; "energy mJ";
           "mean util";
         ]
       ~rows)
