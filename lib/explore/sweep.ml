module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Scheduler = Dssoc_runtime.Scheduler
module Compiled_engine = Dssoc_runtime.Compiled_engine
module Engine_core = Dssoc_runtime.Engine_core
module Json = Dssoc_json.Json
module Table = Dssoc_stats.Table
module Quantile = Dssoc_stats.Quantile
module Obs = Dssoc_obs.Obs
module Analyze = Dssoc_obs.Analyze
module Fault = Dssoc_fault.Fault
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module Mclock = Dssoc_util.Mclock

type row = {
  index : int;
  config : string;
  policy : string;
  workload : string;
  replicate : int;
  seed : int64;
  makespan_ns : int;
  job_count : int;
  task_count : int;
  sched_invocations : int;
  sched_ns : int;
  wm_overhead_ns : int;
  busy_energy_mj : float;
  energy_mj : float;
  max_ready_depth : int;
  max_inflight : int;
  mean_wait_us : float;
  p95_service_us : float;
  util_by_kind : (string * float) list;
  verdict : Stats.verdict;
  completed_fraction : float;
  task_retries : int;
  fabric_stall_ns : int;
  crit_path_us : float;
  crit_path_dma_frac : float;
}

type table = { grid_label : string; rows : row list }

type engine_kind = [ `Virtual | `Compiled ]

let engine_name = function `Virtual -> "virtual" | `Compiled -> "compiled"

(* ------------------------------------------------------------------ *)
(* Content addressing — the digest recipe and the row codec.  A row   *)
(* round-trips bit-exactly (floats travel as hex-float strings), so a *)
(* cached table serializes byte-identically to a freshly computed one.*)
(* ------------------------------------------------------------------ *)

let hex_float = Printf.sprintf "%h"

let fault_fingerprint = function
  | None -> "none"
  | Some (p : Fault.plan) ->
    let target = function Fault.All -> "*" | Fault.Pe_named s -> s in
    let fkind = function
      | Fault.Die_at t -> Printf.sprintf "die@%d" t
      | Fault.Transient_faults { p; recover_ns } ->
        Printf.sprintf "transient:p=%s:recover=%d" (hex_float p) recover_ns
      | Fault.Dma_errors { p; recover_ns } ->
        Printf.sprintf "dma:p=%s:recover=%d" (hex_float p) recover_ns
      | Fault.Hangs { p; recover_ns } ->
        Printf.sprintf "hang:p=%s:recover=%d" (hex_float p) recover_ns
      | Fault.Slowdowns { p; factor } ->
        Printf.sprintf "slow:p=%s:factor=%s" (hex_float p) (hex_float factor)
    in
    Printf.sprintf "seed=%Ld;attempts=%d;backoff=%d..%d;watchdog=%s/%d;rules=%s"
      p.Fault.fault_seed p.Fault.max_attempts p.Fault.backoff_base_ns p.Fault.backoff_cap_ns
      (hex_float p.Fault.watchdog_factor)
      p.Fault.watchdog_floor_ns
      (String.concat ","
         (List.map (fun (r : Fault.rule) -> target r.Fault.target ^ ":" ^ fkind r.Fault.fault) p.Fault.rules))

let workload_fingerprint (wl : Workload.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "window=%d" wl.Workload.window_ns);
  List.iter
    (fun (it : Workload.item) ->
      Buffer.add_string buf
        (Printf.sprintf ";%s#%d@%d" it.Workload.spec.App_spec.app_name it.Workload.instance
           it.Workload.arrival_ns))
    wl.Workload.items;
  Buffer.contents buf

let point_digest ~engine ~code_rev (grid : Grid.t) (p : Grid.point) =
  Cache.digest_of_parts
    [
      (* v3: rows grew the critical-path analytics columns, and the
         compiled engine now populates the observability columns for
         real — cached v2 rows (compiled zeros, no crit_path fields)
         must never satisfy a v3 lookup.  v2 added the fabric to the
         recipe so contended rows never alias uncontended ones. *)
      "dssoc-sweep-row/v3";
      "engine=" ^ engine_name engine;
      "code_rev=" ^ code_rev;
      "config=" ^ p.Grid.config_label;
      "platform=" ^ Format.asprintf "%a" Config.pp p.Grid.config;
      "fabric=" ^ Fabric.fingerprint p.Grid.config.Config.fabric;
      "policy=" ^ p.Grid.policy;
      "workload=" ^ p.Grid.wl_label;
      "trace=" ^ workload_fingerprint p.Grid.workload;
      Printf.sprintf "seed=%Ld" p.Grid.seed;
      "jitter=" ^ hex_float grid.Grid.jitter;
      Printf.sprintf "reservation=%d" grid.Grid.reservation_depth;
      "fault=" ^ fault_fingerprint grid.Grid.fault;
    ]

let verdict_to_json = function
  | Stats.Completed -> Json.str "completed"
  | Stats.Degraded -> Json.str "degraded"
  | Stats.Aborted msg -> Json.list [ Json.str "aborted"; Json.str msg ]

let verdict_of_json = function
  | Json.String "completed" -> Ok Stats.Completed
  | Json.String "degraded" -> Ok Stats.Degraded
  | Json.List [ Json.String "aborted"; Json.String msg ] -> Ok (Stats.Aborted msg)
  | _ -> Error "bad verdict"

let jf f = Json.str (hex_float f)

let jf_of j =
  match j with
  | Json.String s -> (
    match float_of_string_opt s with Some f -> Ok f | None -> Error ("bad float " ^ s))
  | _ -> Error "expected hex-float string"

let row_payload r =
  Json.to_string ~minify:true
    (Json.obj
       [
         ("index", Json.int r.index);
         ("config", Json.str r.config);
         ("policy", Json.str r.policy);
         ("workload", Json.str r.workload);
         ("replicate", Json.int r.replicate);
         ("seed", Json.str (Printf.sprintf "%Ld" r.seed));
         ("makespan_ns", Json.int r.makespan_ns);
         ("job_count", Json.int r.job_count);
         ("task_count", Json.int r.task_count);
         ("sched_invocations", Json.int r.sched_invocations);
         ("sched_ns", Json.int r.sched_ns);
         ("wm_overhead_ns", Json.int r.wm_overhead_ns);
         ("busy_energy_mj", jf r.busy_energy_mj);
         ("energy_mj", jf r.energy_mj);
         ("max_ready_depth", Json.int r.max_ready_depth);
         ("max_inflight", Json.int r.max_inflight);
         ("mean_wait_us", jf r.mean_wait_us);
         ("p95_service_us", jf r.p95_service_us);
         ( "util_by_kind",
           Json.list (List.map (fun (k, v) -> Json.list [ Json.str k; jf v ]) r.util_by_kind) );
         ("verdict", verdict_to_json r.verdict);
         ("completed_fraction", jf r.completed_fraction);
         ("task_retries", Json.int r.task_retries);
         ("fabric_stall_ns", Json.int r.fabric_stall_ns);
         ("crit_path_us", jf r.crit_path_us);
         ("crit_path_dma_frac", jf r.crit_path_dma_frac);
       ])

let row_of_payload payload =
  let ( let* ) = Result.bind in
  let* j =
    match Json.parse payload with
    | Ok j -> Ok j
    | Error e -> Error (Json.error_to_string e)
  in
  let mem name conv = Result.bind (Json.member name j) conv in
  let* index = mem "index" Json.to_int in
  let* config = mem "config" Json.to_str in
  let* policy = mem "policy" Json.to_str in
  let* workload = mem "workload" Json.to_str in
  let* replicate = mem "replicate" Json.to_int in
  let* seed_s = mem "seed" Json.to_str in
  let* seed =
    match Int64.of_string_opt seed_s with Some s -> Ok s | None -> Error "bad seed"
  in
  let* makespan_ns = mem "makespan_ns" Json.to_int in
  let* job_count = mem "job_count" Json.to_int in
  let* task_count = mem "task_count" Json.to_int in
  let* sched_invocations = mem "sched_invocations" Json.to_int in
  let* sched_ns = mem "sched_ns" Json.to_int in
  let* wm_overhead_ns = mem "wm_overhead_ns" Json.to_int in
  let* busy_energy_mj = mem "busy_energy_mj" jf_of in
  let* energy_mj = mem "energy_mj" jf_of in
  let* max_ready_depth = mem "max_ready_depth" Json.to_int in
  let* max_inflight = mem "max_inflight" Json.to_int in
  let* mean_wait_us = mem "mean_wait_us" jf_of in
  let* p95_service_us = mem "p95_service_us" jf_of in
  let* util_items = mem "util_by_kind" Json.to_list in
  let* util_by_kind =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Json.List [ Json.String k; v ] ->
          let* v = jf_of v in
          Ok ((k, v) :: acc)
        | _ -> Error "bad util_by_kind entry")
      (Ok []) util_items
    |> Result.map List.rev
  in
  let* verdict = Result.bind (Json.member "verdict" j) verdict_of_json in
  let* completed_fraction = mem "completed_fraction" jf_of in
  let* task_retries = mem "task_retries" Json.to_int in
  let* fabric_stall_ns = mem "fabric_stall_ns" Json.to_int in
  let* crit_path_us = mem "crit_path_us" jf_of in
  let* crit_path_dma_frac = mem "crit_path_dma_frac" jf_of in
  Ok
    {
      index;
      config;
      policy;
      workload;
      replicate;
      seed;
      makespan_ns;
      job_count;
      task_count;
      sched_invocations;
      sched_ns;
      wm_overhead_ns;
      busy_energy_mj;
      energy_mj;
      max_ready_depth;
      max_inflight;
      mean_wait_us;
      p95_service_us;
      util_by_kind;
      verdict;
      completed_fraction;
      task_retries;
      fabric_stall_ns;
      crit_path_us;
      crit_path_dma_frac;
    }

(* ------------------------------------------------------------------ *)
(* Point evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type counters = {
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_plan_compiles : int Atomic.t;
  c_plan_reuses : int Atomic.t;
}

let fresh_counters () =
  {
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_plan_compiles = Atomic.make 0;
    c_plan_reuses = Atomic.make 0;
  }

(* Compiled plans are pure and reusable, so within one worker domain a
   plan is compiled once per (config x policy x workload) cell and
   replayed for every replicate — that is the compiled engine's
   intended amortization.  The memo keys on the cell labels but stores
   the workload by physical identity: generator-built workloads are
   fresh values per point and therefore never falsely share a plan,
   while [Grid.fixed_workload] cells hit on every replicate. *)
let plan_memo : (string * string * string, Workload.t * Compiled_engine.plan) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

(* One observation bundle per worker domain, reused (via [Obs.reset])
   across the points it evaluates: a large point's ring is tens of MB
   of flat arrays, and rebuilding that per point costs more than the
   tracing it serves.  Reuse is keyed on the exact capacity so a
   point's ring size — and therefore its drop behavior — never depends
   on which worker picked it up or what ran before. *)
let obs_memo : (int * Obs.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let obs_for ~capacity =
  let memo = Domain.DLS.get obs_memo in
  match !memo with
  | Some (cap, obs) when cap = capacity ->
    Obs.reset obs;
    obs
  | _ ->
    let obs =
      Obs.make ~sink:(Obs.Sink.ring ~capacity ()) ~metrics:(Obs.Metrics.create ()) ()
    in
    memo := Some (capacity, obs);
    obs

let compiled_result ?counters ~obs (grid : Grid.t) (p : Grid.point) =
  let bump f = match counters with Some c -> Atomic.incr (f c) | None -> () in
  let policy () =
    match Scheduler.find p.Grid.policy with Ok pol -> pol | Error msg -> invalid_arg msg
  in
  match
    let plan =
      match grid.Grid.fault with
      | Some fault ->
        (* Outside the replay contract: let [compile] reject it so the
           sweep reports the same error a per-point [Emulator.run]
           would have. *)
        Compiled_engine.compile ~fault ~config:p.Grid.config ~workload:p.Grid.workload
          ~policy:(policy ()) ()
      | None -> (
        let memo = Domain.DLS.get plan_memo in
        let key = (p.Grid.config_label, p.Grid.policy, p.Grid.wl_label) in
        match Hashtbl.find_opt memo key with
        | Some (wl, plan) when wl == p.Grid.workload ->
          bump (fun c -> c.c_plan_reuses);
          plan
        | _ ->
          let plan =
            Compiled_engine.compile ~config:p.Grid.config ~workload:p.Grid.workload
              ~policy:(policy ()) ()
          in
          bump (fun c -> c.c_plan_compiles);
          Hashtbl.replace memo key (p.Grid.workload, plan);
          plan)
    in
    Compiled_engine.run ~obs plan
      {
        Engine_core.seed = p.Grid.seed;
        jitter = grid.Grid.jitter;
        reservation_depth = grid.Grid.reservation_depth;
      }
  with
  | report -> Ok report
  | exception Compiled_engine.Unsupported msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let aborted_row (p : Grid.point) msg =
  {
    index = p.Grid.index;
    config = p.Grid.config_label;
    policy = p.Grid.policy;
    workload = p.Grid.wl_label;
    replicate = p.Grid.replicate;
    seed = p.Grid.seed;
    makespan_ns = 0;
    job_count = 0;
    task_count = 0;
    sched_invocations = 0;
    sched_ns = 0;
    wm_overhead_ns = 0;
    busy_energy_mj = 0.0;
    energy_mj = 0.0;
    max_ready_depth = 0;
    max_inflight = 0;
    mean_wait_us = 0.0;
    p95_service_us = 0.0;
    util_by_kind = [];
    verdict = Stats.Aborted msg;
    completed_fraction = 0.0;
    task_retries = 0;
    fabric_stall_ns = 0;
    crit_path_us = 0.0;
    crit_path_dma_frac = 0.0;
  }

let run_point_inner ?counters ~engine_kind (grid : Grid.t) (p : Grid.point) =
  (* Full observation per point: metrics feed the queue-depth /
     latency columns, the ring sink feeds the critical-path analytics.
     Both engines run traced — the compiled engine lowers the same
     hooks and produces the same events, so result tables stay
     byte-identical across engines and worker counts.  The ring is
     sized off the task count so no point ever overwrites events
     (a truncated log would silently skew the analytics columns). *)
  let task_count =
    List.fold_left
      (fun acc (it : Workload.item) ->
        acc + List.length it.Workload.spec.App_spec.nodes)
      0 p.Grid.workload.Workload.items
  in
  let obs = obs_for ~capacity:(max 65536 (32 * task_count)) in
  let metrics = Option.get (Obs.metrics obs) in
  let result =
    match engine_kind with
    | `Virtual ->
      let engine =
        Emulator.virtual_seeded ~jitter:grid.Grid.jitter
          ~reservation_depth:grid.Grid.reservation_depth p.Grid.seed
      in
      Emulator.run ~engine ~policy:p.Grid.policy ~obs ?fault:grid.Grid.fault
        ~config:p.Grid.config ~workload:p.Grid.workload ()
    | `Compiled -> compiled_result ?counters ~obs grid p
  in
  match result with
  | Error msg when grid.Grid.fault <> None ->
    (* A grid can span configurations the fault plan cannot target
       (e.g. an [accel:...] rule over a 0-FFT point).  Record the
       rejection in the verdict column instead of killing the sweep. *)
    aborted_row p msg
  | Error msg -> invalid_arg msg
  | Ok r ->
    let gauge_max name =
      match Obs.Metrics.find_gauge metrics name with
      | Some g -> Obs.Metrics.gauge_max g
      | None -> 0
    in
    let hist f name =
      match Obs.Metrics.find_histogram metrics name with
      | Some h -> Option.value ~default:0.0 (f h)
      | None -> 0.0
    in
    let cp = Analyze.critical_path (Analyze.of_events (Obs.recorded_events obs)) in
    {
      index = p.Grid.index;
      config = p.Grid.config_label;
      policy = p.Grid.policy;
      workload = p.Grid.wl_label;
      replicate = p.Grid.replicate;
      seed = p.Grid.seed;
      makespan_ns = r.Stats.makespan_ns;
      job_count = r.Stats.job_count;
      task_count = r.Stats.task_count;
      sched_invocations = r.Stats.sched_invocations;
      sched_ns = r.Stats.sched_ns;
      wm_overhead_ns = r.Stats.wm_overhead_ns;
      busy_energy_mj = Stats.total_busy_energy_mj r;
      energy_mj = Stats.total_energy_mj r;
      max_ready_depth = gauge_max "ready_queue_depth";
      max_inflight = gauge_max "in_flight_tasks";
      mean_wait_us = hist Obs.Metrics.histogram_mean "task_wait_us";
      p95_service_us = hist (fun h -> Obs.Metrics.histogram_quantile h 0.95) "task_service_us";
      util_by_kind = Stats.mean_utilization_by_kind r;
      verdict = r.Stats.verdict;
      completed_fraction = Stats.completed_fraction r;
      task_retries = r.Stats.resilience.Stats.task_retries;
      fabric_stall_ns = r.Stats.fabric.Stats.fabric_stall_ns;
      crit_path_us = float_of_int cp.Analyze.cp_length_ns /. 1e3;
      crit_path_dma_frac = cp.Analyze.cp_dma_frac;
    }

let run_point ~engine_kind grid p = run_point_inner ~engine_kind grid p

type eval_ctx = {
  e_grid : Grid.t;
  e_engine : engine_kind;
  e_cache : Cache.t option;
  e_counters : counters;
  e_emit : (row -> unit) option;  (* already mutex-serialized *)
}

let make_ctx ?cache ?on_row ~engine grid =
  let emit =
    match on_row with
    | None -> None
    | Some f ->
      let mu = Mutex.create () in
      Some (fun r -> Mutex.protect mu (fun () -> f r))
  in
  { e_grid = grid; e_engine = engine; e_cache = cache; e_counters = fresh_counters (); e_emit = emit }

let eval_point ctx (p : Grid.point) =
  let row =
    match ctx.e_cache with
    | None ->
      let r = run_point_inner ~counters:ctx.e_counters ~engine_kind:ctx.e_engine ctx.e_grid p in
      Atomic.incr ctx.e_counters.c_misses;
      r
    | Some cache -> (
      let digest = point_digest ~engine:ctx.e_engine ~code_rev:(Cache.code_rev cache) ctx.e_grid p in
      match Cache.find cache ~digest with
      | Some payload -> (
        match row_of_payload payload with
        | Ok r ->
          Atomic.incr ctx.e_counters.c_hits;
          (* The digest deliberately excludes the point index (a grown
             grid may renumber); restore the requesting point's. *)
          { r with index = p.Grid.index }
        | Error msg ->
          failwith (Printf.sprintf "Sweep: corrupt cache row %s: %s" digest msg))
      | None ->
        let r = run_point_inner ~counters:ctx.e_counters ~engine_kind:ctx.e_engine ctx.e_grid p in
        Atomic.incr ctx.e_counters.c_misses;
        Cache.add cache ~digest (row_payload r);
        r)
  in
  (match ctx.e_emit with Some f -> f row | None -> ());
  row

(* ------------------------------------------------------------------ *)
(* Exhaustive runs                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  points : int;
  cache_hits : int;
  cache_misses : int;
  plan_compiles : int;
  plan_reuses : int;
  elapsed_ns : int;
}

let stats_of ctx ~points ~t0 =
  {
    points;
    cache_hits = Atomic.get ctx.e_counters.c_hits;
    cache_misses = Atomic.get ctx.e_counters.c_misses;
    plan_compiles = Atomic.get ctx.e_counters.c_plan_compiles;
    plan_reuses = Atomic.get ctx.e_counters.c_plan_reuses;
    elapsed_ns = Mclock.now_ns () - t0;
  }

let shard_points shard points =
  match shard with
  | None -> points
  | Some (i, n) ->
    if n <= 0 || i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Sweep.run: shard %d/%d out of range" i n);
    Array.of_list
      (List.filter (fun (p : Grid.point) -> p.Grid.index mod n = i) (Array.to_list points))

let run_stats ?jobs ?(engine = `Virtual) ?cache ?shard ?on_row grid =
  let t0 = Mclock.now_ns () in
  let points = shard_points shard (Grid.points grid) in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let ctx = make_ctx ?cache ?on_row ~engine grid in
  let rows =
    Pool.map ~jobs ~n:(Array.length points) (fun i -> eval_point ctx points.(i))
  in
  Option.iter Cache.flush cache;
  ( { grid_label = grid.Grid.label; rows = Array.to_list rows },
    stats_of ctx ~points:(Array.length points) ~t0 )

let run ?jobs ?engine ?cache ?shard ?on_row grid =
  fst (run_stats ?jobs ?engine ?cache ?shard ?on_row grid)

let run_timed ?jobs ?engine grid =
  let t, s = run_stats ?jobs ?engine grid in
  (t, s.elapsed_ns)

(* ------------------------------------------------------------------ *)
(* Merge: reassemble a full table from shard stores                   *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let of_cache ?(engine = `Virtual) ~cache grid =
  let points = Grid.points grid in
  let missing = ref 0 in
  let first_missing = ref (-1) in
  match
    Array.to_list points
    |> List.filter_map (fun (p : Grid.point) ->
           let digest = point_digest ~engine ~code_rev:(Cache.code_rev cache) grid p in
           match Cache.find cache ~digest with
           | Some payload -> (
             match row_of_payload payload with
             | Ok r -> Some { r with index = p.Grid.index }
             | Error msg ->
               raise (Corrupt (Printf.sprintf "corrupt cache row %s: %s" digest msg)))
           | None ->
             incr missing;
             if !first_missing < 0 then first_missing := p.Grid.index;
             None)
  with
  | rows ->
    if !missing > 0 then
      Error
        (Printf.sprintf
           "%d of %d points missing from cache %s (first missing point index %d; engine %s, \
            code_rev %s) — run the missing shards first"
           !missing (Array.length points) (Cache.dir cache) !first_missing
           (engine_name engine) (Cache.code_rev cache))
    else Ok { grid_label = grid.Grid.label; rows }
  | exception Corrupt msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Adaptive runs: successive halving over (config x policy x workload)*)
(* arms, replicates as the rung budget                                *)
(* ------------------------------------------------------------------ *)

type adaptive = {
  a_table : table;
  a_frontier : row list;
  a_exhaustive_points : int;
  a_survivors : int list;
  a_rungs : Frontier.rung list;
  a_stats : stats;
}

let arm_cell (grid : Grid.t) arm =
  let w = List.length grid.Grid.workloads and p = List.length grid.Grid.policies in
  let wi = arm mod w in
  let pi = arm / w mod p in
  let ci = arm / (w * p) in
  ( fst (List.nth grid.Grid.configs ci),
    List.nth grid.Grid.policies pi,
    (List.nth grid.Grid.workloads wi).Grid.wl_label )

let objectives_of_row (r : row) =
  match r.verdict with
  | Stats.Aborted _ ->
    (* An aborted point reports makespan 0; never let it look optimal. *)
    { Frontier.makespan_ns = max_int; energy_mj = infinity; completed_fraction = neg_infinity }
  | Stats.Completed | Stats.Degraded ->
    {
      Frontier.makespan_ns = r.makespan_ns;
      energy_mj = r.energy_mj;
      completed_fraction = r.completed_fraction;
    }

let run_adaptive ?jobs ?(engine = `Virtual) ?cache ?on_row grid =
  let t0 = Mclock.now_ns () in
  let points = Grid.points grid in
  let total = Array.length points in
  let reps = grid.Grid.replicates in
  let arms = total / reps in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let ctx = make_ctx ?cache ?on_row ~engine grid in
  let eval pairs =
    (* One rung's (arm, replicate) batch fanned out over the pool;
       replicate varies fastest in grid enumeration, so cell [arm]'s
       replicate [r] is point [arm * reps + r]. *)
    Pool.map ~jobs ~n:(Array.length pairs) (fun k ->
        let arm, r = pairs.(k) in
        eval_point ctx points.((arm * reps) + r))
  in
  let outcome =
    Frontier.successive_halving ~arms ~replicates:reps ~seed:grid.Grid.base_seed ~eval
      ~objectives:objectives_of_row ()
  in
  Option.iter Cache.flush cache;
  let rows =
    List.map (fun (_, _, r) -> r) outcome.Frontier.evaluated
    |> List.sort (fun a b -> compare a.index b.index)
  in
  let on_frontier r = List.mem (r.index / reps, r.index mod reps) outcome.Frontier.frontier in
  {
    a_table = { grid_label = grid.Grid.label; rows };
    a_frontier = List.filter on_frontier rows;
    a_exhaustive_points = total;
    a_survivors = outcome.Frontier.survivors;
    a_rungs = outcome.Frontier.rungs;
    a_stats = stats_of ctx ~points:(List.length rows) ~t0;
  }

(* ------------------------------------------------------------------ *)
(* Serialization — all formats are pure functions of the rows, so a   *)
(* sweep's export is byte-identical across worker counts.             *)
(* ------------------------------------------------------------------ *)

let util_string u = String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%.6f" k v) u)

let csv_header =
  "config,policy,workload,replicate,seed,makespan_ns,job_count,task_count,sched_invocations,sched_ns,wm_overhead_ns,busy_energy_mj,energy_mj,max_ready_depth,max_inflight,mean_wait_us,p95_service_us,util_by_kind,verdict,completed_fraction,task_retries,fabric_stall_ns,crit_path_us,crit_path_dma_frac"

let csv_row r =
  let field = Table.csv_field in
  Printf.sprintf
    "%s,%s,%s,%d,%Ld,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%.3f,%.3f,%s,%s,%.6f,%d,%d,%.3f,%.6f"
    (field r.config) (field r.policy) (field r.workload) r.replicate r.seed r.makespan_ns
    r.job_count r.task_count r.sched_invocations r.sched_ns r.wm_overhead_ns r.busy_energy_mj
    r.energy_mj r.max_ready_depth r.max_inflight r.mean_wait_us r.p95_service_us
    (field (util_string r.util_by_kind))
    (Stats.verdict_name r.verdict) r.completed_fraction r.task_retries r.fabric_stall_ns
    r.crit_path_us r.crit_path_dma_frac

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (csv_row r);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let to_json t =
  Json.obj
    [
      ("grid", Json.str t.grid_label);
      ("points", Json.int (List.length t.rows));
      ( "rows",
        Json.list
          (List.map
             (fun r ->
               Json.obj
                 [
                   ("config", Json.str r.config);
                   ("policy", Json.str r.policy);
                   ("workload", Json.str r.workload);
                   ("replicate", Json.int r.replicate);
                   ("seed", Json.str (Printf.sprintf "%Ld" r.seed));
                   ("makespan_ns", Json.int r.makespan_ns);
                   ("job_count", Json.int r.job_count);
                   ("task_count", Json.int r.task_count);
                   ("sched_invocations", Json.int r.sched_invocations);
                   ("sched_ns", Json.int r.sched_ns);
                   ("wm_overhead_ns", Json.int r.wm_overhead_ns);
                   ("busy_energy_mj", Json.float r.busy_energy_mj);
                   ("energy_mj", Json.float r.energy_mj);
                   ("max_ready_depth", Json.int r.max_ready_depth);
                   ("max_inflight", Json.int r.max_inflight);
                   ("mean_wait_us", Json.float r.mean_wait_us);
                   ("p95_service_us", Json.float r.p95_service_us);
                   ( "util_by_kind",
                     Json.obj (List.map (fun (k, v) -> (k, Json.float v)) r.util_by_kind) );
                   ("verdict", Json.str (Stats.verdict_name r.verdict));
                   ("completed_fraction", Json.float r.completed_fraction);
                   ("task_retries", Json.int r.task_retries);
                   ("fabric_stall_ns", Json.int r.fabric_stall_ns);
                   ("crit_path_us", Json.float r.crit_path_us);
                   ("crit_path_dma_frac", Json.float r.crit_path_dma_frac);
                 ])
             t.rows) );
    ]

let pp fmt t =
  let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6) in
  let rows =
    List.map
      (fun r ->
        [
          r.config;
          r.policy;
          r.workload;
          string_of_int r.replicate;
          ms r.makespan_ns;
          string_of_int r.job_count;
          string_of_int r.sched_invocations;
          ms r.wm_overhead_ns;
          Printf.sprintf "%.2f" r.energy_mj;
          string_of_int r.max_ready_depth;
          Printf.sprintf "%.1f" r.mean_wait_us;
          util_string r.util_by_kind;
        ])
      t.rows
  in
  Format.fprintf fmt "%s"
    (Table.render
       ~header:
         [
           "config"; "policy"; "workload"; "rep"; "makespan ms"; "jobs"; "sched inv";
           "WM ms"; "energy mJ"; "max rdy"; "wait us"; "util";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Aggregation over replicates                                        *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_config : string;
  s_policy : string;
  s_workload : string;
  n : int;
  makespan_ms : Quantile.boxplot;
  mean_energy_mj : float;
  mean_util_by_kind : (string * float) list;
}

let summarize t =
  (* Group rows by (config, policy, workload) in first-appearance
     order; rows arrive in point order, so groups are exactly the
     grid cells in grid order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let key = (r.config, r.policy, r.workload) in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key (ref []);
        order := key :: !order
      end;
      let cell = Hashtbl.find tbl key in
      cell := r :: !cell)
    t.rows;
  List.rev_map
    (fun ((config, policy, workload) as key) ->
      let rows = List.rev !(Hashtbl.find tbl key) in
      let n = List.length rows in
      let makespans =
        Array.of_list (List.map (fun r -> float_of_int r.makespan_ns /. 1e6) rows)
      in
      let mean_energy =
        List.fold_left (fun acc r -> acc +. r.energy_mj) 0.0 rows /. float_of_int (max 1 n)
      in
      let kinds =
        List.sort_uniq compare (List.concat_map (fun r -> List.map fst r.util_by_kind) rows)
      in
      let mean_util k =
        let sum, cnt =
          List.fold_left
            (fun (sum, cnt) r ->
              match List.assoc_opt k r.util_by_kind with
              | Some u -> (sum +. u, cnt + 1)
              | None -> (sum, cnt))
            (0.0, 0) rows
        in
        sum /. float_of_int (max 1 cnt)
      in
      {
        s_config = config;
        s_policy = policy;
        s_workload = workload;
        n;
        makespan_ms = Quantile.boxplot makespans;
        mean_energy_mj = mean_energy;
        mean_util_by_kind = List.map (fun k -> (k, mean_util k)) kinds;
      })
    !order

let pp_summary fmt t =
  let rows =
    List.map
      (fun s ->
        [
          s.s_config;
          s.s_policy;
          s.s_workload;
          string_of_int s.n;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.med;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.lo;
          Printf.sprintf "%.3f" s.makespan_ms.Quantile.hi;
          Printf.sprintf "%.2f" s.mean_energy_mj;
          util_string s.mean_util_by_kind;
        ])
      (summarize t)
  in
  Format.fprintf fmt "%s"
    (Table.render
       ~header:
         [
           "config"; "policy"; "workload"; "n"; "med ms"; "lo ms"; "hi ms"; "energy mJ";
           "mean util";
         ]
       ~rows)
