(* Fork-join worker pool over OCaml 5 domains.

   Work items are claimed from a shared atomic counter, so the
   *assignment* of items to workers is racy by design — but every
   item writes its result into its own slot of a preallocated array,
   so the *output* is always in input order and independent of the
   worker count.  Determinism of the overall computation then reduces
   to determinism of [f] itself. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ~jobs ~n f =
  if n < 0 then invalid_arg "Pool.map: negative item count";
  let jobs = max 1 (min jobs (max 1 n)) in
  let next = Atomic.make 0 in
  let results = Array.make n None in
  let failures = Array.make n None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f i with
        | r -> results.(i) <- Some r
        | exception e -> failures.(i) <- Some e);
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  (* Re-raise the lowest-index failure so error behaviour is also
     independent of the worker count. *)
  Array.iter (function Some e -> raise e | None -> ()) failures;
  Array.map (function Some r -> r | None -> assert false) results

let iter ~jobs ~n f = ignore (map ~jobs ~n f : unit array)
