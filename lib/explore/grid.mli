(** Declarative design-space experiment grids.

    A grid is the cross product
    configurations x policies x workloads x replicates — the sweep
    campaigns of Section III (Figs. 9-11) expressed as one value.
    Enumeration order is row-major in that field order, and every
    point derives its own PRNG seed from the campaign seed and its
    point index ({!Dssoc_util.Prng.derive_seed}), which is what lets
    {!Sweep.run} shard points across domains without the results
    depending on the worker count. *)

type workload_spec = {
  wl_label : string;
  build : Dssoc_util.Prng.t -> Dssoc_apps.Workload.t;
      (** called once per grid point, in the main domain, with a
          stream derived from the point seed *)
}

val workload : label:string -> (Dssoc_util.Prng.t -> Dssoc_apps.Workload.t) -> workload_spec

val fixed_workload : label:string -> Dssoc_apps.Workload.t -> workload_spec
(** A workload that ignores the per-point stream (validation mixes,
    probability-1 injection traces). *)

type t = {
  label : string;
  configs : (string * Dssoc_soc.Config.t) list;  (** (label, configuration) *)
  policies : string list;
  workloads : workload_spec list;
  replicates : int;  (** seeds 0..replicates-1 per cell *)
  base_seed : int64;
  jitter : float;  (** virtual-engine execution-time jitter sigma *)
  reservation_depth : int;  (** per-PE reservation-queue depth *)
  fault : Dssoc_fault.Fault.plan option;
      (** fault plan applied to every point (resilience campaigns);
          [None] sweeps fault-free *)
}

val make :
  ?label:string ->
  ?replicates:int ->
  ?base_seed:int64 ->
  ?jitter:float ->
  ?reservation_depth:int ->
  ?fault:Dssoc_fault.Fault.plan ->
  configs:(string * Dssoc_soc.Config.t) list ->
  policies:string list ->
  workloads:workload_spec list ->
  unit ->
  t
(** Validates eagerly: non-empty axes, positive replicates, known
    policy names.  Defaults: one replicate, seed 1, no jitter, no
    reservation queues, no fault plan.
    @raise Invalid_argument on an invalid grid. *)

val size : t -> int
(** Number of points. *)

type point = {
  index : int;  (** position in enumeration order, from 0 *)
  config_label : string;
  config : Dssoc_soc.Config.t;
  policy : string;
  wl_label : string;
  workload : Dssoc_apps.Workload.t;
  replicate : int;
  seed : int64;  (** [Prng.derive_seed ~seed:base_seed ~index] *)
}

val points : t -> point array
(** Enumerate (and build every workload) in the main domain, in
    deterministic row-major order: configs, then policies, then
    workloads, then replicates. *)
