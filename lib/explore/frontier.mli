(** Pareto-frontier tracking and successive-halving pruning for
    adaptive design-space exploration.

    Exhaustive sweeps evaluate every (configuration x policy x
    workload x replicate) point; on the axis spaces ROADMAP item 3
    targets that is millions of points, most of them dominated.  This
    module supplies the two pieces {!Sweep.run_adaptive} composes:

    - a {!t} tracker over the sweep's three-objective space —
      makespan (minimize), energy (minimize), completed fraction
      (maximize) — answering "which evaluated points are
      nondominated?";
    - {!successive_halving}, a replicate-budgeted pruner: arms (grid
      cells) are evaluated rung by rung with a doubling replicate
      budget, and between rungs dominated arms are dropped down to
      half the field.  An arm owning a point on the current Pareto
      frontier is {e never} pruned (the qcheck property in
      [test/test_distributed.ml]), so the reported frontier of an
      adaptive run can only miss a point whose whole cell was
      dominated at every observed rung.

    Determinism: the pruner draws nothing at run time.  Ties in the
    domination score are broken by a promotion order derived once from
    the campaign seed ({!Dssoc_util.Prng}), so the same grid produces
    the same rung decisions — adaptive runs are replayable and
    cache-friendly by construction. *)

type objectives = {
  makespan_ns : int;  (** minimized *)
  energy_mj : float;  (** minimized *)
  completed_fraction : float;  (** maximized *)
}

val dominates : objectives -> objectives -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one.  Equal vectors do not dominate
    each other (both stay on a frontier). *)

(** {1 Frontier tracker} *)

type t

val create : unit -> t
val add : t -> id:int -> objectives -> unit

val entries : t -> (int * objectives) list
(** Every added entry, in insertion order. *)

val frontier : t -> (int * objectives) list
(** The nondominated entries, in insertion order. *)

val frontier_ids : t -> int list

(** {1 Successive halving} *)

type rung = {
  rung : int;  (** rung number, from 0 *)
  cumulative_replicates : int;  (** replicates evaluated per surviving arm so far *)
  arms_in : int list;  (** arms evaluated in this rung *)
  frontier_arms : int list;
      (** surviving arms owning a current-frontier point at prune
          time; [[]] when the rung did not prune (final rung) *)
  pruned : int list;  (** arms dropped after this rung *)
}

type 'a outcome = {
  evaluated : (int * int * 'a) list;
      (** [(arm, replicate, value)] in evaluation order *)
  survivors : int list;  (** arms alive after the last rung, in arm order *)
  rungs : rung list;
  frontier : (int * int) list;
      (** [(arm, replicate)] of the evaluated values on the final
          Pareto frontier, sorted *)
}

val successive_halving :
  arms:int ->
  replicates:int ->
  seed:int64 ->
  eval:((int * int) array -> 'a array) ->
  objectives:('a -> objectives) ->
  unit ->
  'a outcome
(** Run the rung schedule: every arm gets 1 replicate in rung 0, and
    each later rung doubles the per-arm budget (capped at
    [replicates]) for the arms still alive.  Between rungs (never
    after the last) the field is cut to
    [max (frontier arms) (ceil (alive / 2))]: all arms owning a
    frontier point survive, and if they number fewer than half the
    field, the least-dominated remaining arms (ties broken by the
    seed-derived promotion order) fill the half.  [eval] receives the
    whole rung's [(arm, replicate)] batch at once so the caller can
    fan it out over a {!Pool}; it must return one value per pair, in
    order.
    @raise Invalid_argument on non-positive [arms]/[replicates] or an
    [eval] result of the wrong length. *)
