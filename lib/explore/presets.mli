(** Ready-made sweep grids for the paper's evaluation campaigns,
    shared by the [dssoc_emu sweep] CLI subcommand, the benchmark
    harness and the examples. *)

val zcu102_grid_configs : (int * int) list
(** The Fig. 9 (cores, ffts) axis. *)

val fig11_mixes : (int * int) list
(** The Fig. 11 (big, LITTLE) axis. *)

val sdr_mix : unit -> Grid.workload_spec
(** One instance of each reference application (validation mode). *)

val rate_workloads : unit -> Grid.workload_spec list
(** The five Table II injection traces ("rate1.71" .. "rate6.92"). *)

val fig9 :
  ?replicates:int -> ?base_seed:int64 -> ?jitter:float -> ?policies:string list -> unit -> Grid.t
(** 9 ZCU102 configurations x FRFS x SDR mix, jittered replicates
    (defaults: 10 replicates, 3% jitter). *)

val fig10 : ?policies:string list -> ?base_seed:int64 -> unit -> Grid.t
(** 3Core+2FFT x FRFS/MET/EFT x 5 injection rates, deterministic. *)

val fig11 : ?policies:string list -> ?base_seed:int64 -> unit -> Grid.t
(** 8 big.LITTLE mixes x FRFS x 5 injection rates, deterministic. *)

val fig9_contended :
  ?replicates:int ->
  ?base_seed:int64 ->
  ?jitter:float ->
  ?policies:string list ->
  ?fabric:string ->
  unit ->
  Grid.t
(** The Fig. 9 axis with every DMA stream charged through a shared
    bus ([fabric] is a {!Dssoc_soc.Fabric.of_spec} spec, default
    ["bus:bw=200MB/s,fifo=2"]).  FFT-heavy configurations contend on
    the link, shifting the cores-vs-accelerators crossover.
    @raise Invalid_argument on a malformed [fabric] spec. *)

val fabric_widths_mb_s : float list
(** The bus bandwidths (MB/s) swept by {!fabric_width}. *)

val fabric_width :
  ?replicates:int -> ?base_seed:int64 -> ?jitter:float -> ?policies:string list -> unit -> Grid.t
(** One 3Core+2FFT platform with the interconnect width as the swept
    axis: the ideal fabric plus {!fabric_widths_mb_s} bus points. *)

val names : string list

val by_name :
  ?replicates:int ->
  ?base_seed:int64 ->
  ?jitter:float ->
  ?policies:string list ->
  string ->
  (Grid.t, string) result
(** Case-insensitive preset lookup with optional overrides. *)
