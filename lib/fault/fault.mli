(** Deterministic fault injection for the shared engine core.

    A fault {!plan} describes, independently of any engine, which
    failures may strike which PEs during an emulation.  Compiling the
    plan against a configuration's PE list yields a {!t} that the
    resource handlers consult once per dispatched attempt.

    Determinism is the whole point: every probabilistic draw is keyed
    purely on [(fault_seed, task id, attempt)] via {!Prng.derive_seed}
    — never on the PE, wall clock or dispatch order — so the virtual
    and native engines replay byte-identical fault schedules, exactly
    as sweep sharding seeds grid points order-independently.  Timed
    events (permanent PE death, quarantine expiry) are expressed in
    emulation time and read through each backend's own clock. *)

(** What went wrong with one execution attempt. *)
type failure =
  | Pe_dead  (** the PE had permanently failed before the attempt *)
  | Transient  (** recoverable glitch; the PE heals after a quarantine *)
  | Dma_error  (** accelerator transfer fault (accelerator PEs only) *)
  | Watchdog_timeout  (** the task hung and the dispatch watchdog fired *)

val failure_name : failure -> string

(** Which PEs a rule applies to: every PE, one PE by exact label
    (["fft0"]), or a whole class by kind name (["cpu_arm_a53"],
    ["accel_fft"]) or the generic ["accel"]/["cpu"] groups. *)
type target = All | Pe_named of string

type fkind =
  | Die_at of int  (** permanent death at an emulation time (ns) *)
  | Transient_faults of { p : float; recover_ns : int }
  | Dma_errors of { p : float; recover_ns : int }
  | Hangs of { p : float; recover_ns : int }
  | Slowdowns of { p : float; factor : float }

type rule = { target : target; fault : fkind }

type plan = {
  fault_seed : int64;
  rules : rule list;
  max_attempts : int;  (** per-task attempt budget (default 4) *)
  backoff_base_ns : int;  (** first retry delay (default 100 us) *)
  backoff_cap_ns : int;  (** exponential backoff ceiling (default 10 ms) *)
  watchdog_factor : float;  (** hang detection at [factor * estimate] *)
  watchdog_floor_ns : int;  (** but never sooner than this *)
}

val default_plan : plan
(** No rules, default budgets ([fault_seed = 1L]). *)

val with_seed : plan -> int64 -> plan

(* ---------------- compiled plans ---------------- *)

(** Everything [compile] needs to know about a PE; mirrors
    [Dssoc_soc.Pe] without depending on it. *)
type pe_info = { pe_label : string; pe_kind : string; pe_is_cpu : bool }

type t
(** A plan compiled against a concrete PE array, or {!disabled}. *)

val disabled : t
(** Injects nothing and costs (almost) nothing to consult. *)

val compile : plan -> pes:pe_info array -> t
(** Resolve rule targets to PE indices.  @raise Invalid_argument when a
    rule's target matches no PE of the configuration. *)

val enabled : t -> bool

(** Outcome of consulting the plan for one execution attempt. *)
type decision =
  | Proceed
  | Proceed_slow of int
      (** run the kernel once, then model this many extra ns *)
  | Fail of { after_ns : int; reason : failure; quarantine_ns : int }
      (** the attempt burns [after_ns] of PE time, the kernel must NOT
          run, and the PE is quarantined for [quarantine_ns]
          ([max_int] = permanently dead, [0] = no quarantine) *)

val decide : t -> pe:int -> now:int -> task_id:int -> attempt:int -> est_ns:int -> decision
(** [attempt] is 1-based.  Probabilistic draws depend only on
    [(task_id, attempt)]; the planned-death check additionally reads
    [now].  [est_ns] scales failure-detection latencies. *)

val death_ns : t -> pe:int -> int option
(** The planned permanent-death time of a PE, if any. *)

val max_attempts : t -> int

val backoff_ns : t -> attempt:int -> int
(** Capped exponential: [backoff_base_ns * 2^(attempt-1)], at most
    [backoff_cap_ns].  [attempt] is the number of failures so far. *)

val watchdog_ns : t -> est_ns:int -> int
(** Watchdog deadline for a dispatch with the given estimate. *)

(* ---------------- spec strings ---------------- *)

val of_spec : ?seed:int64 -> string -> (plan, string) result
(** Parse a [--faults] specification: comma-separated clauses, each
    [TARGET:FAULT] with colon-separated [key=value] options, plus
    global knob clauses.  Examples:

    - [fft0:die@2ms] — PE [fft0] dies 2 ms into the run
    - [*:transient:p=0.1:recover=0.5ms] — every attempt anywhere fails
      with probability 0.1, quarantining the PE for 0.5 ms
    - [accel:dma:p=0.05] — DMA errors on accelerator PEs
    - [cpu:hang:p=0.02] — hangs caught by the watchdog
    - [fft1:slow:p=0.2:factor=3] — slowdowns (x3 service time)
    - [retries=5], [backoff=50us], [backoff-cap=2ms] — knobs

    Durations accept [ns]/[us]/[ms]/[s] suffixes (bare = ns).

    Parse errors name the offending clause — its 1-based index, its
    text, and its character offset in the spec — followed by what was
    wrong with it, e.g.
    [fault spec: clause 2 ("fft0:die@soon", at offset 21): die@ wants
    a duration, got "soon"]. *)

val spec_grammar : string
(** One-paragraph grammar summary for CLI help. *)
