module Prng = Dssoc_util.Prng

type failure = Pe_dead | Transient | Dma_error | Watchdog_timeout

let failure_name = function
  | Pe_dead -> "pe_dead"
  | Transient -> "transient"
  | Dma_error -> "dma_error"
  | Watchdog_timeout -> "watchdog_timeout"

type target = All | Pe_named of string

type fkind =
  | Die_at of int
  | Transient_faults of { p : float; recover_ns : int }
  | Dma_errors of { p : float; recover_ns : int }
  | Hangs of { p : float; recover_ns : int }
  | Slowdowns of { p : float; factor : float }

type rule = { target : target; fault : fkind }

type plan = {
  fault_seed : int64;
  rules : rule list;
  max_attempts : int;
  backoff_base_ns : int;
  backoff_cap_ns : int;
  watchdog_factor : float;
  watchdog_floor_ns : int;
}

let default_plan =
  {
    fault_seed = 1L;
    rules = [];
    max_attempts = 4;
    backoff_base_ns = 100_000;
    backoff_cap_ns = 10_000_000;
    watchdog_factor = 8.0;
    watchdog_floor_ns = 1_000_000;
  }

let with_seed plan seed = { plan with fault_seed = seed }

(* ---------------- compiled plans ---------------- *)

type pe_info = { pe_label : string; pe_kind : string; pe_is_cpu : bool }

type compiled = {
  plan : plan;
  rules : rule array;  (** plan order — the draw order *)
  applies : bool array array;  (** [rules x pes] *)
  death : int array;  (** per PE; [max_int] = never *)
}

type t = Disabled | Enabled of compiled

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

let target_matches target (pe : pe_info) =
  match target with
  | All -> true
  | Pe_named name ->
    String.equal name pe.pe_label || String.equal name pe.pe_kind
    || (String.equal name "cpu" && pe.pe_is_cpu)
    || (String.equal name "accel" && not pe.pe_is_cpu)

let target_name = function All -> "*" | Pe_named name -> name

(* DMA errors only make sense where there is a DMA engine. *)
let rule_applies rule pe =
  target_matches rule.target pe
  && match rule.fault with Dma_errors _ -> not pe.pe_is_cpu | _ -> true

let compile (plan : plan) ~(pes : pe_info array) =
  if plan.rules = [] then Disabled
  else begin
    let rules = Array.of_list plan.rules in
    let applies =
      Array.map (fun rule -> Array.map (fun pe -> rule_applies rule pe) pes) rules
    in
    Array.iteri
      (fun i row ->
        if not (Array.exists Fun.id row) then
          invalid_arg
            (Printf.sprintf "fault plan: target %S matches no PE of this configuration"
               (target_name rules.(i).target)))
      applies;
    let death = Array.make (Array.length pes) max_int in
    Array.iteri
      (fun i rule ->
        match rule.fault with
        | Die_at t ->
          Array.iteri (fun p ok -> if ok then death.(p) <- min death.(p) t) applies.(i)
        | _ -> ())
      rules;
    Enabled { plan; rules; applies; death }
  end

(* ---------------- decisions ---------------- *)

type decision =
  | Proceed
  | Proceed_slow of int
  | Fail of { after_ns : int; reason : failure; quarantine_ns : int }

(* Modelled latency before a permanent failure is noticed. *)
let dead_pe_detect_ns = 10_000

let watchdog_of plan ~est_ns =
  max plan.watchdog_floor_ns
    (int_of_float (plan.watchdog_factor *. float_of_int (max 0 est_ns)))

let decide t ~pe ~now ~task_id ~attempt ~est_ns =
  match t with
  | Disabled -> Proceed
  | Enabled c ->
    if now >= c.death.(pe) then
      Fail { after_ns = dead_pe_detect_ns; reason = Pe_dead; quarantine_ns = max_int }
    else begin
      (* One fresh stream per (task, attempt); one draw per
         probabilistic rule, in plan order, whether or not the rule
         applies to this PE — so every engine and every candidate PE
         sees identical draws. *)
      let prng =
        Prng.derive
          ~seed:(Prng.derive_seed ~seed:c.plan.fault_seed ~index:task_id)
          ~index:attempt
      in
      let est = max 1 est_ns in
      let chosen = ref Proceed in
      Array.iteri
        (fun i rule ->
          let draw p = Prng.bernoulli prng p in
          let hit =
            match rule.fault with
            | Die_at _ -> false
            | Transient_faults { p; _ } | Dma_errors { p; _ } | Hangs { p; _ }
            | Slowdowns { p; _ } ->
              draw p
          in
          if hit && c.applies.(i).(pe) && !chosen = Proceed then
            chosen :=
              (match rule.fault with
              | Die_at _ -> Proceed
              | Transient_faults { recover_ns; _ } ->
                Fail
                  { after_ns = max 1 (est / 2); reason = Transient; quarantine_ns = recover_ns }
              | Dma_errors { recover_ns; _ } ->
                Fail
                  { after_ns = max 1 (est / 4); reason = Dma_error; quarantine_ns = recover_ns }
              | Hangs { recover_ns; _ } ->
                Fail
                  {
                    after_ns = watchdog_of c.plan ~est_ns:est;
                    reason = Watchdog_timeout;
                    quarantine_ns = recover_ns;
                  }
              | Slowdowns { factor; _ } ->
                Proceed_slow
                  (max 0 (int_of_float ((factor -. 1.0) *. float_of_int est)))))
        c.rules;
      !chosen
    end

let death_ns t ~pe =
  match t with
  | Disabled -> None
  | Enabled c -> if c.death.(pe) = max_int then None else Some c.death.(pe)

let max_attempts = function Disabled -> max_int | Enabled c -> c.plan.max_attempts

let backoff_ns t ~attempt =
  match t with
  | Disabled -> 0
  | Enabled c ->
    let shift = min 20 (max 0 (attempt - 1)) in
    min c.plan.backoff_cap_ns (c.plan.backoff_base_ns lsl shift)

let watchdog_ns t ~est_ns =
  match t with Disabled -> max_int | Enabled c -> watchdog_of c.plan ~est_ns

(* ---------------- spec strings ---------------- *)

let spec_grammar =
  "comma-separated clauses; each TARGET:FAULT with optional \
   key=value fields, where TARGET is *, a PE label (fft0), a PE kind \
   (accel_fft), or the groups cpu/accel, and FAULT is die@TIME, \
   transient:p=P[:recover=TIME], dma:p=P[:recover=TIME], \
   hang:p=P[:recover=TIME] or slow:p=P:factor=F; plus the knob \
   clauses retries=N, backoff=TIME and backoff-cap=TIME.  TIME \
   accepts ns/us/ms/s suffixes (bare numbers are ns).  Example: \
   'fft0:die@2ms,*:transient:p=0.1:recover=0.5ms,retries=5'"

let parse_duration_ns s =
  let num_part suffix = String.sub s 0 (String.length s - String.length suffix) in
  let scaled suffix mult =
    match float_of_string_opt (num_part suffix) with
    | Some f when f >= 0.0 -> Some (int_of_float (f *. mult))
    | _ -> None
  in
  let ends suffix =
    let n = String.length s and m = String.length suffix in
    n > m && String.equal (String.sub s (n - m) m) suffix
  in
  if ends "ns" then scaled "ns" 1.0
  else if ends "us" then scaled "us" 1e3
  else if ends "ms" then scaled "ms" 1e6
  else if ends "s" then scaled "s" 1e9
  else scaled "" 1.0

let parse_prob s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Some p
  | _ -> None

let split_on c s = String.split_on_char c s |> List.map String.trim

(* [fields] is the list of "key=value" strings after the fault name. *)
let field_value fields key =
  List.find_map
    (fun f ->
      match String.index_opt f '=' with
      | Some i when String.equal (String.sub f 0 i) key ->
        Some (String.sub f (i + 1) (String.length f - i - 1))
      | _ -> None)
    fields

let ( let* ) = Result.bind

let parse_clause clause =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match split_on ':' clause with
  | [] | [ "" ] -> err "empty clause"
  | [ knob ] when String.contains knob '=' -> begin
    (* global knob: retries=N, backoff=TIME, backoff-cap=TIME *)
    match split_on '=' knob with
    | [ "retries"; v ] -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok (`Knob (fun p -> { p with max_attempts = n }))
      | _ -> err "retries wants a positive integer, got %S" v
    end
    | [ "backoff"; v ] -> begin
      match parse_duration_ns v with
      | Some ns -> Ok (`Knob (fun p -> { p with backoff_base_ns = ns }))
      | None -> err "backoff wants a duration, got %S" v
    end
    | [ "backoff-cap"; v ] -> begin
      match parse_duration_ns v with
      | Some ns -> Ok (`Knob (fun p -> { p with backoff_cap_ns = ns }))
      | None -> err "backoff-cap wants a duration, got %S" v
    end
    | _ -> err "unknown knob %S" knob
  end
  | target_s :: rest -> begin
    let target = if String.equal target_s "*" then All else Pe_named target_s in
    let fault_s, fields =
      match rest with [] -> ("", []) | f :: fields -> (f, fields)
    in
    let prob () =
      match field_value fields "p" with
      | Some v -> (
        match parse_prob v with
        | Some p -> Ok p
        | None -> err "p wants a probability in [0,1], got %S" v)
      | None -> err "missing p=PROB"
    in
    let recover ~default =
      match field_value fields "recover" with
      | None -> Ok default
      | Some v -> (
        match parse_duration_ns v with
        | Some ns -> Ok ns
        | None -> err "recover wants a duration, got %S" v)
    in
    match String.index_opt fault_s '@' with
    | Some i when String.equal (String.sub fault_s 0 i) "die" -> begin
      let v = String.sub fault_s (i + 1) (String.length fault_s - i - 1) in
      match parse_duration_ns v with
      | Some ns -> Ok (`Rule { target; fault = Die_at ns })
      | None -> err "die@ wants a duration, got %S" v
    end
    | _ -> begin
      match fault_s with
      | "transient" ->
        let* p = prob () in
        let* recover_ns = recover ~default:1_000_000 in
        Ok (`Rule { target; fault = Transient_faults { p; recover_ns } })
      | "dma" ->
        let* p = prob () in
        let* recover_ns = recover ~default:1_000_000 in
        Ok (`Rule { target; fault = Dma_errors { p; recover_ns } })
      | "hang" ->
        let* p = prob () in
        let* recover_ns = recover ~default:1_000_000 in
        Ok (`Rule { target; fault = Hangs { p; recover_ns } })
      | "slow" ->
        let* p = prob () in
        let* factor =
          match field_value fields "factor" with
          | None -> err "slow wants factor=F"
          | Some v -> (
            match float_of_string_opt v with
            | Some f when f >= 1.0 -> Ok f
            | _ -> err "factor wants a float >= 1, got %S" v)
        in
        Ok (`Rule { target; fault = Slowdowns { p; factor } })
      | "" -> err "missing fault kind"
      | other -> err "unknown fault kind %S" other
    end
  end

let of_spec ?(seed = default_plan.fault_seed) spec =
  (* Clauses are carried with their character offset in [spec] so a
     parse error can point at the offending token, not just fail. *)
  let clauses =
    let rec split off acc =
      match String.index_from_opt spec off ',' with
      | None -> List.rev ((off, String.sub spec off (String.length spec - off)) :: acc)
      | Some i -> split (i + 1) ((off, String.sub spec off (i - off)) :: acc)
    in
    (if String.equal spec "" then [] else split 0 [])
    |> List.filter (fun (_, c) -> not (String.equal c ""))
  in
  if clauses = [] then Error "empty fault spec"
  else
    let rec go (plan : plan) rules idx = function
      | [] -> Ok { plan with rules = List.rev rules }
      | (off, clause) :: rest -> (
        match parse_clause clause with
        | Ok (`Rule r) -> go plan (r :: rules) (idx + 1) rest
        | Ok (`Knob f) -> go (f plan) rules (idx + 1) rest
        | Error msg ->
          Error
            (Printf.sprintf "fault spec: clause %d (%S, at offset %d): %s" idx clause off msg))
    in
    go { default_plan with fault_seed = seed } [] 1 clauses
