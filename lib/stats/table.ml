let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let rows =
    List.map
      (fun r ->
        let len = List.length r in
        if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> ""))
      rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) (String.length h) rows)
      header
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad c (List.nth widths i)))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

(* RFC 4180 escaping, applied only when needed so the common all-plain
   case (and every pinned golden) is byte-identical to the raw field. *)
let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let render_csv ~header ~rows =
  let line cells = String.concat "," (List.map csv_field cells) ^ "\n" in
  line header ^ String.concat "" (List.map line rows)

let bar_chart ?(width = 40) entries =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let lw = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let n =
        if vmax <= 0.0 then 0 else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s |%s%s| %g\n" (pad label lw) (String.make n '#')
           (String.make (width - n) ' ')
           v))
    entries;
  Buffer.contents buf

let box_row ?(width = 50) ~scale_hi ~lo ~q1 ~med ~q3 ~hi () =
  let pos v =
    if scale_hi <= 0.0 then 0
    else min (width - 1) (max 0 (int_of_float (Float.round (v /. scale_hi *. float_of_int (width - 1)))))
  in
  let line = Bytes.make width ' ' in
  let plo = pos lo and pq1 = pos q1 and pmed = pos med and pq3 = pos q3 and phi = pos hi in
  for i = plo to phi do Bytes.set line i '-' done;
  for i = pq1 to pq3 do Bytes.set line i '=' done;
  Bytes.set line plo '|';
  Bytes.set line phi '|';
  if pq1 <> pq3 then begin
    Bytes.set line pq1 '[';
    Bytes.set line pq3 ']'
  end;
  Bytes.set line pmed '#';
  Bytes.to_string line

let series ?(width = 9) ~x_label ~xs ~curves () =
  let header = x_label :: List.map fst curves in
  let fmt v = Printf.sprintf "%*.3f" width v in
  let rows =
    List.mapi
      (fun i x -> fmt x :: List.map (fun (_, ys) -> fmt (List.nth ys i)) curves)
      xs
  in
  render ~header ~rows
