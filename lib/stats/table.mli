(** ASCII table and chart rendering for the benchmark harness.

    Every table/figure of the paper is re-emitted as monospace text so
    [dune exec bench/main.exe] output can be diffed and pasted into
    EXPERIMENTS.md. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header.  Rows shorter
    than the header are padded with empty cells. *)

val csv_field : string -> string
(** RFC 4180 field escaping: fields containing commas, double quotes,
    or line breaks are wrapped in double quotes (embedded quotes
    doubled); any other field is returned unchanged, byte for byte. *)

val render_csv : header:string list -> rows:string list list -> string
(** Comma-separated rendering; every cell goes through {!csv_field}. *)

val bar_chart : ?width:int -> (string * float) list -> string
(** Horizontal bars scaled to the maximum value, one line per entry:
    {v label |######    | 12.3 v} *)

val box_row :
  ?width:int -> scale_hi:float -> lo:float -> q1:float -> med:float -> q3:float -> hi:float ->
  unit -> string
(** One box-and-whisker line scaled to [scale_hi]:
    {v   |----[==|==]-------| v} *)

val series :
  ?width:int ->
  x_label:string ->
  xs:float list ->
  curves:(string * float list) list ->
  unit ->
  string
(** Multi-series numeric table (one row per x, one column per curve),
    for line figures such as Figs. 10 and 11. *)
