(** Kernel execution-cost model.

    The virtual engine executes every kernel functionally on the host
    but charges *modelled* time from this table, calibrated against the
    paper's measurements (Table I standalone times, the Fig. 9
    CPU-vs-FFT-accelerator crossover, and the Case Study 4 substitution
    factors).  CPU cost of a kernel of size [n] is

    {[ base + lin*n + nlogn*n*log2 n + quad*n^2  (ns, reference core) ]}

    divided by the executing core's [perf_factor].  Accelerator cost is
    priced from the device model: DMA round trip + setup + streaming
    compute (see {!Pe.accel_class}); transfers larger than the device's
    local memory are chunked. *)

type profile = { base_ns : float; lin_ns : float; nlogn_ns : float; quad_ns : float }

val register : string -> profile -> unit
(** Register or replace the cost profile of a kernel class.  All
    built-in kernels are pre-registered (see the implementation for the
    calibrated constants). *)

val lookup : string -> profile option

val known_kernels : unit -> string list
(** Registered kernel-class names, sorted. *)

val cpu_cost_ns : kernel:string -> n:int -> Pe.cpu_class -> int
(** @raise Invalid_argument for an unregistered kernel. *)

val accel_cost_ns : bytes_in:int -> bytes_out:int -> n:int -> Pe.accel_class -> int
(** Full accelerator turnaround: DMA in, setup, compute, DMA out. *)

val accel_phases_ns :
  bytes_in:int -> bytes_out:int -> n:int -> Pe.accel_class -> int * int * int
(** [(dma_in, device_compute, dma_out)] — the engine needs the split
    because the manager thread occupies its host core only during the
    DMA phases and sleeps during device compute (Section II-D). *)

val chunk_count : Pe.accel_class -> bytes:int -> int
(** Number of BRAM-sized DMA chunks a transfer decomposes into (each
    pays the device's per-transfer latency); [0] when [bytes <= 0].
    Used by the fabric layer to split a phase into fixed latency vs
    bandwidth demand. *)

(** {1 Workload-manager overhead constants}

    Charged on the overlay core per workload-manager loop iteration;
    scaled by the overlay core's [perf_factor].  Calibrated so FRFS
    costs ~2.5 us per scheduling invocation on the ZCU102 overlay
    (Fig. 10b). *)

val monitor_per_pe_ns : float
(** Completion-status polling cost per PE. *)

val ready_update_per_task_ns : float
(** Ready-list insertion cost per newly ready task. *)

val dispatch_per_task_ns : float
(** Handler communication cost per dispatched task. *)

val sched_base_ns : float
(** Fixed cost of entering the scheduler. *)

val sched_frfs_per_pe_ns : float
(** FRFS: linear in PE count (paper: "complexity of FRFS is equal to
    the number of PEs"). *)

val sched_met_per_task_ns : float
(** MET: linear in examined ready-task count (paper: O(n)). *)

val sched_eft_per_pair_ns : float
(** EFT: quadratic — per (ready task x ready task) pair over the
    examined window (paper: O(n^2)). *)

val sched_examined_cap : int
(** How many ready-queue entries one scheduling invocation examines
    (and is charged for).  The paper's schedulers scan the whole ready
    list; bounding the window keeps the overhead feedback loop stable
    while preserving the O(n)/O(n^2) growth across injection rates. *)
