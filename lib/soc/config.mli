(** DSSoC test configurations.

    A configuration instantiates PEs out of the host's resource pool
    and places one resource-manager thread per PE onto a host core,
    following Section II-D of the paper:

    - each CPU PE pins its manager thread to a dedicated, unused pool
      core of the matching class;
    - accelerator PEs fill the remaining unused cores first, then
      round-robin across the cores already hosting accelerator
      managers (so in a 2Core+2FFT ZCU102 configuration both FFT
      manager threads share the one leftover core and "cyclically
      preempt each other" — the Fig. 9 anomaly); only when every pool
      core is dedicated to a CPU PE do accelerator managers share the
      CPU-PE cores (the 3Core+2FFT case). *)

type request = { kind : Pe.kind; count : int }

type placement = {
  pe : Pe.t;
  host_core : Host.core;  (** core running this PE's resource-manager thread *)
  dedicated : bool;  (** true when no other manager thread shares the core *)
}

type t = {
  host : Host.t;
  label : string;  (** e.g. "2Core+1FFT", "3BIG+2LTL" *)
  placements : placement list;
  fabric : Fabric.t;  (** shared interconnect; [Ideal] = legacy per-device DMA *)
}

val make : host:Host.t -> requests:request list -> (t, string) result
(** Fails when a CPU request exceeds the matching pool cores, or an
    accelerator request exceeds the host's accelerator slots.  The
    fabric is {!Fabric.Ideal}; override with {!with_fabric}. *)

val make_exn : host:Host.t -> requests:request list -> t

val with_fabric : Fabric.t -> t -> t

val zcu102_cores_ffts : cores:int -> ffts:int -> t
(** Convenience builder for the Fig. 9 / Fig. 10 sweep
    ([cores] A53 CPU PEs + [ffts] PL FFT accelerators).
    @raise Invalid_argument when infeasible on ZCU102. *)

val odroid_big_little : big:int -> little:int -> t
(** Convenience builder for the Fig. 11 sweep.
    @raise Invalid_argument when infeasible on Odroid XU3. *)

val pes : t -> Pe.t list

val core_sharing : t -> (int * string list) list
(** [(host core id, manager-thread labels)] for every core that hosts
    at least one manager thread — diagnostic used by tests and the
    [platforms] CLI command. *)

val pp : Format.formatter -> t -> unit
