(** Shared-interconnect (fabric) model.

    Today's per-device {!Dma} model prices each transfer in isolation:
    two accelerators DMAing concurrently see zero slowdown.  This
    module adds the shared medium between DDR and accelerator BRAM —
    an arbitrated bus with an aggregate bandwidth shared fairly among
    the in-flight DMA streams, a bounded AXI-style request FIFO that
    stalls initiators when full, and an optional hop-count NoC
    topology that adds per-hop latency.

    [Ideal] reproduces the legacy per-device timings exactly: engines
    charge [Dma]/[Cost_model] durations unchanged, byte-for-byte.

    Under [Bus], a DMA phase is decomposed into a bandwidth {i demand}
    (all bytes over the aggregate bus bandwidth, served processor-
    sharing style at rate [1/k] when [k] streams are in flight) plus a
    fixed latency term (per-chunk device setup cost and per-hop fabric
    latency) paid after the link service completes.  Streams arriving
    while [fifo_depth] transfers are in flight queue FIFO and the
    initiating manager thread stalls. *)

type topology =
  | Crossbar  (** single-hop: every PE is one hop from DDR *)
  | Mesh of int * int  (** [Mesh (w, h)]: XY-routed grid, DDR at (0,0) *)

type bus = {
  bw_mb_s : float;  (** aggregate bus bandwidth (1 MB/s = 1 byte/us) *)
  fifo_depth : int;  (** max concurrent in-flight DMA streams *)
  hop_ns : int;  (** per-hop fabric latency *)
  topology : topology;
}

type t = Ideal | Bus of bus

val default_bus : bus
(** [bw=2000MB/s, fifo=16, hop=0ns, crossbar]. *)

val hops : topology -> pe_index:int -> int
(** Hop count from DDR to the PE's fabric endpoint (>= 1: the ingress
    hop is always paid).  Mesh slots assign PEs round-robin by index. *)

val demand_ns : bus -> bytes:int -> int
(** Uncontended service time of [bytes] at the full bus bandwidth —
    the bandwidth demand a stream places on the link.  [0] when
    [bytes <= 0].
    @raise Invalid_argument when the duration overflows [max_int]. *)

val of_spec : string -> (t, string) result
(** Parse a CLI fabric spec: ["ideal"], or ["bus:"] followed by
    comma-separated [key=value] settings over {!default_bus} —
    [bw=2000MB/s] (or [GB/s]), [fifo=16], [hop=50ns],
    [hops=crossbar|mesh2x2].  E.g.
    ["bus:bw=2000MB/s,fifo=16,hops=mesh2x2"]. *)

val fingerprint : t -> string
(** Canonical spec string; stable — folded into sweep cache digests. *)

val pp : Format.formatter -> t -> unit
