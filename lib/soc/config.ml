type request = { kind : Pe.kind; count : int }

type placement = { pe : Pe.t; host_core : Host.core; dedicated : bool }

type t = { host : Host.t; label : string; placements : placement list; fabric : Fabric.t }

let label_of_requests host requests =
  let part r =
    let n = r.count in
    match r.kind with
    | Pe.Cpu c when c.Pe.cpu_name = "big" -> Printf.sprintf "%dBIG" n
    | Pe.Cpu c when c.Pe.cpu_name = "little" -> Printf.sprintf "%dLTL" n
    | Pe.Cpu _ -> Printf.sprintf "%dCore" n
    | Pe.Accel a -> Printf.sprintf "%d%s" n (String.uppercase_ascii a.Pe.accel_name)
  in
  let parts = List.map part (List.filter (fun r -> r.count >= 0) requests) in
  let parts =
    (* Keep the paper's habit of always printing the accelerator count
       on ZCU102 ("1Core+0FFT"). *)
    if host.Host.name = "ZCU102" && not (List.exists (fun r -> not (Pe.is_cpu r.kind)) requests)
    then parts @ [ "0FFT" ]
    else parts
  in
  String.concat "+" parts

let make ~host ~requests =
  let ( let* ) = Result.bind in
  let* () =
    if List.exists (fun r -> r.count < 0) requests then Error "negative PE count"
    else if List.for_all (fun r -> r.count = 0) requests then Error "empty configuration"
    else Ok ()
  in
  (* CPU PEs claim dedicated cores of the matching class, in pool order. *)
  let used = Hashtbl.create 8 in
  let next_id = ref 0 in
  let fresh_pe kind =
    let pe = Pe.make ~id:!next_id ~kind in
    incr next_id;
    pe
  in
  let place_cpu cls n =
    let candidates =
      List.filter
        (fun c ->
          c.Host.core_class.Pe.cpu_name = cls.Pe.cpu_name && not (Hashtbl.mem used c.Host.core_id))
        host.Host.pool
    in
    if List.length candidates < n then
      Error
        (Printf.sprintf "requested %d %S CPU PEs but only %d matching pool cores are free" n
           cls.Pe.cpu_name (List.length candidates))
    else begin
      let chosen = List.filteri (fun i _ -> i < n) candidates in
      List.iter (fun c -> Hashtbl.add used c.Host.core_id ()) chosen;
      Ok (List.map (fun c -> (fresh_pe (Pe.Cpu cls), c)) chosen)
    end
  in
  (* Two passes: CPUs first (they claim dedicated cores), then
     accelerator managers over what is left. *)
  let cpu_requests, accel_requests = List.partition (fun r -> Pe.is_cpu r.kind) requests in
  let* cpu_placements =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        match r.kind with
        | Pe.Cpu cls ->
          let* placed = place_cpu cls r.count in
          Ok (acc @ placed)
        | Pe.Accel _ -> assert false)
      (Ok []) cpu_requests
  in
  let* accel_pes =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        match r.kind with
        | Pe.Accel cls ->
          let slots =
            List.length
              (List.filter (fun s -> s.Pe.accel_name = cls.Pe.accel_name) host.Host.accel_slots)
          in
          if r.count > slots then
            Error
              (Printf.sprintf "requested %d %S accelerators but host %s has %d slot(s)" r.count
                 cls.Pe.accel_name host.Host.name slots)
          else Ok (acc @ List.init r.count (fun _ -> fresh_pe (Pe.Accel cls)))
        | Pe.Cpu _ -> assert false)
      (Ok []) accel_requests
  in
  (* Accelerator manager placement: unused pool cores first; once those
     are gone, round-robin among non-dedicated cores (i.e. the cores
     hosting accelerator managers); if every pool core is dedicated,
     round-robin across the whole pool. *)
  let load = Hashtbl.create 8 in
  List.iter (fun (_, c) -> Hashtbl.replace load c.Host.core_id 1) cpu_placements;
  let core_load c = Option.value ~default:0 (Hashtbl.find_opt load c.Host.core_id) in
  let dedicated_ids =
    List.map (fun (_, c) -> c.Host.core_id) cpu_placements |> List.sort_uniq compare
  in
  let accel_placements =
    List.map
      (fun pe ->
        let unused = List.filter (fun c -> core_load c = 0) host.Host.pool in
        let target =
          match unused with
          | c :: _ -> c
          | [] ->
            let shared =
              List.filter (fun c -> not (List.mem c.Host.core_id dedicated_ids)) host.Host.pool
            in
            let candidates = if shared = [] then host.Host.pool else shared in
            List.fold_left
              (fun best c -> if core_load c < core_load best then c else best)
              (List.hd candidates) (List.tl candidates)
        in
        Hashtbl.replace load target.Host.core_id (core_load target + 1);
        (pe, target))
      accel_pes
  in
  let all = cpu_placements @ accel_placements in
  let count_on core_id =
    List.length (List.filter (fun (_, c) -> c.Host.core_id = core_id) all)
  in
  let placements =
    List.map
      (fun (pe, core) -> { pe; host_core = core; dedicated = count_on core.Host.core_id = 1 })
      all
  in
  Ok { host; label = label_of_requests host requests; placements; fabric = Fabric.Ideal }

let make_exn ~host ~requests =
  match make ~host ~requests with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Config.make_exn: %s" msg)

let with_fabric fabric t = { t with fabric }

let zcu102_cores_ffts ~cores ~ffts =
  make_exn ~host:Host.zcu102
    ~requests:
      (List.concat
         [
           (if cores > 0 then [ { kind = Pe.Cpu Pe.a53; count = cores } ] else []);
           (if ffts > 0 then [ { kind = Pe.Accel Pe.zynq_fft; count = ffts } ] else []);
         ])

let odroid_big_little ~big ~little =
  make_exn ~host:Host.odroid_xu3
    ~requests:
      (List.concat
         [
           (if big > 0 then [ { kind = Pe.Cpu Pe.a15_big; count = big } ] else []);
           (if little > 0 then [ { kind = Pe.Cpu Pe.a7_little; count = little } ] else []);
         ])

let pes t = List.map (fun p -> p.pe) t.placements

let core_sharing t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl p.host_core.Host.core_id) in
      Hashtbl.replace tbl p.host_core.Host.core_id (prev @ [ p.pe.Pe.label ]))
    t.placements;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let pp fmt t =
  Format.fprintf fmt "%s on %s:@." t.label t.host.Host.name;
  List.iter
    (fun p ->
      Format.fprintf fmt "  %a -> core %d%s@." Pe.pp p.pe p.host_core.Host.core_id
        (if p.dedicated then "" else " (shared)"))
    t.placements;
  (* Printed only when non-Ideal so legacy output (and everything
     derived from it, e.g. sweep digests) stays byte-identical. *)
  match t.fabric with
  | Fabric.Ideal -> ()
  | f -> Format.fprintf fmt "  fabric: %a@." Fabric.pp f
