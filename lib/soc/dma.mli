(** DMA engine model.

    On the ZCU102 the framework moves data between DDR and
    accelerator-local BRAM through an AXI4-Stream DMA block backed by a
    udmabuf contiguous buffer (Figure 6 of the paper).  The model
    prices a transfer as a fixed per-transaction latency (descriptor
    setup, interrupt) plus bytes over a sustained bandwidth.  This
    overhead is what makes a 128-point FFT *slower* on the accelerator
    than on an A53 core — the central observation of Case Study 1. *)

type t = {
  latency_ns : int;  (** per-transfer fixed cost (setup + completion) *)
  bandwidth_bytes_per_us : float;  (** sustained streaming bandwidth *)
}

val make : latency_ns:int -> bandwidth_mb_s:float -> t

val transfer_ns : t -> bytes:int -> int
(** Modelled wall time of moving [bytes] in one direction.
    @raise Invalid_argument on a negative size, or when the modelled
    duration would overflow [max_int] (multi-GB transfers at low
    bandwidth used to wrap negative via [int_of_float]). *)

val round_trip_ns : t -> bytes_in:int -> bytes_out:int -> int
(** Input transfer plus output transfer (the device compute between
    them is priced separately by {!Accel}). *)
