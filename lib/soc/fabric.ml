type topology = Crossbar | Mesh of int * int

type bus = {
  bw_mb_s : float;
  fifo_depth : int;
  hop_ns : int;
  topology : topology;
}

type t = Ideal | Bus of bus

let default_bus = { bw_mb_s = 2000.0; fifo_depth = 16; hop_ns = 0; topology = Crossbar }

let hops topology ~pe_index =
  match topology with
  | Crossbar -> 1
  | Mesh (w, h) ->
    (* PEs wrap around the mesh slots; DDR sits at (0,0) and the
       ingress hop onto the fabric is always paid. *)
    let slot = pe_index mod (w * h) in
    (slot mod w) + (slot / w) + 1

let demand_ns b ~bytes =
  if bytes <= 0 then 0
  else begin
    (* 1 MB/s = 1 byte/us, same unit convention as Dma. *)
    let ns = Float.round (float_of_int bytes /. b.bw_mb_s *. 1e3) in
    if Float.is_nan ns || ns >= float_of_int max_int then
      invalid_arg "Fabric.demand_ns: duration overflows"
    else int_of_float ns
  end

let fingerprint = function
  | Ideal -> "ideal"
  | Bus b ->
    let topo =
      match b.topology with
      | Crossbar -> ""
      | Mesh (w, h) -> Printf.sprintf ",hops=mesh%dx%d" w h
    in
    let hop = if b.hop_ns > 0 then Printf.sprintf ",hop=%dns" b.hop_ns else "" in
    Printf.sprintf "bus:bw=%gMB/s,fifo=%d%s%s" b.bw_mb_s b.fifo_depth hop topo

let pp fmt t = Format.pp_print_string fmt (fingerprint t)

let of_spec spec =
  let ( let* ) = Result.bind in
  let spec = String.trim spec in
  if spec = "" || String.lowercase_ascii spec = "ideal" then Ok Ideal
  else
    let lower = String.lowercase_ascii spec in
    if not (String.length lower >= 4 && String.sub lower 0 4 = "bus:") then
      Error (Printf.sprintf "unknown fabric %S (expected \"ideal\" or \"bus:...\")" spec)
    else begin
      let body = String.sub spec 4 (String.length spec - 4) in
      let parts =
        String.split_on_char ',' body |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let parse_kv part =
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "fabric: expected key=value, got %S" part)
        | Some i ->
          Ok
            ( String.lowercase_ascii (String.sub part 0 i),
              String.sub part (i + 1) (String.length part - i - 1) )
      in
      let strip_suffix s suf =
        let ls = String.length s and lf = String.length suf in
        if ls >= lf && String.lowercase_ascii (String.sub s (ls - lf) lf) = suf then
          Some (String.sub s 0 (ls - lf))
        else None
      in
      let parse_bw v =
        let v = String.trim v in
        let num, scale =
          match strip_suffix v "gb/s" with
          | Some n -> (n, 1000.0)
          | None -> (
            match strip_suffix v "mb/s" with Some n -> (n, 1.0) | None -> (v, 1.0))
        in
        match float_of_string_opt (String.trim num) with
        | Some f when f > 0.0 -> Ok (f *. scale)
        | _ -> Error (Printf.sprintf "fabric: bad bandwidth %S (want e.g. 2000MB/s)" v)
      in
      let parse_hop v =
        let v = String.trim v in
        let num = match strip_suffix v "ns" with Some n -> n | None -> v in
        match int_of_string_opt (String.trim num) with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "fabric: bad hop latency %S (want e.g. 50ns)" v)
      in
      let parse_topology v =
        let v = String.lowercase_ascii (String.trim v) in
        if v = "crossbar" then Ok Crossbar
        else if String.length v > 4 && String.sub v 0 4 = "mesh" then begin
          let dims = String.sub v 4 (String.length v - 4) in
          match String.split_on_char 'x' dims with
          | [ w; h ] -> (
            match (int_of_string_opt w, int_of_string_opt h) with
            | Some w, Some h when w >= 1 && h >= 1 -> Ok (Mesh (w, h))
            | _ -> Error (Printf.sprintf "fabric: bad mesh dimensions %S" dims))
          | _ -> Error (Printf.sprintf "fabric: bad mesh dimensions %S" dims)
        end
        else Error (Printf.sprintf "fabric: unknown topology %S (crossbar | meshWxH)" v)
      in
      let* b =
        List.fold_left
          (fun acc part ->
            let* b = acc in
            let* k, v = parse_kv part in
            match k with
            | "bw" ->
              let* bw_mb_s = parse_bw v in
              Ok { b with bw_mb_s }
            | "fifo" -> (
              match int_of_string_opt (String.trim v) with
              | Some n when n >= 1 -> Ok { b with fifo_depth = n }
              | _ -> Error (Printf.sprintf "fabric: bad fifo depth %S (want >= 1)" v))
            | "hop" ->
              let* hop_ns = parse_hop v in
              Ok { b with hop_ns }
            | "hops" ->
              let* topology = parse_topology v in
              Ok { b with topology }
            | _ -> Error (Printf.sprintf "fabric: unknown key %S" k))
          (Ok default_bus) parts
      in
      Ok (Bus b)
    end
