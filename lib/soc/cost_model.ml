type profile = { base_ns : float; lin_ns : float; nlogn_ns : float; quad_ns : float }

let table : (string, profile) Hashtbl.t = Hashtbl.create 32

let register name p = Hashtbl.replace table name p
let lookup name = Hashtbl.find_opt table name

let known_kernels () =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare

(* Calibration (reference core = Cortex-A53 @ 1200 MHz):
   - fft (generic radix-2 in the hand-written apps): 14 ns * n*log2 n
     -> 12.5 us at n=128, 63 us at n=512.
   - fft_lib (optimized library, the FFTW stand-in of Case Study 4):
     7 ns * n*log2 n -> 32 us at n=512, giving the paper's ~102x over
     the naive DFT below.
   - dft_naive: 12.45 ns * n^2 -> 3.26 ms at n=512 (trig in the inner
     loop); 3.26 ms / 32 us = 102x (FFTW), / 34.6 us = 94x (accel).
   - viterbi: dominated by the 64-state ACS sweep; calibrated to make
     WiFi RX ~2.2 ms standalone (Table I). *)
let () =
  let p ?(base = 0.0) ?(lin = 0.0) ?(nlogn = 0.0) ?(quad = 0.0) name =
    register name { base_ns = base; lin_ns = lin; nlogn_ns = nlogn; quad_ns = quad }
  in
  p "fft" ~base:2_000.0 ~nlogn:15.0;
  p "ifft" ~base:2_000.0 ~nlogn:15.0;
  p "fft_lib" ~base:3_000.0 ~nlogn:7.0;
  p "dft_naive" ~base:1_000.0 ~quad:12.45;
  p "lfm_gen" ~base:1_500.0 ~lin:250.0;
  p "vec_mul" ~base:1_000.0 ~lin:22.0;
  p "peak_max" ~base:1_000.0 ~lin:14.0;
  p "echo_sim" ~base:1_500.0 ~lin:160.0;
  p "doppler_gather" ~base:1_000.0 ~lin:18.0;
  p "scramble" ~base:2_000.0 ~lin:30.0;
  p "conv_encode" ~base:3_000.0 ~lin:75.0;
  p "interleave" ~base:2_000.0 ~lin:28.0;
  p "modulate" ~base:2_500.0 ~lin:35.0;
  p "demodulate" ~base:2_500.0 ~lin:40.0;
  p "pilot_insert" ~base:2_000.0 ~lin:15.0;
  p "pilot_remove" ~base:2_000.0 ~lin:15.0;
  p "equalize" ~base:2_500.0 ~lin:35.0;
  p "sync_detect" ~base:4_000.0 ~lin:60.0;
  p "viterbi" ~base:120_000.0 ~lin:19_500.0;
  p "pd_gen" ~base:10_000.0 ~lin:18.0;
  p "doppler_proc" ~base:20_000.0 ~nlogn:14.0;
  p "crc32" ~base:2_000.0 ~lin:28.0;
  p "descramble" ~base:2_000.0 ~lin:30.0;
  p "window" ~base:1_500.0 ~lin:20.0;
  p "file_io" ~base:30_000.0 ~lin:40.0;
  p "memcpy" ~base:500.0 ~lin:2.0;
  (* One dynamic source-level statement of compiled C on the reference
     core (~a few cycles).  Auto-converted DAG nodes are priced by
     their traced statement counts, which makes a naive-DFT group land
     within ~5% of the hand-calibrated dft_naive profile. *)
  p "interp_ops" ~base:2_000.0 ~lin:1.7;
  p "generic" ~base:5_000.0 ~lin:50.0

let cpu_cost_ns ~kernel ~n cls =
  match lookup kernel with
  | None -> invalid_arg (Printf.sprintf "Cost_model.cpu_cost_ns: unknown kernel %S" kernel)
  | Some p ->
    let nf = float_of_int (max 1 n) in
    let log2n = Float.log nf /. Float.log 2.0 in
    let ref_ns = p.base_ns +. (p.lin_ns *. nf) +. (p.nlogn_ns *. nf *. log2n) +. (p.quad_ns *. nf *. nf) in
    int_of_float (Float.round (ref_ns /. cls.Pe.perf_factor))

let chunk_count (a : Pe.accel_class) ~bytes =
  if bytes <= 0 then 0
  else (bytes + a.Pe.local_mem_bytes - 1) / a.Pe.local_mem_bytes

let chunked_transfer_ns (a : Pe.accel_class) ~bytes =
  if bytes <= 0 then 0
  else begin
    let chunk = a.Pe.local_mem_bytes in
    let full = bytes / chunk and rem = bytes mod chunk in
    let t = ref 0 in
    for _ = 1 to full do t := !t + Dma.transfer_ns a.Pe.dma ~bytes:chunk done;
    if rem > 0 then t := !t + Dma.transfer_ns a.Pe.dma ~bytes:rem;
    !t
  end

let accel_phases_ns ~bytes_in ~bytes_out ~n (a : Pe.accel_class) =
  let dma_in = chunked_transfer_ns a ~bytes:bytes_in in
  let dma_out = chunked_transfer_ns a ~bytes:bytes_out in
  let compute =
    a.Pe.setup_ns + int_of_float (Float.round (a.Pe.per_sample_ns *. float_of_int (max 1 n)))
  in
  (dma_in, compute, dma_out)

let accel_cost_ns ~bytes_in ~bytes_out ~n a =
  let i, c, o = accel_phases_ns ~bytes_in ~bytes_out ~n a in
  i + c + o

(* Workload-manager loop constants (reference A53 overlay).  The FRFS
   scheduling invocation on a 5-PE configuration costs
   sched_base + 5 * sched_frfs_per_pe = 1.25 + 5*0.25 = 2.5 us,
   matching the constant overhead reported in Fig. 10b. *)
let monitor_per_pe_ns = 350.0
let ready_update_per_task_ns = 400.0
let dispatch_per_task_ns = 1_800.0
let sched_base_ns = 1_250.0
let sched_frfs_per_pe_ns = 250.0
let sched_met_per_task_ns = 50.0
let sched_eft_per_pair_ns = 0.9
let sched_examined_cap = 256
