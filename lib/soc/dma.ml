type t = { latency_ns : int; bandwidth_bytes_per_us : float }

let make ~latency_ns ~bandwidth_mb_s =
  if latency_ns < 0 then invalid_arg "Dma.make: negative latency";
  if bandwidth_mb_s <= 0.0 then invalid_arg "Dma.make: bandwidth must be positive";
  (* 1 MB/s = 1 byte/us. *)
  { latency_ns; bandwidth_bytes_per_us = bandwidth_mb_s }

let transfer_ns t ~bytes =
  if bytes < 0 then invalid_arg "Dma.transfer_ns: negative size";
  let ns = Float.round (float_of_int bytes /. t.bandwidth_bytes_per_us *. 1e3) in
  (* [int_of_float] on an out-of-range float is undefined (wraps
     negative on amd64); multi-GB transfers at low bandwidth overflow
     the product, so guard before converting. *)
  if Float.is_nan ns || ns >= float_of_int (max_int - t.latency_ns) then
    invalid_arg "Dma.transfer_ns: duration overflows"
  else t.latency_ns + int_of_float ns

let round_trip_ns t ~bytes_in ~bytes_out =
  transfer_ns t ~bytes:bytes_in + transfer_ns t ~bytes:bytes_out
