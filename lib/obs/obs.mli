(** Structured event tracing and metrics for the shared engine core.

    One observation bundle ([Obs.t]) is threaded through
    [Engine_core]'s workload-manager loop and both engine backends.
    Every hook is timestamped with the backend clock — the virtual
    engine's discrete-event clock or the native engine's monotonic
    clock — so virtual-engine event logs are bit-identical for a
    given seed.

    Determinism / threading contract:
    - the null sink and absent metrics make every hook a no-op
      (engines guard hook sites with {!enabled}, keeping the default
      path free of observation cost);
    - metrics are updated only from the workload-manager thread;
    - the ring sink is lock-free for the single-producer engines; the
      native engine calls {!Sink.synchronize} before spawning handler
      domains, which makes emits mutex-protected there (handler
      domains emit phase and reservation-pop events concurrently). *)

type phase = Dma_in | Device_compute | Dma_out

val phase_name : phase -> string
(** ["dma_in"], ["compute"], ["dma_out"] — the Chrome-trace span names. *)

type body =
  | Instance_injected of { instance : int; app : string }
  | Task_ready of { task : int; instance : int; app : string; node : string }
  | Task_dispatched of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      wait_ns : int;
    }
  | Task_completed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      service_ns : int;
    }
  | Sched_invoked of {
      ready : int;  (** live ready count when the policy ran *)
      examined : int;  (** tasks in the bounded scheduling window *)
      ops : int;  (** policy cost-model operations *)
      cost_ns : int;  (** charged WM overhead *)
      assigned : int;
    }
  | Reservation_enqueued of { pe_index : int; depth : int }
  | Reservation_popped of { pe_index : int; depth : int }
  | Phase of {
      task : int;
      pe_index : int;
      phase : phase;
      start_ns : int;
      dur_ns : int;
    }  (** accelerator DMA-in / device-compute / DMA-out sub-span *)
  | Wm_tick of { completions : int; injected : int }
  | Fault_injected of {
      task : int;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }  (** a handler observed an injected fault (incl. slowdowns) *)
  | Task_failed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }  (** WM bookkeeping of a failed execution attempt *)
  | Task_retried of {
      task : int;
      instance : int;
      app : string;
      node : string;
      attempt : int;  (** attempts so far; the retry is attempt+1 *)
      backoff_ns : int;
    }
  | Pe_quarantined of { pe : string; pe_index : int; until_ns : int; permanent : bool }
  | Pe_recovered of { pe : string; pe_index : int }
  | Stream_stalled of { pe_index : int; bytes : int; queued : int }
      (** a DMA stream found the fabric FIFO full; [queued] = streams
          now waiting for a slot (interconnect extension) *)
  | Stream_admitted of { pe_index : int; bytes : int; stall_ns : int; inflight : int }
      (** a DMA stream entered the shared link after [stall_ns] queued
          ([0] = admitted immediately); [inflight] includes it *)
  | Tenant_admitted of { tenant : string; instance : int; queue_depth : int }
      (** service mode: an arrival passed admission control;
          [queue_depth] = the tenant's admission queue after the add *)
  | Tenant_shed of { tenant : string; instance : int; queue_depth : int }
      (** service mode: an arrival was rejected by the [shed] /
          [degrade] overload policy (typed [Rejected] outcome) *)
  | Instance_timed_out of { tenant : string; instance : int; age_ns : int }
      (** service mode: the watchdog aborted an instance whose age
          exceeded the wall-bound (typed [TimedOut] outcome) *)
  | Checkpoint_written of { path : string; instances_done : int }
      (** service mode: a drain completed and WM state was serialized *)

type event = { t_ns : int; body : body }

(** Event sinks: where emitted events go. *)
module Sink : sig
  type t

  val null : t
  (** Discards everything; [emit] on it is a pattern match and return. *)

  val ring : ?capacity:int -> unit -> t
  (** Preallocated ring-buffer recorder (default capacity 65536).
      When full, the oldest events are overwritten; {!dropped} counts
      the overwritten ones.
      @raise Invalid_argument if [capacity <= 0]. *)

  val is_null : t -> bool

  val synchronize : t -> unit
  (** Declare that several domains will emit into this sink
      concurrently, making every subsequent [emit] take the ring's
      mutex.  The native engine calls this before spawning handler
      domains; the single-producer engines leave the ring lock-free.
      Must be called before the concurrent emitters start.  No-op on
      the null sink. *)

  val emit : t -> int -> body -> unit
  val length : t -> int
  val total : t -> int
  val dropped : t -> int
  val capacity : t -> int

  val clear : t -> unit
  (** Forget every recorded event and zero the lifetime counters,
      keeping the preallocated ring storage.  No-op on the null
      sink. *)

  val events : t -> event list
  (** Retained events, oldest first. *)
end

(** Registry of named counters, gauges and histogram series.
    Registration order is preserved, so {!pp} output and exported
    counter tracks are deterministic. *)
module Metrics : sig
  type t
  type counter
  type gauge
  type histogram

  val create : unit -> t

  val counter : t -> string -> counter
  (** Find-or-create by name (as do [gauge] and [histogram]).
      @raise Invalid_argument if the name is registered with another
      kind. *)

  val gauge : t -> string -> gauge
  val histogram : t -> string -> histogram
  val find_counter : t -> string -> counter option
  val find_gauge : t -> string -> gauge option
  val find_histogram : t -> string -> histogram option

  val incr : ?by:int -> counter -> unit
  val counter_value : counter -> int

  val set : gauge -> t_ns:int -> int -> unit
  (** Record a sample; repeated samples at one timestamp collapse to
      the last, so the series is a step function over strictly
      increasing time. *)

  val gauge_value : gauge -> int
  val gauge_max : gauge -> int
  val gauge_series : gauge -> (int * int) list
  val gauge_name : gauge -> string

  val observe : histogram -> float -> unit
  val histogram_count : histogram -> int
  val histogram_samples : histogram -> float array
  val histogram_mean : histogram -> float option
  val histogram_quantile : histogram -> float -> float option

  val gauges : t -> gauge list
  (** All gauges in registration order. *)

  val reset : t -> unit
  (** Zero every registered instrument in place — counters to 0,
      gauges to value/max 0 with an empty series, histograms emptied —
      while keeping the instruments registered, so handles and
      registration order survive. *)

  val pp : Format.formatter -> t -> unit
  (** The [pp_metrics] text summary: counters, gauge last/max, and
      histogram n/mean/p50/p95/max (histograms via
      [Dssoc_stats.Quantile]). *)
end

(** Periodic metrics flushing: append-only JSONL snapshots of a
    metrics registry, paced by the emulated clock.  Driven from the WM
    tick via {!set_flush}, so the snapshot stream is deterministic for
    a given seed.  Each line carries [t_ns] plus every counter, gauge
    (last/max) and histogram (n/mean/p50/p95/max) in registration
    order. *)
module Flush : sig
  type flusher

  val every : period_ms:int -> path:string -> Metrics.t -> flusher
  (** Snapshot the registry to [path] at least every [period_ms] of
      emulated time (the first due tick snapshots; a WM sweep cadence
      coarser than the period yields one snapshot per sweep).  Existing
      content of [path] is preserved (append semantics).  Every
      snapshot rewrites the full stream to [path ^ ".tmp"] and
      atomically renames it over [path], so a killed process never
      leaves a torn final line.
      @raise Invalid_argument if [period_ms <= 0]. *)

  val tick : flusher -> now:int -> unit
  (** Advance the flusher's clock; snapshots when a period boundary has
      passed.  Engines call this through {!on_wm_tick}. *)

  val close : flusher -> unit
  (** Write a final snapshot at the last tick time (if anything
      happened since the previous one) and close the channel.
      Idempotent. *)

  val snapshots : flusher -> int
  val path : flusher -> string
end

(** {1 Per-run observation bundle} *)

type t

val disabled : t
(** The zero-cost default: null sink, no metrics, [enabled = false]. *)

val make : ?sink:Sink.t -> ?metrics:Metrics.t -> unit -> t

val enabled : t -> bool
(** [false] only for a null sink with no metrics; engines check this
    before computing hook arguments. *)

val sink : t -> Sink.t
val metrics : t -> Metrics.t option

val set_flush : t -> Flush.flusher -> unit
(** Attach a periodic flusher: {!on_wm_tick} will drive it on every WM
    sweep (including quiet ones).  The caller keeps the flusher and is
    responsible for {!Flush.close} after the run. *)

val reset : t -> unit
(** Return the bundle to its just-made state: clears the sink in
    place, zeroes all metrics (instruments stay registered), and
    detaches any flusher.  A reset bundle records a following run
    exactly as a freshly made one would — sweep workers use this to
    recycle one bundle (and its preallocated ring) across points. *)

val attach_pes : t -> pe_labels:string array -> unit
(** Called once per run by the engine before the WM starts: registers
    the engine gauge/histogram/counter handles (ready-queue depth,
    in-flight tasks, per-PE queue depth, wait/service/sched-cost
    latencies) against the bundle's metrics registry.  A no-op without
    metrics. *)

(** {2 Engine hooks}

    All take [~now] in backend-clock ns.  Callers guard with
    {!enabled}; the hooks themselves are safe no-ops when the bundle
    carries neither sink nor metrics. *)

val on_instance_injected : t -> now:int -> instance:int -> app:string -> unit

val on_task_ready :
  t -> now:int -> task:int -> instance:int -> app:string -> node:string ->
  ready_depth:int -> unit

val on_task_dispatched :
  t -> now:int -> task:int -> instance:int -> app:string -> node:string ->
  pe:string -> pe_index:int -> wait_ns:int -> ready_depth:int -> pe_depth:int ->
  inflight:int -> unit

val on_task_completed :
  t -> now:int -> task:int -> instance:int -> app:string -> node:string ->
  pe:string -> pe_index:int -> service_ns:int -> pe_depth:int -> inflight:int ->
  unit

val on_sched :
  t -> now:int -> ready:int -> examined:int -> ops:int -> cost_ns:int ->
  assigned:int -> unit

val on_reservation_enqueued : t -> now:int -> pe_index:int -> depth:int -> unit
val on_reservation_popped : t -> now:int -> pe_index:int -> depth:int -> unit

val on_phase :
  t -> now:int -> task:int -> pe_index:int -> phase:phase -> start_ns:int ->
  dur_ns:int -> unit

val on_wm_tick : t -> now:int -> completions:int -> injected:int -> unit
(** Emitted at the end of a WM sweep; quiet sweeps (no completions, no
    injections) are suppressed so polling backends don't flood the
    ring. *)

val on_fault_injected :
  t -> now:int -> task:int -> pe:string -> pe_index:int -> fault:string ->
  attempt:int -> unit
(** Sink-only (resource handlers call it, possibly from a native
    domain; metrics stay WM-thread-only). *)

val on_task_failed :
  t -> now:int -> task:int -> instance:int -> app:string -> node:string ->
  pe:string -> pe_index:int -> fault:string -> attempt:int -> unit

val on_task_retried :
  t -> now:int -> task:int -> instance:int -> app:string -> node:string ->
  attempt:int -> backoff_ns:int -> unit

val on_pe_quarantined :
  t -> now:int -> pe:string -> pe_index:int -> until_ns:int -> permanent:bool ->
  unit

val on_pe_recovered : t -> now:int -> pe:string -> pe_index:int -> unit

val on_stream_stalled : t -> now:int -> pe_index:int -> bytes:int -> queued:int -> unit
(** Sink only (may run from a handler thread); the fabric occupancy
    gauge and stall histogram are owned by the virtual engine. *)

val on_stream_admitted :
  t -> now:int -> pe_index:int -> bytes:int -> stall_ns:int -> inflight:int -> unit

val on_tenant_admitted : t -> now:int -> tenant:string -> instance:int -> queue_depth:int -> unit
(** Service-mode hooks (sink only; the server owns its tenant
    counters). *)

val on_tenant_shed : t -> now:int -> tenant:string -> instance:int -> queue_depth:int -> unit
val on_instance_timed_out : t -> now:int -> tenant:string -> instance:int -> age_ns:int -> unit
val on_checkpoint_written : t -> now:int -> path:string -> instances_done:int -> unit

val record_drops : t -> unit
(** Copy the sink's ring-overwrite count into the [events_dropped]
    counter (registered by {!attach_pes}) so {!Metrics.pp} surfaces
    silent event loss.  Call after a run, before printing or exporting
    metrics.  A no-op without metrics; idempotent. *)

(** {2 Export} *)

val recorded_events : t -> event list
(** The sink's retained events, oldest first ([[]] for the null sink). *)

val counter_tracks : t -> (string * (int * int) list) list
(** Every gauge's (name, step series) in registration order — the
    Chrome-trace counter tracks. *)

val event_to_json : event -> Dssoc_json.Json.t

val event_of_json : Dssoc_json.Json.t -> (event, string) result
(** Inverse of {!event_to_json} — [event_of_json (event_to_json e) =
    Ok e].  The analysis layer and the [analyze] CLI subcommand use it
    to reload persisted event logs. *)

val to_jsonl : event list -> string
(** One minified JSON object per line. *)

val output_jsonl : out_channel -> event list -> unit
(** Stream the same bytes as {!to_jsonl} to a channel, reusing one
    line buffer — the log never materialises as a single string. *)
