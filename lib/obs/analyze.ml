module Vec = Dssoc_util.Vec
module Quantile = Dssoc_stats.Quantile
module Json = Dssoc_json.Json

(* Engine-agnostic post-run analytics over a recorded event log.  The
   input is the realized schedule (ready/dispatch/complete triples plus
   DMA phases and fabric admissions), not the application DAG: the
   analysis reconstructs what *bound* the run — dependency chains,
   per-PE serialisation, fabric stalls — purely from what the engines
   emitted, so it applies identically to virtual, compiled and native
   logs (and to logs reloaded from disk via [Obs.event_of_json]). *)

type task_exec = {
  x_task : int;
  x_instance : int;
  x_app : string;
  x_node : string;
  x_pe : string;
  x_pe_index : int;
  x_ready_ns : int;
  x_dispatched_ns : int;
  x_completed_ns : int;
  x_dma_ns : int;  (** dma_in + dma_out phase time *)
  x_stall_ns : int;  (** fabric admission stalls inside the service window *)
}

type t = {
  a_tasks : task_exec array;  (* completion order *)
  a_makespan_ns : int;
  a_inject_ns : (int * int) list;  (* instance -> injection time *)
}

(* Mutable accumulator for a task whose completion has not been seen
   yet.  A retried task overwrites ready/dispatch in place, so the
   finalized record reflects the successful attempt. *)
type pending = {
  mutable p_ready : int;
  mutable p_dispatched : int;
  mutable p_dma : int;
}

let of_events events =
  let pend : (int, pending) Hashtbl.t = Hashtbl.create 64 in
  let pending_of task =
    match Hashtbl.find_opt pend task with
    | Some p -> p
    | None ->
        let p = { p_ready = 0; p_dispatched = 0; p_dma = 0 } in
        Hashtbl.replace pend task p;
        p
  in
  let tasks = Vec.create () in
  let injects = ref [] in
  let stalls = ref [] in
  List.iter
    (fun { Obs.t_ns; body } ->
      match body with
      | Obs.Instance_injected { instance; _ } ->
          if not (List.mem_assoc instance !injects) then
            injects := (instance, t_ns) :: !injects
      | Obs.Task_ready { task; _ } -> (pending_of task).p_ready <- t_ns
      | Obs.Task_dispatched { task; _ } -> (pending_of task).p_dispatched <- t_ns
      | Obs.Phase { task; phase = Obs.Dma_in | Obs.Dma_out; dur_ns; _ } ->
          let p = pending_of task in
          p.p_dma <- p.p_dma + dur_ns
      | Obs.Task_completed { task; instance; app; node; pe; pe_index; _ } ->
          let p = pending_of task in
          Vec.push tasks
            {
              x_task = task;
              x_instance = instance;
              x_app = app;
              x_node = node;
              x_pe = pe;
              x_pe_index = pe_index;
              x_ready_ns = p.p_ready;
              x_dispatched_ns = p.p_dispatched;
              x_completed_ns = t_ns;
              x_dma_ns = p.p_dma;
              x_stall_ns = 0;
            };
          Hashtbl.remove pend task
      | Obs.Stream_admitted { pe_index; stall_ns; _ } when stall_ns > 0 ->
          stalls := (t_ns, pe_index, stall_ns) :: !stalls
      | _ -> ())
    events;
  let arr = Vec.to_array tasks in
  (* Attribute each fabric stall to the task occupying that PE when the
     stream was admitted (its DMA phase is what queued). *)
  let arr =
    if !stalls = [] then arr
    else
      Array.map
        (fun x ->
          let s =
            List.fold_left
              (fun acc (t, pe_index, stall_ns) ->
                if
                  pe_index = x.x_pe_index && t >= x.x_dispatched_ns
                  && t <= x.x_completed_ns
                then acc + stall_ns
                else acc)
              0 !stalls
          in
          if s = 0 then x else { x with x_stall_ns = s })
        arr
  in
  (* The engine reports its makespan as the WM-observed completion of
     the last instance, which trails the last task completion by the
     final sweep's overhead charge.  The last event in the log — the
     WM tick of that sweep — carries exactly that time, so "latest
     event" reproduces the reported makespan. *)
  let makespan = List.fold_left (fun acc (e : Obs.event) -> max acc e.Obs.t_ns) 0 events in
  { a_tasks = arr; a_makespan_ns = makespan; a_inject_ns = List.rev !injects }

let tasks t = Array.to_list t.a_tasks
let makespan_ns t = t.a_makespan_ns

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

type edge = Injection | Dependency | Resource

let edge_name = function
  | Injection -> "injection"
  | Dependency -> "dependency"
  | Resource -> "resource"

type step = {
  s_task : task_exec;
  s_edge : edge;
  s_gap_ns : int;  (** predecessor completion (or t=0) to dispatch *)
  s_service_ns : int;
  s_slack_ns : int;  (** margin before the next-latest constraint binds *)
}

type critical_path = {
  cp_steps : step list;
  cp_length_ns : int;
  cp_gap_ns : int;
  cp_service_ns : int;
  cp_observe_ns : int;
  cp_dma_ns : int;
  cp_stall_ns : int;
  cp_dma_frac : float;
}

let empty_path =
  {
    cp_steps = [];
    cp_length_ns = 0;
    cp_gap_ns = 0;
    cp_service_ns = 0;
    cp_observe_ns = 0;
    cp_dma_ns = 0;
    cp_stall_ns = 0;
    cp_dma_frac = 0.0;
  }

(* Walk the realized schedule backwards from the last completion.  At
   each task the binding constraint on its start is either
   - a {e resource} edge: it waited for its PE (dispatch after ready),
     bound by the latest same-PE completion inside [ready, dispatched];
   - a {e dependency} edge: it became ready the instant a same-instance
     predecessor completed; or
   - {e injection}: nothing earlier constrains it (chain start).
   Each step's [dispatch] is at or after its predecessor's completion,
   so gaps and services partition [0, last completion]; the terminal
   observation segment (the final WM sweep's overhead, up to the
   reported makespan) is charged separately, making the path length
   equal the run's makespan by construction. *)
let critical_path t =
  let n = Array.length t.a_tasks in
  if n = 0 then empty_path
  else begin
    let tsk i = t.a_tasks.(i) in
    let best = ref 0 in
    Array.iteri
      (fun i x ->
        let b = tsk !best in
        if
          x.x_completed_ns > b.x_completed_ns
          || (x.x_completed_ns = b.x_completed_ns && x.x_task < b.x_task)
        then best := i)
      t.a_tasks;
    let visited = Hashtbl.create 16 in
    (* (index, edge, predecessor index option), forward order: consing
       while walking backwards reverses the walk. *)
    let chain = ref [] in
    let rec back i =
      Hashtbl.replace visited i ();
      let x = tsk i in
      let dep = ref (-1) in
      Array.iteri
        (fun k p ->
          if
            k <> i && p.x_instance = x.x_instance && p.x_completed_ns = x.x_ready_ns
            && (!dep < 0 || p.x_task < (tsk !dep).x_task)
          then dep := k)
        t.a_tasks;
      let res = ref (-1) in
      if x.x_dispatched_ns > x.x_ready_ns then
        Array.iteri
          (fun k p ->
            if
              k <> i && p.x_pe_index = x.x_pe_index
              && p.x_completed_ns <= x.x_dispatched_ns
              && p.x_completed_ns >= x.x_ready_ns
            then
              if !res < 0 then res := k
              else
                let r = tsk !res in
                if
                  p.x_completed_ns > r.x_completed_ns
                  || (p.x_completed_ns = r.x_completed_ns && p.x_task < r.x_task)
                then res := k)
          t.a_tasks;
      let pick =
        if x.x_dispatched_ns > x.x_ready_ns && !res >= 0 then Some (!res, Resource)
        else if !dep >= 0 then Some (!dep, Dependency)
        else None
      in
      match pick with
      | Some (p, edge) when not (Hashtbl.mem visited p) ->
          chain := (i, edge, Some p) :: !chain;
          back p
      | _ -> chain := (i, Injection, None) :: !chain
    in
    back !best;
    let inject_ns inst =
      match List.assoc_opt inst t.a_inject_ns with Some v -> v | None -> 0
    in
    let slack_of i edge pred =
      let x = tsk i in
      match (edge, pred) with
      | Injection, _ -> 0
      | Dependency, _ ->
          (* How much earlier the binding predecessor could have
             finished before the next-latest same-instance completion
             (or the injection itself) becomes the binding constraint. *)
          let alt = ref (inject_ns x.x_instance) in
          Array.iteri
            (fun k p ->
              if
                k <> i && p.x_instance = x.x_instance
                && p.x_completed_ns < x.x_ready_ns
                && p.x_completed_ns > !alt
              then alt := p.x_completed_ns)
            t.a_tasks;
          x.x_ready_ns - !alt
      | Resource, Some pr ->
          let pc = (tsk pr).x_completed_ns in
          let alt = ref x.x_ready_ns in
          Array.iteri
            (fun k q ->
              if
                k <> i && k <> pr && q.x_pe_index = x.x_pe_index
                && q.x_completed_ns >= x.x_ready_ns && q.x_completed_ns < pc
                && q.x_completed_ns > !alt
              then alt := q.x_completed_ns)
            t.a_tasks;
          pc - !alt
      | Resource, None -> 0
    in
    let prev_end = ref 0 in
    let steps =
      List.map
        (fun (i, edge, pred) ->
          let x = tsk i in
          let gap = max 0 (x.x_dispatched_ns - !prev_end) in
          prev_end := x.x_completed_ns;
          {
            s_task = x;
            s_edge = edge;
            s_gap_ns = gap;
            s_service_ns = x.x_completed_ns - x.x_dispatched_ns;
            s_slack_ns = slack_of i edge pred;
          })
        !chain
    in
    let gap = List.fold_left (fun a s -> a + s.s_gap_ns) 0 steps in
    let service = List.fold_left (fun a s -> a + s.s_service_ns) 0 steps in
    let dma = List.fold_left (fun a s -> a + s.s_task.x_dma_ns) 0 steps in
    let stall = List.fold_left (fun a s -> a + s.s_task.x_stall_ns) 0 steps in
    let observe = max 0 (t.a_makespan_ns - (tsk !best).x_completed_ns) in
    let length = gap + service + observe in
    {
      cp_steps = steps;
      cp_length_ns = length;
      cp_gap_ns = gap;
      cp_service_ns = service;
      cp_observe_ns = observe;
      cp_dma_ns = dma;
      cp_stall_ns = stall;
      cp_dma_frac = (if length <= 0 then 0.0 else float_of_int dma /. float_of_int length);
    }
  end

(* ------------------------------------------------------------------ *)
(* Utilization / occupancy                                             *)
(* ------------------------------------------------------------------ *)

(* PE class = label with the trailing instance digits stripped
   ("cpu0" -> "cpu", "fft2" -> "fft"); mirrors [Stats.pe_kind]. *)
let pe_class label =
  let n = String.length label in
  let rec stem i = if i > 0 && label.[i - 1] >= '0' && label.[i - 1] <= '9' then stem (i - 1) else i in
  let k = stem n in
  if k = 0 then label else String.sub label 0 k

(* Busy (service) time per observed PE, as a fraction of makespan.
   Only PEs that completed at least one task appear in the log, so an
   idle PE simply does not show up (its utilization is 0). *)
let utilization t =
  if t.a_makespan_ns <= 0 then []
  else begin
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun x ->
        let busy = Option.value ~default:0 (Hashtbl.find_opt tbl (x.x_pe_index, x.x_pe)) in
        Hashtbl.replace tbl (x.x_pe_index, x.x_pe)
          (busy + (x.x_completed_ns - x.x_dispatched_ns)))
      t.a_tasks;
    Hashtbl.fold (fun (idx, pe) busy acc -> (idx, pe, busy) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun (_, pe, busy) ->
           (pe, float_of_int busy /. float_of_int t.a_makespan_ns))
  end

let utilization_by_class t =
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (pe, u) ->
      let c = pe_class pe in
      match Hashtbl.find_opt tbl c with
      | Some (sum, n) -> Hashtbl.replace tbl c (sum +. u, n + 1)
      | None ->
          order := c :: !order;
          Hashtbl.replace tbl c (u, 1))
    (utilization t);
  List.rev_map
    (fun c ->
      let sum, n = Hashtbl.find tbl c in
      (c, sum /. float_of_int n))
    !order

(* Step series of concurrently running tasks per PE class: +1 at each
   dispatch, -1 at each completion, collapsed per timestamp. *)
let occupancy_by_class t =
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  let push c delta =
    match Hashtbl.find_opt tbl c with
    | Some v -> Vec.push v delta
    | None ->
        let v = Vec.create () in
        Vec.push v delta;
        order := c :: !order;
        Hashtbl.replace tbl c v
  in
  Array.iter
    (fun x ->
      let c = pe_class x.x_pe in
      push c (x.x_dispatched_ns, 1);
      push c (x.x_completed_ns, -1))
    t.a_tasks;
  List.rev_map
    (fun c ->
      let deltas = List.sort compare (Vec.to_list (Hashtbl.find tbl c)) in
      let series = ref [] and level = ref 0 in
      List.iter
        (fun (tm, d) ->
          level := !level + d;
          match !series with
          | (t0, _) :: rest when t0 = tm -> series := (tm, !level) :: rest
          | _ -> series := (tm, !level) :: !series)
        deltas;
      (c, List.rev !series))
    !order

(* ------------------------------------------------------------------ *)
(* Queueing-delay breakdown                                            *)
(* ------------------------------------------------------------------ *)

type dist = {
  d_n : int;
  d_mean_us : float;
  d_p50_us : float;
  d_p95_us : float;
  d_max_us : float;
}

type queueing = { q_wait : dist; q_service : dist; q_stall : dist }

let dist_of_ns xs =
  let n = Array.length xs in
  if n = 0 then { d_n = 0; d_mean_us = 0.0; d_p50_us = 0.0; d_p95_us = 0.0; d_max_us = 0.0 }
  else begin
    let us = Array.map (fun v -> float_of_int v /. 1e3) xs in
    {
      d_n = n;
      d_mean_us = Quantile.mean us;
      d_p50_us = Quantile.median us;
      d_p95_us = Quantile.quantile us 0.95;
      d_max_us = Quantile.max us;
    }
  end

let queueing t =
  let wait = Array.map (fun x -> x.x_dispatched_ns - x.x_ready_ns) t.a_tasks in
  let service = Array.map (fun x -> x.x_completed_ns - x.x_dispatched_ns) t.a_tasks in
  let stall = Array.map (fun x -> x.x_stall_ns) t.a_tasks in
  { q_wait = dist_of_ns wait; q_service = dist_of_ns service; q_stall = dist_of_ns stall }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let us ns = float_of_int ns /. 1e3

let pp fmt t =
  let cp = critical_path t in
  Format.fprintf fmt "== analysis ==@.";
  Format.fprintf fmt "  tasks %d  makespan %.1f us@." (Array.length t.a_tasks)
    (us t.a_makespan_ns);
  Format.fprintf fmt
    "  critical path: %d steps, %.1f us = wait %.1f us + service %.1f us + observe %.1f us \
     (dma %.1f%%, fabric stall %.1f us)@."
    (List.length cp.cp_steps) (us cp.cp_length_ns) (us cp.cp_gap_ns)
    (us cp.cp_service_ns) (us cp.cp_observe_ns)
    (cp.cp_dma_frac *. 100.0)
    (us cp.cp_stall_ns);
  List.iteri
    (fun i s ->
      Format.fprintf fmt
        "    %2d  %-10s %-18s %-12s %-6s gap %8.1f  dur %8.1f  slack %8.1f us@." i
        (edge_name s.s_edge)
        (Printf.sprintf "%s/%d" s.s_task.x_app s.s_task.x_instance)
        s.s_task.x_node s.s_task.x_pe (us s.s_gap_ns) (us s.s_service_ns)
        (us s.s_slack_ns))
    cp.cp_steps;
  (match utilization_by_class t with
  | [] -> ()
  | classes ->
      Format.fprintf fmt "  utilization:";
      List.iter (fun (c, u) -> Format.fprintf fmt " %s %.1f%%" c (u *. 100.0)) classes;
      Format.fprintf fmt "@.");
  let q = queueing t in
  let line name d =
    Format.fprintf fmt "    %-8s n %d  mean %8.1f  p50 %8.1f  p95 %8.1f  max %8.1f us@."
      name d.d_n d.d_mean_us d.d_p50_us d.d_p95_us d.d_max_us
  in
  Format.fprintf fmt "  queueing breakdown:@.";
  line "wait" q.q_wait;
  line "service" q.q_service;
  line "stall" q.q_stall

let dist_json d =
  Json.obj
    [
      ("n", Json.int d.d_n);
      ("mean_us", Json.float d.d_mean_us);
      ("p50_us", Json.float d.d_p50_us);
      ("p95_us", Json.float d.d_p95_us);
      ("max_us", Json.float d.d_max_us);
    ]

let to_json t =
  let cp = critical_path t in
  let q = queueing t in
  Json.obj
    [
      ("tasks", Json.int (Array.length t.a_tasks));
      ("makespan_ns", Json.int t.a_makespan_ns);
      ( "critical_path",
        Json.obj
          [
            ("length_ns", Json.int cp.cp_length_ns);
            ("gap_ns", Json.int cp.cp_gap_ns);
            ("service_ns", Json.int cp.cp_service_ns);
            ("observe_ns", Json.int cp.cp_observe_ns);
            ("dma_ns", Json.int cp.cp_dma_ns);
            ("stall_ns", Json.int cp.cp_stall_ns);
            ("dma_frac", Json.float cp.cp_dma_frac);
            ( "steps",
              Json.list
                (List.map
                   (fun s ->
                     Json.obj
                       [
                         ("task", Json.int s.s_task.x_task);
                         ("instance", Json.int s.s_task.x_instance);
                         ("app", Json.str s.s_task.x_app);
                         ("node", Json.str s.s_task.x_node);
                         ("pe", Json.str s.s_task.x_pe);
                         ("edge", Json.str (edge_name s.s_edge));
                         ("dispatched_ns", Json.int s.s_task.x_dispatched_ns);
                         ("completed_ns", Json.int s.s_task.x_completed_ns);
                         ("gap_ns", Json.int s.s_gap_ns);
                         ("service_ns", Json.int s.s_service_ns);
                         ("slack_ns", Json.int s.s_slack_ns);
                       ])
                   cp.cp_steps) );
          ] );
      ( "utilization",
        Json.obj (List.map (fun (c, u) -> (c, Json.float u)) (utilization_by_class t)) );
      ( "occupancy",
        Json.obj
          (List.map
             (fun (c, series) ->
               ( c,
                 Json.list
                   (List.map
                      (fun (tm, lvl) -> Json.list [ Json.int tm; Json.int lvl ])
                      series) ))
             (occupancy_by_class t)) );
      ( "queueing",
        Json.obj
          [
            ("wait", dist_json q.q_wait);
            ("service", dist_json q.q_service);
            ("stall", dist_json q.q_stall);
          ] );
    ]
