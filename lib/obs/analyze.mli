(** Post-run analytics over a recorded event log.

    Engine-agnostic: the analysis reconstructs the realized schedule
    from {!Obs.event}s alone (live from a ring sink or reloaded from a
    JSONL file via {!Obs.event_of_json}), so it applies identically to
    virtual, compiled and native runs.  Three products:

    - {b critical path}: the chain of task executions that bounds the
      makespan, with each link classified as a dependency edge (the
      task became ready the instant a same-instance predecessor
      completed), a resource edge (it waited for its PE), or the
      injection that started the chain — plus per-step slack (how far
      the binding constraint could move before the next one binds);
    - {b per-PE-class utilization and occupancy timelines};
    - {b queueing-delay breakdown}: wait / service / fabric-stall
      distributions across all tasks. *)

type task_exec = {
  x_task : int;
  x_instance : int;
  x_app : string;
  x_node : string;
  x_pe : string;
  x_pe_index : int;
  x_ready_ns : int;
  x_dispatched_ns : int;
  x_completed_ns : int;
  x_dma_ns : int;  (** dma_in + dma_out phase time *)
  x_stall_ns : int;  (** fabric admission stalls inside the service window *)
}

type t

val of_events : Obs.event list -> t
(** Build the realized schedule.  Tasks without a completion event
    (aborted runs, truncated logs) are ignored; a retried task keeps
    its final (successful) attempt. *)

val tasks : t -> task_exec list
val makespan_ns : t -> int
(** Latest event timestamp — the WM tick of the sweep that observed
    the final completion, which equals the engine report's makespan
    (the last task completion plus that sweep's overhead charge). *)

(** {1 Critical path} *)

type edge =
  | Injection  (** chain start: nothing earlier constrains the task *)
  | Dependency  (** ready the instant a same-instance predecessor completed *)
  | Resource  (** dispatched when its PE freed up *)

val edge_name : edge -> string

type step = {
  s_task : task_exec;
  s_edge : edge;
  s_gap_ns : int;  (** predecessor completion (or t=0) to dispatch *)
  s_service_ns : int;
  s_slack_ns : int;  (** margin before the next-latest constraint binds *)
}

type critical_path = {
  cp_steps : step list;  (** forward (injection-to-makespan) order *)
  cp_length_ns : int;
  cp_gap_ns : int;
  cp_service_ns : int;
  cp_observe_ns : int;
      (** terminal segment: last completion to the WM sweep that
          observed it (the reported makespan) *)
  cp_dma_ns : int;  (** DMA phase time spent by path tasks *)
  cp_stall_ns : int;  (** fabric stall time charged to path tasks *)
  cp_dma_frac : float;  (** [cp_dma_ns / cp_length_ns] *)
}

val critical_path : t -> critical_path
(** Backward walk from the last completion.  Step gaps and services
    partition [0, last completion] and [cp_observe_ns] covers the
    rest, so [cp_length_ns = makespan_ns t] (the property the test
    suite pins on random DAGs for both engines). *)

(** {1 Utilization / occupancy} *)

val pe_class : string -> string
(** PE label with trailing instance digits stripped: ["fft2"] ->
    ["fft"]. *)

val utilization : t -> (string * float) list
(** Busy (service) fraction of makespan per observed PE, in PE-index
    order.  PEs that completed no task do not appear. *)

val utilization_by_class : t -> (string * float) list
(** Mean utilization over the observed PEs of each class, in first-
    appearance order. *)

val occupancy_by_class : t -> (string * (int * int) list) list
(** Per class, the step series of concurrently running tasks
    [(t_ns, level)]. *)

(** {1 Queueing-delay breakdown} *)

type dist = {
  d_n : int;
  d_mean_us : float;
  d_p50_us : float;
  d_p95_us : float;
  d_max_us : float;
}

type queueing = { q_wait : dist; q_service : dist; q_stall : dist }

val queueing : t -> queueing
(** Per-task wait (ready to dispatch), service (dispatch to complete)
    and attributed fabric-stall distributions. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** The [dssoc_emu analyze] text report: summary line, critical-path
    table, utilization by class, queueing breakdown. *)

val to_json : t -> Dssoc_json.Json.t
(** Structured form of the same analysis (plus occupancy timelines). *)
