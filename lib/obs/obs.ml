module Vec = Dssoc_util.Vec
module Quantile = Dssoc_stats.Quantile
module Json = Dssoc_json.Json

type phase = Dma_in | Device_compute | Dma_out

let phase_name = function
  | Dma_in -> "dma_in"
  | Device_compute -> "compute"
  | Dma_out -> "dma_out"

type body =
  | Instance_injected of { instance : int; app : string }
  | Task_ready of { task : int; instance : int; app : string; node : string }
  | Task_dispatched of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      wait_ns : int;
    }
  | Task_completed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      service_ns : int;
    }
  | Sched_invoked of {
      ready : int;
      examined : int;
      ops : int;
      cost_ns : int;
      assigned : int;
    }
  | Reservation_enqueued of { pe_index : int; depth : int }
  | Reservation_popped of { pe_index : int; depth : int }
  | Phase of {
      task : int;
      pe_index : int;
      phase : phase;
      start_ns : int;
      dur_ns : int;
    }
  | Wm_tick of { completions : int; injected : int }
  | Fault_injected of {
      task : int;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }
  | Task_failed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }
  | Task_retried of {
      task : int;
      instance : int;
      app : string;
      node : string;
      attempt : int;
      backoff_ns : int;
    }
  | Pe_quarantined of { pe : string; pe_index : int; until_ns : int; permanent : bool }
  | Pe_recovered of { pe : string; pe_index : int }
  | Stream_stalled of { pe_index : int; bytes : int; queued : int }
  | Stream_admitted of { pe_index : int; bytes : int; stall_ns : int; inflight : int }
  | Tenant_admitted of { tenant : string; instance : int; queue_depth : int }
  | Tenant_shed of { tenant : string; instance : int; queue_depth : int }
  | Instance_timed_out of { tenant : string; instance : int; age_ns : int }
  | Checkpoint_written of { path : string; instances_done : int }

type event = { t_ns : int; body : body }

module Sink = struct
  (* The ring stores events decomposed into flat preallocated arrays —
     a packed timestamp+tag word, up to five int fields, up to four
     string fields per slot — instead of retaining the body records
     passed to [emit].  The records themselves are transient (they die
     in the minor heap); a ring of live records would promote every
     recorded body to the major heap, and that promotion traffic, not
     the stores, dominated traced-run cost.  [events] re-materializes
     records lazily on the cold path. *)

  let istride = 5
  let sstride = 4

  type recorder = {
    meta : int array;  (* (t_ns lsl 5) lor tag *)
    ints : int array;  (* [istride] int fields per slot *)
    strs : string array;  (* [sstride] string fields per slot *)
    lock : Mutex.t;
    mutable concurrent : bool;  (* emitters on several domains? *)
    mutable head : int;  (* next write slot *)
    mutable stored : int;  (* live entries, <= capacity *)
    mutable total : int;  (* lifetime emits *)
  }

  type t = Null | Ring of recorder

  let null = Null

  let ring ?(capacity = 65536) () =
    if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
    Ring
      {
        meta = Array.make capacity 0;
        ints = Array.make (capacity * istride) 0;
        strs = Array.make (capacity * sstride) "";
        lock = Mutex.create ();
        concurrent = false;
        head = 0;
        stored = 0;
        total = 0;
      }

  let is_null = function Null -> true | Ring _ -> false

  (* The single-producer engines (virtual, compiled) emit from one
     thread, so the ring skips its mutex unless the native engine has
     declared concurrent emitters via [synchronize] — handler domains
     there emit phase/reservation events concurrently with the WM. *)
  let synchronize = function Null -> () | Ring r -> r.concurrent <- true

  let phase_tag = function Dma_in -> 0 | Device_compute -> 1 | Dma_out -> 2
  let phase_of_tag = function 0 -> Dma_in | 1 -> Device_compute | _ -> Dma_out

  (* Claims the next slot and stores the packed timestamp+tag word;
     the caller fills the slot's field arrays.  20 constructors fit the
     5 tag bits, and emulated/monotonic timestamps stay far below the
     remaining 57 bits. *)
  let slot r t_ns tag =
    let h = r.head in
    r.meta.(h) <- (t_ns lsl 5) lor tag;
    let cap = Array.length r.meta in
    let h' = h + 1 in
    r.head <- (if h' = cap then 0 else h');
    if r.stored < cap then r.stored <- r.stored + 1;
    r.total <- r.total + 1;
    h

  (* Each case writes exactly the fields its constructor carries;
     [decode] only reads those same offsets per tag, so slots never
     need clearing between occupants. *)
  let emit t t_ns body =
    match t with
    | Null -> ()
    | Ring r ->
        if r.concurrent then Mutex.lock r.lock;
        (match body with
        | Instance_injected { instance; app } ->
            let h = slot r t_ns 0 in
            r.ints.(h * istride) <- instance;
            r.strs.(h * sstride) <- app
        | Task_ready { task; instance; app; node } ->
            let h = slot r t_ns 1 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- instance;
            let j = h * sstride in
            r.strs.(j) <- app;
            r.strs.(j + 1) <- node
        | Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns } ->
            let h = slot r t_ns 2 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- instance;
            r.ints.(i + 2) <- pe_index;
            r.ints.(i + 3) <- wait_ns;
            let j = h * sstride in
            r.strs.(j) <- app;
            r.strs.(j + 1) <- node;
            r.strs.(j + 2) <- pe
        | Task_completed { task; instance; app; node; pe; pe_index; service_ns } ->
            let h = slot r t_ns 3 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- instance;
            r.ints.(i + 2) <- pe_index;
            r.ints.(i + 3) <- service_ns;
            let j = h * sstride in
            r.strs.(j) <- app;
            r.strs.(j + 1) <- node;
            r.strs.(j + 2) <- pe
        | Sched_invoked { ready; examined; ops; cost_ns; assigned } ->
            let i = slot r t_ns 4 * istride in
            r.ints.(i) <- ready;
            r.ints.(i + 1) <- examined;
            r.ints.(i + 2) <- ops;
            r.ints.(i + 3) <- cost_ns;
            r.ints.(i + 4) <- assigned
        | Reservation_enqueued { pe_index; depth } ->
            let i = slot r t_ns 5 * istride in
            r.ints.(i) <- pe_index;
            r.ints.(i + 1) <- depth
        | Reservation_popped { pe_index; depth } ->
            let i = slot r t_ns 6 * istride in
            r.ints.(i) <- pe_index;
            r.ints.(i + 1) <- depth
        | Phase { task; pe_index; phase; start_ns; dur_ns } ->
            let i = slot r t_ns 7 * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- pe_index;
            r.ints.(i + 2) <- phase_tag phase;
            r.ints.(i + 3) <- start_ns;
            r.ints.(i + 4) <- dur_ns
        | Wm_tick { completions; injected } ->
            let i = slot r t_ns 8 * istride in
            r.ints.(i) <- completions;
            r.ints.(i + 1) <- injected
        | Fault_injected { task; pe; pe_index; fault; attempt } ->
            let h = slot r t_ns 9 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- pe_index;
            r.ints.(i + 2) <- attempt;
            let j = h * sstride in
            r.strs.(j) <- pe;
            r.strs.(j + 1) <- fault
        | Task_failed { task; instance; app; node; pe; pe_index; fault; attempt } ->
            let h = slot r t_ns 10 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- instance;
            r.ints.(i + 2) <- pe_index;
            r.ints.(i + 3) <- attempt;
            let j = h * sstride in
            r.strs.(j) <- app;
            r.strs.(j + 1) <- node;
            r.strs.(j + 2) <- pe;
            r.strs.(j + 3) <- fault
        | Task_retried { task; instance; app; node; attempt; backoff_ns } ->
            let h = slot r t_ns 11 in
            let i = h * istride in
            r.ints.(i) <- task;
            r.ints.(i + 1) <- instance;
            r.ints.(i + 2) <- attempt;
            r.ints.(i + 3) <- backoff_ns;
            let j = h * sstride in
            r.strs.(j) <- app;
            r.strs.(j + 1) <- node
        | Pe_quarantined { pe; pe_index; until_ns; permanent } ->
            let h = slot r t_ns 12 in
            let i = h * istride in
            r.ints.(i) <- pe_index;
            r.ints.(i + 1) <- until_ns;
            r.ints.(i + 2) <- (if permanent then 1 else 0);
            r.strs.(h * sstride) <- pe
        | Pe_recovered { pe; pe_index } ->
            let h = slot r t_ns 13 in
            r.ints.(h * istride) <- pe_index;
            r.strs.(h * sstride) <- pe
        | Stream_stalled { pe_index; bytes; queued } ->
            let i = slot r t_ns 14 * istride in
            r.ints.(i) <- pe_index;
            r.ints.(i + 1) <- bytes;
            r.ints.(i + 2) <- queued
        | Stream_admitted { pe_index; bytes; stall_ns; inflight } ->
            let i = slot r t_ns 15 * istride in
            r.ints.(i) <- pe_index;
            r.ints.(i + 1) <- bytes;
            r.ints.(i + 2) <- stall_ns;
            r.ints.(i + 3) <- inflight
        | Tenant_admitted { tenant; instance; queue_depth } ->
            let h = slot r t_ns 16 in
            let i = h * istride in
            r.ints.(i) <- instance;
            r.ints.(i + 1) <- queue_depth;
            r.strs.(h * sstride) <- tenant
        | Tenant_shed { tenant; instance; queue_depth } ->
            let h = slot r t_ns 17 in
            let i = h * istride in
            r.ints.(i) <- instance;
            r.ints.(i + 1) <- queue_depth;
            r.strs.(h * sstride) <- tenant
        | Instance_timed_out { tenant; instance; age_ns } ->
            let h = slot r t_ns 18 in
            let i = h * istride in
            r.ints.(i) <- instance;
            r.ints.(i + 1) <- age_ns;
            r.strs.(h * sstride) <- tenant
        | Checkpoint_written { path; instances_done } ->
            let h = slot r t_ns 19 in
            r.ints.(h * istride) <- instances_done;
            r.strs.(h * sstride) <- path);
        if r.concurrent then Mutex.unlock r.lock

  let length = function Null -> 0 | Ring r -> r.stored
  let total = function Null -> 0 | Ring r -> r.total
  let dropped = function Null -> 0 | Ring r -> r.total - r.stored
  let capacity = function Null -> 0 | Ring r -> Array.length r.meta

  let clear = function
    | Null -> ()
    | Ring r ->
        r.head <- 0;
        r.stored <- 0;
        r.total <- 0

  let decode r h =
    let t_ns = r.meta.(h) asr 5 in
    let i = h * istride in
    let a = r.ints.(i)
    and b = r.ints.(i + 1)
    and c = r.ints.(i + 2)
    and d = r.ints.(i + 3)
    and e = r.ints.(i + 4) in
    let j = h * sstride in
    let s1 = r.strs.(j)
    and s2 = r.strs.(j + 1)
    and s3 = r.strs.(j + 2)
    and s4 = r.strs.(j + 3) in
    let body =
      match r.meta.(h) land 31 with
      | 0 -> Instance_injected { instance = a; app = s1 }
      | 1 -> Task_ready { task = a; instance = b; app = s1; node = s2 }
      | 2 ->
          Task_dispatched
            { task = a; instance = b; app = s1; node = s2; pe = s3; pe_index = c; wait_ns = d }
      | 3 ->
          Task_completed
            {
              task = a;
              instance = b;
              app = s1;
              node = s2;
              pe = s3;
              pe_index = c;
              service_ns = d;
            }
      | 4 -> Sched_invoked { ready = a; examined = b; ops = c; cost_ns = d; assigned = e }
      | 5 -> Reservation_enqueued { pe_index = a; depth = b }
      | 6 -> Reservation_popped { pe_index = a; depth = b }
      | 7 ->
          Phase { task = a; pe_index = b; phase = phase_of_tag c; start_ns = d; dur_ns = e }
      | 8 -> Wm_tick { completions = a; injected = b }
      | 9 -> Fault_injected { task = a; pe = s1; pe_index = b; fault = s2; attempt = c }
      | 10 ->
          Task_failed
            {
              task = a;
              instance = b;
              app = s1;
              node = s2;
              pe = s3;
              pe_index = c;
              fault = s4;
              attempt = d;
            }
      | 11 ->
          Task_retried
            { task = a; instance = b; app = s1; node = s2; attempt = c; backoff_ns = d }
      | 12 ->
          Pe_quarantined { pe = s1; pe_index = a; until_ns = b; permanent = c = 1 }
      | 13 -> Pe_recovered { pe = s1; pe_index = a }
      | 14 -> Stream_stalled { pe_index = a; bytes = b; queued = c }
      | 15 -> Stream_admitted { pe_index = a; bytes = b; stall_ns = c; inflight = d }
      | 16 -> Tenant_admitted { tenant = s1; instance = a; queue_depth = b }
      | 17 -> Tenant_shed { tenant = s1; instance = a; queue_depth = b }
      | 18 -> Instance_timed_out { tenant = s1; instance = a; age_ns = b }
      | _ -> Checkpoint_written { path = s1; instances_done = a }
    in
    { t_ns; body }

  let events = function
    | Null -> []
    | Ring r ->
        let cap = Array.length r.meta in
        let start = (r.head - r.stored + cap) mod cap in
        List.init r.stored (fun i -> decode r ((start + i) mod cap))
end

module Metrics = struct
  type counter = { c_name : string; mutable c_count : int }

  (* Gauges and histograms store their samples in raw resizable arrays
     rather than [Vec]s: updates run once or more per traced event, and
     the specialized representations spare, per sample, a tuple or
     boxed-float allocation plus a cross-module polymorphic call.  The
     interleaved (t, v) gauge layout keeps a sample one cache line. *)
  type gauge = {
    g_name : string;
    mutable g_value : int;
    mutable g_max : int;
    mutable g_last_t : int;  (* timestamp of the newest sample *)
    mutable g_buf : int array;  (* interleaved t, v pairs *)
    mutable g_len : int;  (* ints used in [g_buf] *)
  }

  type histogram = {
    h_name : string;
    mutable h_data : float array;
    mutable h_len : int;
  }
  type item = Counter of counter | Gauge of gauge | Histogram of histogram

  (* Registration order is preserved so [pp] and exporters are
     deterministic. *)
  type t = { items : item Vec.t }

  let create () = { items = Vec.create () }

  let item_name = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name

  let find t name =
    Vec.fold (fun acc it -> if item_name it = name then Some it else acc) None t.items

  let counter t name =
    match find t name with
    | Some (Counter c) -> c
    | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " registered with another kind")
    | None ->
        let c = { c_name = name; c_count = 0 } in
        Vec.push t.items (Counter c);
        c

  let gauge t name =
    match find t name with
    | Some (Gauge g) -> g
    | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " registered with another kind")
    | None ->
        let g =
          {
            g_name = name;
            g_value = 0;
            g_max = 0;
            g_last_t = min_int;
            g_buf = [||];
            g_len = 0;
          }
        in
        Vec.push t.items (Gauge g);
        g

  let histogram t name =
    match find t name with
    | Some (Histogram h) -> h
    | Some _ ->
        invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " registered with another kind")
    | None ->
        let h = { h_name = name; h_data = [||]; h_len = 0 } in
        Vec.push t.items (Histogram h);
        h

  let find_gauge t name =
    match find t name with Some (Gauge g) -> Some g | _ -> None

  let find_counter t name =
    match find t name with Some (Counter c) -> Some c | _ -> None

  let find_histogram t name =
    match find t name with Some (Histogram h) -> Some h | _ -> None

  let incr ?(by = 1) c = c.c_count <- c.c_count + by
  let counter_value c = c.c_count

  let set g ~t_ns v =
    if v > g.g_max then g.g_max <- v;
    g.g_value <- v;
    (* Several updates at one backend timestamp collapse to the last, so
       the series is a step function keyed by strictly increasing time. *)
    if t_ns = g.g_last_t then g.g_buf.(g.g_len - 1) <- v
    else begin
      let len = g.g_len in
      if len + 2 > Array.length g.g_buf then begin
        let nb = Array.make (max 16 (2 * len)) 0 in
        Array.blit g.g_buf 0 nb 0 len;
        g.g_buf <- nb
      end;
      g.g_buf.(len) <- t_ns;
      g.g_buf.(len + 1) <- v;
      g.g_len <- len + 2;
      g.g_last_t <- t_ns
    end

  let gauge_value g = g.g_value
  let gauge_max g = g.g_max

  let gauge_samples g = g.g_len / 2

  let gauge_series g =
    List.init (gauge_samples g) (fun i -> (g.g_buf.(2 * i), g.g_buf.((2 * i) + 1)))

  let gauge_name g = g.g_name

  let observe h v =
    let len = h.h_len in
    if len = Array.length h.h_data then begin
      let nd = Array.make (max 16 (2 * len)) 0.0 in
      Array.blit h.h_data 0 nd 0 len;
      h.h_data <- nd
    end;
    h.h_data.(len) <- v;
    h.h_len <- len + 1

  let histogram_count h = h.h_len
  let histogram_samples h = Array.sub h.h_data 0 h.h_len

  let histogram_mean h =
    if h.h_len = 0 then None else Some (Quantile.mean (histogram_samples h))

  let histogram_quantile h q =
    if h.h_len = 0 then None else Some (Quantile.quantile (histogram_samples h) q)

  let gauges t =
    List.filter_map (function Gauge g -> Some g | _ -> None) (Vec.to_list t.items)

  let reset t =
    Vec.iter
      (function
        | Counter c -> c.c_count <- 0
        | Gauge g ->
            g.g_value <- 0;
            g.g_max <- 0;
            g.g_last_t <- min_int;
            g.g_len <- 0
        | Histogram h -> h.h_len <- 0)
      t.items

  let pp fmt t =
    Format.fprintf fmt "== metrics ==@.";
    Vec.iter
      (fun item ->
        match item with
        | Counter c -> Format.fprintf fmt "  counter  %-26s %d@." c.c_name c.c_count
        | Gauge g ->
            Format.fprintf fmt "  gauge    %-26s last %d  max %d  (%d samples)@."
              g.g_name g.g_value g.g_max (gauge_samples g)
        | Histogram h ->
            if h.h_len = 0 then
              Format.fprintf fmt "  hist     %-26s (empty)@." h.h_name
            else
              let xs = histogram_samples h in
              Format.fprintf fmt
                "  hist     %-26s n %d  mean %.3f  p50 %.3f  p95 %.3f  max %.3f@."
                h.h_name (Array.length xs) (Quantile.mean xs) (Quantile.median xs)
                (Quantile.quantile xs 0.95) (Quantile.max xs))
      t.items
end

module Flush = struct
  (* Periodic snapshots of a metrics registry, appended as JSONL.  The
     cadence runs on the emulated clock (driven from the WM tick), so
     the snapshot stream is deterministic for a given seed.

     Durability: each snapshot rewrites the whole stream (any content
     the file held when the flusher opened, plus every line of this
     session) to [path ^ ".tmp"] and atomically renames it over
     [path].  A reader therefore always sees a prefix of complete
     lines; a killed process can never leave a torn final snapshot. *)
  type flusher = {
    f_metrics : Metrics.t;
    f_period_ns : int;
    f_path : string;
    f_acc : Buffer.t;  (* prior file content + all session snapshots *)
    f_buf : Buffer.t;  (* reused per snapshot; never grows a log string *)
    mutable f_next_ns : int;
    mutable f_last_ns : int;  (* latest tick time seen *)
    mutable f_last_snap_ns : int;  (* -1 until the first snapshot *)
    mutable f_snapshots : int;
    mutable f_closed : bool;
  }

  let snapshot_json m ~t_ns =
    let counters = ref [] and gauges = ref [] and hists = ref [] in
    Vec.iter
      (fun item ->
        match item with
        | Metrics.Counter c ->
            counters := (c.Metrics.c_name, Json.int c.Metrics.c_count) :: !counters
        | Metrics.Gauge g ->
            gauges :=
              ( g.Metrics.g_name,
                Json.obj
                  [ ("last", Json.int g.Metrics.g_value); ("max", Json.int g.Metrics.g_max) ]
              )
              :: !gauges
        | Metrics.Histogram h ->
            let xs = Metrics.histogram_samples h in
            let fields =
              if Array.length xs = 0 then [ ("n", Json.int 0) ]
              else
                [
                  ("n", Json.int (Array.length xs));
                  ("mean", Json.float (Quantile.mean xs));
                  ("p50", Json.float (Quantile.median xs));
                  ("p95", Json.float (Quantile.quantile xs 0.95));
                  ("max", Json.float (Quantile.max xs));
                ]
            in
            hists := (h.Metrics.h_name, Json.obj fields) :: !hists)
      m.Metrics.items;
    Json.obj
      [
        ("t_ns", Json.int t_ns);
        ("counters", Json.obj (List.rev !counters));
        ("gauges", Json.obj (List.rev !gauges));
        ("hists", Json.obj (List.rev !hists));
      ]

  let every ~period_ms ~path metrics =
    if period_ms <= 0 then invalid_arg "Obs.Flush.every: period_ms must be positive";
    let acc = Buffer.create 4096 in
    if Sys.file_exists path then
      In_channel.with_open_bin path (fun ic -> Buffer.add_string acc (In_channel.input_all ic))
    else Out_channel.with_open_bin path ignore (* match the old create-on-open behaviour *);
    {
      f_metrics = metrics;
      f_period_ns = period_ms * 1_000_000;
      f_path = path;
      f_acc = acc;
      f_buf = Buffer.create 1024;
      f_next_ns = 0;
      f_last_ns = 0;
      f_last_snap_ns = -1;
      f_snapshots = 0;
      f_closed = false;
    }

  let snapshot t ~now =
    Buffer.clear t.f_buf;
    Buffer.add_string t.f_buf
      (Json.to_string ~minify:true (snapshot_json t.f_metrics ~t_ns:now));
    Buffer.add_char t.f_buf '\n';
    Buffer.add_buffer t.f_acc t.f_buf;
    let tmp = t.f_path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc -> Buffer.output_buffer oc t.f_acc);
    Sys.rename tmp t.f_path;
    t.f_snapshots <- t.f_snapshots + 1;
    t.f_last_snap_ns <- now;
    t.f_next_ns <- now + t.f_period_ns

  let tick t ~now =
    if not t.f_closed then begin
      if now > t.f_last_ns then t.f_last_ns <- now;
      if now >= t.f_next_ns then snapshot t ~now
    end

  let snapshots t = t.f_snapshots
  let path t = t.f_path

  let close t =
    if not t.f_closed then begin
      (* Final snapshot at the last tick time: short runs and the tail
         between two periods are represented in the stream. *)
      if t.f_last_ns > t.f_last_snap_ns then snapshot t ~now:t.f_last_ns;
      t.f_closed <- true
    end
end

(* Handles the engine hot path uses so emitting a metric is a field
   access, never a registry lookup. *)
type engine_metrics = {
  m_ready : Metrics.gauge;
  m_inflight : Metrics.gauge;
  m_pe_depth : Metrics.gauge array;
  m_wait : Metrics.histogram;
  m_service : Metrics.histogram;
  m_sched_cost : Metrics.histogram;
  c_injected : Metrics.counter;
  c_dispatched : Metrics.counter;
  c_completed : Metrics.counter;
  c_sched : Metrics.counter;
  c_faults : Metrics.counter;
  c_retries : Metrics.counter;
  c_quarantines : Metrics.counter;
  c_dropped : Metrics.counter;
}

type t = {
  sink : Sink.t;
  metrics : Metrics.t option;
  active : bool;
  mutable eng : engine_metrics option;
  mutable flush : Flush.flusher option;
}

let disabled = { sink = Sink.Null; metrics = None; active = false; eng = None; flush = None }

let make ?(sink = Sink.null) ?metrics () =
  {
    sink;
    metrics;
    active = (not (Sink.is_null sink)) || Option.is_some metrics;
    eng = None;
    flush = None;
  }

let set_flush t f = t.flush <- Some f

(* A reset bundle records the next run exactly as a freshly made one:
   instruments stay registered (so cached handles and registration
   order survive) but hold no samples, and the ring keeps its storage.
   This is what lets sweep workers recycle one bundle across points —
   a fig10-class ring is tens of MB of flat arrays, and rebuilding it
   per point would cost more than the tracing itself. *)
let reset t =
  Sink.clear t.sink;
  (match t.metrics with Some m -> Metrics.reset m | None -> ());
  t.flush <- None

let enabled t = t.active
let sink t = t.sink
let metrics t = t.metrics

let attach_pes t ~pe_labels =
  match t.metrics with
  | None -> ()
  | Some m ->
      (* Explicit lets pin registration (and therefore display/export)
         order, which record-field evaluation order would not. *)
      let c_injected = Metrics.counter m "instances_injected" in
      let c_dispatched = Metrics.counter m "tasks_dispatched" in
      let c_completed = Metrics.counter m "tasks_completed" in
      let c_sched = Metrics.counter m "sched_invocations" in
      let m_ready = Metrics.gauge m "ready_queue_depth" in
      let m_inflight = Metrics.gauge m "in_flight_tasks" in
      let m_pe_depth =
        Array.map (fun l -> Metrics.gauge m ("pe_queue_depth/" ^ l)) pe_labels
      in
      let m_wait = Metrics.histogram m "task_wait_us" in
      let m_service = Metrics.histogram m "task_service_us" in
      let m_sched_cost = Metrics.histogram m "sched_cost_us" in
      (* Resilience counters and the ring-drop count register after the
         pre-existing handles so their display/export order is stable. *)
      let c_faults = Metrics.counter m "faults_injected" in
      let c_retries = Metrics.counter m "task_retries" in
      let c_quarantines = Metrics.counter m "pe_quarantines" in
      let c_dropped = Metrics.counter m "events_dropped" in
      t.eng <-
        Some
          {
            m_ready;
            m_inflight;
            m_pe_depth;
            m_wait;
            m_service;
            m_sched_cost;
            c_injected;
            c_dispatched;
            c_completed;
            c_sched;
            c_faults;
            c_retries;
            c_quarantines;
            c_dropped;
          }

let on_instance_injected t ~now ~instance ~app =
  (match t.eng with Some e -> Metrics.incr e.c_injected | None -> ());
  Sink.emit t.sink now (Instance_injected { instance; app })

let on_task_ready t ~now ~task ~instance ~app ~node ~ready_depth =
  (match t.eng with
  | Some e -> Metrics.set e.m_ready ~t_ns:now ready_depth
  | None -> ());
  Sink.emit t.sink now (Task_ready { task; instance; app; node })

let on_task_dispatched t ~now ~task ~instance ~app ~node ~pe ~pe_index ~wait_ns
    ~ready_depth ~pe_depth ~inflight =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_dispatched;
      Metrics.set e.m_ready ~t_ns:now ready_depth;
      Metrics.set e.m_inflight ~t_ns:now inflight;
      if pe_index >= 0 && pe_index < Array.length e.m_pe_depth then
        Metrics.set e.m_pe_depth.(pe_index) ~t_ns:now pe_depth;
      Metrics.observe e.m_wait (float_of_int wait_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns })

let on_task_completed t ~now ~task ~instance ~app ~node ~pe ~pe_index ~service_ns
    ~pe_depth ~inflight =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_completed;
      Metrics.set e.m_inflight ~t_ns:now inflight;
      if pe_index >= 0 && pe_index < Array.length e.m_pe_depth then
        Metrics.set e.m_pe_depth.(pe_index) ~t_ns:now pe_depth;
      Metrics.observe e.m_service (float_of_int service_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Task_completed { task; instance; app; node; pe; pe_index; service_ns })

let on_sched t ~now ~ready ~examined ~ops ~cost_ns ~assigned =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_sched;
      Metrics.observe e.m_sched_cost (float_of_int cost_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Sched_invoked { ready; examined; ops; cost_ns; assigned })

let on_reservation_enqueued t ~now ~pe_index ~depth =
  Sink.emit t.sink now (Reservation_enqueued { pe_index; depth })

let on_reservation_popped t ~now ~pe_index ~depth =
  Sink.emit t.sink now (Reservation_popped { pe_index; depth })

let on_phase t ~now ~task ~pe_index ~phase ~start_ns ~dur_ns =
  Sink.emit t.sink now (Phase { task; pe_index; phase; start_ns; dur_ns })

let on_wm_tick t ~now ~completions ~injected =
  (* The flusher runs on every sweep — including quiet ones — so its
     cadence follows the emulated clock, not the event density. *)
  (match t.flush with Some f -> Flush.tick f ~now | None -> ());
  if completions > 0 || injected > 0 then
    Sink.emit t.sink now (Wm_tick { completions; injected })

(* Emitted by resource handlers (possibly native domains): sink only —
   metrics are WM-thread-only by contract. *)
let on_fault_injected t ~now ~task ~pe ~pe_index ~fault ~attempt =
  Sink.emit t.sink now (Fault_injected { task; pe; pe_index; fault; attempt })

let on_task_failed t ~now ~task ~instance ~app ~node ~pe ~pe_index ~fault ~attempt =
  (match t.eng with Some e -> Metrics.incr e.c_faults | None -> ());
  Sink.emit t.sink now (Task_failed { task; instance; app; node; pe; pe_index; fault; attempt })

let on_task_retried t ~now ~task ~instance ~app ~node ~attempt ~backoff_ns =
  (match t.eng with Some e -> Metrics.incr e.c_retries | None -> ());
  Sink.emit t.sink now (Task_retried { task; instance; app; node; attempt; backoff_ns })

let on_pe_quarantined t ~now ~pe ~pe_index ~until_ns ~permanent =
  (match t.eng with Some e -> Metrics.incr e.c_quarantines | None -> ());
  Sink.emit t.sink now (Pe_quarantined { pe; pe_index; until_ns; permanent })

let on_pe_recovered t ~now ~pe ~pe_index =
  Sink.emit t.sink now (Pe_recovered { pe; pe_index })

(* Fabric contention, emitted by the engines' DMA-charging hook: sink
   only here — the fabric occupancy gauge and stall histogram are
   registered and driven by the (single-threaded) virtual engine. *)
let on_stream_stalled t ~now ~pe_index ~bytes ~queued =
  Sink.emit t.sink now (Stream_stalled { pe_index; bytes; queued })

let on_stream_admitted t ~now ~pe_index ~bytes ~stall_ns ~inflight =
  Sink.emit t.sink now (Stream_admitted { pe_index; bytes; stall_ns; inflight })

(* Service-mode events (serve extension): sink only — the server keeps
   its own per-tenant counters and the engine gauges already cover
   queue depths. *)
let on_tenant_admitted t ~now ~tenant ~instance ~queue_depth =
  Sink.emit t.sink now (Tenant_admitted { tenant; instance; queue_depth })

let on_tenant_shed t ~now ~tenant ~instance ~queue_depth =
  Sink.emit t.sink now (Tenant_shed { tenant; instance; queue_depth })

let on_instance_timed_out t ~now ~tenant ~instance ~age_ns =
  Sink.emit t.sink now (Instance_timed_out { tenant; instance; age_ns })

let on_checkpoint_written t ~now ~path ~instances_done =
  Sink.emit t.sink now (Checkpoint_written { path; instances_done })

let record_drops t =
  match t.eng with
  | Some e ->
      let d = Sink.dropped t.sink in
      Metrics.incr e.c_dropped ~by:(d - Metrics.counter_value e.c_dropped)
  | None -> ()

let recorded_events t = Sink.events t.sink

let counter_tracks t =
  match t.metrics with
  | None -> []
  | Some m -> List.map (fun g -> (Metrics.gauge_name g, Metrics.gauge_series g)) (Metrics.gauges m)

let event_to_json { t_ns; body } =
  let mk name fields = Json.obj (("t", Json.int t_ns) :: ("ev", Json.str name) :: fields) in
  match body with
  | Instance_injected { instance; app } ->
      mk "instance_injected" [ ("instance", Json.int instance); ("app", Json.str app) ]
  | Task_ready { task; instance; app; node } ->
      mk "task_ready"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
        ]
  | Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns } ->
      mk "task_dispatched"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("wait_ns", Json.int wait_ns);
        ]
  | Task_completed { task; instance; app; node; pe; pe_index; service_ns } ->
      mk "task_completed"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("service_ns", Json.int service_ns);
        ]
  | Sched_invoked { ready; examined; ops; cost_ns; assigned } ->
      mk "sched"
        [
          ("ready", Json.int ready);
          ("examined", Json.int examined);
          ("ops", Json.int ops);
          ("cost_ns", Json.int cost_ns);
          ("assigned", Json.int assigned);
        ]
  | Reservation_enqueued { pe_index; depth } ->
      mk "resv_enq" [ ("pe_index", Json.int pe_index); ("depth", Json.int depth) ]
  | Reservation_popped { pe_index; depth } ->
      mk "resv_pop" [ ("pe_index", Json.int pe_index); ("depth", Json.int depth) ]
  | Phase { task; pe_index; phase; start_ns; dur_ns } ->
      mk "phase"
        [
          ("phase", Json.str (phase_name phase));
          ("task", Json.int task);
          ("pe_index", Json.int pe_index);
          ("start_ns", Json.int start_ns);
          ("dur_ns", Json.int dur_ns);
        ]
  | Wm_tick { completions; injected } ->
      mk "wm_tick" [ ("completions", Json.int completions); ("injected", Json.int injected) ]
  | Fault_injected { task; pe; pe_index; fault; attempt } ->
      mk "fault_injected"
        [
          ("task", Json.int task);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("fault", Json.str fault);
          ("attempt", Json.int attempt);
        ]
  | Task_failed { task; instance; app; node; pe; pe_index; fault; attempt } ->
      mk "task_failed"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("fault", Json.str fault);
          ("attempt", Json.int attempt);
        ]
  | Task_retried { task; instance; app; node; attempt; backoff_ns } ->
      mk "task_retried"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("attempt", Json.int attempt);
          ("backoff_ns", Json.int backoff_ns);
        ]
  | Pe_quarantined { pe; pe_index; until_ns; permanent } ->
      mk "pe_quarantined"
        [
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("until_ns", Json.int until_ns);
          ("permanent", Json.bool permanent);
        ]
  | Pe_recovered { pe; pe_index } ->
      mk "pe_recovered" [ ("pe", Json.str pe); ("pe_index", Json.int pe_index) ]
  | Stream_stalled { pe_index; bytes; queued } ->
      mk "stream_stalled"
        [
          ("pe_index", Json.int pe_index);
          ("bytes", Json.int bytes);
          ("queued", Json.int queued);
        ]
  | Stream_admitted { pe_index; bytes; stall_ns; inflight } ->
      mk "stream_admitted"
        [
          ("pe_index", Json.int pe_index);
          ("bytes", Json.int bytes);
          ("stall_ns", Json.int stall_ns);
          ("inflight", Json.int inflight);
        ]
  | Tenant_admitted { tenant; instance; queue_depth } ->
      mk "tenant_admitted"
        [
          ("tenant", Json.str tenant);
          ("instance", Json.int instance);
          ("queue_depth", Json.int queue_depth);
        ]
  | Tenant_shed { tenant; instance; queue_depth } ->
      mk "tenant_shed"
        [
          ("tenant", Json.str tenant);
          ("instance", Json.int instance);
          ("queue_depth", Json.int queue_depth);
        ]
  | Instance_timed_out { tenant; instance; age_ns } ->
      mk "instance_timed_out"
        [
          ("tenant", Json.str tenant);
          ("instance", Json.int instance);
          ("age_ns", Json.int age_ns);
        ]
  | Checkpoint_written { path; instances_done } ->
      mk "checkpoint_written"
        [ ("path", Json.str path); ("instances_done", Json.int instances_done) ]

let add_jsonl buf e =
  Buffer.add_string buf (Json.to_string ~minify:true (event_to_json e));
  Buffer.add_char buf '\n'

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter (add_jsonl buf) events;
  Buffer.contents buf

let output_jsonl oc events =
  (* One reused line buffer: the log streams to the channel without
     ever materialising as a single string. *)
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      Buffer.clear buf;
      add_jsonl buf e;
      Buffer.output_buffer oc buf)
    events

let event_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    let* v = Json.member name j in
    Json.to_int v
  in
  let str name =
    let* v = Json.member name j in
    Json.to_str v
  in
  let bool name =
    let* v = Json.member name j in
    Json.to_bool v
  in
  let* t_ns = int "t" in
  let* ev = str "ev" in
  let* body =
    match ev with
    | "instance_injected" ->
        let* instance = int "instance" in
        let* app = str "app" in
        Ok (Instance_injected { instance; app })
    | "task_ready" ->
        let* task = int "task" in
        let* instance = int "instance" in
        let* app = str "app" in
        let* node = str "node" in
        Ok (Task_ready { task; instance; app; node })
    | "task_dispatched" ->
        let* task = int "task" in
        let* instance = int "instance" in
        let* app = str "app" in
        let* node = str "node" in
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        let* wait_ns = int "wait_ns" in
        Ok (Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns })
    | "task_completed" ->
        let* task = int "task" in
        let* instance = int "instance" in
        let* app = str "app" in
        let* node = str "node" in
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        let* service_ns = int "service_ns" in
        Ok (Task_completed { task; instance; app; node; pe; pe_index; service_ns })
    | "sched" ->
        let* ready = int "ready" in
        let* examined = int "examined" in
        let* ops = int "ops" in
        let* cost_ns = int "cost_ns" in
        let* assigned = int "assigned" in
        Ok (Sched_invoked { ready; examined; ops; cost_ns; assigned })
    | "resv_enq" ->
        let* pe_index = int "pe_index" in
        let* depth = int "depth" in
        Ok (Reservation_enqueued { pe_index; depth })
    | "resv_pop" ->
        let* pe_index = int "pe_index" in
        let* depth = int "depth" in
        Ok (Reservation_popped { pe_index; depth })
    | "phase" ->
        let* p = str "phase" in
        let* phase =
          match p with
          | "dma_in" -> Ok Dma_in
          | "compute" -> Ok Device_compute
          | "dma_out" -> Ok Dma_out
          | other -> Error (Printf.sprintf "unknown phase %S" other)
        in
        let* task = int "task" in
        let* pe_index = int "pe_index" in
        let* start_ns = int "start_ns" in
        let* dur_ns = int "dur_ns" in
        Ok (Phase { task; pe_index; phase; start_ns; dur_ns })
    | "wm_tick" ->
        let* completions = int "completions" in
        let* injected = int "injected" in
        Ok (Wm_tick { completions; injected })
    | "fault_injected" ->
        let* task = int "task" in
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        let* fault = str "fault" in
        let* attempt = int "attempt" in
        Ok (Fault_injected { task; pe; pe_index; fault; attempt })
    | "task_failed" ->
        let* task = int "task" in
        let* instance = int "instance" in
        let* app = str "app" in
        let* node = str "node" in
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        let* fault = str "fault" in
        let* attempt = int "attempt" in
        Ok (Task_failed { task; instance; app; node; pe; pe_index; fault; attempt })
    | "task_retried" ->
        let* task = int "task" in
        let* instance = int "instance" in
        let* app = str "app" in
        let* node = str "node" in
        let* attempt = int "attempt" in
        let* backoff_ns = int "backoff_ns" in
        Ok (Task_retried { task; instance; app; node; attempt; backoff_ns })
    | "pe_quarantined" ->
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        let* until_ns = int "until_ns" in
        let* permanent = bool "permanent" in
        Ok (Pe_quarantined { pe; pe_index; until_ns; permanent })
    | "pe_recovered" ->
        let* pe = str "pe" in
        let* pe_index = int "pe_index" in
        Ok (Pe_recovered { pe; pe_index })
    | "stream_stalled" ->
        let* pe_index = int "pe_index" in
        let* bytes = int "bytes" in
        let* queued = int "queued" in
        Ok (Stream_stalled { pe_index; bytes; queued })
    | "stream_admitted" ->
        let* pe_index = int "pe_index" in
        let* bytes = int "bytes" in
        let* stall_ns = int "stall_ns" in
        let* inflight = int "inflight" in
        Ok (Stream_admitted { pe_index; bytes; stall_ns; inflight })
    | "tenant_admitted" ->
        let* tenant = str "tenant" in
        let* instance = int "instance" in
        let* queue_depth = int "queue_depth" in
        Ok (Tenant_admitted { tenant; instance; queue_depth })
    | "tenant_shed" ->
        let* tenant = str "tenant" in
        let* instance = int "instance" in
        let* queue_depth = int "queue_depth" in
        Ok (Tenant_shed { tenant; instance; queue_depth })
    | "instance_timed_out" ->
        let* tenant = str "tenant" in
        let* instance = int "instance" in
        let* age_ns = int "age_ns" in
        Ok (Instance_timed_out { tenant; instance; age_ns })
    | "checkpoint_written" ->
        let* path = str "path" in
        let* instances_done = int "instances_done" in
        Ok (Checkpoint_written { path; instances_done })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok { t_ns; body }
