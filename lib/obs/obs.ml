module Vec = Dssoc_util.Vec
module Quantile = Dssoc_stats.Quantile
module Json = Dssoc_json.Json

type phase = Dma_in | Device_compute | Dma_out

let phase_name = function
  | Dma_in -> "dma_in"
  | Device_compute -> "compute"
  | Dma_out -> "dma_out"

type body =
  | Instance_injected of { instance : int; app : string }
  | Task_ready of { task : int; instance : int; app : string; node : string }
  | Task_dispatched of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      wait_ns : int;
    }
  | Task_completed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      service_ns : int;
    }
  | Sched_invoked of {
      ready : int;
      examined : int;
      ops : int;
      cost_ns : int;
      assigned : int;
    }
  | Reservation_enqueued of { pe_index : int; depth : int }
  | Reservation_popped of { pe_index : int; depth : int }
  | Phase of {
      task : int;
      pe_index : int;
      phase : phase;
      start_ns : int;
      dur_ns : int;
    }
  | Wm_tick of { completions : int; injected : int }
  | Fault_injected of {
      task : int;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }
  | Task_failed of {
      task : int;
      instance : int;
      app : string;
      node : string;
      pe : string;
      pe_index : int;
      fault : string;
      attempt : int;
    }
  | Task_retried of {
      task : int;
      instance : int;
      app : string;
      node : string;
      attempt : int;
      backoff_ns : int;
    }
  | Pe_quarantined of { pe : string; pe_index : int; until_ns : int; permanent : bool }
  | Pe_recovered of { pe : string; pe_index : int }
  | Stream_stalled of { pe_index : int; bytes : int; queued : int }
  | Stream_admitted of { pe_index : int; bytes : int; stall_ns : int; inflight : int }

type event = { t_ns : int; body : body }

module Sink = struct
  type recorder = {
    buf : event array;
    lock : Mutex.t;
    mutable head : int;  (* next write slot *)
    mutable stored : int;  (* live entries, <= capacity *)
    mutable total : int;  (* lifetime emits *)
  }

  type t = Null | Ring of recorder

  let null = Null

  let dummy_event = { t_ns = 0; body = Wm_tick { completions = 0; injected = 0 } }

  let ring ?(capacity = 65536) () =
    if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
    Ring
      {
        buf = Array.make capacity dummy_event;
        lock = Mutex.create ();
        head = 0;
        stored = 0;
        total = 0;
      }

  let is_null = function Null -> true | Ring _ -> false

  let emit t t_ns body =
    match t with
    | Null -> ()
    | Ring r ->
        (* Handler domains emit phase/reservation events concurrently with
           the WM in the native engine, so the ring is mutex-protected. *)
        Mutex.lock r.lock;
        let cap = Array.length r.buf in
        r.buf.(r.head) <- { t_ns; body };
        r.head <- (r.head + 1) mod cap;
        if r.stored < cap then r.stored <- r.stored + 1;
        r.total <- r.total + 1;
        Mutex.unlock r.lock

  let length = function Null -> 0 | Ring r -> r.stored
  let total = function Null -> 0 | Ring r -> r.total
  let dropped = function Null -> 0 | Ring r -> r.total - r.stored
  let capacity = function Null -> 0 | Ring r -> Array.length r.buf

  let events = function
    | Null -> []
    | Ring r ->
        let cap = Array.length r.buf in
        let start = (r.head - r.stored + cap) mod cap in
        List.init r.stored (fun i -> r.buf.((start + i) mod cap))
end

module Metrics = struct
  type counter = { c_name : string; mutable c_count : int }

  type gauge = {
    g_name : string;
    mutable g_value : int;
    mutable g_max : int;
    g_series : (int * int) Vec.t;
  }

  type histogram = { h_name : string; h_samples : float Vec.t }
  type item = Counter of counter | Gauge of gauge | Histogram of histogram

  (* Registration order is preserved so [pp] and exporters are
     deterministic. *)
  type t = { items : item Vec.t }

  let create () = { items = Vec.create () }

  let item_name = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name

  let find t name =
    Vec.fold (fun acc it -> if item_name it = name then Some it else acc) None t.items

  let counter t name =
    match find t name with
    | Some (Counter c) -> c
    | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " registered with another kind")
    | None ->
        let c = { c_name = name; c_count = 0 } in
        Vec.push t.items (Counter c);
        c

  let gauge t name =
    match find t name with
    | Some (Gauge g) -> g
    | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " registered with another kind")
    | None ->
        let g = { g_name = name; g_value = 0; g_max = 0; g_series = Vec.create () } in
        Vec.push t.items (Gauge g);
        g

  let histogram t name =
    match find t name with
    | Some (Histogram h) -> h
    | Some _ ->
        invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " registered with another kind")
    | None ->
        let h = { h_name = name; h_samples = Vec.create () } in
        Vec.push t.items (Histogram h);
        h

  let find_gauge t name =
    match find t name with Some (Gauge g) -> Some g | _ -> None

  let find_counter t name =
    match find t name with Some (Counter c) -> Some c | _ -> None

  let find_histogram t name =
    match find t name with Some (Histogram h) -> Some h | _ -> None

  let incr ?(by = 1) c = c.c_count <- c.c_count + by
  let counter_value c = c.c_count

  let set g ~t_ns v =
    if v > g.g_max then g.g_max <- v;
    g.g_value <- v;
    let n = Vec.length g.g_series in
    (* Several updates at one backend timestamp collapse to the last, so
       the series is a step function keyed by strictly increasing time. *)
    if n > 0 && fst (Vec.get g.g_series (n - 1)) = t_ns then
      Vec.set g.g_series (n - 1) (t_ns, v)
    else Vec.push g.g_series (t_ns, v)

  let gauge_value g = g.g_value
  let gauge_max g = g.g_max
  let gauge_series g = Vec.to_list g.g_series
  let gauge_name g = g.g_name

  let observe h v = Vec.push h.h_samples v
  let histogram_count h = Vec.length h.h_samples
  let histogram_samples h = Vec.to_array h.h_samples

  let histogram_mean h =
    if Vec.is_empty h.h_samples then None
    else Some (Quantile.mean (Vec.to_array h.h_samples))

  let histogram_quantile h q =
    if Vec.is_empty h.h_samples then None
    else Some (Quantile.quantile (Vec.to_array h.h_samples) q)

  let gauges t =
    List.filter_map (function Gauge g -> Some g | _ -> None) (Vec.to_list t.items)

  let pp fmt t =
    Format.fprintf fmt "== metrics ==@.";
    Vec.iter
      (fun item ->
        match item with
        | Counter c -> Format.fprintf fmt "  counter  %-26s %d@." c.c_name c.c_count
        | Gauge g ->
            Format.fprintf fmt "  gauge    %-26s last %d  max %d  (%d samples)@."
              g.g_name g.g_value g.g_max (Vec.length g.g_series)
        | Histogram h ->
            if Vec.is_empty h.h_samples then
              Format.fprintf fmt "  hist     %-26s (empty)@." h.h_name
            else
              let xs = Vec.to_array h.h_samples in
              Format.fprintf fmt
                "  hist     %-26s n %d  mean %.3f  p50 %.3f  p95 %.3f  max %.3f@."
                h.h_name (Array.length xs) (Quantile.mean xs) (Quantile.median xs)
                (Quantile.quantile xs 0.95) (Quantile.max xs))
      t.items
end

(* Handles the engine hot path uses so emitting a metric is a field
   access, never a registry lookup. *)
type engine_metrics = {
  m_ready : Metrics.gauge;
  m_inflight : Metrics.gauge;
  m_pe_depth : Metrics.gauge array;
  m_wait : Metrics.histogram;
  m_service : Metrics.histogram;
  m_sched_cost : Metrics.histogram;
  c_injected : Metrics.counter;
  c_dispatched : Metrics.counter;
  c_completed : Metrics.counter;
  c_sched : Metrics.counter;
  c_faults : Metrics.counter;
  c_retries : Metrics.counter;
  c_quarantines : Metrics.counter;
  c_dropped : Metrics.counter;
}

type t = {
  sink : Sink.t;
  metrics : Metrics.t option;
  active : bool;
  mutable eng : engine_metrics option;
}

let disabled = { sink = Sink.Null; metrics = None; active = false; eng = None }

let make ?(sink = Sink.null) ?metrics () =
  { sink; metrics; active = (not (Sink.is_null sink)) || Option.is_some metrics; eng = None }

let enabled t = t.active
let sink t = t.sink
let metrics t = t.metrics

let attach_pes t ~pe_labels =
  match t.metrics with
  | None -> ()
  | Some m ->
      (* Explicit lets pin registration (and therefore display/export)
         order, which record-field evaluation order would not. *)
      let c_injected = Metrics.counter m "instances_injected" in
      let c_dispatched = Metrics.counter m "tasks_dispatched" in
      let c_completed = Metrics.counter m "tasks_completed" in
      let c_sched = Metrics.counter m "sched_invocations" in
      let m_ready = Metrics.gauge m "ready_queue_depth" in
      let m_inflight = Metrics.gauge m "in_flight_tasks" in
      let m_pe_depth =
        Array.map (fun l -> Metrics.gauge m ("pe_queue_depth/" ^ l)) pe_labels
      in
      let m_wait = Metrics.histogram m "task_wait_us" in
      let m_service = Metrics.histogram m "task_service_us" in
      let m_sched_cost = Metrics.histogram m "sched_cost_us" in
      (* Resilience counters and the ring-drop count register after the
         pre-existing handles so their display/export order is stable. *)
      let c_faults = Metrics.counter m "faults_injected" in
      let c_retries = Metrics.counter m "task_retries" in
      let c_quarantines = Metrics.counter m "pe_quarantines" in
      let c_dropped = Metrics.counter m "events_dropped" in
      t.eng <-
        Some
          {
            m_ready;
            m_inflight;
            m_pe_depth;
            m_wait;
            m_service;
            m_sched_cost;
            c_injected;
            c_dispatched;
            c_completed;
            c_sched;
            c_faults;
            c_retries;
            c_quarantines;
            c_dropped;
          }

let on_instance_injected t ~now ~instance ~app =
  (match t.eng with Some e -> Metrics.incr e.c_injected | None -> ());
  Sink.emit t.sink now (Instance_injected { instance; app })

let on_task_ready t ~now ~task ~instance ~app ~node ~ready_depth =
  (match t.eng with
  | Some e -> Metrics.set e.m_ready ~t_ns:now ready_depth
  | None -> ());
  Sink.emit t.sink now (Task_ready { task; instance; app; node })

let on_task_dispatched t ~now ~task ~instance ~app ~node ~pe ~pe_index ~wait_ns
    ~ready_depth ~pe_depth ~inflight =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_dispatched;
      Metrics.set e.m_ready ~t_ns:now ready_depth;
      Metrics.set e.m_inflight ~t_ns:now inflight;
      if pe_index >= 0 && pe_index < Array.length e.m_pe_depth then
        Metrics.set e.m_pe_depth.(pe_index) ~t_ns:now pe_depth;
      Metrics.observe e.m_wait (float_of_int wait_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns })

let on_task_completed t ~now ~task ~instance ~app ~node ~pe ~pe_index ~service_ns
    ~pe_depth ~inflight =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_completed;
      Metrics.set e.m_inflight ~t_ns:now inflight;
      if pe_index >= 0 && pe_index < Array.length e.m_pe_depth then
        Metrics.set e.m_pe_depth.(pe_index) ~t_ns:now pe_depth;
      Metrics.observe e.m_service (float_of_int service_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Task_completed { task; instance; app; node; pe; pe_index; service_ns })

let on_sched t ~now ~ready ~examined ~ops ~cost_ns ~assigned =
  (match t.eng with
  | Some e ->
      Metrics.incr e.c_sched;
      Metrics.observe e.m_sched_cost (float_of_int cost_ns /. 1e3)
  | None -> ());
  Sink.emit t.sink now (Sched_invoked { ready; examined; ops; cost_ns; assigned })

let on_reservation_enqueued t ~now ~pe_index ~depth =
  Sink.emit t.sink now (Reservation_enqueued { pe_index; depth })

let on_reservation_popped t ~now ~pe_index ~depth =
  Sink.emit t.sink now (Reservation_popped { pe_index; depth })

let on_phase t ~now ~task ~pe_index ~phase ~start_ns ~dur_ns =
  Sink.emit t.sink now (Phase { task; pe_index; phase; start_ns; dur_ns })

let on_wm_tick t ~now ~completions ~injected =
  if completions > 0 || injected > 0 then
    Sink.emit t.sink now (Wm_tick { completions; injected })

(* Emitted by resource handlers (possibly native domains): sink only —
   metrics are WM-thread-only by contract. *)
let on_fault_injected t ~now ~task ~pe ~pe_index ~fault ~attempt =
  Sink.emit t.sink now (Fault_injected { task; pe; pe_index; fault; attempt })

let on_task_failed t ~now ~task ~instance ~app ~node ~pe ~pe_index ~fault ~attempt =
  (match t.eng with Some e -> Metrics.incr e.c_faults | None -> ());
  Sink.emit t.sink now (Task_failed { task; instance; app; node; pe; pe_index; fault; attempt })

let on_task_retried t ~now ~task ~instance ~app ~node ~attempt ~backoff_ns =
  (match t.eng with Some e -> Metrics.incr e.c_retries | None -> ());
  Sink.emit t.sink now (Task_retried { task; instance; app; node; attempt; backoff_ns })

let on_pe_quarantined t ~now ~pe ~pe_index ~until_ns ~permanent =
  (match t.eng with Some e -> Metrics.incr e.c_quarantines | None -> ());
  Sink.emit t.sink now (Pe_quarantined { pe; pe_index; until_ns; permanent })

let on_pe_recovered t ~now ~pe ~pe_index =
  Sink.emit t.sink now (Pe_recovered { pe; pe_index })

(* Fabric contention, emitted by the engines' DMA-charging hook: sink
   only here — the fabric occupancy gauge and stall histogram are
   registered and driven by the (single-threaded) virtual engine. *)
let on_stream_stalled t ~now ~pe_index ~bytes ~queued =
  Sink.emit t.sink now (Stream_stalled { pe_index; bytes; queued })

let on_stream_admitted t ~now ~pe_index ~bytes ~stall_ns ~inflight =
  Sink.emit t.sink now (Stream_admitted { pe_index; bytes; stall_ns; inflight })

let record_drops t =
  match t.eng with
  | Some e ->
      let d = Sink.dropped t.sink in
      Metrics.incr e.c_dropped ~by:(d - Metrics.counter_value e.c_dropped)
  | None -> ()

let recorded_events t = Sink.events t.sink

let counter_tracks t =
  match t.metrics with
  | None -> []
  | Some m -> List.map (fun g -> (Metrics.gauge_name g, Metrics.gauge_series g)) (Metrics.gauges m)

let event_to_json { t_ns; body } =
  let mk name fields = Json.obj (("t", Json.int t_ns) :: ("ev", Json.str name) :: fields) in
  match body with
  | Instance_injected { instance; app } ->
      mk "instance_injected" [ ("instance", Json.int instance); ("app", Json.str app) ]
  | Task_ready { task; instance; app; node } ->
      mk "task_ready"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
        ]
  | Task_dispatched { task; instance; app; node; pe; pe_index; wait_ns } ->
      mk "task_dispatched"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("wait_ns", Json.int wait_ns);
        ]
  | Task_completed { task; instance; app; node; pe; pe_index; service_ns } ->
      mk "task_completed"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("service_ns", Json.int service_ns);
        ]
  | Sched_invoked { ready; examined; ops; cost_ns; assigned } ->
      mk "sched"
        [
          ("ready", Json.int ready);
          ("examined", Json.int examined);
          ("ops", Json.int ops);
          ("cost_ns", Json.int cost_ns);
          ("assigned", Json.int assigned);
        ]
  | Reservation_enqueued { pe_index; depth } ->
      mk "resv_enq" [ ("pe_index", Json.int pe_index); ("depth", Json.int depth) ]
  | Reservation_popped { pe_index; depth } ->
      mk "resv_pop" [ ("pe_index", Json.int pe_index); ("depth", Json.int depth) ]
  | Phase { task; pe_index; phase; start_ns; dur_ns } ->
      mk "phase"
        [
          ("phase", Json.str (phase_name phase));
          ("task", Json.int task);
          ("pe_index", Json.int pe_index);
          ("start_ns", Json.int start_ns);
          ("dur_ns", Json.int dur_ns);
        ]
  | Wm_tick { completions; injected } ->
      mk "wm_tick" [ ("completions", Json.int completions); ("injected", Json.int injected) ]
  | Fault_injected { task; pe; pe_index; fault; attempt } ->
      mk "fault_injected"
        [
          ("task", Json.int task);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("fault", Json.str fault);
          ("attempt", Json.int attempt);
        ]
  | Task_failed { task; instance; app; node; pe; pe_index; fault; attempt } ->
      mk "task_failed"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("fault", Json.str fault);
          ("attempt", Json.int attempt);
        ]
  | Task_retried { task; instance; app; node; attempt; backoff_ns } ->
      mk "task_retried"
        [
          ("task", Json.int task);
          ("instance", Json.int instance);
          ("app", Json.str app);
          ("node", Json.str node);
          ("attempt", Json.int attempt);
          ("backoff_ns", Json.int backoff_ns);
        ]
  | Pe_quarantined { pe; pe_index; until_ns; permanent } ->
      mk "pe_quarantined"
        [
          ("pe", Json.str pe);
          ("pe_index", Json.int pe_index);
          ("until_ns", Json.int until_ns);
          ("permanent", Json.bool permanent);
        ]
  | Pe_recovered { pe; pe_index } ->
      mk "pe_recovered" [ ("pe", Json.str pe); ("pe_index", Json.int pe_index) ]
  | Stream_stalled { pe_index; bytes; queued } ->
      mk "stream_stalled"
        [
          ("pe_index", Json.int pe_index);
          ("bytes", Json.int bytes);
          ("queued", Json.int queued);
        ]
  | Stream_admitted { pe_index; bytes; stall_ns; inflight } ->
      mk "stream_admitted"
        [
          ("pe_index", Json.int pe_index);
          ("bytes", Json.int bytes);
          ("stall_ns", Json.int stall_ns);
          ("inflight", Json.int inflight);
        ]

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string ~minify:true (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
