(** Emulation-as-a-service: a resident multi-tenant workload server on
    top of the virtual engine.

    Instead of a fixed-count workload, each {e tenant} registers an
    open-loop arrival stream (application mix, Poisson arrival rate,
    priority, SLO latency bound, its own seed stream).  Arrivals flow
    through bounded per-tenant admission queues in front of the
    workload manager's ready list; when a queue overflows, the
    configured overload policy decides who pays:

    - [Block]: the tenant's arrival stream stalls — arrivals wait at
      the stream head (their latency clock keeps running against the
      scheduled arrival time) until the queue has room.
    - [Shed]: the newest arrival is rejected with a typed
      {!Rejected} disposition and counted; nothing is ever silently
      dropped.
    - [Degrade]: the arrival displaces the newest queued instance of
      the lowest-priority tenant strictly below its own priority (that
      victim is shed); if no such victim exists the arrival itself is
      shed.  High-priority tenants therefore keep their SLO while
      low-priority tenants absorb the shedding.

    A watchdog aborts admitted instances that exceed a configurable
    wall bound with a typed {!Timed_out} disposition: their Ready
    tasks are withdrawn through the workload manager's lazy-deletion
    machinery and in-flight attempts drain naturally first.

    {b Checkpoint/restore.}  The server only checkpoints at {e natural
    quiescent instants} — empty ready list, nothing in flight, empty
    admission queues, next arrival strictly in the future.  At such an
    instant the entire future of the run is a deterministic function
    of (spec, virtual clock, engine PRNG state, per-PE scheduling
    horizons, per-tenant cursors and aggregates) — all of which the
    checkpoint captures in a versioned JSON file.  A drain request
    (SIGTERM, or a virtual-time trigger) lets the server run normally
    until the next quiescent instant, then stop and checkpoint.
    Restoring resumes the run and produces a final report
    byte-identical to an uninterrupted run at the same seeds. *)

type overload = Block | Shed | Degrade

val overload_name : overload -> string

type admission = {
  ad_policy : overload;
  ad_queue : int;  (** per-tenant admission-queue bound *)
  ad_max_ready : int;
      (** ready-list depth gate: instances are only injected while the
          live ready count is below this (one instance's entry burst
          may overshoot it) *)
  ad_timeout_ns : int;  (** watchdog wall bound from arrival; 0 = off *)
}

val default_admission : admission
(** [Shed], queue 16, max-ready 128, no watchdog. *)

val admission_of_spec : string -> (admission, string) result
(** Parse ["policy=shed:queue=16:max-ready=128:timeout=20ms"]
    (all fields optional, any order, over {!default_admission}).
    Durations accept [ms]/[us]/[s] suffixes (plain numbers are ms). *)

type tenant_spec = {
  tn_name : string;
  tn_apps : (string * int) list;  (** application mix: (name, weight) *)
  tn_rate_per_ms : float;  (** mean Poisson arrival rate, arrivals/ms *)
  tn_priority : int;  (** higher = served first *)
  tn_slo_ms : float;  (** SLO latency bound *)
  tn_seed : int64 option;
      (** arrival-stream seed; default derives from the run seed and
          the tenant's position via [Prng.derive_seed] *)
}

val tenants_of_spec : string -> (tenant_spec list, string) result
(** Parse ["NAME:apps=wifi_tx*3+range_detection:rate=1.5:prio=2:slo=5ms[:seed=7]"]
    clauses separated by [';'].  [apps], [rate] are mandatory;
    [prio] defaults to 0, [slo] to 10 ms. *)

type disposition =
  | Pending  (** beyond the drain point (only in drained outcomes) *)
  | Completed
  | Rejected  (** shed by admission control *)
  | Timed_out  (** aborted by the watchdog *)

val disposition_name : disposition -> string

type tenant_report = {
  tr_name : string;
  tr_priority : int;
  tr_offered : int;  (** arrivals that reached admission control *)
  tr_admitted : int;
  tr_completed : int;
  tr_shed : int;
  tr_timed_out : int;
  tr_slo_ms : float;
  tr_slo_miss : int;  (** completions over the SLO bound *)
  tr_p95_ms : float;  (** p95 completion latency (0 when none) *)
  tr_throughput_per_ms : float;
  tr_digest : string;
      (** rolling MD5 chain over (instance id, store digest) in
          completion order — pins functional output across restore *)
  tr_verdict : string;  (** ["ok"], ["shed"], ["timeout"] or ["shed+timeout"] *)
}

type outcome = {
  oc_clock_ns : int;  (** virtual time at termination *)
  oc_drained : bool;
  oc_checkpoint : string option;  (** checkpoint file written, if any *)
  oc_tenants : tenant_report list;  (** priority descending, then name *)
  oc_dispositions : disposition array;  (** by instance id *)
}

type spec = {
  sp_config : Dssoc_soc.Config.t;
  sp_policy : Dssoc_runtime.Scheduler.policy;
  sp_seed : int64;
  sp_jitter : float;
  sp_duration_ms : float;  (** arrivals are generated strictly inside this window *)
  sp_admission : admission;
  sp_tenants : tenant_spec list;
}

val run :
  ?obs:Dssoc_obs.Obs.t ->
  ?drain:(now_ns:int -> bool) ->
  ?checkpoint:string ->
  ?restore:string ->
  spec ->
  (outcome, string) result
(** Run the service to completion (all generated arrivals resolved) on
    the virtual engine.

    [drain] is polled once per quiescence opportunity; once it returns
    true the server stops at the next quiescent instant and — when
    [checkpoint] names a file — atomically writes the versioned
    checkpoint there (and emits [checkpoint_written]).  [restore]
    resumes from a checkpoint file; the spec must match the one that
    produced it (enforced by a fingerprint).  Unknown applications,
    bad checkpoint version/fingerprint and spec errors are returned as
    [Error]. *)

val render_report : outcome -> string
(** Deterministic multi-line per-tenant report — byte-identical
    between an uninterrupted run and a drain/checkpoint/restore run of
    the same spec. *)

(**/**)

val materialize_debug : spec -> (int * int * int * string) list
(** (arrival_ns, tenant index, per-tenant seq, app name) in instance
    order — exposed for tests of schedule determinism. *)
