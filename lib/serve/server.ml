module Prng = Dssoc_util.Prng
module Json = Dssoc_json.Json
module Config = Dssoc_soc.Config
module Host = Dssoc_soc.Host
module Pe = Dssoc_soc.Pe
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Workload = Dssoc_apps.Workload
module Reference_apps = Dssoc_apps.Reference_apps
module Core = Dssoc_runtime.Engine_core
module Task = Dssoc_runtime.Task
module Scheduler = Dssoc_runtime.Scheduler
module Virtual_engine = Dssoc_runtime.Virtual_engine
module Obs = Dssoc_obs.Obs

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)
(* ------------------------------------------------------------------ *)

type overload = Block | Shed | Degrade

let overload_name = function Block -> "block" | Shed -> "shed" | Degrade -> "degrade"

type admission = {
  ad_policy : overload;
  ad_queue : int;
  ad_max_ready : int;
  ad_timeout_ns : int;
}

let default_admission =
  { ad_policy = Shed; ad_queue = 16; ad_max_ready = 128; ad_timeout_ns = 0 }

type tenant_spec = {
  tn_name : string;
  tn_apps : (string * int) list;
  tn_rate_per_ms : float;
  tn_priority : int;
  tn_slo_ms : float;
  tn_seed : int64 option;
}

(* "20ms" / "150us" / "1.5s" / bare number (ms) -> ns *)
let duration_ns_of_string s =
  let conv mult body =
    match float_of_string_opt body with
    | Some f when f >= 0.0 -> Ok (int_of_float (f *. mult))
    | _ -> Error (Printf.sprintf "bad duration %S" s)
  in
  let has suf = String.length s > String.length suf
                && String.sub s (String.length s - String.length suf) (String.length suf) = suf in
  let body suf = String.sub s 0 (String.length s - String.length suf) in
  if has "ms" then conv 1e6 (body "ms")
  else if has "us" then conv 1e3 (body "us")
  else if has "ns" then conv 1.0 (body "ns")
  else if has "s" then conv 1e9 (body "s")
  else conv 1e6 s

let pos_int_field ~what s =
  match int_of_string_opt s with
  | Some n when n > 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad %s %S (want a positive integer)" what s)

let admission_of_spec s =
  let rec go acc = function
    | [] -> Ok acc
    | clause :: rest -> (
      match String.index_opt clause '=' with
      | None -> Error (Printf.sprintf "admission: clause %S is not key=value" clause)
      | Some i ->
        let key = String.sub clause 0 i
        and v = String.sub clause (i + 1) (String.length clause - i - 1) in
        let* acc =
          match key with
          | "policy" -> (
            match String.lowercase_ascii v with
            | "block" -> Ok { acc with ad_policy = Block }
            | "shed" -> Ok { acc with ad_policy = Shed }
            | "degrade" -> Ok { acc with ad_policy = Degrade }
            | _ -> Error (Printf.sprintf "admission: unknown policy %S (block|shed|degrade)" v))
          | "queue" ->
            let* n = pos_int_field ~what:"admission queue bound" v in
            Ok { acc with ad_queue = n }
          | "max-ready" ->
            let* n = pos_int_field ~what:"max-ready bound" v in
            Ok { acc with ad_max_ready = n }
          | "timeout" ->
            let* ns = duration_ns_of_string v in
            Ok { acc with ad_timeout_ns = ns }
          | _ -> Error (Printf.sprintf "admission: unknown key %S" key)
        in
        go acc rest)
  in
  let clauses = String.split_on_char ':' (String.trim s) |> List.filter (( <> ) "") in
  go default_admission clauses

(* "wifi_tx*3+range_detection" -> [("wifi_tx",3); ("range_detection",1)] *)
let apps_of_string s =
  let parse_one part =
    match String.index_opt part '*' with
    | None -> if part = "" then Error "tenant: empty app name" else Ok (part, 1)
    | Some i ->
      let name = String.sub part 0 i
      and w = String.sub part (i + 1) (String.length part - i - 1) in
      let* w = pos_int_field ~what:(Printf.sprintf "weight of app %S" name) w in
      if name = "" then Error "tenant: empty app name" else Ok (name, w)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* one = parse_one p in
      go (one :: acc) rest
  in
  match String.split_on_char '+' s with
  | [] | [ "" ] -> Error "tenant: empty app mix"
  | parts -> go [] parts

let tenant_of_clause clause =
  match String.split_on_char ':' (String.trim clause) with
  | [] | [ "" ] -> Error "tenants: empty clause"
  | name :: fields ->
    if name = "" || String.contains name '=' then
      Error (Printf.sprintf "tenants: clause %S must start with a tenant name" clause)
    else
      let init =
        {
          tn_name = name;
          tn_apps = [];
          tn_rate_per_ms = 0.0;
          tn_priority = 0;
          tn_slo_ms = 10.0;
          tn_seed = None;
        }
      in
      let rec go acc = function
        | [] ->
          if acc.tn_apps = [] then
            Error (Printf.sprintf "tenant %s: missing apps=..." name)
          else if acc.tn_rate_per_ms <= 0.0 then
            Error (Printf.sprintf "tenant %s: missing rate=..." name)
          else Ok acc
        | f :: rest -> (
          match String.index_opt f '=' with
          | None -> Error (Printf.sprintf "tenant %s: field %S is not key=value" name f)
          | Some i ->
            let key = String.sub f 0 i
            and v = String.sub f (i + 1) (String.length f - i - 1) in
            let* acc =
              match key with
              | "apps" ->
                let* apps = apps_of_string v in
                Ok { acc with tn_apps = apps }
              | "rate" -> (
                match float_of_string_opt v with
                | Some r when r > 0.0 -> Ok { acc with tn_rate_per_ms = r }
                | _ -> Error (Printf.sprintf "tenant %s: bad rate %S" name v))
              | "prio" -> (
                match int_of_string_opt v with
                | Some p -> Ok { acc with tn_priority = p }
                | None -> Error (Printf.sprintf "tenant %s: bad prio %S" name v))
              | "slo" ->
                let* ns = duration_ns_of_string v in
                Ok { acc with tn_slo_ms = float_of_int ns /. 1e6 }
              | "seed" -> (
                match Int64.of_string_opt v with
                | Some s -> Ok { acc with tn_seed = Some s }
                | None -> Error (Printf.sprintf "tenant %s: bad seed %S" name v))
              | _ -> Error (Printf.sprintf "tenant %s: unknown key %S" name key)
            in
            go acc rest)
      in
      go init fields

let tenants_of_spec s =
  let clauses = String.split_on_char ';' s |> List.map String.trim |> List.filter (( <> ) "") in
  if clauses = [] then Error "tenants: empty spec"
  else
    let rec go acc = function
      | [] ->
        let ts = List.rev acc in
        let names = List.map (fun t -> t.tn_name) ts in
        if List.length (List.sort_uniq compare names) <> List.length names then
          Error "tenants: duplicate tenant name"
        else Ok ts
      | c :: rest ->
        let* t = tenant_of_clause c in
        go (t :: acc) rest
    in
    go [] clauses

(* ------------------------------------------------------------------ *)
(* Outcome                                                             *)
(* ------------------------------------------------------------------ *)

type disposition = Pending | Completed | Rejected | Timed_out

let disposition_name = function
  | Pending -> "pending"
  | Completed -> "completed"
  | Rejected -> "rejected"
  | Timed_out -> "timed-out"

type tenant_report = {
  tr_name : string;
  tr_priority : int;
  tr_offered : int;
  tr_admitted : int;
  tr_completed : int;
  tr_shed : int;
  tr_timed_out : int;
  tr_slo_ms : float;
  tr_slo_miss : int;
  tr_p95_ms : float;
  tr_throughput_per_ms : float;
  tr_digest : string;
  tr_verdict : string;
}

type outcome = {
  oc_clock_ns : int;
  oc_drained : bool;
  oc_checkpoint : string option;
  oc_tenants : tenant_report list;
  oc_dispositions : disposition array;
}

type spec = {
  sp_config : Config.t;
  sp_policy : Scheduler.policy;
  sp_seed : int64;
  sp_jitter : float;
  sp_duration_ms : float;
  sp_admission : admission;
  sp_tenants : tenant_spec list;
}

(* ------------------------------------------------------------------ *)
(* Arrival materialization                                             *)
(* ------------------------------------------------------------------ *)

(* The whole open-loop schedule is a pure function of the tenant seeds:
   each tenant draws Poisson inter-arrivals and weighted app picks from
   its own derived stream, so a restored run regenerates the identical
   schedule and only the cursors travel in the checkpoint. *)

type arrival = { ar_t : int; ar_tenant : int; ar_seq : int; ar_spec : App_spec.t }

let tenant_seed ~seed idx tn =
  match tn.tn_seed with Some s -> s | None -> Prng.derive_seed ~seed ~index:idx

let materialize sp =
  let duration_ns = int_of_float (sp.sp_duration_ms *. 1e6) in
  let* per_tenant =
    let rec go idx acc = function
      | [] -> Ok (List.rev acc)
      | tn :: rest ->
        let* specs =
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | (name, w) :: tl -> (
              match Reference_apps.by_name name with
              | Ok a -> resolve (List.init w (fun _ -> a) @ acc) tl
              | Error e -> Error (Printf.sprintf "tenant %s: %s" tn.tn_name e))
          in
          resolve [] tn.tn_apps
        in
        let specs = Array.of_list specs in
        let prng = Prng.create ~seed:(tenant_seed ~seed:sp.sp_seed idx tn) in
        let mean_ns = 1e6 /. tn.tn_rate_per_ms in
        let rec gen t seq acc =
          let dt = max 1 (int_of_float (Float.round (Prng.exponential prng ~mean:mean_ns))) in
          let t = t + dt in
          if t >= duration_ns then List.rev acc
          else
            let a =
              { ar_t = t; ar_tenant = idx; ar_seq = seq;
                ar_spec = specs.(Prng.int prng (Array.length specs)) }
            in
            gen t (seq + 1) (a :: acc)
        in
        go (idx + 1) (gen 0 0 [] :: acc) rest
    in
    go 0 [] sp.sp_tenants
  in
  let all =
    List.concat per_tenant
    |> List.sort (fun a b -> compare (a.ar_t, a.ar_tenant, a.ar_seq) (b.ar_t, b.ar_tenant, b.ar_seq))
  in
  Ok (duration_ns, Array.of_list all)

let workload_of ~duration_ns (arrivals : arrival array) =
  let counts = Hashtbl.create 8 in
  let items =
    Array.to_list arrivals
    |> List.map (fun a ->
           let name = a.ar_spec.App_spec.app_name in
           let n = Option.value ~default:0 (Hashtbl.find_opt counts name) in
           Hashtbl.replace counts name (n + 1);
           { Workload.spec = a.ar_spec; arrival_ns = a.ar_t; instance = n })
  in
  { Workload.items; window_ns = duration_ns }

let materialize_debug sp =
  match materialize sp with
  | Error e -> failwith e
  | Ok (_, arrivals) ->
    Array.to_list arrivals
    |> List.map (fun a -> (a.ar_t, a.ar_tenant, a.ar_seq, a.ar_spec.App_spec.app_name))

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let store_digest (store : Store.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_bytes buf (Store.get_raw store name);
      Buffer.add_char buf '\000')
    (Store.names store);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let chain_digest prev ~inst_id ~digest =
  Digest.to_hex (Digest.string (Printf.sprintf "%s|%d|%s" prev inst_id digest))

(* Static-spec fingerprint: a restore must replay against the same
   platform, policy, seeds, tenants and admission settings. *)
let fingerprint sp =
  let b = Buffer.create 256 in
  Buffer.add_string b sp.sp_config.Config.host.Host.name;
  List.iter
    (fun (p : Config.placement) ->
      Buffer.add_string b p.Config.pe.Pe.label;
      Buffer.add_char b ';')
    sp.sp_config.Config.placements;
  Buffer.add_string b sp.sp_policy.Scheduler.name;
  Buffer.add_string b (Int64.to_string sp.sp_seed);
  Buffer.add_string b (Printf.sprintf "|%.9g|%.9g|" sp.sp_jitter sp.sp_duration_ms);
  Buffer.add_string b
    (Printf.sprintf "%s:%d:%d:%d|" (overload_name sp.sp_admission.ad_policy)
       sp.sp_admission.ad_queue sp.sp_admission.ad_max_ready sp.sp_admission.ad_timeout_ns);
  List.iteri
    (fun i tn ->
      Buffer.add_string b
        (Printf.sprintf "%s:%s:%.9g:%d:%.9g:%Ld|" tn.tn_name
           (String.concat "+" (List.map (fun (n, w) -> Printf.sprintf "%s*%d" n w) tn.tn_apps))
           tn.tn_rate_per_ms tn.tn_priority tn.tn_slo_ms
           (tenant_seed ~seed:sp.sp_seed i tn)))
    sp.sp_tenants;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

(* Internal per-instance state; only the final four survive a drain. *)
type disp = D_pending | D_queued | D_admitted | D_completed | D_shed | D_timed_out

type tstate = {
  ts_spec : tenant_spec;
  ts_slo_ns : int;
  mutable ts_sched : int array;  (* instance ids in tenant arrival order *)
  mutable ts_cursor : int;
  mutable ts_queue : int list;  (* admission queue, head = oldest *)
  mutable ts_offered : int;
  mutable ts_admitted : int;
  mutable ts_completed : int;
  mutable ts_shed : int;
  mutable ts_timed_out : int;
  mutable ts_slo_miss : int;
  mutable ts_latencies : int list;  (* newest first *)
  mutable ts_digest : string;
}

type stop_reason = Running | Finished | Drained

(* ------------------------------------------------------------------ *)
(* Checkpoint file (version 1)                                         *)
(* ------------------------------------------------------------------ *)

let checkpoint_version = 1

let dispositions_string dispo =
  String.init (Array.length dispo) (fun i ->
      match dispo.(i) with
      | D_pending -> 'P'
      | D_completed -> 'C'
      | D_shed -> 'S'
      | D_timed_out -> 'T'
      | D_queued | D_admitted -> 'X' (* impossible at a quiescent instant *))

let checkpoint_json ~fp ~clock ~prng ~(handlers : Virtual_engine.handler_snapshot array)
    ~(states : tstate array) ~dispo =
  let s0, s1, s2, s3 = prng in
  Json.obj
    [
      ("version", Json.int checkpoint_version);
      ("fingerprint", Json.str fp);
      ("clock_ns", Json.int clock);
      ( "prng",
        Json.list (List.map (fun x -> Json.str (Int64.to_string x)) [ s0; s1; s2; s3 ]) );
      ( "handlers",
        Json.list
          (Array.to_list handlers
          |> List.map (fun (h : Virtual_engine.handler_snapshot) ->
                 Json.obj
                   [
                     ("busy_until", Json.int h.Virtual_engine.hs_busy_until);
                     ("busy_ns", Json.int h.Virtual_engine.hs_busy_ns);
                     ("tasks_run", Json.int h.Virtual_engine.hs_tasks_run);
                   ])) );
      ( "tenants",
        Json.list
          (Array.to_list states
          |> List.map (fun ts ->
                 Json.obj
                   [
                     ("name", Json.str ts.ts_spec.tn_name);
                     ("cursor", Json.int ts.ts_cursor);
                     ("offered", Json.int ts.ts_offered);
                     ("admitted", Json.int ts.ts_admitted);
                     ("completed", Json.int ts.ts_completed);
                     ("shed", Json.int ts.ts_shed);
                     ("timed_out", Json.int ts.ts_timed_out);
                     ("slo_miss", Json.int ts.ts_slo_miss);
                     ("latencies", Json.list (List.rev_map Json.int ts.ts_latencies));
                     ("digest", Json.str ts.ts_digest);
                   ])) );
      ("dispositions", Json.str (dispositions_string dispo));
    ]

let write_checkpoint ~path json =
  let tmp = path ^ ".tmp" in
  Json.to_file tmp json;
  Sys.rename tmp path

let mem_int key j = Result.bind (Json.member key j) Json.to_int
let mem_str key j = Result.bind (Json.member key j) Json.to_str
let mem_list key j = Result.bind (Json.member key j) Json.to_list

let load_checkpoint ~path ~fp ~(states : tstate array) ~dispo =
  let* j = Result.map_error Json.error_to_string (Json.of_file path) in
  let* v = mem_int "version" j in
  let* () =
    if v <> checkpoint_version then
      Error (Printf.sprintf "checkpoint %s: unsupported version %d (want %d)" path v
               checkpoint_version)
    else Ok ()
  in
  let* file_fp = mem_str "fingerprint" j in
  let* () =
    if file_fp <> fp then
      Error (Printf.sprintf "checkpoint %s: spec fingerprint mismatch (run the same \
                             --tenants/--admission/seed/platform as the checkpointing server)" path)
    else Ok ()
  in
  let* clock = mem_int "clock_ns" j in
  let* prng =
    let* l = mem_list "prng" j in
    match l with
    | [ a; b; c; d ] ->
      let word x =
        let* s = Json.to_str x in
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "checkpoint %s: bad prng word %S" path s)
      in
      let* a = word a in
      let* b = word b in
      let* c = word c in
      let* d = word d in
      Ok (a, b, c, d)
    | _ -> Error (Printf.sprintf "checkpoint %s: prng must have 4 words" path)
  in
  let* handlers =
    let* l = mem_list "handlers" j in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | h :: rest ->
        let* bu = mem_int "busy_until" h in
        let* bn = mem_int "busy_ns" h in
        let* tr = mem_int "tasks_run" h in
        go
          ({ Virtual_engine.hs_busy_until = bu; hs_busy_ns = bn; hs_tasks_run = tr } :: acc)
          rest
    in
    go [] l
  in
  let* tenants = mem_list "tenants" j in
  let* () =
    if List.length tenants <> Array.length states then
      Error (Printf.sprintf "checkpoint %s: tenant count mismatch" path)
    else Ok ()
  in
  let* () =
    let rec go i = function
      | [] -> Ok ()
      | t :: rest ->
        let ts = states.(i) in
        let* name = mem_str "name" t in
        if name <> ts.ts_spec.tn_name then
          Error (Printf.sprintf "checkpoint %s: tenant %d is %S, spec says %S" path i name
                   ts.ts_spec.tn_name)
        else
          let* cursor = mem_int "cursor" t in
          let* offered = mem_int "offered" t in
          let* admitted = mem_int "admitted" t in
          let* completed = mem_int "completed" t in
          let* shed = mem_int "shed" t in
          let* timed_out = mem_int "timed_out" t in
          let* slo_miss = mem_int "slo_miss" t in
          let* digest = mem_str "digest" t in
          let* lats =
            let* l = mem_list "latencies" t in
            let rec conv acc = function
              | [] -> Ok acc (* chronological list folded into newest-first *)
              | x :: rest ->
                let* v = Json.to_int x in
                conv (v :: acc) rest
            in
            conv [] l
          in
          if cursor < 0 || cursor > Array.length ts.ts_sched then
            Error (Printf.sprintf "checkpoint %s: tenant %S cursor out of range" path name)
          else begin
            ts.ts_cursor <- cursor;
            ts.ts_offered <- offered;
            ts.ts_admitted <- admitted;
            ts.ts_completed <- completed;
            ts.ts_shed <- shed;
            ts.ts_timed_out <- timed_out;
            ts.ts_slo_miss <- slo_miss;
            ts.ts_latencies <- lats;
            ts.ts_digest <- digest;
            go (i + 1) rest
          end
    in
    go 0 tenants
  in
  let* ds = mem_str "dispositions" j in
  let* () =
    if String.length ds <> Array.length dispo then
      Error (Printf.sprintf "checkpoint %s: disposition count mismatch" path)
    else Ok ()
  in
  let* () =
    let err = ref None in
    String.iteri
      (fun i c ->
        match c with
        | 'P' -> dispo.(i) <- D_pending
        | 'C' -> dispo.(i) <- D_completed
        | 'S' -> dispo.(i) <- D_shed
        | 'T' -> dispo.(i) <- D_timed_out
        | c ->
          if !err = None then
            err := Some (Printf.sprintf "checkpoint %s: bad disposition %C" path c))
      ds;
    match !err with Some e -> Error e | None -> Ok ()
  in
  let* () =
    if not (String.contains ds 'P') then
      Error (Printf.sprintf "checkpoint %s: contains no pending work (the run it was taken \
                             from already finished)" path)
    else Ok ()
  in
  Ok { Virtual_engine.rs_clock = clock; rs_prng = prng; rs_handlers = handlers }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let p95_ns lats =
  match lats with
  | [] -> 0
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    let idx = max 0 (int_of_float (Float.ceil (0.95 *. float_of_int n)) - 1) in
    a.(idx)

let tenant_reports ~clock_ns (states : tstate array) =
  let reports =
    Array.to_list states
    |> List.map (fun ts ->
           let verdict =
             match (ts.ts_shed > 0, ts.ts_timed_out > 0) with
             | false, false -> "ok"
             | true, false -> "shed"
             | false, true -> "timeout"
             | true, true -> "shed+timeout"
           in
           {
             tr_name = ts.ts_spec.tn_name;
             tr_priority = ts.ts_spec.tn_priority;
             tr_offered = ts.ts_offered;
             tr_admitted = ts.ts_admitted;
             tr_completed = ts.ts_completed;
             tr_shed = ts.ts_shed;
             tr_timed_out = ts.ts_timed_out;
             tr_slo_ms = ts.ts_spec.tn_slo_ms;
             tr_slo_miss = ts.ts_slo_miss;
             tr_p95_ms = float_of_int (p95_ns ts.ts_latencies) /. 1e6;
             tr_throughput_per_ms =
               (if clock_ns <= 0 then 0.0
                else float_of_int ts.ts_completed /. (float_of_int clock_ns /. 1e6));
             tr_digest = ts.ts_digest;
             tr_verdict = verdict;
           })
  in
  List.stable_sort
    (fun a b -> compare (-a.tr_priority, a.tr_name) (-b.tr_priority, b.tr_name))
    reports

let render_report (oc : outcome) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "serve report: clock %.3f ms, %d tenants%s\n"
       (float_of_int oc.oc_clock_ns /. 1e6)
       (List.length oc.oc_tenants)
       (if oc.oc_drained then " (drained)" else ""));
  Buffer.add_string b
    "tenant           prio  offered  admitted  completed  shed  timeout  thr/ms  p95_ms  slo_ms  slo_miss  verdict       digest\n";
  List.iter
    (fun tr ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %4d  %7d  %8d  %9d  %4d  %7d  %6.3f  %6.3f  %6.3f  %8d  %-12s  %s\n"
           tr.tr_name tr.tr_priority tr.tr_offered tr.tr_admitted tr.tr_completed tr.tr_shed
           tr.tr_timed_out tr.tr_throughput_per_ms tr.tr_p95_ms tr.tr_slo_ms tr.tr_slo_miss
           tr.tr_verdict tr.tr_digest))
    oc.oc_tenants;
  let tot f = List.fold_left (fun acc tr -> acc + f tr) 0 oc.oc_tenants in
  Buffer.add_string b
    (Printf.sprintf "total: offered %d, admitted %d, completed %d, shed %d, timed-out %d\n"
       (tot (fun t -> t.tr_offered))
       (tot (fun t -> t.tr_admitted))
       (tot (fun t -> t.tr_completed))
       (tot (fun t -> t.tr_shed))
       (tot (fun t -> t.tr_timed_out)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The service                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(obs = Obs.disabled) ?(drain = fun ~now_ns:_ -> false) ?checkpoint ?restore sp =
  let* () =
    if sp.sp_duration_ms <= 0.0 then Error "serve: duration must be positive" else Ok ()
  in
  let* duration_ns, arrivals = materialize sp in
  let n = Array.length arrivals in
  let fp = fingerprint sp in
  (* instance id -> (tenant, seq, arrival time) *)
  let meta = arrivals in
  let states =
    Array.of_list
      (List.map
         (fun tn ->
           {
             ts_spec = tn;
             ts_slo_ns = int_of_float (tn.tn_slo_ms *. 1e6);
             ts_sched = [||];
             ts_cursor = 0;
             ts_queue = [];
             ts_offered = 0;
             ts_admitted = 0;
             ts_completed = 0;
             ts_shed = 0;
             ts_timed_out = 0;
             ts_slo_miss = 0;
             ts_latencies = [];
             ts_digest = "";
           })
         sp.sp_tenants)
  in
  (* per-tenant schedules: instance ids in tenant arrival order *)
  Array.iteri
    (fun ti ts ->
      let ids = ref [] in
      Array.iteri (fun i a -> if a.ar_tenant = ti then ids := i :: !ids) meta;
      ts.ts_sched <- Array.of_list (List.rev !ids))
    states;
  let dispo = Array.make n D_pending in
  let* resume =
    match restore with
    | None -> Ok None
    | Some path -> Result.map Option.some (load_checkpoint ~path ~fp ~states ~dispo)
  in
  let adm = sp.sp_admission in
  (* tenants in admission-pull order: priority descending, ties by
     declaration order *)
  let pull_order =
    let idx = Array.init (Array.length states) Fun.id in
    Array.stable_sort
      (fun a b -> compare states.(b).ts_spec.tn_priority states.(a).ts_spec.tn_priority)
      idx;
    idx
  in
  let active = ref [] in
  let final_now = ref 0 in
  let stop_reason = ref Running in
  let workload = workload_of ~duration_ns arrivals in
  let service (instances : Task.instance array) =
    let no_running (inst : Task.instance) =
      Array.for_all (fun (t : Task.t) -> t.Task.status <> Task.Running) inst.Task.tasks
    in
    let record_completion i =
      let inst = instances.(i) in
      let a = meta.(i) in
      let ts = states.(a.ar_tenant) in
      let lat = inst.Task.completed_at - a.ar_t in
      ts.ts_completed <- ts.ts_completed + 1;
      ts.ts_latencies <- lat :: ts.ts_latencies;
      if lat > ts.ts_slo_ns then ts.ts_slo_miss <- ts.ts_slo_miss + 1;
      ts.ts_digest <-
        chain_digest ts.ts_digest ~inst_id:i ~digest:(store_digest inst.Task.store);
      dispo.(i) <- D_completed
    in
    let shed_instance ~now ~victim_tenant i =
      let ts = states.(victim_tenant) in
      ts.ts_shed <- ts.ts_shed + 1;
      dispo.(i) <- D_shed;
      if Obs.enabled obs then
        Obs.on_tenant_shed obs ~now ~tenant:ts.ts_spec.tn_name ~instance:i
          ~queue_depth:(List.length ts.ts_queue)
    in
    let time_out ~now i =
      let a = meta.(i) in
      let ts = states.(a.ar_tenant) in
      ts.ts_timed_out <- ts.ts_timed_out + 1;
      dispo.(i) <- D_timed_out;
      if Obs.enabled obs then
        Obs.on_instance_timed_out obs ~now ~tenant:ts.ts_spec.tn_name ~instance:i
          ~age_ns:(now - a.ar_t)
    in
    (* remove the newest queued instance of [ti] *)
    let pop_back ts =
      match List.rev ts.ts_queue with
      | [] -> None
      | last :: rev_rest ->
        ts.ts_queue <- List.rev rev_rest;
        Some last
    in
    let sv_tick (ops : Core.service_ops) ~now =
      (* 1. harvest completions; run the watchdog over admitted work *)
      active :=
        List.filter
          (fun i ->
            let inst = instances.(i) in
            if inst.Task.completed_at >= 0 then begin
              record_completion i;
              false
            end
            else if
              adm.ad_timeout_ns > 0
              && now >= meta.(i).ar_t + adm.ad_timeout_ns
              && no_running inst
            then begin
              ops.Core.so_cancel inst;
              time_out ~now i;
              false
            end
            else true)
          !active;
      (* 2. consume due arrivals through admission control *)
      Array.iteri
        (fun ti ts ->
          let continue_ = ref true in
          while !continue_ && ts.ts_cursor < Array.length ts.ts_sched do
            let i = ts.ts_sched.(ts.ts_cursor) in
            if meta.(i).ar_t > now then continue_ := false
            else begin
              let room = List.length ts.ts_queue < adm.ad_queue in
              match adm.ad_policy with
              | Block ->
                if room then begin
                  ts.ts_cursor <- ts.ts_cursor + 1;
                  ts.ts_offered <- ts.ts_offered + 1;
                  ts.ts_queue <- ts.ts_queue @ [ i ];
                  dispo.(i) <- D_queued
                end
                else continue_ := false (* stream stalls until the queue drains *)
              | Shed ->
                ts.ts_cursor <- ts.ts_cursor + 1;
                ts.ts_offered <- ts.ts_offered + 1;
                if room then begin
                  ts.ts_queue <- ts.ts_queue @ [ i ];
                  dispo.(i) <- D_queued
                end
                else shed_instance ~now ~victim_tenant:ti i
              | Degrade ->
                ts.ts_cursor <- ts.ts_cursor + 1;
                ts.ts_offered <- ts.ts_offered + 1;
                if room then begin
                  ts.ts_queue <- ts.ts_queue @ [ i ];
                  dispo.(i) <- D_queued
                end
                else begin
                  (* displace the newest queued instance of the
                     lowest-priority tenant strictly below ours (first
                     declared wins a priority tie) *)
                  let victim = ref None in
                  Array.iteri
                    (fun vi vts ->
                      if
                        vts.ts_spec.tn_priority < ts.ts_spec.tn_priority
                        && vts.ts_queue <> []
                      then
                        match !victim with
                        | Some best
                          when states.(best).ts_spec.tn_priority
                               <= vts.ts_spec.tn_priority -> ()
                        | _ -> victim := Some vi)
                    states;
                  match !victim with
                  | Some vti ->
                    (match pop_back states.(vti) with
                    | Some v -> shed_instance ~now ~victim_tenant:vti v
                    | None -> ());
                    ts.ts_queue <- ts.ts_queue @ [ i ];
                    dispo.(i) <- D_queued
                  | None -> shed_instance ~now ~victim_tenant:ti i
                end
            end
          done)
        states;
      (* 3. pull from admission queues, priority first, while the ready
         list has room *)
      let made = ref 0 in
      let continue_ = ref true in
      while !continue_ && ops.Core.so_ready_live () < adm.ad_max_ready do
        let picked = ref None in
        Array.iter
          (fun ti -> if !picked = None && states.(ti).ts_queue <> [] then picked := Some ti)
          pull_order;
        match !picked with
        | None -> continue_ := false
        | Some ti ->
          let ts = states.(ti) in
          let i = List.hd ts.ts_queue in
          ts.ts_queue <- List.tl ts.ts_queue;
          if adm.ad_timeout_ns > 0 && now >= meta.(i).ar_t + adm.ad_timeout_ns then
            time_out ~now i
          else begin
            made := !made + ops.Core.so_inject instances.(i);
            ts.ts_admitted <- ts.ts_admitted + 1;
            dispo.(i) <- D_admitted;
            active := !active @ [ i ];
            if Obs.enabled obs then
              Obs.on_tenant_admitted obs ~now ~tenant:ts.ts_spec.tn_name ~instance:i
                ~queue_depth:(List.length ts.ts_queue)
          end
      done;
      !made
    in
    let sv_next ~now =
      let best = ref None in
      let add t = match !best with Some b when b <= t -> () | _ -> best := Some t in
      Array.iter
        (fun ts ->
          if ts.ts_cursor < Array.length ts.ts_sched then begin
            let t = meta.(ts.ts_sched.(ts.ts_cursor)).ar_t in
            (* a stalled (Block) stream head is in the past: admission
               room only opens on completions, which wake the WM *)
            if t > now then add t
          end)
        states;
      if adm.ad_timeout_ns > 0 then
        List.iter
          (fun i ->
            let e = meta.(i).ar_t + adm.ad_timeout_ns in
            if e > now then add e)
          !active;
      !best
    in
    let sv_finished (ops : Core.service_ops) ~now =
      let queues_empty = Array.for_all (fun ts -> ts.ts_queue = []) states in
      let idle = queues_empty && !active = [] in
      let all_consumed =
        Array.for_all (fun ts -> ts.ts_cursor >= Array.length ts.ts_sched) states
      in
      if idle && all_consumed then begin
        final_now := now;
        stop_reason := Finished;
        true
      end
      else if
        idle && drain ~now_ns:now
        && ops.Core.so_ready_live () = 0
        && ops.Core.so_inflight () = 0
        && ops.Core.so_retry_empty ()
      then begin
        final_now := now;
        stop_reason := Drained;
        true
      end
      else false
    in
    { Core.sv_tick; sv_next; sv_finished; sv_resume = false }
  in
  let params =
    { Virtual_engine.seed = sp.sp_seed; jitter = sp.sp_jitter; reservation_depth = 0 }
  in
  match
    Virtual_engine.run_service ~params ~obs ?resume ~config:sp.sp_config ~workload
      ~policy:sp.sp_policy ~service ()
  with
  | exception Invalid_argument msg -> Error msg
  | sr ->
    let clock = !final_now in
    let drained = !stop_reason = Drained in
    let written =
      match (drained, checkpoint) with
      | true, Some path ->
        let json =
          checkpoint_json ~fp ~clock ~prng:sr.Virtual_engine.sr_prng
            ~handlers:sr.Virtual_engine.sr_handlers ~states ~dispo
        in
        write_checkpoint ~path json;
        let done_ =
          Array.fold_left
            (fun acc -> function D_completed | D_shed | D_timed_out -> acc + 1 | _ -> acc)
            0 dispo
        in
        if Obs.enabled obs then
          Obs.on_checkpoint_written obs ~now:clock ~path ~instances_done:done_;
        Some path
      | _ -> None
    in
    let dispositions =
      Array.map
        (function
          | D_pending -> Pending
          | D_completed -> Completed
          | D_shed -> Rejected
          | D_timed_out -> Timed_out
          | D_queued | D_admitted ->
            (* unreachable: termination implies empty queues and no
               outstanding admitted instance *)
            Pending)
        dispo
    in
    Ok
      {
        oc_clock_ns = clock;
        oc_drained = drained;
        oc_checkpoint = written;
        oc_tenants = tenant_reports ~clock_ns:clock states;
        oc_dispositions = dispositions;
      }
