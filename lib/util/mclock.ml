external now_ns : unit -> int = "dssoc_mclock_now_ns" [@@noalloc]
