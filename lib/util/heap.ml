type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* FIFO tie-break: equal keys order by monotonically increasing seq. *)
let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

(* Placeholder occupying every slot beyond [size] so popped values
   cannot stay reachable through the backing array.  [entry] is a
   boxed record, so the array is a pointer array and the cast never
   observes the payload — placeholder slots are never read. *)
let dummy_entry : Obj.t = Obj.repr { value = (); seq = -1 }

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap (Obj.magic dummy_entry) in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- Obj.magic dummy_entry;
      sift_down t 0
    end
    else t.data.(0) <- Obj.magic dummy_entry;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let invariants_ok t =
  let cap = Array.length t.data in
  let ok = ref (t.size >= 0 && t.size <= cap) in
  (* Heap order with the FIFO tie-break: every child >= its parent. *)
  for i = 1 to t.size - 1 do
    if entry_cmp t t.data.((i - 1) / 2) t.data.(i) > 0 then ok := false
  done;
  (* Sequence numbers are unique and below the next to be issued. *)
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    if e.seq < 0 || e.seq >= t.next_seq then ok := false;
    for j = i + 1 to t.size - 1 do
      if t.data.(j).seq = e.seq then ok := false
    done
  done;
  (* Vacated slots hold the placeholder, never a popped value. *)
  for i = t.size to cap - 1 do
    if not (Obj.repr t.data.(i) == dummy_entry) then ok := false
  done;
  !ok

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i).value :: acc) in
  go (t.size - 1) []

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some v -> go (v :: acc) in
  go []
