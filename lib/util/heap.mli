(** Binary min-heap keyed by a user-supplied comparison.

    The discrete-event engine keeps its future event list in this heap;
    pops must be deterministic, so ties are broken by insertion order
    (FIFO among equal keys). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp]; the minimum element pops first.  Among
    elements that compare equal, the earliest-pushed pops first. *)

val length : 'a t -> int
(** Live element count; samples the event-heap-depth gauge in the
    virtual engine's observability backend. *)

val is_empty : 'a t -> bool

val invariants_ok : 'a t -> bool
(** O(n²) structural check, for tests: heap order holds under the
    FIFO tie-break, live sequence numbers are unique and below the
    issue counter, and every vacated backing-array slot holds the
    placeholder (no popped value kept reachable). *)

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order of the backing array). *)

val drain : 'a t -> 'a list
(** Pop everything; result is in ascending key order. *)
