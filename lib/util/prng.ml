type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand the user seed into the four
   xoshiro words; a single 64-bit seed would otherwise leave most of the
   256-bit state zero, which xoshiro forbids. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let sm = ref seed in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = (t.s0, t.s1, t.s2, t.s3)

let of_state (s0, s1, s2, s3) =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Prng.of_state: all-zero state";
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)

(* Pure (seed, index) -> seed mixing for embarrassingly parallel
   sweeps: each grid point derives its own stream from the campaign
   seed and its point index, so results cannot depend on which worker
   evaluates the point or in what order. *)
let derive_seed ~seed ~index =
  if index < 0 then invalid_arg "Prng.derive_seed: negative index";
  let sm = ref (Int64.logxor seed (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)) in
  let a = splitmix64 sm in
  let b = splitmix64 sm in
  Int64.logxor a (rotl b 17)

let derive ~seed ~index = create ~seed:(derive_seed ~seed ~index)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
