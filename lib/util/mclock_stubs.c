/* CLOCK_MONOTONIC as integer nanoseconds.

   OCaml's Unix library (as of 5.1) only exposes the float-seconds
   gettimeofday, which is neither monotonic nor precise enough to
   timestamp nanosecond task records at large uptimes.  tv_sec fits
   ~292 years of nanoseconds in the 63-bit OCaml int, so the product
   cannot overflow in practice. */

#include <time.h>
#include <caml/mlvalues.h>

value dssoc_mclock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
