(** Deterministic pseudo-random number generation.

    All randomness in the emulator flows through explicitly seeded
    [Prng.t] states so that every workload trace, scheduling decision
    and benchmark is reproducible bit-for-bit across runs.  The
    implementation is xoshiro256** seeded through SplitMix64, the
    combination recommended by the xoshiro authors. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator from a 64-bit seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val state : t -> int64 * int64 * int64 * int64
(** The current 256-bit xoshiro state, for checkpointing.  Restoring
    it with {!of_state} resumes the stream exactly where [t] left
    off. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** Rebuild a generator from a {!state} snapshot.
    @raise Invalid_argument on the all-zero state (xoshiro forbids it). *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams
    of the parent and child are statistically independent. *)

val derive_seed : seed:int64 -> index:int -> int64
(** [derive_seed ~seed ~index] is a pure function of its arguments: a
    well-mixed child seed for the [index]-th member of a family rooted
    at [seed].  Unlike {!split} it involves no mutable state, so a
    parallel sweep can seed every grid point independently of worker
    count and evaluation order.
    @raise Invalid_argument on a negative index. *)

val derive : seed:int64 -> index:int -> t
(** [create ~seed:(derive_seed ~seed ~index)]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed variate with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal variate via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty. *)
