(** Monotonic wall clock in integer nanoseconds.

    The native engine timestamps task records against this clock.
    [CLOCK_MONOTONIC] is immune to NTP adjustments and wall-clock
    jumps, and returning integer nanoseconds directly (no float
    seconds round-trip, unlike [Unix.gettimeofday]) keeps nanosecond
    precision at any uptime.  The OCaml 5.1 [Unix] library exposes no
    [clock_gettime], so this is a one-line C stub. *)

val now_ns : unit -> int
(** Nanoseconds on the system monotonic clock.  The origin is
    unspecified (typically boot time); only differences are
    meaningful. *)
