(** Per-instance variable store with the memory semantics of Listing 1.

    Every application variable is declared with [bytes] of inline
    storage, an [is_ptr] flag, and — for pointers — a heap block of
    [ptr_alloc_bytes] allocated at instance initialisation and
    optionally pre-filled from a little-endian byte list ([val] in the
    JSON).  Kernels exchange data exclusively through the store, which
    is what lets the resource manager compute accelerator DMA sizes
    from the same description.

    Typed views decode the raw bytes: 32-bit little-endian integers,
    IEEE-754 single-precision floats, interleaved complex float32
    pairs (8 bytes per sample, as in Listing 1 where a 256-sample
    buffer is 2048 bytes), and bit arrays stored one byte per bit. *)

type var_spec = {
  bytes : int;  (** inline storage for the variable itself *)
  is_ptr : bool;
  ptr_alloc_bytes : int;  (** heap block size when [is_ptr] *)
  init : int list;  (** initial bytes (little-endian), may be shorter than the target *)
}

type t

val create : (string * var_spec) list -> t
(** Allocate and initialise all variables.
    @raise Invalid_argument on duplicate names or negative sizes. *)

val names : t -> string list
val spec : t -> string -> var_spec
(** @raise Not_found for unknown variables — kernel argument lists are
    validated at parse time, so a miss here is a programming error. *)

val payload_bytes : t -> string -> int
(** Size of the data a kernel argument transfers: [ptr_alloc_bytes]
    for pointers, [bytes] for scalars.  Used for DMA pricing. *)

(** {1 Scalar views} *)

val get_i32 : t -> string -> int
val set_i32 : t -> string -> int -> unit
val get_f32 : t -> string -> float
val set_f32 : t -> string -> float -> unit

(** {1 Block views (pointer variables)} *)

val get_f32_array : t -> string -> float array
val set_f32_array : t -> string -> float array -> unit
(** @raise Invalid_argument if the array exceeds the block. *)

val get_i32_array : t -> string -> int array
(** The block as an array of 32-bit little-endian integers. *)

val set_i32_array : t -> string -> int array -> unit

val get_cbuf : t -> string -> Dssoc_dsp.Cbuf.t
(** Interpret the block as interleaved complex float32. *)

val set_cbuf : t -> string -> Dssoc_dsp.Cbuf.t -> unit

val get_cbuf_slice : t -> string -> off:int -> len:int -> Dssoc_dsp.Cbuf.t
(** [len] complex samples starting at sample [off] — used by kernels
    that own one pulse of a batched buffer, so a 256-pulse store is not
    decoded wholesale for every task.
    @raise Invalid_argument when the slice exceeds the block. *)

val set_cbuf_slice : t -> string -> off:int -> Dssoc_dsp.Cbuf.t -> unit

val get_bits : t -> string -> bool array
(** One byte per bit, nonzero = true; length = block size. *)

val set_bits : t -> string -> bool array -> unit

val get_raw : t -> string -> Bytes.t
(** The backing block itself (shared, mutable) — the accelerator DMA
    path copies out of / into this. *)

val copy : t -> t
(** Deep copy; instances of the same archetype never share storage. *)

val blit_from : t -> src:t -> unit
(** Overwrite every variable of the destination with the bytes of the
    same-named variable of [src].  Both stores must declare the same
    variables with the same block sizes — the intended use is copying
    state between instances of the same application archetype.
    @raise Invalid_argument when the layouts differ. *)
