module Json = Dssoc_json.Json

type platform_entry = {
  platform : string;
  runfunc : string;
  shared_object : string option;
  cost_us : float option;
}

type node = {
  node_name : string;
  arguments : string list;
  predecessors : string list;
  successors : string list;
  platforms : platform_entry list;
  kernel_class : string;
  size : int;
  bytes_in : int;
  bytes_out : int;
}

type t = {
  app_name : string;
  shared_object : string;
  variables : (string * Store.var_spec) list;
  nodes : node list;
}

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate t =
  let* () = if t.nodes = [] then err "application %S has no nodes" t.app_name else Ok () in
  let names = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if Hashtbl.mem names n.node_name then err "duplicate node %S" n.node_name
        else begin
          Hashtbl.add names n.node_name n;
          Ok ()
        end)
      (Ok ()) t.nodes
  in
  let var_names = List.map fst t.variables in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        let* () =
          List.fold_left
            (fun acc a ->
              let* () = acc in
              if List.mem a var_names then Ok ()
              else err "node %S references undeclared variable %S" n.node_name a)
            (Ok ()) n.arguments
        in
        let check_ref kind m =
          if Hashtbl.mem names m then Ok () else err "node %S lists unknown %s %S" n.node_name kind m
        in
        let* () =
          List.fold_left (fun acc m -> let* () = acc in check_ref "predecessor" m) (Ok ()) n.predecessors
        in
        let* () =
          List.fold_left (fun acc m -> let* () = acc in check_ref "successor" m) (Ok ()) n.successors
        in
        (* A self-loop would also trip the cycle check below, but the
           generic "dependency cycle" message doesn't name the culprit. *)
        let* () =
          if List.mem n.node_name n.predecessors || List.mem n.node_name n.successors then
            err "node %S depends on itself" n.node_name
          else Ok ()
        in
        if n.platforms = [] then err "node %S has no platform entries" n.node_name else Ok ())
      (Ok ()) t.nodes
  in
  (* Mutual consistency of the redundant predecessor/successor lists. *)
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            let pred = Hashtbl.find names p in
            if List.mem n.node_name pred.successors then Ok ()
            else err "node %S lists predecessor %S, which does not list it back" n.node_name p)
          (Ok ()) n.predecessors)
      (Ok ()) t.nodes
  in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        List.fold_left
          (fun acc s ->
            let* () = acc in
            let succ = Hashtbl.find names s in
            if List.mem n.node_name succ.predecessors then Ok ()
            else err "node %S lists successor %S, which does not list it back" n.node_name s)
          (Ok ()) n.successors)
      (Ok ()) t.nodes
  in
  (* Acyclicity via Kahn's algorithm. *)
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg n.node_name (List.length n.predecessors)) t.nodes;
  let queue = Queue.create () in
  List.iter (fun n -> if List.length n.predecessors = 0 then Queue.add n queue) t.nodes;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr visited;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add (Hashtbl.find names s) queue)
      n.successors
  done;
  if !visited <> List.length t.nodes then err "application %S has a dependency cycle" t.app_name
  else Ok t

let of_edges ~app_name ~shared_object ~variables ~nodes =
  let succs = Hashtbl.create 16 in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt succs p) in
          Hashtbl.replace succs p (prev @ [ n.node_name ]))
        n.predecessors)
    nodes;
  let nodes =
    List.map
      (fun n -> { n with successors = Option.value ~default:[] (Hashtbl.find_opt succs n.node_name) })
      nodes
  in
  match validate { app_name; shared_object; variables; nodes } with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "App_spec.of_edges: %s" msg)

let node t name =
  match List.find_opt (fun n -> n.node_name = name) t.nodes with
  | Some n -> n
  | None -> raise Not_found

let entry_nodes t = List.filter (fun n -> n.predecessors = []) t.nodes

let topological_order t =
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg n.node_name (List.length n.predecessors)) t.nodes;
  let out = ref [] in
  let rec loop remaining =
    match List.partition (fun n -> Hashtbl.find indeg n.node_name = 0) remaining with
    | [], [] -> ()
    | [], _ -> invalid_arg "App_spec.topological_order: cycle"
    | ready, rest ->
      List.iter
        (fun n ->
          out := n :: !out;
          Hashtbl.replace indeg n.node_name (-1);
          List.iter (fun s -> Hashtbl.replace indeg s (Hashtbl.find indeg s - 1)) n.successors)
        ready;
      loop rest
  in
  loop t.nodes;
  List.rev !out

let critical_path_length t =
  let depth = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let d =
        List.fold_left (fun acc p -> max acc (Hashtbl.find depth p)) 0 n.predecessors + 1
      in
      Hashtbl.replace depth n.node_name d)
    (topological_order t);
  Hashtbl.fold (fun _ d acc -> max d acc) depth 0

let task_count t = List.length t.nodes

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let var_spec_of_json name j : (Store.var_spec, string) result =
  let* bytes = Result.bind (Json.member "bytes" j) Json.to_int in
  let* is_ptr = Result.bind (Json.member "is_ptr" j) Json.to_bool in
  let* ptr_alloc_bytes = Result.bind (Json.member "ptr_alloc_bytes" j) Json.to_int in
  let* init_json = Result.bind (Json.member "val" j) Json.to_list in
  let* init =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        let* v = Json.to_int b in
        Ok (v :: acc))
      (Ok []) init_json
  in
  ignore name;
  Ok { Store.bytes; is_ptr; ptr_alloc_bytes; init = List.rev init }

let platform_of_json j =
  let* platform = Result.bind (Json.member "name" j) Json.to_str in
  let* runfunc = Result.bind (Json.member "runfunc" j) Json.to_str in
  let shared_object =
    match Json.member_opt "shared_object" j with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let cost_us =
    match Json.member_opt "cost_us" j with
    | Some v -> Result.to_option (Json.to_float v)
    | None -> None
  in
  Ok { platform; runfunc; shared_object; cost_us }

let string_list_of_json j =
  let* items = Json.to_list j in
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* s = Json.to_str item in
      Ok (acc @ [ s ]))
    (Ok []) items

let node_of_json name j =
  let* arguments = Result.bind (Json.member "arguments" j) string_list_of_json in
  let* predecessors = Result.bind (Json.member "predecessors" j) string_list_of_json in
  let* successors = Result.bind (Json.member "successors" j) string_list_of_json in
  let* platform_list = Result.bind (Json.member "platforms" j) Json.to_list in
  let* platforms =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* e = platform_of_json p in
        Ok (acc @ [ e ]))
      (Ok []) platform_list
  in
  let opt_int key default =
    match Json.member_opt key j with
    | Some v -> Result.value ~default (Json.to_int v)
    | None -> default
  in
  let kernel_class =
    match Json.member_opt "kernel" j with Some (Json.String s) -> s | _ -> "generic"
  in
  Ok
    {
      node_name = name;
      arguments;
      predecessors;
      successors;
      platforms;
      kernel_class;
      size = opt_int "size" 1;
      bytes_in = opt_int "bytes_in" 0;
      bytes_out = opt_int "bytes_out" 0;
    }

let of_json j =
  let* app_name = Result.bind (Json.member "AppName" j) Json.to_str in
  let* shared_object = Result.bind (Json.member "SharedObject" j) Json.to_str in
  let* vars_obj = Result.bind (Json.member "Variables" j) Json.to_obj in
  let* variables =
    List.fold_left
      (fun acc (name, vj) ->
        let* acc = acc in
        let* v = var_spec_of_json name vj in
        Ok (acc @ [ (name, v) ]))
      (Ok []) vars_obj
  in
  let* dag_obj = Result.bind (Json.member "DAG" j) Json.to_obj in
  let* nodes =
    List.fold_left
      (fun acc (name, nj) ->
        let* acc = acc in
        let* n = node_of_json name nj in
        Ok (acc @ [ n ]))
      (Ok []) dag_obj
  in
  validate { app_name; shared_object; variables; nodes }

let var_spec_to_json (v : Store.var_spec) =
  Json.obj
    [
      ("bytes", Json.int v.Store.bytes);
      ("is_ptr", Json.bool v.Store.is_ptr);
      ("ptr_alloc_bytes", Json.int v.Store.ptr_alloc_bytes);
      ("val", Json.list (List.map Json.int v.Store.init));
    ]

let platform_to_json e =
  Json.obj
    (List.concat
       [
         [ ("name", Json.str e.platform); ("runfunc", Json.str e.runfunc) ];
         (match e.shared_object with Some s -> [ ("shared_object", Json.str s) ] | None -> []);
         (match e.cost_us with Some c -> [ ("cost_us", Json.float c) ] | None -> []);
       ])

let node_to_json n =
  Json.obj
    (List.concat
       [
         [
           ("arguments", Json.list (List.map Json.str n.arguments));
           ("predecessors", Json.list (List.map Json.str n.predecessors));
           ("successors", Json.list (List.map Json.str n.successors));
           ("platforms", Json.list (List.map platform_to_json n.platforms));
         ];
         (if n.kernel_class <> "generic" then [ ("kernel", Json.str n.kernel_class) ] else []);
         (if n.size <> 1 then [ ("size", Json.int n.size) ] else []);
         (if n.bytes_in <> 0 then [ ("bytes_in", Json.int n.bytes_in) ] else []);
         (if n.bytes_out <> 0 then [ ("bytes_out", Json.int n.bytes_out) ] else []);
       ])

let to_json t =
  Json.obj
    [
      ("AppName", Json.str t.app_name);
      ("SharedObject", Json.str t.shared_object);
      ("Variables", Json.obj (List.map (fun (n, v) -> (n, var_spec_to_json v)) t.variables));
      ("DAG", Json.obj (List.map (fun n -> (n.node_name, node_to_json n)) t.nodes));
    ]

let of_file path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path (Json.error_to_string e))
  | Ok j -> of_json j

let to_file path t = Json.to_file path (to_json t)
