module Cbuf = Dssoc_dsp.Cbuf

type var_spec = { bytes : int; is_ptr : bool; ptr_alloc_bytes : int; init : int list }

type slot = { vspec : var_spec; data : Bytes.t }

type t = (string, slot) Hashtbl.t

let block_size spec = if spec.is_ptr then spec.ptr_alloc_bytes else spec.bytes

let create vars =
  let t = Hashtbl.create (List.length vars) in
  List.iter
    (fun (name, vspec) ->
      if Hashtbl.mem t name then invalid_arg (Printf.sprintf "Store.create: duplicate variable %S" name);
      if vspec.bytes < 0 || vspec.ptr_alloc_bytes < 0 then
        invalid_arg (Printf.sprintf "Store.create: negative size for %S" name);
      let size = block_size vspec in
      let data = Bytes.make size '\000' in
      List.iteri
        (fun i v -> if i < size then Bytes.set data i (Char.chr (v land 0xFF)))
        vspec.init;
      Hashtbl.replace t name { vspec; data })
    vars;
  t

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let find t name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None -> raise Not_found

let spec t name = (find t name).vspec

let payload_bytes t name = block_size (spec t name)

let get_i32 t name = Int32.to_int (Bytes.get_int32_le (find t name).data 0)
let set_i32 t name v = Bytes.set_int32_le (find t name).data 0 (Int32.of_int v)

let get_f32 t name = Int32.float_of_bits (Bytes.get_int32_le (find t name).data 0)
let set_f32 t name v = Bytes.set_int32_le (find t name).data 0 (Int32.bits_of_float v)

let get_f32_array t name =
  let data = (find t name).data in
  let n = Bytes.length data / 4 in
  Array.init n (fun i -> Int32.float_of_bits (Bytes.get_int32_le data (4 * i)))

let set_f32_array t name a =
  let data = (find t name).data in
  if 4 * Array.length a > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.set_f32_array: %S overflows its block" name);
  Array.iteri (fun i v -> Bytes.set_int32_le data (4 * i) (Int32.bits_of_float v)) a

let get_i32_array t name =
  let data = (find t name).data in
  Array.init (Bytes.length data / 4) (fun i -> Int32.to_int (Bytes.get_int32_le data (4 * i)))

let set_i32_array t name a =
  let data = (find t name).data in
  if 4 * Array.length a > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.set_i32_array: %S overflows its block" name);
  Array.iteri (fun i v -> Bytes.set_int32_le data (4 * i) (Int32.of_int v)) a

let get_cbuf t name =
  let data = (find t name).data in
  let n = Bytes.length data / 8 in
  let buf = Cbuf.create n in
  for i = 0 to n - 1 do
    Cbuf.set buf i
      (Int32.float_of_bits (Bytes.get_int32_le data (8 * i)))
      (Int32.float_of_bits (Bytes.get_int32_le data ((8 * i) + 4)))
  done;
  buf

let set_cbuf t name buf =
  let data = (find t name).data in
  let n = Cbuf.length buf in
  if 8 * n > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.set_cbuf: %S overflows its block" name);
  for i = 0 to n - 1 do
    let re, im = Cbuf.get buf i in
    Bytes.set_int32_le data (8 * i) (Int32.bits_of_float re);
    Bytes.set_int32_le data ((8 * i) + 4) (Int32.bits_of_float im)
  done

let get_cbuf_slice t name ~off ~len =
  let data = (find t name).data in
  if off < 0 || len < 0 || 8 * (off + len) > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.get_cbuf_slice: slice out of range for %S" name);
  let buf = Cbuf.create len in
  for i = 0 to len - 1 do
    let base = 8 * (off + i) in
    Cbuf.set buf i
      (Int32.float_of_bits (Bytes.get_int32_le data base))
      (Int32.float_of_bits (Bytes.get_int32_le data (base + 4)))
  done;
  buf

let set_cbuf_slice t name ~off buf =
  let data = (find t name).data in
  let n = Cbuf.length buf in
  if off < 0 || 8 * (off + n) > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.set_cbuf_slice: slice out of range for %S" name);
  for i = 0 to n - 1 do
    let re, im = Cbuf.get buf i in
    let base = 8 * (off + i) in
    Bytes.set_int32_le data base (Int32.bits_of_float re);
    Bytes.set_int32_le data (base + 4) (Int32.bits_of_float im)
  done

let get_bits t name =
  let data = (find t name).data in
  Array.init (Bytes.length data) (fun i -> Bytes.get data i <> '\000')

let set_bits t name bits =
  let data = (find t name).data in
  if Array.length bits > Bytes.length data then
    invalid_arg (Printf.sprintf "Store.set_bits: %S overflows its block" name);
  Array.iteri (fun i b -> Bytes.set data i (if b then '\001' else '\000')) bits

let get_raw t name = (find t name).data

let copy t =
  let t' = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun k s -> Hashtbl.replace t' k { s with data = Bytes.copy s.data }) t;
  t'

let blit_from dst ~src =
  if Hashtbl.length dst <> Hashtbl.length src then
    invalid_arg "Store.blit_from: stores declare different variables";
  Hashtbl.iter
    (fun name (s : slot) ->
      match Hashtbl.find_opt dst name with
      | Some d when Bytes.length d.data = Bytes.length s.data ->
        Bytes.blit s.data 0 d.data 0 (Bytes.length s.data)
      | _ -> invalid_arg (Printf.sprintf "Store.blit_from: variable %S has a different shape" name))
    src
