module Heap = Dssoc_util.Heap
module Prng = Dssoc_util.Prng
module Vec = Dssoc_util.Vec
module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module Cost_model = Dssoc_soc.Cost_model
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload

type params = { seed : int64; jitter : float; reservation_depth : int }

let default_params = { seed = 1L; jitter = 0.03; reservation_depth = 0 }

(* ------------------------------------------------------------------ *)
(* Simulation substrate: event loop, conditions, processor sharing     *)
(* ------------------------------------------------------------------ *)

type waiter = { mutable resumed : bool; k : (unit, unit) Effect.Deep.continuation }

type cond = { mutable pending : bool; mutable waiting : waiter option }

let new_cond () = { pending = false; waiting = None }

type job = { mutable remaining : float (* ns of full-rate work left *); jw : waiter }

type core_state = {
  core : Host.core;
  jobs : job Vec.t;
  mutable last : int;  (** time of the last progress update *)
  mutable version : int;  (** invalidates stale completion events *)
}

type engine = {
  mutable now : int;
  events : (int * (unit -> unit)) Heap.t;
  prng : Prng.t;
  jitter : float;
}

type _ Effect.t +=
  | Work : core_state * int -> unit Effect.t
        (** consume full-rate CPU work on a core (dilated when shared) *)
  | Await : cond * int option -> unit Effect.t
        (** block until the condition is signalled or the optional
            absolute deadline passes *)

let push_event eng t action = Heap.push eng.events (max t eng.now, action)

(* Per-job progress rate on a core with k active jobs: fair share 1/k,
   discounted by the round-robin efficiency quantum/(quantum+switch)
   when the core is contended.  This is the mechanism behind the
   paper's 2Core+2FFT observation (two accelerator manager threads
   "cyclically preempting each other" on one core). *)
let job_rate core k =
  if k <= 1 then 1.0
  else begin
    let q = float_of_int core.core.Host.quantum_ns
    and s = float_of_int core.core.Host.ctx_switch_ns in
    q /. (q +. s) /. float_of_int k
  end

let update_core eng cs =
  let elapsed = eng.now - cs.last in
  if elapsed > 0 then begin
    let k = Vec.length cs.jobs in
    if k > 0 then begin
      let progress = float_of_int elapsed *. job_rate cs k in
      Vec.iter (fun j -> j.remaining <- j.remaining -. progress) cs.jobs
    end;
    cs.last <- eng.now
  end

let resume eng w = if not w.resumed then begin
    w.resumed <- true;
    push_event eng eng.now (fun () -> Effect.Deep.continue w.k ())
  end

let rec reschedule_core eng cs =
  cs.version <- cs.version + 1;
  let k = Vec.length cs.jobs in
  if k > 0 then begin
    let rate = job_rate cs k in
    let min_remaining = Vec.fold (fun acc j -> Float.min acc j.remaining) Float.infinity cs.jobs in
    let dt = int_of_float (Float.ceil (Float.max 0.0 min_remaining /. rate)) in
    let v = cs.version in
    push_event eng (eng.now + dt) (fun () -> core_event eng cs v)
  end

and core_event eng cs v =
  if v = cs.version then begin
    update_core eng cs;
    (* Collect finished jobs in arrival order, compact the rest in
       place (Vec keeps order, matching the old List.partition). *)
    let finished = ref [] in
    Vec.filter_in_place
      (fun j ->
        if j.remaining <= 1e-6 then begin
          finished := j :: !finished;
          false
        end
        else true)
      cs.jobs;
    reschedule_core eng cs;
    List.iter (fun j -> resume eng j.jw) (List.rev !finished)
  end

let add_job eng cs w ns =
  update_core eng cs;
  Vec.push cs.jobs { remaining = float_of_int ns; jw = w };
  reschedule_core eng cs

let signal eng cond =
  match cond.waiting with
  | Some w when not w.resumed ->
    cond.waiting <- None;
    resume eng w
  | _ -> cond.pending <- true

let spawn eng body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Work (cs, ns) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if ns <= 0 then continue k ()
                else add_job eng cs { resumed = false; k } ns)
          | Await (cond, deadline) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if cond.pending then begin
                  cond.pending <- false;
                  continue k ()
                end
                else begin
                  let w = { resumed = false; k } in
                  cond.waiting <- Some w;
                  match deadline with
                  | None -> ()
                  | Some t ->
                    push_event eng t (fun () ->
                        if not w.resumed then begin
                          if cond.waiting == Some w then cond.waiting <- None;
                          resume eng w
                        end)
                end)
          | _ -> None);
    }
  in
  (* Defer the body so spawning inside another thread cannot nest
     handler scopes; each thread starts from the event loop. *)
  push_event eng eng.now (fun () -> match_with body () handler)

let run_loop eng =
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop eng.events with
    | None -> continue_ := false
    | Some (t, action) ->
      eng.now <- max eng.now t;
      action ()
  done

let work cs ns = Effect.perform (Work (cs, ns))
let await cond deadline = Effect.perform (Await (cond, deadline))

let sleep_ns eng ns = if ns > 0 then await (new_cond ()) (Some (eng.now + ns))

let jittered eng ns =
  if eng.jitter <= 0.0 || ns <= 0 then ns
  else begin
    let f = Prng.gaussian eng.prng ~mu:1.0 ~sigma:eng.jitter in
    max 1 (int_of_float (Float.round (float_of_int ns *. Float.max 0.1 f)))
  end

(* ------------------------------------------------------------------ *)
(* Framework actors                                                    *)
(* ------------------------------------------------------------------ *)

type vhandler = {
  h_pe : Pe.t;
  h_index : int;  (** this handler's PE index (row in the estimate table) *)
  h_core : core_state;
  h_capacity : int;  (** 1 + reservation-queue depth (1 = the paper's baseline) *)
  h_pending : Task.t Queue.t;  (** dispatched by the WM, not yet executed *)
  h_completed : Task.t Queue.t;  (** executed, awaiting WM bookkeeping *)
  mutable h_inflight : int;  (** pending + currently executing *)
  h_cond : cond;  (** resource manager waits here for dispatch / stop *)
  mutable h_stop : bool;
  mutable h_busy_ns : int;
  mutable h_tasks_run : int;
  mutable h_busy_until : int;  (** EFT availability horizon *)
}

let resource_manager eng (h : vhandler) ~est_table wm_wake () =
  let execute (task : Task.t) =
    let kernel = Exec_model.resolve_kernel task h.h_pe in
    let args = task.Task.node.App_spec.arguments in
    let started = eng.now in
    (match h.h_pe.Pe.kind with
    | Pe.Cpu _ ->
      kernel task.Task.store args;
      work h.h_core (jittered eng (Exec_model.lookup est_table task h.h_index))
    | Pe.Accel acl ->
      let entry = Task.platform_entry_for task h.h_pe in
      let explicit = Option.bind entry (fun e -> e.App_spec.cost_us) in
      let dma_in, compute, dma_out =
        match explicit with
        | Some us -> (0, int_of_float (us *. 1e3), 0)
        | None -> Exec_model.accel_phases_ns task acl
      in
      (* DMA to device occupies the manager's core... *)
      work h.h_core (jittered eng dma_in);
      kernel task.Task.store args;
      (* ...then the thread sleeps while the device computes... *)
      sleep_ns eng (jittered eng compute);
      (* ...and wakes to move the results back. *)
      work h.h_core (jittered eng dma_out));
    task.Task.completed_at <- eng.now;
    (* Occupancy, not queue residence: utilisation stays meaningful
       when a reservation queue is configured. *)
    h.h_busy_ns <- h.h_busy_ns + (eng.now - started);
    h.h_tasks_run <- h.h_tasks_run + 1;
    Queue.add task h.h_completed;
    signal eng wm_wake
  in
  let rec loop () =
    await h.h_cond None;
    if h.h_stop then ()
    else begin
      (* With a reservation queue the next task starts with no
         workload-manager round trip — the future-work optimisation
         Section III-C sketches. *)
      while not (Queue.is_empty h.h_pending) do
        execute (Queue.pop h.h_pending)
      done;
      loop ()
    end
  in
  loop ()

(* Cap on how many ready tasks a single policy invocation examines.
   The *charged* overhead still grows with the full ready-list length
   (that is the paper's O(n)/O(n^2) effect); the cap only bounds the
   simulator's own compute, and idle-PE counts make deeper windows
   pointless. *)
let sched_window = Dssoc_soc.Cost_model.sched_examined_cap

let workload_manager eng ~handlers ~instances ~est_table ~(policy : Scheduler.policy)
    ~wm_wake ~overlay_core ~overlay_perf ~(stats_sched_ns : int ref)
    ~(stats_sched_inv : int ref) ~(stats_wm_ns : int ref) ~(records : Stats.task_record list ref)
    () =
  let n_pes = Array.length handlers in
  let scale ns = int_of_float (Float.round (ns /. overlay_perf)) in
  let charge ns =
    let ns = scale ns in
    stats_wm_ns := !stats_wm_ns + ns;
    work overlay_core ns
  in
  let ready : Task.t Queue.t = Queue.create () in
  (* Tasks leave the ready queue lazily (dispatch flips them to
     Running but only the front is ever popped), so [Queue.length]
     overstates the live ready-list length.  The scheduler's charged
     O(n)/O(n^2) cost must follow the *live* count, kept here. *)
  let ready_live = ref 0 in
  let pending = ref (Array.to_list instances) in
  let unfinished = ref (Array.length instances) in
  let make_ready (task : Task.t) =
    task.Task.status <- Task.Ready;
    task.Task.ready_at <- eng.now;
    Queue.add task ready;
    incr ready_live
  in
  (* Scratch structures reused by every scheduling invocation: the
     policy-facing PE states are refreshed in place, and the ready
     window is snapshotted into a reusable array (sized once to the
     examination cap).  Reallocating these per invocation — once per
     task completion — dominated the scheduler hot path. *)
  let pes_scratch =
    Array.map (fun h -> { Scheduler.pe = h.h_pe; idle = false; busy_until = 0 }) handlers
  in
  let ready_scratch = ref [||] in
  (* One scheduling invocation: snapshot the ready window, run the
     policy, charge its modelled cost, dispatch the selected tasks.
     Invoked after every task completion and after every injection
     burst, as the paper's workload manager does (it has no PE
     reservation queues, so "a scheduling algorithm incurs this
     overhead every time a task completes"). *)
  let do_schedule () =
    while (not (Queue.is_empty ready)) && (Queue.peek ready).Task.status <> Task.Ready do
      ignore (Queue.pop ready)
    done;
    let have_idle = Array.exists (fun h -> h.h_inflight < h.h_capacity) handlers in
    if (not (Queue.is_empty ready)) && have_idle then begin
      let ready_len = !ready_live in
      let nready =
        let taken = ref 0 in
        (try
           Seq.iter
             (fun t ->
               if t.Task.status = Task.Ready then begin
                 if Array.length !ready_scratch = 0 then
                   ready_scratch := Array.make sched_window t;
                 !ready_scratch.(!taken) <- t;
                 incr taken;
                 if !taken >= sched_window then raise Exit
               end)
             (Queue.to_seq ready)
         with Exit -> ());
        !taken
      in
      Array.iteri
        (fun i h ->
          let st = pes_scratch.(i) in
          st.Scheduler.idle <- h.h_inflight < h.h_capacity;
          st.Scheduler.busy_until <- h.h_busy_until)
        handlers;
      let ctx =
        {
          Scheduler.now = eng.now;
          ready = !ready_scratch;
          nready;
          pes = pes_scratch;
          estimate = (fun task i -> Exec_model.lookup est_table task i);
          prng = eng.prng;
          ops = 0;
        }
      in
      let assignments = policy.Scheduler.schedule ctx in
      let sched_cost =
        scale
          (float_of_int
             (Scheduler.overhead_ns ~policy_name:policy.Scheduler.name ~ready:ready_len
                ~pes:n_pes ~ops:ctx.Scheduler.ops))
      in
      stats_sched_ns := !stats_sched_ns + sched_cost;
      incr stats_sched_inv;
      stats_wm_ns := !stats_wm_ns + sched_cost;
      work overlay_core sched_cost;
      (* Communicate selected tasks to their resource managers (setting
         the status to Running also lazily removes each task from the
         ready queue). *)
      List.iter
        (fun (a : Scheduler.assignment) ->
          let task = a.Scheduler.task and h = handlers.(a.Scheduler.pe_index) in
          charge Cost_model.dispatch_per_task_ns;
          task.Task.status <- Task.Running;
          decr ready_live;
          task.Task.dispatched_at <- eng.now;
          task.Task.pe_label <- h.h_pe.Pe.label;
          Queue.add task h.h_pending;
          h.h_inflight <- h.h_inflight + 1;
          h.h_busy_until <-
            max eng.now h.h_busy_until + Exec_model.lookup est_table task h.h_index;
          signal eng h.h_cond)
        assignments
    end
  in
  (* Bookkeeping for one completed task: statistics, instance
     accounting, and releasing newly ready successors. *)
  let process_completion (task : Task.t) =
    task.Task.status <- Task.Done;
    records :=
      {
        Stats.app = task.Task.app_name;
        instance = task.Task.instance_id;
        node = task.Task.node.App_spec.node_name;
        pe = task.Task.pe_label;
        ready_ns = task.Task.ready_at;
        dispatched_ns = task.Task.dispatched_at;
        completed_ns = task.Task.completed_at;
      }
      :: !records;
    let inst = instances.(task.Task.instance_id) in
    inst.Task.remaining <- inst.Task.remaining - 1;
    if inst.Task.remaining = 0 then begin
      inst.Task.completed_at <- eng.now;
      decr unfinished
    end;
    let newly_ready = ref 0 in
    List.iter
      (fun (succ : Task.t) ->
        succ.Task.unmet <- succ.Task.unmet - 1;
        if succ.Task.unmet = 0 then begin
          make_ready succ;
          incr newly_ready
        end)
      task.Task.successors;
    if !newly_ready > 0 then
      charge (Cost_model.ready_update_per_task_ns *. float_of_int !newly_ready)
  in
  let rec loop () =
    (* -- one completion-monitoring sweep over the resource handlers -- *)
    charge (Cost_model.monitor_per_pe_ns *. float_of_int n_pes);
    let batch_completions = ref false in
    Array.iter
      (fun h ->
        while not (Queue.is_empty h.h_completed) do
          let task = Queue.pop h.h_completed in
          h.h_inflight <- h.h_inflight - 1;
          process_completion task;
          if h.h_capacity <= 1 then
            (* No reservation queue: the scheduler runs once per
               completed task, as in the paper. *)
            do_schedule ()
          else batch_completions := true
        done)
      handlers;
    if !batch_completions then do_schedule ();
    (* -- inject newly arrived application instances -- *)
    let injected = ref 0 in
    let rec drain () =
      match !pending with
      | inst :: rest when inst.Task.arrival_ns <= eng.now ->
        pending := rest;
        List.iter
          (fun t ->
            make_ready t;
            incr injected)
          inst.Task.entry;
        drain ()
      | _ -> ()
    in
    drain ();
    if !injected > 0 then begin
      charge (Cost_model.ready_update_per_task_ns *. float_of_int !injected);
      do_schedule ()
    end;
    (* -- terminate or wait for the next event -- *)
    if !unfinished = 0 && !pending = [] then
      Array.iter
        (fun h ->
          h.h_stop <- true;
          signal eng h.h_cond)
        handlers
    else begin
      let deadline = match !pending with [] -> None | inst :: _ -> Some inst.Task.arrival_ns in
      await wm_wake deadline;
      loop ()
    end
  in
  loop ()


(* ------------------------------------------------------------------ *)
(* Top-level run                                                       *)
(* ------------------------------------------------------------------ *)

let run_detailed ?(params = default_params) ~(config : Config.t) ~(workload : Workload.t)
    ~(policy : Scheduler.policy) () =
  (* Initialization phase (outside emulation time, as in Section II-A):
     allocate every instance and its memory up front. *)
  let items = Array.of_list workload.Workload.items in
  let task_id_base = ref 0 in
  let instances =
    Array.mapi
      (fun i (item : Workload.item) ->
        let inst =
          Task.instantiate ~task_id_base:!task_id_base ~inst_id:i ~arrival_ns:item.Workload.arrival_ns
            item.Workload.spec
        in
        task_id_base := !task_id_base + Array.length inst.Task.tasks;
        inst)
      items
  in
  let pes = Config.pes config in
  Array.iter
    (fun inst ->
      Array.iter
        (fun (t : Task.t) ->
          if not (List.exists (Task.supports t) pes) then
            invalid_arg
              (Printf.sprintf
                 "Virtual_engine.run: task %s/%s supports no PE of configuration %s"
                 t.Task.app_name t.Task.node.App_spec.node_name config.Config.label))
        inst.Task.tasks)
    instances;
  let eng =
    {
      now = 0;
      events = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b);
      prng = Prng.create ~seed:params.seed;
      jitter = params.jitter;
    }
  in
  (* One modelled core state per distinct host core in use. *)
  let core_states = Hashtbl.create 8 in
  let core_state_of (core : Host.core) =
    match Hashtbl.find_opt core_states core.Host.core_id with
    | Some cs -> cs
    | None ->
      let cs = { core; jobs = Vec.create (); last = 0; version = 0 } in
      Hashtbl.replace core_states core.Host.core_id cs;
      cs
  in
  let overlay_core = core_state_of config.Config.host.Host.overlay in
  let overlay_perf = config.Config.host.Host.overlay.Host.core_class.Pe.perf_factor in
  let handlers =
    Array.of_list
      (List.mapi
         (fun i (p : Config.placement) ->
           {
             h_pe = p.Config.pe;
             h_index = i;
             h_core = core_state_of p.Config.host_core;
             h_capacity = 1 + max 0 params.reservation_depth;
             h_pending = Queue.create ();
             h_completed = Queue.create ();
             h_inflight = 0;
             h_cond = new_cond ();
             h_stop = false;
             h_busy_ns = 0;
             h_tasks_run = 0;
             h_busy_until = 0;
           })
         config.Config.placements)
  in
  let wm_wake = new_cond () in
  (* Price every (task, PE) pair once, up front; the scheduler and the
     dispatch paths then estimate with a single array load. *)
  let est_table =
    Exec_model.build_table ~instances ~pes:(Array.map (fun h -> h.h_pe) handlers)
  in
  let stats_sched_ns = ref 0
  and stats_sched_inv = ref 0
  and stats_wm_ns = ref 0
  and records = ref [] in
  Array.iter (fun h -> spawn eng (resource_manager eng h ~est_table wm_wake)) handlers;
  spawn eng
    (workload_manager eng ~handlers ~instances ~est_table ~policy ~wm_wake ~overlay_core
       ~overlay_perf ~stats_sched_ns ~stats_sched_inv ~stats_wm_ns ~records);
  run_loop eng;
  let makespan =
    Array.fold_left (fun acc inst -> max acc inst.Task.completed_at) 0 instances
  in
  let app_tbl = Hashtbl.create 4 in
  Array.iter
    (fun inst ->
      let name = inst.Task.app.App_spec.app_name in
      let lat = inst.Task.completed_at - inst.Task.arrival_ns in
      let lats = Option.value ~default:[] (Hashtbl.find_opt app_tbl name) in
      Hashtbl.replace app_tbl name (lat :: lats))
    instances;
  let app_stats =
    Hashtbl.fold
      (fun name lats acc ->
        let n = List.length lats in
        let sum = List.fold_left ( + ) 0 lats in
        ( name,
          {
            Stats.instances = n;
            mean_latency_ns = float_of_int sum /. float_of_int (max 1 n);
            max_latency_ns = List.fold_left max 0 lats;
          } )
        :: acc)
      app_tbl []
    |> List.sort compare
  in
  ( {
    Stats.host_name = config.Config.host.Host.name;
    config_label = config.Config.label;
    policy_name = policy.Scheduler.name;
    makespan_ns = makespan;
    job_count = Array.length instances;
    task_count = Array.fold_left (fun acc i -> acc + Array.length i.Task.tasks) 0 instances;
    pe_usage =
      Array.to_list
        (Array.map
           (fun h ->
             {
               Stats.pe_label = h.h_pe.Pe.label;
               pe_kind = Pe.kind_name h.h_pe.Pe.kind;
               busy_ns = h.h_busy_ns;
               tasks_run = h.h_tasks_run;
               busy_energy_mj = float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind *. 1e-6;
               energy_mj =
                 (float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind
                 +. float_of_int (max 0 (makespan - h.h_busy_ns)) *. Pe.idle_w h.h_pe.Pe.kind)
                 *. 1e-6;
             })
           handlers);
    sched_invocations = !stats_sched_inv;
    sched_ns = !stats_sched_ns;
    wm_overhead_ns = !stats_wm_ns;
    records = List.rev !records;
    app_stats;
  },
    instances )

let run ?params ~config ~workload ~policy () =
  fst (run_detailed ?params ~config ~workload ~policy ())
