module Heap = Dssoc_util.Heap
module Prng = Dssoc_util.Prng
module Vec = Dssoc_util.Vec
module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Core = Engine_core
module Obs = Dssoc_obs.Obs

type params = Engine_core.params = {
  seed : int64;
  jitter : float;
  reservation_depth : int;
}

let default_params = Engine_core.default_params

(* ------------------------------------------------------------------ *)
(* Simulation substrate: event loop, conditions, processor sharing     *)
(* ------------------------------------------------------------------ *)

type waiter = { mutable resumed : bool; k : (unit, unit) Effect.Deep.continuation }

type cond = { mutable pending : bool; mutable waiting : waiter option }

let new_cond () = { pending = false; waiting = None }

type job = { mutable remaining : float (* ns of full-rate work left *); jw : waiter }

type core_state = {
  core : Host.core;
  jobs : job Vec.t;
  mutable last : int;  (** time of the last progress update *)
  mutable version : int;  (** invalidates stale completion events *)
}

type engine = {
  mutable now : int;
  events : (int * (unit -> unit)) Heap.t;
  prng : Prng.t;
  jitter : float;
}

type _ Effect.t +=
  | Work : core_state * int -> unit Effect.t
        (** consume full-rate CPU work on a core (dilated when shared) *)
  | Await : cond * int option -> unit Effect.t
        (** block until the condition is signalled or the optional
            absolute deadline passes *)

let push_event eng t action = Heap.push eng.events (max t eng.now, action)

(* Per-job progress rate on a core with k active jobs: fair share 1/k,
   discounted by the round-robin efficiency quantum/(quantum+switch)
   when the core is contended.  This is the mechanism behind the
   paper's 2Core+2FFT observation (two accelerator manager threads
   "cyclically preempting each other" on one core). *)
let job_rate core k =
  if k <= 1 then 1.0
  else begin
    let q = float_of_int core.core.Host.quantum_ns
    and s = float_of_int core.core.Host.ctx_switch_ns in
    q /. (q +. s) /. float_of_int k
  end

let update_core eng cs =
  let elapsed = eng.now - cs.last in
  if elapsed > 0 then begin
    let k = Vec.length cs.jobs in
    if k > 0 then begin
      let progress = float_of_int elapsed *. job_rate cs k in
      Vec.iter (fun j -> j.remaining <- j.remaining -. progress) cs.jobs
    end;
    cs.last <- eng.now
  end

let resume eng w = if not w.resumed then begin
    w.resumed <- true;
    push_event eng eng.now (fun () -> Effect.Deep.continue w.k ())
  end

let rec reschedule_core eng cs =
  cs.version <- cs.version + 1;
  let k = Vec.length cs.jobs in
  if k > 0 then begin
    let rate = job_rate cs k in
    let min_remaining = Vec.fold (fun acc j -> Float.min acc j.remaining) Float.infinity cs.jobs in
    let dt = int_of_float (Float.ceil (Float.max 0.0 min_remaining /. rate)) in
    let v = cs.version in
    push_event eng (eng.now + dt) (fun () -> core_event eng cs v)
  end

and core_event eng cs v =
  if v = cs.version then begin
    update_core eng cs;
    (* Collect finished jobs in arrival order, compact the rest in
       place (Vec keeps order, matching the old List.partition). *)
    let finished = ref [] in
    Vec.filter_in_place
      (fun j ->
        if j.remaining <= 1e-6 then begin
          finished := j :: !finished;
          false
        end
        else true)
      cs.jobs;
    reschedule_core eng cs;
    List.iter (fun j -> resume eng j.jw) (List.rev !finished)
  end

let add_job eng cs w ns =
  update_core eng cs;
  Vec.push cs.jobs { remaining = float_of_int ns; jw = w };
  reschedule_core eng cs

let signal eng cond =
  match cond.waiting with
  | Some w when not w.resumed ->
    cond.waiting <- None;
    resume eng w
  | _ -> cond.pending <- true

(* ------------------------------------------------------------------ *)
(* Shared interconnect: one processor-shared link + bounded FIFO       *)
(* ------------------------------------------------------------------ *)

(* The fabric link reuses the core machinery shape (progress updates,
   version-invalidated completion events) but serves the in-flight DMA
   streams at a plain fair share 1/k — an arbitrated bus has no
   round-robin context-switch discount.  Streams beyond the FIFO depth
   queue in arrival order and their manager threads stall. *)
type fab = {
  fb_bus : Fabric.bus;
  fb_hop_ns : int array;  (** per-PE index: hops x per-hop latency *)
  fb_jobs : job Vec.t;  (** in-flight streams, arrival order *)
  fb_queue : (int * int * int * job) Queue.t;
      (** (enqueue time, pe_index, bytes, stream) awaiting a FIFO slot *)
  mutable fb_last : int;
  mutable fb_version : int;
  fb_counters : Core.fabric_counters;
  fb_obs : Obs.t;
  fb_occ : Obs.Metrics.gauge option;
  fb_stall_hist : Obs.Metrics.histogram option;
}

let fab_rate k = if k <= 1 then 1.0 else 1.0 /. float_of_int k

let update_fab eng fb =
  let elapsed = eng.now - fb.fb_last in
  if elapsed > 0 then begin
    let k = Vec.length fb.fb_jobs in
    if k > 0 then begin
      let progress = float_of_int elapsed *. fab_rate k in
      Vec.iter (fun j -> j.remaining <- j.remaining -. progress) fb.fb_jobs
    end;
    fb.fb_last <- eng.now
  end

let fab_track fb =
  let c = fb.fb_counters in
  let k = Vec.length fb.fb_jobs in
  if k > c.Core.fc_max_inflight then c.Core.fc_max_inflight <- k

let fab_admitted eng fb ~pe_index ~bytes ~stall_ns =
  let c = fb.fb_counters in
  c.Core.fc_stall_ns <- c.Core.fc_stall_ns + stall_ns;
  fab_track fb;
  (match fb.fb_stall_hist with
  | Some h when stall_ns > 0 -> Obs.Metrics.observe h (float_of_int stall_ns)
  | _ -> ());
  if Obs.enabled fb.fb_obs then
    Obs.on_stream_admitted fb.fb_obs ~now:eng.now ~pe_index ~bytes ~stall_ns
      ~inflight:(Vec.length fb.fb_jobs)

let fab_occupancy eng fb =
  match fb.fb_occ with
  | None -> ()
  | Some g -> Obs.Metrics.set g ~t_ns:eng.now (Vec.length fb.fb_jobs)

let rec reschedule_fab eng fb =
  fb.fb_version <- fb.fb_version + 1;
  let k = Vec.length fb.fb_jobs in
  if k > 0 then begin
    let rate = fab_rate k in
    let min_remaining = Vec.fold (fun acc j -> Float.min acc j.remaining) Float.infinity fb.fb_jobs in
    let dt = int_of_float (Float.ceil (Float.max 0.0 min_remaining /. rate)) in
    let v = fb.fb_version in
    push_event eng (eng.now + dt) (fun () -> fab_event eng fb v)
  end

and fab_event eng fb v =
  if v = fb.fb_version then begin
    update_fab eng fb;
    let finished = ref [] in
    Vec.filter_in_place
      (fun j ->
        if j.remaining <= 1e-6 then begin
          finished := j :: !finished;
          false
        end
        else true)
      fb.fb_jobs;
    (* Freed slots admit queued streams FIFO, inline (no per-admission
       reschedule: one link re-arm covers the whole admission batch). *)
    while
      (not (Queue.is_empty fb.fb_queue))
      && Vec.length fb.fb_jobs < fb.fb_bus.Fabric.fifo_depth
    do
      let t0, pe_index, bytes, j = Queue.pop fb.fb_queue in
      Vec.push fb.fb_jobs j;
      fab_admitted eng fb ~pe_index ~bytes ~stall_ns:(eng.now - t0)
    done;
    fab_occupancy eng fb;
    reschedule_fab eng fb;
    List.iter (fun j -> resume eng j.jw) (List.rev !finished)
  end

let fab_submit eng fb ~pe_index ~bytes w ns =
  let c = fb.fb_counters in
  c.Core.fc_streams <- c.Core.fc_streams + 1;
  let j = { remaining = float_of_int ns; jw = w } in
  if Vec.length fb.fb_jobs < fb.fb_bus.Fabric.fifo_depth then begin
    update_fab eng fb;
    Vec.push fb.fb_jobs j;
    fab_admitted eng fb ~pe_index ~bytes ~stall_ns:0;
    fab_occupancy eng fb;
    reschedule_fab eng fb
  end
  else begin
    c.Core.fc_stalls <- c.Core.fc_stalls + 1;
    if Obs.enabled fb.fb_obs then
      Obs.on_stream_stalled fb.fb_obs ~now:eng.now ~pe_index ~bytes
        ~queued:(Queue.length fb.fb_queue + 1);
    Queue.add (eng.now, pe_index, bytes, j) fb.fb_queue
  end

type _ Effect.t +=
  | Fab_work : fab * int * int * int -> unit Effect.t
        (** [(fab, pe_index, bytes, demand_ns)]: stream [demand_ns] of
            link service through the shared fabric, stalling while the
            FIFO is full *)

let spawn eng body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Work (cs, ns) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if ns <= 0 then continue k ()
                else add_job eng cs { resumed = false; k } ns)
          | Fab_work (fb, pe_index, bytes, ns) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if ns <= 0 then continue k ()
                else fab_submit eng fb ~pe_index ~bytes { resumed = false; k } ns)
          | Await (cond, deadline) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if cond.pending then begin
                  cond.pending <- false;
                  continue k ()
                end
                else begin
                  let w = { resumed = false; k } in
                  cond.waiting <- Some w;
                  match deadline with
                  | None -> ()
                  | Some t ->
                    push_event eng t (fun () ->
                        if not w.resumed then begin
                          if cond.waiting == Some w then cond.waiting <- None;
                          resume eng w
                        end)
                end)
          | _ -> None);
    }
  in
  (* Defer the body so spawning inside another thread cannot nest
     handler scopes; each thread starts from the event loop. *)
  push_event eng eng.now (fun () -> match_with body () handler)

let run_loop eng =
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop eng.events with
    | None -> continue_ := false
    | Some (t, action) ->
      eng.now <- max eng.now t;
      action ()
  done

let work cs ns = Effect.perform (Work (cs, ns))
let await cond deadline = Effect.perform (Await (cond, deadline))

let sleep_ns eng ns = if ns > 0 then await (new_cond ()) (Some (eng.now + ns))

(* ------------------------------------------------------------------ *)
(* The DES backend for the shared engine core                          *)
(* ------------------------------------------------------------------ *)

(* Backend-private handler state: the modelled host core this
   resource-manager thread occupies, and the condition it awaits
   dispatch / stop on. *)
type vh = { vh_core : core_state; vh_cond : cond }

let backend eng ~fab ~wm_wake ~overlay_core ~overlay_perf ~est_table
    ~(policy : Scheduler.policy) ~n_pes ~(stats : Core.wm_stats) ~obs =
  let scale ns = int_of_float (Float.round (ns /. overlay_perf)) in
  (* Modelled workload-manager bookkeeping occupies the overlay core. *)
  let charge ns =
    let ns = scale ns in
    stats.Core.wm_ns <- stats.Core.wm_ns + ns;
    work overlay_core ns
  in
  let jit ns = Core.jittered eng.prng ~jitter:eng.jitter ns in
  (* The b_dma hook.  Ideal (or a phase moving no data) replays the
     legacy per-device duration on the manager's host core exactly as
     before.  Under a bus the manager thread leaves its host core:
     the stream is serviced by the shared link (fair-share among
     in-flight streams, FIFO-stalled when the link is full), then the
     fixed per-chunk device latency plus per-hop fabric latency is
     paid as plain delay. *)
  let dma (h : vh Core.handler) (ph : Core.dma_phase) =
    let vb = h.Core.h_backend in
    match fab with
    | None -> work vb.vh_core (jit ph.Core.dp_ideal_ns)
    | Some fb ->
      if ph.Core.dp_bytes <= 0 then work vb.vh_core (jit ph.Core.dp_ideal_ns)
      else begin
        let dem = jit (Fabric.demand_ns fb.fb_bus ~bytes:ph.Core.dp_bytes) in
        if dem > 0 then
          Effect.perform (Fab_work (fb, h.Core.h_index, ph.Core.dp_bytes, dem));
        sleep_ns eng
          (ph.Core.dp_chunks * (ph.Core.dp_chunk_lat_ns + fb.fb_hop_ns.(h.Core.h_index)))
      end
  in
  let execute (h : vh Core.handler) (task : Task.t) =
    let kernel = Exec_model.resolve_kernel task h.Core.h_pe in
    let args = task.Task.node.App_spec.arguments in
    let vb = h.Core.h_backend in
    match h.Core.h_pe.Pe.kind with
    | Pe.Cpu _ ->
      kernel task.Task.store args;
      work vb.vh_core (jit (Exec_model.lookup est_table task h.Core.h_index))
    | Pe.Accel acl ->
      let dma_in, compute, dma_out = Core.accel_phases task h.Core.h_pe acl in
      let traced = Obs.enabled obs in
      let phase_end ph t0 =
        if traced then
          Obs.on_phase obs ~now:eng.now ~task:task.Task.id ~pe_index:h.Core.h_index
            ~phase:ph ~start_ns:t0 ~dur_ns:(eng.now - t0)
      in
      (* DMA to device goes through the fabric hook... *)
      let t0 = eng.now in
      dma h dma_in;
      phase_end Obs.Dma_in t0;
      kernel task.Task.store args;
      (* ...then the thread sleeps while the device computes... *)
      let t1 = eng.now in
      sleep_ns eng (jit compute);
      phase_end Obs.Device_compute t1;
      (* ...and wakes to move the results back. *)
      let t2 = eng.now in
      dma h dma_out;
      phase_end Obs.Dma_out t2
  in
  {
    Core.b_now = (fun () -> eng.now);
    (* Single-threaded event loop: no mutual exclusion needed. *)
    b_lock = ignore;
    b_unlock = ignore;
    b_handler_await = (fun h -> await h.Core.h_backend.vh_cond None);
    b_notify_handler = (fun h -> signal eng h.Core.h_backend.vh_cond);
    b_wm_await = (fun ~deadline -> await wm_wake deadline);
    b_notify_wm = (fun () -> signal eng wm_wake);
    b_charge = charge;
    b_dma = dma;
    b_execute = execute;
    (* Fault-detection latencies and slowdown tails keep the PE's
       manager thread asleep (the device is wedged, not computing), so
       no host core is occupied — just virtual time. *)
    b_delay = (fun _h ns -> sleep_ns eng ns);
    b_sched_start = (fun () -> 0);
    b_sched_done =
      (fun _t0 ~ready ~ops ->
        (* The policy's cost is modelled, not measured: the calibrated
           overhead for the *live* ready-list length, scaled by the
           overlay core and charged on it. *)
        let cost =
          scale
            (float_of_int
               (Scheduler.overhead_ns ~policy_name:policy.Scheduler.name ~ready
                  ~pes:n_pes ~ops))
        in
        stats.Core.wm_ns <- stats.Core.wm_ns + cost;
        work overlay_core cost;
        cost);
    b_wm_tick_start = (fun () -> 0);
    b_wm_tick_end =
      (* The event heap *is* the simulation's pending future; its depth
         is the DES-specific health gauge (sampled via [Heap.length]). *)
      (let heap_gauge =
         Option.map (fun m -> Obs.Metrics.gauge m "event_heap_depth") (Obs.metrics obs)
       in
       fun _ ->
         match heap_gauge with
         | None -> ()
         | Some g -> Obs.Metrics.set g ~t_ns:eng.now (Heap.length eng.events));
  }

(* ------------------------------------------------------------------ *)
(* Top-level run                                                       *)
(* ------------------------------------------------------------------ *)

(* Everything a virtual run needs, built identically for the one-shot
   and the resident-service entry points.  [clock0]/[prng] are the
   starting virtual time and engine PRNG — zero / freshly seeded for a
   normal run, the checkpointed values for a restored service. *)
type prepared = {
  pr_eng : engine;
  pr_instances : Task.instance array;
  pr_handlers : vh Core.handler array;
  pr_est_table : Exec_model.table;
  pr_stats : Core.wm_stats;
  pr_fault : Dssoc_fault.Fault.t;
  pr_fabric_counters : Core.fabric_counters;
  pr_b : vh Core.backend;
}

let prepare ~(params : params) ~obs ~engine_name ~clock0 ~prng ?fault
    ~(config : Config.t) ~(workload : Workload.t) ~(policy : Scheduler.policy) () =
  let instances = Core.instantiate ~engine_name ~config ~workload in
  let eng =
    {
      now = clock0;
      events = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b);
      prng;
      jitter = params.jitter;
    }
  in
  (* One modelled core state per distinct host core in use. *)
  let core_states = Hashtbl.create 8 in
  let core_state_of (core : Host.core) =
    match Hashtbl.find_opt core_states core.Host.core_id with
    | Some cs -> cs
    | None ->
      let cs = { core; jobs = Vec.create (); last = 0; version = 0 } in
      Hashtbl.replace core_states core.Host.core_id cs;
      cs
  in
  let overlay_core = core_state_of config.Config.host.Host.overlay in
  let overlay_perf = config.Config.host.Host.overlay.Host.core_class.Pe.perf_factor in
  let handlers =
    Array.of_list
      (List.mapi
         (fun i (p : Config.placement) ->
           Core.make_handler ~pe:p.Config.pe ~index:i
             ~reservation_depth:params.reservation_depth
             { vh_core = core_state_of p.Config.host_core; vh_cond = new_cond () })
         config.Config.placements)
  in
  let wm_wake = new_cond () in
  (* Price every (task, PE) pair once, up front; the scheduler and the
     dispatch paths then estimate with a single array load. *)
  let est_table =
    Exec_model.build_table ~instances ~pes:(Array.map (fun h -> h.Core.h_pe) handlers)
  in
  let stats = Core.make_stats () in
  let fault = Core.compile_fault fault ~handlers in
  Obs.attach_pes obs ~pe_labels:(Array.map (fun h -> h.Core.h_pe.Pe.label) handlers);
  let fabric_counters = Core.make_fabric_counters () in
  let fab =
    match config.Config.fabric with
    | Fabric.Ideal -> None
    | Fabric.Bus bus ->
      (* Fabric metrics register after [attach_pes] so the engine
         metrics keep their historical registration order. *)
      let metrics = Obs.metrics obs in
      Some
        {
          fb_bus = bus;
          fb_hop_ns =
            Array.map
              (fun h ->
                Fabric.hops bus.Fabric.topology ~pe_index:h.Core.h_index
                * bus.Fabric.hop_ns)
              handlers;
          fb_jobs = Vec.create ();
          fb_queue = Queue.create ();
          fb_last = 0;
          fb_version = 0;
          fb_counters = fabric_counters;
          fb_obs = obs;
          fb_occ = Option.map (fun m -> Obs.Metrics.gauge m "fabric_occupancy") metrics;
          fb_stall_hist =
            Option.map (fun m -> Obs.Metrics.histogram m "fabric_stall_ns") metrics;
        }
  in
  let b =
    backend eng ~fab ~wm_wake ~overlay_core ~overlay_perf ~est_table ~policy
      ~n_pes:(Array.length handlers) ~stats ~obs
  in
  {
    pr_eng = eng;
    pr_instances = instances;
    pr_handlers = handlers;
    pr_est_table = est_table;
    pr_stats = stats;
    pr_fault = fault;
    pr_fabric_counters = fabric_counters;
    pr_b = b;
  }

let run_detailed ?(params = default_params) ?(obs = Obs.disabled) ?fault
    ~(config : Config.t) ~(workload : Workload.t) ~(policy : Scheduler.policy) () =
  let p =
    prepare ~params ~obs ~engine_name:"Virtual_engine.run" ~clock0:0
      ~prng:(Prng.create ~seed:params.seed) ?fault ~config ~workload ~policy ()
  in
  let { pr_eng = eng; pr_instances = instances; pr_handlers = handlers; pr_fault = fault; _ } =
    p
  in
  Array.iter
    (fun h ->
      spawn eng (fun () ->
          Core.resource_manager ~obs ~fault ~est_table:p.pr_est_table p.pr_b h))
    handlers;
  spawn eng (fun () ->
      Core.workload_manager ~obs ~fault p.pr_b ~handlers ~instances
        ~est_table:p.pr_est_table ~policy ~prng:eng.prng ~stats:p.pr_stats);
  run_loop eng;
  ( Core.report ~host_name:config.Config.host.Host.name ~config ~policy ~handlers
      ~instances ~stats:p.pr_stats ~fabric:p.pr_fabric_counters,
    instances )

let run ?params ?obs ?fault ~config ~workload ~policy () =
  fst (run_detailed ?params ?obs ?fault ~config ~workload ~policy ())

(* ------------------------------------------------------------------ *)
(* Resident service entry point                                        *)
(* ------------------------------------------------------------------ *)

type handler_snapshot = { hs_busy_until : int; hs_busy_ns : int; hs_tasks_run : int }

type resume_state = {
  rs_clock : int;
  rs_prng : int64 * int64 * int64 * int64;
  rs_handlers : handler_snapshot array;
}

type service_run = {
  sr_instances : Task.instance array;
  sr_stats : Core.wm_stats;
  sr_fabric : Core.fabric_counters;
  sr_prng : int64 * int64 * int64 * int64;
  sr_handlers : handler_snapshot array;
}

let run_service ?(params = default_params) ?(obs = Obs.disabled) ?resume
    ~(config : Config.t) ~(workload : Workload.t) ~(policy : Scheduler.policy)
    ~(service : Task.instance array -> Core.service) () =
  let clock0, prng =
    match resume with
    | None -> (0, Prng.create ~seed:params.seed)
    | Some r -> (r.rs_clock, Prng.of_state r.rs_prng)
  in
  let p =
    prepare ~params ~obs ~engine_name:"Virtual_engine.run_service" ~clock0 ~prng
      ~config ~workload ~policy ()
  in
  let { pr_eng = eng; pr_instances = instances; pr_handlers = handlers; _ } = p in
  (match resume with
  | None -> ()
  | Some r ->
    if Array.length r.rs_handlers <> Array.length handlers then
      invalid_arg "Virtual_engine.run_service: resume PE count mismatch";
    Array.iteri
      (fun i h ->
        let s = r.rs_handlers.(i) in
        h.Core.h_busy_until <- s.hs_busy_until;
        h.Core.h_busy_ns <- s.hs_busy_ns;
        h.Core.h_tasks_run <- s.hs_tasks_run)
      handlers);
  let service = { (service instances) with Core.sv_resume = Option.is_some resume } in
  Array.iter
    (fun h ->
      spawn eng (fun () ->
          Core.resource_manager ~obs ~est_table:p.pr_est_table p.pr_b h))
    handlers;
  spawn eng (fun () ->
      Core.workload_manager ~obs ~service p.pr_b ~handlers ~instances
        ~est_table:p.pr_est_table ~policy ~prng:eng.prng ~stats:p.pr_stats);
  run_loop eng;
  {
    sr_instances = instances;
    sr_stats = p.pr_stats;
    sr_fabric = p.pr_fabric_counters;
    sr_prng = Prng.state eng.prng;
    sr_handlers =
      Array.map
        (fun h ->
          {
            hs_busy_until = h.Core.h_busy_until;
            hs_busy_ns = h.Core.h_busy_ns;
            hs_tasks_run = h.Core.h_tasks_run;
          })
        handlers;
  }
