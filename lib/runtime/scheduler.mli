(** Task-scheduling policy library (Section II-C).

    The workload manager hands the policy a snapshot of the ready-task
    list and the PE states; the policy returns assignments of ready
    tasks to *idle* PEs.  The default library implements the paper's
    four policies — FRFS, MET, EFT and RANDOM — and user policies can
    be registered under new names (the paper's "custom scheduling
    algorithm" hook). *)

type pe_state = {
  pe : Dssoc_soc.Pe.t;
  mutable idle : bool;
  mutable busy_until : int;
      (** estimated completion of the in-flight task (EFT looks at
          this); meaningful only when not idle *)
  mutable available : bool;
      (** false for quarantined or dead PEs: policies must neither
          select nor reserve them.  [idle] implies [available]; EFT is
          the one built-in that also reads it directly (it reserves
          busy-but-available PEs via [busy_until]). *)
}

type context = {
  now : int;
  ready : Task.t array;
      (** ready-window snapshot in ready (FIFO) order; only entries
          [0, nready) are valid — the array is engine-owned scratch
          reused across invocations and may be longer (or hold stale
          tasks) past that point *)
  nready : int;  (** number of valid entries at the front of [ready] *)
  pes : pe_state array;
  estimate : Task.t -> int -> int;
      (** [estimate task pe_index]: modelled execution time on
          [pes.(pe_index)].  The engines back this with a dense
          precomputed table ({!Exec_model.build_table}), so calling it
          in an inner loop is one array load.  Only defined when the
          task supports that PE — check {!Task.supports} first. *)
  prng : Dssoc_util.Prng.t;
  mutable ops : int;
      (** policies increment this per elementary examination; the
          engine charges overlay-core time proportional to the policy's
          complexity model *)
}

type assignment = { task : Task.t; pe_index : int }

type policy = { name : string; schedule : context -> assignment list }

(** {1 Built-in policies} *)

val frfs : policy
(** First ready-first start: walk the ready list in order; each task
    goes to the first idle PE that supports it. *)

val met : policy
(** Minimum execution time: each ready task goes to the idle
    supporting PE with the smallest estimated execution time. *)

val eft : policy
(** Earliest finish time: a planning pass in ready order; each task
    picks the supporting PE with the earliest finish (busy PEs finish
    at [busy_until] + estimate, and the pass advances a virtual
    availability horizon as it commits tasks).  A task whose winner is
    busy reserves it and keeps waiting instead of falling back to an
    idle PE — the behaviour whose O(n^2) cost Case Study 2 charges. *)

val random : policy
(** Uniformly random idle supporting PE per ready task. *)

val power : policy
(** Power-aware heuristic (the paper's future-work extension): each
    ready task goes to the idle supporting PE with the lowest
    estimated energy-to-completion (execution time x active power),
    ties broken by execution time.  On big.LITTLE hosts this steers
    work to LITTLE cores until they saturate. *)

(** {1 Registry} *)

val register : policy -> unit
(** Add or replace a policy by name.  Built-ins are pre-registered. *)

val find : string -> (policy, string) result
(** Case-insensitive lookup. *)

val names : unit -> string list

(** {1 Overhead model} *)

val overhead_ns : policy_name:string -> ready:int -> pes:int -> ops:int -> int
(** Modelled scheduling-invocation cost on the reference overlay core:
    FRFS is linear in PE count, MET linear in ready-task count, EFT
    quadratic in ready-task count (the complexities stated in Case
    Study 2); unknown (custom) policies are charged per recorded
    elementary operation. *)
