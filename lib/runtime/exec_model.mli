(** Task execution-time estimation.

    Bridges the cost model to tasks: picks the matching platform entry,
    honours an explicit [cost_us] override from the JSON, and otherwise
    prices CPU execution from the kernel profile and accelerator
    execution from the device model.  Both the virtual engine (to
    charge time) and the MET/EFT schedulers (to estimate) use it. *)

val estimate_ns : Task.t -> Dssoc_soc.Pe.t -> int
(** Full turnaround estimate on the given PE.  Memoized per (cost
    metadata, PE class) in a domain-local table (safe under parallel
    sweeps) — call {!clear_cache} after re-registering a kernel
    profile in {!Dssoc_soc.Cost_model}.
    @raise Invalid_argument when the task does not support the PE. *)

val clear_cache : unit -> unit
(** Drop the calling domain's estimate memo table. *)

val accel_phases_ns : Task.t -> Dssoc_soc.Pe.accel_class -> int * int * int
(** [(dma_in, device_compute, dma_out)]; DMA sizes come from the node's
    [bytes_in]/[bytes_out], defaulting to [8 * size] (one complex
    float32 per sample) when unspecified. *)

val resolve_kernel : Task.t -> Dssoc_soc.Pe.t -> Dssoc_apps.Kernels.kernel
(** The functional kernel to execute for this (task, PE) pairing.
    @raise Invalid_argument on unknown shared object or symbol — app
    parsing is supposed to catch this earlier. *)
