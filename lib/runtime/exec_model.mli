(** Task execution-time estimation.

    Bridges the cost model to tasks: picks the matching platform entry,
    honours an explicit [cost_us] override from the JSON, and otherwise
    prices CPU execution from the kernel profile and accelerator
    execution from the device model.  Both the virtual engine (to
    charge time) and the MET/EFT schedulers (to estimate) use it.

    The scheduling inner loops ask for an estimate once per
    (ready task, PE) pair per invocation; the engines precompute a
    dense {!table} over the whole run at instantiation time so those
    loops cost one int-array load. *)

val estimate_ns : Task.t -> Dssoc_soc.Pe.t -> int
(** Full turnaround estimate on the given PE, computed from the cost
    model.  Pure in the task's cost metadata and the PE class.
    @raise Invalid_argument when the task does not support the PE. *)

(** {1 Per-run dense estimate table} *)

type table
(** Precomputed [estimate_ns] for every (task, PE) pair of one run,
    indexed by task id and PE index. *)

val build_table : instances:Task.instance array -> pes:Dssoc_soc.Pe.t array -> table
(** Price every (task, pe) pair once, up front.  Task ids may start at
    any base but must be dense (as [Task.instantiate] produces them).
    Unsupported pairs are representable but must never be looked up. *)

val lookup : table -> Task.t -> int -> int
(** [lookup tbl task pe_index] = [estimate_ns task pes.(pe_index)],
    as a single array load.  Only meaningful when the task supports
    the PE (callers check {!Task.supports} first). *)

val accel_phases_ns : Task.t -> Dssoc_soc.Pe.accel_class -> int * int * int
(** [(dma_in, device_compute, dma_out)]; DMA sizes come from the node's
    [bytes_in]/[bytes_out], defaulting to [8 * size] (one complex
    float32 per sample) when unspecified. *)

val dma_bytes : Dssoc_apps.App_spec.node -> int * int
(** [(bytes_in, bytes_out)] a node moves over the interconnect —
    the explicit [bytes_in]/[bytes_out] when positive, else the
    [8 * size] default.  The fabric layer prices bandwidth demand
    from these. *)

val resolve_kernel : Task.t -> Dssoc_soc.Pe.t -> Dssoc_apps.Kernels.kernel
(** The functional kernel to execute for this (task, PE) pairing.
    @raise Invalid_argument on unknown shared object or symbol — app
    parsing is supposed to catch this earlier. *)
