module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Pe = Dssoc_soc.Pe

type status = Blocked | Ready | Running | Done

type t = {
  id : int;
  instance_id : int;
  app_name : string;
  node : App_spec.node;
  spec : App_spec.t;
  store : Store.t;
  mutable status : status;
  mutable unmet : int;
  mutable successors : t list;
  mutable ready_at : int;
  mutable dispatched_at : int;
  mutable completed_at : int;
  mutable pe_label : string;
  mutable attempts : int;
  mutable last_failure : (Dssoc_fault.Fault.failure * int) option;
}

type instance = {
  inst_id : int;
  app : App_spec.t;
  store : Store.t;
  arrival_ns : int;
  tasks : t array;
  entry : t list;
  mutable remaining : int;
  mutable completed_at : int;
  mutable cancelled : bool;
}

let instantiate ~task_id_base ~inst_id ~arrival_ns (spec : App_spec.t) =
  let store = Store.create spec.App_spec.variables in
  let nodes = Array.of_list spec.App_spec.nodes in
  let tasks =
    Array.mapi
      (fun i node ->
        {
          id = task_id_base + i;
          instance_id = inst_id;
          app_name = spec.App_spec.app_name;
          node;
          spec;
          store;
          status = Blocked;
          unmet = List.length node.App_spec.predecessors;
          successors = [];
          ready_at = -1;
          dispatched_at = -1;
          completed_at = -1;
          pe_label = "";
          attempts = 0;
          last_failure = None;
        })
      nodes
  in
  let by_name = Hashtbl.create (Array.length tasks) in
  Array.iter (fun t -> Hashtbl.replace by_name t.node.App_spec.node_name t) tasks;
  Array.iter
    (fun t ->
      t.successors <-
        List.map (fun s -> Hashtbl.find by_name s) t.node.App_spec.successors)
    tasks;
  {
    inst_id;
    app = spec;
    store;
    arrival_ns;
    tasks;
    entry = Array.to_list tasks |> List.filter (fun t -> t.unmet = 0);
    remaining = Array.length tasks;
    completed_at = -1;
    cancelled = false;
  }

let entry_matches (e : App_spec.platform_entry) (pe : Pe.t) =
  if e.App_spec.platform = "cpu" then Pe.is_cpu pe.Pe.kind
  else e.App_spec.platform = Pe.kind_name pe.Pe.kind

let platform_entry_for t pe = List.find_opt (fun e -> entry_matches e pe) t.node.App_spec.platforms

let supports t pe = Option.is_some (platform_entry_for t pe)

let status_to_string = function
  | Blocked -> "blocked"
  | Ready -> "ready"
  | Running -> "running"
  | Done -> "done"
