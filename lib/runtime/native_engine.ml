module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module App_spec = Dssoc_apps.App_spec
module Store = Dssoc_apps.Store
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng
module Mclock = Dssoc_util.Mclock
module Core = Engine_core
module Obs = Dssoc_obs.Obs

(* Historical default: policy randomness seeded at 7, no jitter on the
   modelled device-compute sleeps, no reservation queues. *)
let default_params = { Core.seed = 7L; jitter = 0.0; reservation_depth = 0 }

(* Backend-private handler state: the mutex/condvar pair guarding this
   handler's queues, and a per-handler PRNG stream for jittering the
   modelled accelerator compute (per-handler so concurrent domains
   never contend on — or nondeterministically interleave draws from —
   a shared stream). *)
type nh = { nh_mutex : Mutex.t; nh_cond : Condition.t; nh_prng : Prng.t }

(* Shared-fabric ledger: a counting semaphore bounded by the FIFO
   depth, with contention counters updated under the same mutex.
   Handler domains block in [Condition.wait] while the link is full —
   the wall-clock analogue of the virtual engine's FIFO stall. *)
type nfab = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_inflight : int;
  f_bus : Fabric.bus;
  f_hop_ns : int array;  (* per-PE index: hops x per-hop latency *)
  f_counters : Core.fabric_counters;
}

let backend ~start ~fab ~(params : Core.params) ~(stats : Core.wm_stats) ~obs =
  let now () = Mclock.now_ns () - start in
  (* The b_dma hook.  The real byte copies stand in for the transfer
     itself (in [execute], fabric or not); under a bus the modelled
     demand and fixed chunk/hop latency are timed sleeps, gated by the
     bounded-FIFO ledger.  Under Ideal nothing extra is charged — the
     legacy behaviour, byte-for-byte. *)
  let dma (h : nh Core.handler) (ph : Core.dma_phase) =
    match fab with
    | None -> ()
    | Some f ->
      if ph.Core.dp_bytes > 0 then begin
        let dem =
          Core.jittered h.Core.h_backend.nh_prng ~jitter:params.Core.jitter
            (Fabric.demand_ns f.f_bus ~bytes:ph.Core.dp_bytes)
        in
        if dem > 0 then begin
          let c = f.f_counters in
          Mutex.lock f.f_mutex;
          c.Core.fc_streams <- c.Core.fc_streams + 1;
          if f.f_inflight >= f.f_bus.Fabric.fifo_depth then begin
            c.Core.fc_stalls <- c.Core.fc_stalls + 1;
            if Obs.enabled obs then
              Obs.on_stream_stalled obs ~now:(now ()) ~pe_index:h.Core.h_index
                ~bytes:ph.Core.dp_bytes
                ~queued:(f.f_inflight - f.f_bus.Fabric.fifo_depth + 1);
            let t0 = now () in
            while f.f_inflight >= f.f_bus.Fabric.fifo_depth do
              Condition.wait f.f_cond f.f_mutex
            done;
            c.Core.fc_stall_ns <- c.Core.fc_stall_ns + (now () - t0)
          end;
          f.f_inflight <- f.f_inflight + 1;
          if f.f_inflight > c.Core.fc_max_inflight then
            c.Core.fc_max_inflight <- f.f_inflight;
          if Obs.enabled obs then
            Obs.on_stream_admitted obs ~now:(now ()) ~pe_index:h.Core.h_index
              ~bytes:ph.Core.dp_bytes ~stall_ns:0 ~inflight:f.f_inflight;
          Mutex.unlock f.f_mutex;
          Unix.sleepf (float_of_int dem /. 1e9);
          Mutex.lock f.f_mutex;
          f.f_inflight <- f.f_inflight - 1;
          Condition.broadcast f.f_cond;
          Mutex.unlock f.f_mutex
        end;
        let fix =
          ph.Core.dp_chunks * (ph.Core.dp_chunk_lat_ns + f.f_hop_ns.(h.Core.h_index))
        in
        if fix > 0 then Unix.sleepf (float_of_int fix /. 1e9)
      end
  in
  let execute (h : nh Core.handler) (task : Task.t) =
    let kernel = Exec_model.resolve_kernel task h.Core.h_pe in
    let args = task.Task.node.App_spec.arguments in
    match h.Core.h_pe.Pe.kind with
    | Pe.Cpu _ -> kernel task.Task.store args
    | Pe.Accel acl ->
      let traced = Obs.enabled obs in
      let phase_end ph t0 =
        if traced then
          Obs.on_phase obs ~now:(now ()) ~task:task.Task.id
            ~pe_index:h.Core.h_index ~phase:ph ~start_ns:t0 ~dur_ns:(now () - t0)
      in
      (* Real copies stand in for the DMA transfers; a timed sleep
         stands in for the device compute.  A task with no pointer
         arguments moves no data, so no scratch buffer is allocated. *)
      let ptr_args =
        List.filter (fun a -> (Store.spec task.Task.store a).Store.is_ptr) args
      in
      let dma_in, compute, dma_out = Core.accel_phases task h.Core.h_pe acl in
      let t0 = now () in
      let scratch =
        match ptr_args with
        | [] -> None
        | _ ->
          let buf = Buffer.create 256 in
          List.iter (fun a -> Buffer.add_bytes buf (Store.get_raw task.Task.store a)) ptr_args;
          Some buf
      in
      dma h dma_in;
      phase_end Obs.Dma_in t0;
      kernel task.Task.store args;
      let compute = Core.jittered h.Core.h_backend.nh_prng ~jitter:params.Core.jitter compute in
      let t1 = now () in
      Unix.sleepf (float_of_int compute /. 1e9);
      phase_end Obs.Device_compute t1;
      let t2 = now () in
      Option.iter (fun buf -> ignore (Buffer.contents buf)) scratch;
      dma h dma_out;
      phase_end Obs.Dma_out t2
  in
  {
    Core.b_now = now;
    b_lock = (fun h -> Mutex.lock h.Core.h_backend.nh_mutex);
    b_unlock = (fun h -> Mutex.unlock h.Core.h_backend.nh_mutex);
    b_handler_await =
      (fun h ->
        let nb = h.Core.h_backend in
        while (not h.Core.h_stop) && Queue.is_empty h.Core.h_pending do
          Condition.wait nb.nh_cond nb.nh_mutex
        done);
    b_notify_handler = (fun h -> Condition.signal h.Core.h_backend.nh_cond);
    (* The workload manager polls: completions are observed by the
       monitoring sweep, so a completion notification is unnecessary. *)
    b_wm_await = (fun ~deadline:_ -> Domain.cpu_relax ());
    b_notify_wm = (fun () -> ());
    (* Manager bookkeeping costs real time here — nothing to model. *)
    b_charge = (fun _ -> ());
    b_dma = dma;
    b_execute = execute;
    (* Fault-detection latencies and slowdown tails are timed sleeps,
       like the modelled device compute. *)
    b_delay = (fun _h ns -> if ns > 0 then Unix.sleepf (float_of_int ns /. 1e9));
    (* Scheduling cost is measured wall time, not a model. *)
    b_sched_start = now;
    b_sched_done = (fun t0 ~ready:_ ~ops:_ -> now () - t0);
    b_wm_tick_start = now;
    b_wm_tick_end = (fun t0 -> stats.Core.wm_ns <- stats.Core.wm_ns + (now () - t0));
  }

let run_detailed ?(params = default_params) ?(obs = Obs.disabled) ?fault
    ~(config : Config.t) ~(workload : Workload.t) ~(policy : Scheduler.policy) () =
  let instances = Core.instantiate ~engine_name:"Native_engine.run" ~config ~workload in
  let handlers =
    Array.of_list
      (List.mapi
         (fun i (p : Config.placement) ->
           Core.make_handler ~pe:p.Config.pe ~index:i
             ~reservation_depth:params.Core.reservation_depth
             {
               nh_mutex = Mutex.create ();
               nh_cond = Condition.create ();
               nh_prng = Prng.derive ~seed:params.Core.seed ~index:(i + 1);
             })
         config.Config.placements)
  in
  let est_table =
    Exec_model.build_table ~instances ~pes:(Array.map (fun h -> h.Core.h_pe) handlers)
  in
  let stats = Core.make_stats () in
  let fault = Core.compile_fault fault ~handlers in
  Obs.attach_pes obs ~pe_labels:(Array.map (fun h -> h.Core.h_pe.Pe.label) handlers);
  (* Handler domains emit into the sink concurrently with the WM, so
     switch the ring from its single-producer lock-free mode before any
     domain spawns. *)
  Obs.Sink.synchronize (Obs.sink obs);
  let fabric_counters = Core.make_fabric_counters () in
  let fab =
    match config.Config.fabric with
    | Fabric.Ideal -> None
    | Fabric.Bus bus ->
      Some
        {
          f_mutex = Mutex.create ();
          f_cond = Condition.create ();
          f_inflight = 0;
          f_bus = bus;
          f_hop_ns =
            Array.map
              (fun h ->
                Fabric.hops bus.Fabric.topology ~pe_index:h.Core.h_index
                * bus.Fabric.hop_ns)
              handlers;
          f_counters = fabric_counters;
        }
  in
  let start = Mclock.now_ns () in
  let b = backend ~start ~fab ~params ~stats ~obs in
  (* One domain per PE plays its resource manager (Fig. 4)... *)
  let domains =
    Array.map
      (fun h -> Domain.spawn (fun () -> Core.resource_manager ~obs ~fault ~est_table b h))
      handlers
  in
  (* ...while the calling domain plays the workload manager (Fig. 3). *)
  let prng = Prng.create ~seed:params.Core.seed in
  let wm_result =
    match
      Core.workload_manager ~obs ~fault b ~handlers ~instances ~est_table ~policy ~prng
        ~stats
    with
    | () -> Ok ()
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  (* Whether or not the WM survived, every handler domain must observe
     stop before this function returns or re-raises — a poisoned run
     (policy exception, fault-plan abort, ...) must not leak live
     domains.  On the normal path the WM already set [h_stop]; setting
     it again is idempotent. *)
  Array.iter
    (fun h ->
      let nb = h.Core.h_backend in
      Mutex.lock nb.nh_mutex;
      h.Core.h_stop <- true;
      Condition.signal nb.nh_cond;
      Mutex.unlock nb.nh_mutex)
    handlers;
  Array.iter Domain.join domains;
  match wm_result with
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Ok () ->
    ( Core.report
        ~host_name:(config.Config.host.Host.name ^ " (native)")
        ~config ~policy ~handlers ~instances ~stats ~fabric:fabric_counters,
      instances )

let run ?params ?obs ?fault ~config ~workload ~policy () =
  fst (run_detailed ?params ?obs ?fault ~config ~workload ~policy ())
