module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng

type nhandler = {
  pe : Pe.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable status : [ `Idle | `Run | `Complete | `Stop ];
  mutable task : Task.t option;
  mutable busy_ns : int;
  mutable tasks_run : int;
  mutable busy_until : int;
}

let now_ns ref_start = int_of_float ((Unix.gettimeofday () -. ref_start) *. 1e9)

(* Resource-manager body (Fig. 4): wait for an assignment, execute it
   according to the PE type, flag completion, repeat. *)
let resource_manager ref_start h () =
  let rec loop () =
    Mutex.lock h.mutex;
    while h.status <> `Run && h.status <> `Stop do
      Condition.wait h.cond h.mutex
    done;
    if h.status = `Stop then Mutex.unlock h.mutex
    else begin
      let task = Option.get h.task in
      Mutex.unlock h.mutex;
      let kernel = Exec_model.resolve_kernel task h.pe in
      let args = task.Task.node.App_spec.arguments in
      (match h.pe.Pe.kind with
      | Pe.Cpu _ -> kernel task.Task.store args
      | Pe.Accel acl ->
        (* Real copies stand in for the DMA transfers; a timed sleep
           stands in for the device compute. *)
        let scratch = Buffer.create 256 in
        List.iter
          (fun a -> Buffer.add_bytes scratch (Dssoc_apps.Store.get_raw task.Task.store a))
          (List.filter
             (fun a -> (Dssoc_apps.Store.spec task.Task.store a).Dssoc_apps.Store.is_ptr)
             args);
        kernel task.Task.store args;
        let _, compute, _ = Exec_model.accel_phases_ns task acl in
        Unix.sleepf (float_of_int compute /. 1e9);
        ignore (Buffer.contents scratch));
      Mutex.lock h.mutex;
      task.Task.completed_at <- now_ns ref_start;
      h.status <- `Complete;
      Mutex.unlock h.mutex;
      loop ()
    end
  in
  loop ()

let run_detailed ~(config : Config.t) ~(workload : Workload.t) ~(policy : Scheduler.policy) () =
  let items = Array.of_list workload.Workload.items in
  let task_id_base = ref 0 in
  let instances =
    Array.mapi
      (fun i (item : Workload.item) ->
        let inst =
          Task.instantiate ~task_id_base:!task_id_base ~inst_id:i
            ~arrival_ns:item.Workload.arrival_ns item.Workload.spec
        in
        task_id_base := !task_id_base + Array.length inst.Task.tasks;
        inst)
      items
  in
  let pes = Config.pes config in
  Array.iter
    (fun inst ->
      Array.iter
        (fun (t : Task.t) ->
          if not (List.exists (Task.supports t) pes) then
            invalid_arg
              (Printf.sprintf "Native_engine.run: task %s/%s supports no PE of %s"
                 t.Task.app_name t.Task.node.App_spec.node_name config.Config.label))
        inst.Task.tasks)
    instances;
  let handlers =
    Array.of_list
      (List.map
         (fun (p : Config.placement) ->
           {
             pe = p.Config.pe;
             mutex = Mutex.create ();
             cond = Condition.create ();
             status = `Idle;
             task = None;
             busy_ns = 0;
             tasks_run = 0;
             busy_until = 0;
           })
         config.Config.placements)
  in
  let ref_start = Unix.gettimeofday () in
  let domains =
    Array.map (fun h -> Domain.spawn (resource_manager ref_start h)) handlers
  in
  let est_table =
    Exec_model.build_table ~instances ~pes:(Array.map (fun h -> h.pe) handlers)
  in
  (* Scratch reused across scheduling invocations (same discipline as
     the virtual engine): refresh in place rather than reallocate. *)
  let pes_scratch =
    Array.map (fun h -> { Scheduler.pe = h.pe; idle = false; busy_until = 0 }) handlers
  in
  let snapshot_cap = 64 in
  let ready_scratch = ref [||] in
  let prng = Prng.create ~seed:7L in
  let ready : Task.t Queue.t = Queue.create () in
  let pending = ref (Array.to_list instances) in
  let unfinished = ref (Array.length instances) in
  let records = ref [] in
  let sched_ns = ref 0 and sched_inv = ref 0 and wm_ns = ref 0 in
  let make_ready t =
    t.Task.status <- Task.Ready;
    t.Task.ready_at <- now_ns ref_start;
    Queue.add t ready
  in
  (* Workload-manager loop (Fig. 3) on the calling domain. *)
  while !unfinished > 0 do
    let loop_start = Unix.gettimeofday () in
    (* monitor *)
    Array.iter
      (fun h ->
        Mutex.lock h.mutex;
        if h.status = `Complete then begin
          (match h.task with
          | None -> ()
          | Some task ->
            task.Task.status <- Task.Done;
            h.busy_ns <- h.busy_ns + (task.Task.completed_at - task.Task.dispatched_at);
            h.tasks_run <- h.tasks_run + 1;
            records :=
              {
                Stats.app = task.Task.app_name;
                instance = task.Task.instance_id;
                node = task.Task.node.App_spec.node_name;
                pe = task.Task.pe_label;
                ready_ns = task.Task.ready_at;
                dispatched_ns = task.Task.dispatched_at;
                completed_ns = task.Task.completed_at;
              }
              :: !records;
            let inst = instances.(task.Task.instance_id) in
            inst.Task.remaining <- inst.Task.remaining - 1;
            if inst.Task.remaining = 0 then begin
              inst.Task.completed_at <- now_ns ref_start;
              decr unfinished
            end;
            List.iter
              (fun (succ : Task.t) ->
                succ.Task.unmet <- succ.Task.unmet - 1;
                if succ.Task.unmet = 0 then make_ready succ)
              task.Task.successors);
          h.task <- None;
          h.status <- `Idle
        end;
        Mutex.unlock h.mutex)
      handlers;
    (* inject *)
    let now = now_ns ref_start in
    let rec drain () =
      match !pending with
      | inst :: rest when inst.Task.arrival_ns <= now ->
        pending := rest;
        List.iter make_ready inst.Task.entry;
        drain ()
      | _ -> ()
    in
    drain ();
    (* schedule + dispatch *)
    let have_idle =
      Array.exists
        (fun h ->
          Mutex.lock h.mutex;
          let idle = h.status = `Idle in
          Mutex.unlock h.mutex;
          idle)
        handlers
    in
    while (not (Queue.is_empty ready)) && (Queue.peek ready).Task.status <> Task.Ready do
      ignore (Queue.pop ready)
    done;
    if (not (Queue.is_empty ready)) && have_idle then begin
      let nready =
        let taken = ref 0 in
        (try
           Seq.iter
             (fun t ->
               if t.Task.status = Task.Ready then begin
                 if Array.length !ready_scratch = 0 then
                   ready_scratch := Array.make snapshot_cap t;
                 !ready_scratch.(!taken) <- t;
                 incr taken;
                 if !taken >= snapshot_cap then raise Exit
               end)
             (Queue.to_seq ready)
         with Exit -> ());
        !taken
      in
      Array.iteri
        (fun i h ->
          let st = pes_scratch.(i) in
          st.Scheduler.idle <- h.status = `Idle;
          st.Scheduler.busy_until <- h.busy_until)
        handlers;
      let t0 = Unix.gettimeofday () in
      let ctx =
        {
          Scheduler.now;
          ready = !ready_scratch;
          nready;
          pes = pes_scratch;
          estimate = (fun task i -> Exec_model.lookup est_table task i);
          prng;
          ops = 0;
        }
      in
      let assignments = policy.Scheduler.schedule ctx in
      sched_ns := !sched_ns + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
      incr sched_inv;
      (* Dispatch flips status to Running, which lazily removes the
         task from the ready queue. *)
      List.iter
        (fun (a : Scheduler.assignment) ->
          let h = handlers.(a.Scheduler.pe_index) and task = a.Scheduler.task in
          Mutex.lock h.mutex;
          task.Task.status <- Task.Running;
          task.Task.dispatched_at <- now_ns ref_start;
          task.Task.pe_label <- h.pe.Pe.label;
          h.task <- Some task;
          h.status <- `Run;
          h.busy_until <-
            task.Task.dispatched_at + Exec_model.lookup est_table task a.Scheduler.pe_index;
          Condition.signal h.cond;
          Mutex.unlock h.mutex)
        assignments
    end;
    wm_ns := !wm_ns + int_of_float ((Unix.gettimeofday () -. loop_start) *. 1e9);
    if !unfinished > 0 then Domain.cpu_relax ()
  done;
  Array.iter
    (fun h ->
      Mutex.lock h.mutex;
      h.status <- `Stop;
      Condition.signal h.cond;
      Mutex.unlock h.mutex)
    handlers;
  Array.iter Domain.join domains;
  let makespan = Array.fold_left (fun acc i -> max acc i.Task.completed_at) 0 instances in
  let app_tbl = Hashtbl.create 4 in
  Array.iter
    (fun inst ->
      let name = inst.Task.app.App_spec.app_name in
      let lat = inst.Task.completed_at - inst.Task.arrival_ns in
      Hashtbl.replace app_tbl name (lat :: Option.value ~default:[] (Hashtbl.find_opt app_tbl name)))
    instances;
  ( {
    Stats.host_name = config.Config.host.Host.name ^ " (native)";
    config_label = config.Config.label;
    policy_name = policy.Scheduler.name;
    makespan_ns = makespan;
    job_count = Array.length instances;
    task_count = Array.fold_left (fun acc i -> acc + Array.length i.Task.tasks) 0 instances;
    pe_usage =
      Array.to_list
        (Array.map
           (fun h ->
             {
               Stats.pe_label = h.pe.Pe.label;
               pe_kind = Pe.kind_name h.pe.Pe.kind;
               busy_ns = h.busy_ns;
               tasks_run = h.tasks_run;
               busy_energy_mj = float_of_int h.busy_ns *. Pe.busy_w h.pe.Pe.kind *. 1e-6;
               energy_mj =
                 (float_of_int h.busy_ns *. Pe.busy_w h.pe.Pe.kind
                 +. float_of_int (max 0 (makespan - h.busy_ns)) *. Pe.idle_w h.pe.Pe.kind)
                 *. 1e-6;
             })
           handlers);
    sched_invocations = !sched_inv;
    sched_ns = !sched_ns;
    wm_overhead_ns = !wm_ns;
    records = List.rev !records;
    app_stats =
      Hashtbl.fold
        (fun name lats acc ->
          let n = List.length lats in
          ( name,
            {
              Stats.instances = n;
              mean_latency_ns =
                float_of_int (List.fold_left ( + ) 0 lats) /. float_of_int (max 1 n);
              max_latency_ns = List.fold_left max 0 lats;
            } )
          :: acc)
        app_tbl []
      |> List.sort compare;
  },
    instances )

let run ~config ~workload ~policy () = fst (run_detailed ~config ~workload ~policy ())
