module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module Cost_model = Dssoc_soc.Cost_model
module Fabric = Dssoc_soc.Fabric
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Store = Dssoc_apps.Store
module Prng = Dssoc_util.Prng
module Obs = Dssoc_obs.Obs
module Core = Engine_core

exception Unsupported of string

(* The compiled engine replays the virtual engine's event sequence
   exactly: the reference semantics is "whatever Virtual_engine does",
   down to heap insertion order (the heap breaks time ties FIFO by
   insertion sequence) and PRNG draw interleaving.  Everything below
   that looks like duplicated protocol logic is deliberate — each
   block mirrors a specific suspension point of engine_core.ml /
   virtual_engine.ml, with the effect-handler closures flattened into
   integer program counters.  Divergences are caught by the
   differential matrix in test_diff_engines.ml. *)

type pcode = P_frfs | P_met | P_eft | P_power | P_random

(* One application archetype, lowered.  Node indices are positions in
   [c_nodes] (= App_spec declaration order = dense task id offsets). *)
type cls = {
  c_spec : App_spec.t;
  c_nodes : App_spec.node array;
  c_n : int;
  c_unmet : int array;  (** initial unmet-predecessor counts *)
  c_succ : int array array;  (** successor node indices, JSON order *)
  c_entry : int array;  (** nodes with no predecessors, node order *)
  c_est : int array;  (** (node, pe) estimate matrix; [min_int] = unsupported *)
  c_ph_in : int array;  (** accelerator ideal DMA-in ns per (node, pe) *)
  c_ph_comp : int array;
  c_ph_out : int array;
  c_fb_dem_in : int array;
      (** bus-fabric link demand per (node, pe); [-1] = phase moves no
          data, bypass the fabric (replay the ideal duration) *)
  c_fb_dem_out : int array;
  c_fb_fix_in : int array;  (** fixed chunk + hop latency per (node, pe) *)
  c_fb_fix_out : int array;
  c_fb_bytes_in : int array;
      (** raw stream bytes per (node, pe); [0] = no fabric stream
          (only consumed by traced runs, for stream events) *)
  c_fb_bytes_out : int array;
  c_store0 : Store.t;  (** pristine initial store image *)
  c_final : Store.t option;
      (** post-kernel store image when every node's kernel is the same
          physical closure on all supported PEs (see compile) *)
}

type plan = {
  p_config : Config.t;
  p_policy : Scheduler.policy;
  p_pcode : pcode;
  p_classes : cls array;
  p_item_class : int array;
  p_item_arrival : int array;
  p_task_base : int array;  (** dense task-id base per workload item *)
  p_n_pes : int;
  p_pes : Pe.t array;
  p_pe_is_cpu : bool array;
  p_pe_busy_w : float array;
  p_est : int array;  (** (task id, pe) estimates, stride [p_n_pes] *)
  p_ph_in : int array;
  p_ph_comp : int array;
  p_ph_out : int array;
  p_fabric : Fabric.t;
  p_fb_dem_in : int array;  (** (task id, pe) link demand; [-1] = bypass *)
  p_fb_dem_out : int array;
  p_fb_fix_in : int array;
  p_fb_fix_out : int array;
  p_fb_bytes_in : int array;
  p_fb_bytes_out : int array;
  p_core_of_pe : int array;  (** manager-core index; core 0 is the overlay *)
  p_core_rate1 : float array;  (** per core: quantum /. (quantum + switch) *)
  p_overlay_perf : float;
}

let builtin_pcode (policy : Scheduler.policy) =
  if policy == Scheduler.frfs then Some P_frfs
  else if policy == Scheduler.met then Some P_met
  else if policy == Scheduler.eft then Some P_eft
  else if policy == Scheduler.power then Some P_power
  else if policy == Scheduler.random then Some P_random
  else None

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let build_class ~(config : Config.t) ~(pes : Pe.t array) (spec : App_spec.t) =
  let n_pes = Array.length pes in
  let pes_list = Array.to_list pes in
  let tmpl = Task.instantiate ~task_id_base:0 ~inst_id:0 ~arrival_ns:0 spec in
  Array.iter
    (fun (t : Task.t) ->
      if not (List.exists (Task.supports t) pes_list) then
        invalid_arg
          (Printf.sprintf
             "Compiled_engine.compile: task %s/%s supports no PE of configuration %s"
             t.Task.app_name t.Task.node.App_spec.node_name config.Config.label))
    tmpl.Task.tasks;
  let n = Array.length tmpl.Task.tasks in
  let tbl = Exec_model.build_table ~instances:[| tmpl |] ~pes in
  let est = Array.make (max 1 (n * n_pes)) min_int in
  let ph_in = Array.make (max 1 (n * n_pes)) 0 in
  let ph_comp = Array.make (max 1 (n * n_pes)) 0 in
  let ph_out = Array.make (max 1 (n * n_pes)) 0 in
  let fb_dem_in = Array.make (max 1 (n * n_pes)) (-1) in
  let fb_dem_out = Array.make (max 1 (n * n_pes)) (-1) in
  let fb_fix_in = Array.make (max 1 (n * n_pes)) 0 in
  let fb_fix_out = Array.make (max 1 (n * n_pes)) 0 in
  let fb_bytes_in = Array.make (max 1 (n * n_pes)) 0 in
  let fb_bytes_out = Array.make (max 1 (n * n_pes)) 0 in
  Array.iteri
    (fun j (t : Task.t) ->
      Array.iteri
        (fun i pe ->
          est.((j * n_pes) + i) <- Exec_model.lookup tbl t i;
          match pe.Pe.kind with
          | Pe.Accel acl when Task.supports t pe ->
            let a, b, c = Core.accel_phases t pe acl in
            let row = (j * n_pes) + i in
            ph_in.(row) <- a.Core.dp_ideal_ns;
            ph_comp.(row) <- b;
            ph_out.(row) <- c.Core.dp_ideal_ns;
            (match config.Config.fabric with
            | Fabric.Ideal -> ()
            | Fabric.Bus bus ->
              let hop = Fabric.hops bus.Fabric.topology ~pe_index:i * bus.Fabric.hop_ns in
              let fill dem fix bytes (ph : Core.dma_phase) =
                if ph.Core.dp_bytes > 0 then begin
                  dem.(row) <- Fabric.demand_ns bus ~bytes:ph.Core.dp_bytes;
                  fix.(row) <- ph.Core.dp_chunks * (ph.Core.dp_chunk_lat_ns + hop);
                  bytes.(row) <- ph.Core.dp_bytes
                end
              in
              fill fb_dem_in fb_fix_in fb_bytes_in a;
              fill fb_dem_out fb_fix_out fb_bytes_out c)
          | _ -> ())
        pes)
    tmpl.Task.tasks;
  let nodes = Array.of_list spec.App_spec.nodes in
  let by_name = Hashtbl.create (max 1 n) in
  Array.iteri (fun j (nd : App_spec.node) -> Hashtbl.replace by_name nd.App_spec.node_name j) nodes;
  let succ =
    Array.map
      (fun (nd : App_spec.node) ->
        Array.of_list (List.map (Hashtbl.find by_name) nd.App_spec.successors))
      nodes
  in
  let unmet = Array.map (fun (nd : App_spec.node) -> List.length nd.App_spec.predecessors) nodes in
  let entry =
    let out = ref [] in
    Array.iteri (fun j u -> if u = 0 then out := j :: !out) unmet;
    Array.of_list (List.rev !out)
  in
  (* Kernel-template memoization: every instance of an archetype
     starts from the same store bytes, so when the final store is
     independent of dispatch decisions the kernel chain can run once
     here and runs blit the image instead of re-executing identical
     kernels per instance.  A node usually resolves to one physical
     kernel closure across all its supported PEs; when PEs register
     distinct closures (e.g. a CPU and an accelerator variant of the
     same transform), each distinct kernel is executed on a copy of
     the template context and all must produce byte-identical stores.
     The chain runs in topological order — the DAG's dataflow makes
     the final store linearization-independent.  Any resolution
     failure or kernel-output divergence falls back to per-instance
     execution, which preserves the replay contract exactly. *)
  let final =
    try
      let ks =
        Array.map
          (fun (t : Task.t) ->
            let resolved =
              List.filter_map
                (fun pe ->
                  if Task.supports t pe then Some (Exec_model.resolve_kernel t pe)
                  else None)
                pes_list
            in
            match resolved with
            | [] -> raise Exit
            | k :: rest ->
              let distinct =
                List.fold_left
                  (fun acc k' ->
                    if List.exists (fun k0 -> k0 == k') acc then acc else k' :: acc)
                  [ k ] rest
              in
              Array.of_list (List.rev distinct))
          tmpl.Task.tasks
      in
      let stores_eq a b =
        List.for_all
          (fun nm -> Bytes.equal (Store.get_raw a nm) (Store.get_raw b nm))
          (Store.names a)
      in
      let st = Store.create spec.App_spec.variables in
      List.iter
        (fun (nd : App_spec.node) ->
          let j = Hashtbl.find by_name nd.App_spec.node_name in
          let kn = ks.(j) in
          if Array.length kn = 1 then kn.(0) st nd.App_spec.arguments
          else begin
            let ctx = Store.copy st in
            kn.(0) st nd.App_spec.arguments;
            for i = 1 to Array.length kn - 1 do
              let alt = Store.copy ctx in
              kn.(i) alt nd.App_spec.arguments;
              if not (stores_eq alt st) then raise Exit
            done
          end)
        (App_spec.topological_order spec);
      Some st
    with Exit | Invalid_argument _ -> None
  in
  {
    c_spec = spec;
    c_nodes = nodes;
    c_n = n;
    c_unmet = unmet;
    c_succ = succ;
    c_entry = entry;
    c_est = est;
    c_ph_in = ph_in;
    c_ph_comp = ph_comp;
    c_ph_out = ph_out;
    c_fb_dem_in = fb_dem_in;
    c_fb_dem_out = fb_dem_out;
    c_fb_fix_in = fb_fix_in;
    c_fb_fix_out = fb_fix_out;
    c_fb_bytes_in = fb_bytes_in;
    c_fb_bytes_out = fb_bytes_out;
    c_store0 = tmpl.Task.store;
    c_final = final;
  }

let compile ?fault ~(config : Config.t) ~(workload : Workload.t)
    ~(policy : Scheduler.policy) () =
  (match fault with
  | Some _ ->
    raise
      (Unsupported
         "fault plans are outside the compiled engine's replay contract (use the \
          virtual or native engine)")
  | None -> ());
  (match config.Config.fabric with
  | Fabric.Bus { Fabric.topology = Fabric.Mesh _; _ } ->
    raise
      (Unsupported
         "NoC (mesh) fabric topologies are outside the compiled engine's lowering \
          (use the virtual or native engine)")
  | _ -> ());
  let pcode =
    match builtin_pcode policy with
    | Some p -> p
    | None ->
      raise
        (Unsupported
           (Printf.sprintf
              "policy %S is not one of the five built-ins the compiled engine \
               specializes"
              policy.Scheduler.name))
  in
  let pes = Array.of_list (Config.pes config) in
  let n_pes = Array.length pes in
  (* Manager-core table: index 0 is the overlay core (the WM's), the
     rest appear in placement order. *)
  let overlay = config.Config.host.Host.overlay in
  let core_list = ref [ overlay ] in
  let core_index (c : Host.core) =
    let rec go i = function
      | [] ->
        core_list := !core_list @ [ c ];
        i
      | (x : Host.core) :: tl -> if x.Host.core_id = c.Host.core_id then i else go (i + 1) tl
    in
    go 0 !core_list
  in
  let core_of_pe =
    Array.of_list
      (List.map (fun (p : Config.placement) -> core_index p.Config.host_core)
         config.Config.placements)
  in
  let cores = Array.of_list !core_list in
  let core_rate1 =
    Array.map
      (fun (c : Host.core) ->
        float_of_int c.Host.quantum_ns
        /. (float_of_int c.Host.quantum_ns +. float_of_int c.Host.ctx_switch_ns))
      cores
  in
  (* Archetype discovery: one class per distinct spec (shared refs
     first, structural equality as the fallback for re-parsed JSON). *)
  let items = Array.of_list workload.Workload.items in
  let class_specs : App_spec.t list ref = ref [] in
  let class_of spec =
    let rec go i = function
      | [] ->
        class_specs := !class_specs @ [ spec ];
        i
      | s :: tl -> if s == spec || s = spec then i else go (i + 1) tl
    in
    go 0 !class_specs
  in
  let item_class = Array.map (fun (it : Workload.item) -> class_of it.Workload.spec) items in
  let classes = Array.of_list (List.map (build_class ~config ~pes) !class_specs) in
  let n_items = Array.length items in
  let task_base = Array.make (max 1 n_items) 0 in
  let total = ref 0 in
  Array.iteri
    (fun idx ci ->
      task_base.(idx) <- !total;
      total := !total + classes.(ci).c_n)
    item_class;
  let n_tasks = !total in
  let est = Array.make (max 1 (n_tasks * n_pes)) min_int in
  let ph_in = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let ph_comp = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let ph_out = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let fb_dem_in = Array.make (max 1 (n_tasks * n_pes)) (-1) in
  let fb_dem_out = Array.make (max 1 (n_tasks * n_pes)) (-1) in
  let fb_fix_in = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let fb_fix_out = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let fb_bytes_in = Array.make (max 1 (n_tasks * n_pes)) 0 in
  let fb_bytes_out = Array.make (max 1 (n_tasks * n_pes)) 0 in
  Array.iteri
    (fun idx ci ->
      let cls = classes.(ci) in
      let len = cls.c_n * n_pes in
      if len > 0 then begin
        let dst = task_base.(idx) * n_pes in
        Array.blit cls.c_est 0 est dst len;
        Array.blit cls.c_ph_in 0 ph_in dst len;
        Array.blit cls.c_ph_comp 0 ph_comp dst len;
        Array.blit cls.c_ph_out 0 ph_out dst len;
        Array.blit cls.c_fb_dem_in 0 fb_dem_in dst len;
        Array.blit cls.c_fb_dem_out 0 fb_dem_out dst len;
        Array.blit cls.c_fb_fix_in 0 fb_fix_in dst len;
        Array.blit cls.c_fb_fix_out 0 fb_fix_out dst len;
        Array.blit cls.c_fb_bytes_in 0 fb_bytes_in dst len;
        Array.blit cls.c_fb_bytes_out 0 fb_bytes_out dst len
      end)
    item_class;
  {
    p_config = config;
    p_policy = policy;
    p_pcode = pcode;
    p_classes = classes;
    p_item_class = item_class;
    p_item_arrival = Array.map (fun (it : Workload.item) -> it.Workload.arrival_ns) items;
    p_task_base = task_base;
    p_n_pes = n_pes;
    p_pes = pes;
    p_pe_is_cpu = Array.map (fun pe -> Pe.is_cpu pe.Pe.kind) pes;
    p_pe_busy_w = Array.map (fun pe -> Pe.busy_w pe.Pe.kind) pes;
    p_est = est;
    p_ph_in = ph_in;
    p_ph_comp = ph_comp;
    p_ph_out = ph_out;
    p_fabric = config.Config.fabric;
    p_fb_dem_in = fb_dem_in;
    p_fb_dem_out = fb_dem_out;
    p_fb_fix_in = fb_fix_in;
    p_fb_fix_out = fb_fix_out;
    p_fb_bytes_in = fb_bytes_in;
    p_fb_bytes_out = fb_bytes_out;
    p_core_of_pe = core_of_pe;
    p_core_rate1 = core_rate1;
    p_overlay_perf = config.Config.host.Host.overlay.Host.core_class.Pe.perf_factor;
  }

(* ------------------------------------------------------------------ *)
(* Instantiation (replicates Task.instantiate via the class tables)    *)
(* ------------------------------------------------------------------ *)

let instantiate_fast plan =
  Array.init (Array.length plan.p_item_class) (fun idx ->
      let cls = plan.p_classes.(plan.p_item_class.(idx)) in
      let base = plan.p_task_base.(idx) in
      let spec = cls.c_spec in
      let store = Store.copy cls.c_store0 in
      let tasks =
        Array.init cls.c_n (fun j ->
            {
              Task.id = base + j;
              instance_id = idx;
              app_name = spec.App_spec.app_name;
              node = cls.c_nodes.(j);
              spec;
              store;
              status = Task.Blocked;
              unmet = cls.c_unmet.(j);
              successors = [];
              ready_at = -1;
              dispatched_at = -1;
              completed_at = -1;
              pe_label = "";
              attempts = 0;
              last_failure = None;
            })
      in
      Array.iteri
        (fun j (t : Task.t) ->
          t.Task.successors <-
            Array.to_list (Array.map (fun k -> tasks.(k)) cls.c_succ.(j)))
        tasks;
      {
        Task.inst_id = idx;
        app = spec;
        store;
        arrival_ns = plan.p_item_arrival.(idx);
        tasks;
        entry = Array.to_list (Array.map (fun k -> tasks.(k)) cls.c_entry);
        remaining = cls.c_n;
        completed_at = -1;
        cancelled = false;
      })

(* ------------------------------------------------------------------ *)
(* The monomorphic event loop                                          *)
(* ------------------------------------------------------------------ *)

let sched_window = Cost_model.sched_examined_cap

(* Event kinds in the integer-encoded heap. *)
let ev_start_rm = 0
let ev_start_wm = 1
let ev_resume = 2
let ev_core = 3
let ev_deadline = 4
let ev_fab = 5

let run_detailed ?(obs = Obs.disabled) plan (params : Core.params) =
  let instances = instantiate_fast plan in
  let config = plan.p_config in
  let n_pes = plan.p_n_pes in
  let stride = n_pes in
  let wm_th = n_pes in
  let n_thr = n_pes + 1 in
  let prng = Prng.create ~seed:params.Core.seed in
  let jitter = params.Core.jitter in
  let est = plan.p_est in
  let handlers =
    Array.mapi
      (fun i pe ->
        Core.make_handler ~pe ~index:i ~reservation_depth:params.Core.reservation_depth ())
      plan.p_pes
  in
  let stats = Core.make_stats () in
  (* Observability lowering: [traced] is constant for the whole run, so
     the untraced loop pays one predictable branch per hook site.
     Metric registration order mirrors the reference engine exactly —
     engine handles, then (bus only) the fabric instruments, then the
     event-heap depth gauge — so [Metrics.pp] output is comparable
     byte-for-byte across engines. *)
  let traced = Obs.enabled obs in
  Obs.attach_pes obs ~pe_labels:(Array.map (fun pe -> pe.Pe.label) plan.p_pes);
  let inst_memo =
    Array.map (fun ci -> Option.is_some plan.p_classes.(ci).c_final) plan.p_item_class
  in
  (* ---- virtual clock and SoA event heap, (time, seq) ordered ---- *)
  let now = ref 0 in
  let hcap = ref 1024 in
  let ht = ref (Array.make !hcap 0) in
  let hs = ref (Array.make !hcap 0) in
  let hk = ref (Array.make !hcap 0) in
  let ha = ref (Array.make !hcap 0) in
  let hb = ref (Array.make !hcap 0) in
  let hn = ref 0 in
  let hseq = ref 0 in
  let hless i j =
    let ti = !ht.(i) and tj = !ht.(j) in
    ti < tj || (ti = tj && !hs.(i) < !hs.(j))
  in
  let hswap i j =
    let t = !ht.(i) in
    !ht.(i) <- !ht.(j);
    !ht.(j) <- t;
    let t = !hs.(i) in
    !hs.(i) <- !hs.(j);
    !hs.(j) <- t;
    let t = !hk.(i) in
    !hk.(i) <- !hk.(j);
    !hk.(j) <- t;
    let t = !ha.(i) in
    !ha.(i) <- !ha.(j);
    !ha.(j) <- t;
    let t = !hb.(i) in
    !hb.(i) <- !hb.(j);
    !hb.(j) <- t
  in
  let hgrow () =
    let ncap = !hcap * 2 in
    let g a = let n = Array.make ncap 0 in Array.blit !a 0 n 0 !hn; a := n in
    g ht; g hs; g hk; g ha; g hb;
    hcap := ncap
  in
  let push t k a b =
    let t = if t < !now then !now else t in
    if !hn = !hcap then hgrow ();
    let i = !hn in
    !ht.(i) <- t;
    !hs.(i) <- !hseq;
    !hk.(i) <- k;
    !ha.(i) <- a;
    !hb.(i) <- b;
    hseq := !hseq + 1;
    hn := !hn + 1;
    let i = ref i in
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if hless !i parent then begin
        hswap !i parent;
        i := parent
      end
      else continue_ := false
    done
  in
  let sift_down () =
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < !hn && hless l !smallest then smallest := l;
      if r < !hn && hless r !smallest then smallest := r;
      if !smallest <> !i then begin
        hswap !i !smallest;
        i := !smallest
      end
      else continue_ := false
    done
  in
  (* ---- per-thread waiter state (one outstanding suspension each) ---- *)
  let w_gen = Array.make n_thr 0 in
  let w_resumed = Array.make n_thr true in
  let resume_thread th =
    if not w_resumed.(th) then begin
      w_resumed.(th) <- true;
      push !now ev_resume th 0
    end
  in
  let suspend th =
    w_resumed.(th) <- false;
    w_gen.(th) <- w_gen.(th) + 1
  in
  (* ---- processor-sharing cores (virtual_engine's update/reschedule) ---- *)
  let n_cores = Array.length plan.p_core_rate1 in
  let c_last = Array.make n_cores 0 in
  let c_version = Array.make n_cores 0 in
  let c_njobs = Array.make n_cores 0 in
  let c_rem = Array.init n_cores (fun _ -> Array.make n_thr 0.0) in
  let c_thr = Array.init n_cores (fun _ -> Array.make n_thr (-1)) in
  let c_fin = Array.make n_thr (-1) in
  let job_rate c k = if k <= 1 then 1.0 else plan.p_core_rate1.(c) /. float_of_int k in
  let update_core c =
    let elapsed = !now - c_last.(c) in
    if elapsed > 0 then begin
      let k = c_njobs.(c) in
      if k > 0 then begin
        let progress = float_of_int elapsed *. job_rate c k in
        let rem = c_rem.(c) in
        for j = 0 to k - 1 do
          rem.(j) <- rem.(j) -. progress
        done
      end;
      c_last.(c) <- !now
    end
  in
  let reschedule_core c =
    c_version.(c) <- c_version.(c) + 1;
    let k = c_njobs.(c) in
    if k > 0 then begin
      let rate = job_rate c k in
      let rem = c_rem.(c) in
      let mn = ref Float.infinity in
      for j = 0 to k - 1 do
        mn := Float.min !mn rem.(j)
      done;
      let dt = int_of_float (Float.ceil (Float.max 0.0 !mn /. rate)) in
      push (!now + dt) ev_core c c_version.(c)
    end
  in
  let add_job c th ns =
    update_core c;
    let k = c_njobs.(c) in
    c_rem.(c).(k) <- float_of_int ns;
    c_thr.(c).(k) <- th;
    c_njobs.(c) <- k + 1;
    reschedule_core c
  in
  let core_event c v =
    if v = c_version.(c) then begin
      update_core c;
      let k = c_njobs.(c) in
      let rem = c_rem.(c) and thr = c_thr.(c) in
      let nf = ref 0 and w = ref 0 in
      for j = 0 to k - 1 do
        if rem.(j) <= 1e-6 then begin
          c_fin.(!nf) <- thr.(j);
          incr nf
        end
        else begin
          rem.(!w) <- rem.(j);
          thr.(!w) <- thr.(j);
          incr w
        end
      done;
      c_njobs.(c) <- !w;
      reschedule_core c;
      for j = 0 to !nf - 1 do
        resume_thread c_fin.(j)
      done
    end
  in
  (* ---- shared fabric link (virtual_engine's fab_* machinery, flat) ----
     One processor-shared link; at most one outstanding DMA stream per
     PE, so n_pes bounds both the in-flight set and the stall queue.
     Event/heap traffic is push-for-push identical to the reference
     engine: admission is inline (no event), a full FIFO enqueues with
     no event, and each completion batch re-arms exactly one ev_fab. *)
  let fabric_counters = Core.make_fabric_counters () in
  let fab_fifo =
    match plan.p_fabric with
    | Fabric.Bus b -> b.Fabric.fifo_depth
    | Fabric.Ideal -> max_int
  in
  let metrics = Obs.metrics obs in
  (* The reference engine's fabric record registers the stall histogram
     before the occupancy gauge; [Metrics.pp] order is part of the
     cross-engine parity contract. *)
  let fb_stall_hist =
    match plan.p_fabric with
    | Fabric.Bus _ ->
      Option.map (fun m -> Obs.Metrics.histogram m "fabric_stall_ns") metrics
    | Fabric.Ideal -> None
  in
  let fb_occ =
    match plan.p_fabric with
    | Fabric.Bus _ -> Option.map (fun m -> Obs.Metrics.gauge m "fabric_occupancy") metrics
    | Fabric.Ideal -> None
  in
  let heap_gauge = Option.map (fun m -> Obs.Metrics.gauge m "event_heap_depth") metrics in
  let fb_last = ref 0 in
  let fb_version = ref 0 in
  let fb_njobs = ref 0 in
  let fb_rem = Array.make (max 1 n_pes) 0.0 in
  let fb_thr = Array.make (max 1 n_pes) (-1) in
  let fb_fin = Array.make (max 1 n_pes) (-1) in
  let fb_queue : int Queue.t = Queue.create () in
  let fb_qt0 = Array.make (max 1 n_pes) 0 in
  let fb_qdem = Array.make (max 1 n_pes) 0 in
  let fb_qbytes = Array.make (max 1 n_pes) 0 in
  let fab_rate k = if k <= 1 then 1.0 else 1.0 /. float_of_int k in
  let update_fab () =
    let elapsed = !now - !fb_last in
    if elapsed > 0 then begin
      let k = !fb_njobs in
      if k > 0 then begin
        let progress = float_of_int elapsed *. fab_rate k in
        for j = 0 to k - 1 do
          fb_rem.(j) <- fb_rem.(j) -. progress
        done
      end;
      fb_last := !now
    end
  in
  let fab_admit th dem bytes ~stall_ns =
    let k = !fb_njobs in
    fb_rem.(k) <- float_of_int dem;
    fb_thr.(k) <- th;
    fb_njobs := k + 1;
    let c = fabric_counters in
    c.Core.fc_stall_ns <- c.Core.fc_stall_ns + stall_ns;
    if !fb_njobs > c.Core.fc_max_inflight then c.Core.fc_max_inflight <- !fb_njobs;
    (match fb_stall_hist with
    | Some h when stall_ns > 0 -> Obs.Metrics.observe h (float_of_int stall_ns)
    | _ -> ());
    if traced then
      Obs.on_stream_admitted obs ~now:!now ~pe_index:th ~bytes ~stall_ns
        ~inflight:!fb_njobs
  in
  let set_fb_occ () =
    match fb_occ with
    | Some g -> Obs.Metrics.set g ~t_ns:!now !fb_njobs
    | None -> ()
  in
  let reschedule_fab () =
    fb_version := !fb_version + 1;
    let k = !fb_njobs in
    if k > 0 then begin
      let rate = fab_rate k in
      let mn = ref Float.infinity in
      for j = 0 to k - 1 do
        mn := Float.min !mn fb_rem.(j)
      done;
      let dt = int_of_float (Float.ceil (Float.max 0.0 !mn /. rate)) in
      push (!now + dt) ev_fab !fb_version 0
    end
  in
  let fab_event v =
    if v = !fb_version then begin
      update_fab ();
      let k = !fb_njobs in
      let nf = ref 0 and w = ref 0 in
      for j = 0 to k - 1 do
        if fb_rem.(j) <= 1e-6 then begin
          fb_fin.(!nf) <- fb_thr.(j);
          incr nf
        end
        else begin
          fb_rem.(!w) <- fb_rem.(j);
          fb_thr.(!w) <- fb_thr.(j);
          incr w
        end
      done;
      fb_njobs := !w;
      while (not (Queue.is_empty fb_queue)) && !fb_njobs < fab_fifo do
        let th = Queue.pop fb_queue in
        fab_admit th fb_qdem.(th) fb_qbytes.(th) ~stall_ns:(!now - fb_qt0.(th))
      done;
      set_fb_occ ();
      reschedule_fab ();
      for j = 0 to !nf - 1 do
        resume_thread fb_fin.(j)
      done
    end
  in
  let fab_submit th dem bytes =
    let c = fabric_counters in
    c.Core.fc_streams <- c.Core.fc_streams + 1;
    if !fb_njobs < fab_fifo then begin
      update_fab ();
      fab_admit th dem bytes ~stall_ns:0;
      set_fb_occ ();
      reschedule_fab ()
    end
    else begin
      c.Core.fc_stalls <- c.Core.fc_stalls + 1;
      if traced then
        Obs.on_stream_stalled obs ~now:!now ~pe_index:th ~bytes
          ~queued:(Queue.length fb_queue + 1);
      fb_qt0.(th) <- !now;
      fb_qdem.(th) <- dem;
      fb_qbytes.(th) <- bytes;
      Queue.add th fb_queue
    end
  in
  (* ---- condition variables (wm_wake + one per resource manager) ---- *)
  let vh_pending = Array.make (max 1 n_pes) false in
  let vh_waiting = Array.make (max 1 n_pes) false in
  let wm_pending = ref false in
  let wm_waiting = ref false in
  let signal_rm i =
    if vh_waiting.(i) then begin
      vh_waiting.(i) <- false;
      resume_thread i
    end
    else vh_pending.(i) <- true
  in
  let signal_wm () =
    if !wm_waiting then begin
      wm_waiting := false;
      resume_thread wm_th
    end
    else wm_pending := true
  in
  let jit ns = Core.jittered prng ~jitter ns in
  let overlay_perf = plan.p_overlay_perf in
  let scale ns = int_of_float (Float.round (ns /. overlay_perf)) in
  (* ---- workload-manager state ----
     The ready collection is an intrusive doubly-linked list over dense
     task ids: append on ready, O(1) unlink on dispatch.  It holds
     exactly the Ready tasks in insertion order — the same sequence the
     reference engine's queue exposes once stale (already-dispatched)
     entries are skipped — so the scheduling window never rescans stale
     entries and never allocates. *)
  let n_tasks = if stride = 0 then 0 else Array.length est / stride in
  let tk_of =
    if n_tasks = 0 then [||]
    else begin
      let d = ref None in
      (try
         Array.iter
           (fun (inst : Task.instance) ->
             if Array.length inst.Task.tasks > 0 then begin
               d := Some inst.Task.tasks.(0);
               raise Exit
             end)
           instances
       with Exit -> ());
      match !d with
      | None -> [||]
      | Some d0 ->
        let a = Array.make n_tasks d0 in
        Array.iter
          (fun (inst : Task.instance) ->
            Array.iter (fun (t : Task.t) -> a.(t.Task.id) <- t) inst.Task.tasks)
          instances;
        a
    end
  in
  let rl_nxt = Array.make (max 1 n_tasks) (-1) in
  let rl_prv = Array.make (max 1 n_tasks) (-1) in
  let rl_head = ref (-1) in
  let rl_tail = ref (-1) in
  let rl_append id =
    if !rl_tail < 0 then rl_head := id
    else begin
      rl_nxt.(!rl_tail) <- id;
      rl_prv.(id) <- !rl_tail
    end;
    rl_nxt.(id) <- -1;
    rl_tail := id
  in
  let rl_unlink id =
    let p = rl_prv.(id) and n = rl_nxt.(id) in
    if p >= 0 then rl_nxt.(p) <- n else rl_head := n;
    if n >= 0 then rl_prv.(n) <- p else rl_tail := p;
    rl_prv.(id) <- -1
  in
  let ready_live = ref 0 in
  let inflight = ref 0 in
  let n_items = Array.length instances in
  let pending_idx = ref 0 in
  let unfinished = ref n_items in
  let wm_pc = ref 0 in
  let sw_hi = ref 0 in
  let sw_batch = ref false in
  let ds_ret = ref 0 in
  let ds_cost = ref 0 in
  let ds_pos = ref 0 in
  let ds_ready = ref 0 in
  let ds_nready = ref 0 in
  let tick_completions = ref 0 in
  let tick_injected = ref 0 in
  let idle = Array.make (max 1 n_pes) false in
  let avail = Array.make (max 1 n_pes) 0 in
  let cand = Array.make (max 1 n_pes) 0 in
  let as_task : Task.t array ref = ref [||] in
  let as_pe = Array.make (max 1 n_pes) 0 in
  let as_n = ref 0 in
  let make_ready (t : Task.t) =
    t.Task.status <- Task.Ready;
    t.Task.ready_at <- !now;
    rl_append t.Task.id;
    incr ready_live;
    if traced then
      Obs.on_task_ready obs ~now:t.Task.ready_at ~task:t.Task.id
        ~instance:t.Task.instance_id ~app:t.Task.app_name
        ~node:t.Task.node.App_spec.node_name ~ready_depth:!ready_live
  in
  (* ---- resource-manager threads (engine_core.resource_manager) ---- *)
  let rm_pc = Array.make (max 1 n_pes) 0 in
  let rm_task : Task.t option array = Array.make (max 1 n_pes) None in
  let rm_started = Array.make (max 1 n_pes) 0 in
  (* Start of the current accelerator phase, for traced Phase spans. *)
  let rm_ph0 = Array.make (max 1 n_pes) 0 in
  let rm_cur i =
    match rm_task.(i) with Some t -> t | None -> assert false
  in
  let rec rm_await i =
    if vh_pending.(i) then begin
      vh_pending.(i) <- false;
      rm_wake i
    end
    else begin
      vh_waiting.(i) <- true;
      suspend i;
      rm_pc.(i) <- 1
    end
  and rm_wake i = if handlers.(i).Core.h_stop then () else rm_drain i
  and rm_drain i =
    let h = handlers.(i) in
    match Queue.take_opt h.Core.h_pending with
    | None -> rm_await i
    | Some task ->
      if traced && h.Core.h_capacity > 1 then
        Obs.on_reservation_popped obs ~now:!now ~pe_index:i
          ~depth:(Queue.length h.Core.h_pending);
      rm_task.(i) <- Some task;
      rm_started.(i) <- !now;
      let row = (task.Task.id * stride) + i in
      if plan.p_pe_is_cpu.(i) then begin
        if not inst_memo.(task.Task.instance_id) then begin
          let k = Exec_model.resolve_kernel task h.Core.h_pe in
          k task.Task.store task.Task.node.App_spec.arguments
        end;
        rm_work i (jit est.(row)) 2
      end
      else begin
        if traced then rm_ph0.(i) <- !now;
        let dem = plan.p_fb_dem_in.(row) in
        if dem < 0 then rm_work i (jit plan.p_ph_in.(row)) 3
        else begin
          let d = jit dem in
          if d > 0 then begin
            rm_pc.(i) <- 6;
            suspend i;
            fab_submit i d plan.p_fb_bytes_in.(row)
          end
          else rm_fab_fix i plan.p_fb_fix_in.(row) 3
        end
      end
  and rm_work i ns pc =
    if ns <= 0 then rm_goto i pc
    else begin
      rm_pc.(i) <- pc;
      suspend i;
      add_job plan.p_core_of_pe.(i) i ns
    end
  and rm_acc_after_in i =
    let task = rm_cur i in
    if traced then
      Obs.on_phase obs ~now:!now ~task:task.Task.id ~pe_index:i ~phase:Obs.Dma_in
        ~start_ns:rm_ph0.(i) ~dur_ns:(!now - rm_ph0.(i));
    if not inst_memo.(task.Task.instance_id) then begin
      let k = Exec_model.resolve_kernel task handlers.(i).Core.h_pe in
      k task.Task.store task.Task.node.App_spec.arguments
    end;
    if traced then rm_ph0.(i) <- !now;
    let ns = jit plan.p_ph_comp.((task.Task.id * stride) + i) in
    if ns <= 0 then rm_acc_after_comp i
    else begin
      rm_pc.(i) <- 4;
      suspend i;
      push (!now + ns) ev_deadline i w_gen.(i)
    end
  and rm_acc_after_comp i =
    let task = rm_cur i in
    if traced then begin
      Obs.on_phase obs ~now:!now ~task:task.Task.id ~pe_index:i
        ~phase:Obs.Device_compute ~start_ns:rm_ph0.(i) ~dur_ns:(!now - rm_ph0.(i));
      rm_ph0.(i) <- !now
    end;
    let row = (task.Task.id * stride) + i in
    let dem = plan.p_fb_dem_out.(row) in
    if dem < 0 then rm_work i (jit plan.p_ph_out.(row)) 5
    else begin
      let d = jit dem in
      if d > 0 then begin
        rm_pc.(i) <- 7;
        suspend i;
        fab_submit i d plan.p_fb_bytes_out.(row)
      end
      else rm_fab_fix i plan.p_fb_fix_out.(row) 5
    end
  and rm_fab_fix i fix pc =
    (* Fixed chunk/hop latency after the shared-link service — the
       reference engine's [sleep_ns], i.e. an ev_deadline + ev_resume
       pair, or an inline continue when zero. *)
    if fix <= 0 then rm_goto i pc
    else begin
      rm_pc.(i) <- pc;
      suspend i;
      push (!now + fix) ev_deadline i w_gen.(i)
    end
  and rm_finish i =
    let task = rm_cur i in
    let h = handlers.(i) in
    task.Task.completed_at <- !now;
    h.Core.h_busy_ns <- h.Core.h_busy_ns + (!now - rm_started.(i));
    h.Core.h_tasks_run <- h.Core.h_tasks_run + 1;
    Queue.add task h.Core.h_completed;
    signal_wm ();
    rm_drain i
  and rm_goto i pc =
    match pc with
    | 1 -> rm_wake i
    | 2 -> rm_finish i
    | 5 ->
      if traced then begin
        let task = rm_cur i in
        Obs.on_phase obs ~now:!now ~task:task.Task.id ~pe_index:i
          ~phase:Obs.Dma_out ~start_ns:rm_ph0.(i) ~dur_ns:(!now - rm_ph0.(i))
      end;
      rm_finish i
    | 3 -> rm_acc_after_in i
    | 4 -> rm_acc_after_comp i
    | 6 ->
      let task = rm_cur i in
      rm_fab_fix i plan.p_fb_fix_in.((task.Task.id * stride) + i) 3
    | 7 ->
      let task = rm_cur i in
      rm_fab_fix i plan.p_fb_fix_out.((task.Task.id * stride) + i) 5
    | _ -> assert false
  in
  (* ---- workload-manager thread (engine_core.workload_manager,
     fault off; observability lowered at the same protocol points) ---- *)
  let rec wm_charge ns pc =
    let c = scale ns in
    stats.Core.wm_ns <- stats.Core.wm_ns + c;
    if c <= 0 then wm_goto pc
    else begin
      wm_pc := pc;
      suspend wm_th;
      add_job 0 wm_th c
    end
  and wm_tick_top () =
    if traced then begin
      tick_completions := 0;
      tick_injected := 0
    end;
    wm_charge (Cost_model.monitor_per_pe_ns *. float_of_int n_pes) 10
  and wm_sweep_start () =
    sw_hi := 0;
    sw_batch := false;
    wm_sweep_cont ()
  and wm_sweep_cont () =
    if !sw_hi >= n_pes then begin
      if !sw_batch then do_schedule 1 else wm_inject ()
    end
    else begin
      let h = handlers.(!sw_hi) in
      match Queue.take_opt h.Core.h_completed with
      | None ->
        incr sw_hi;
        wm_sweep_cont ()
      | Some task ->
        h.Core.h_inflight <- h.Core.h_inflight - 1;
        decr inflight;
        if traced then begin
          incr tick_completions;
          Obs.on_task_completed obs ~now:task.Task.completed_at ~task:task.Task.id
            ~instance:task.Task.instance_id ~app:task.Task.app_name
            ~node:task.Task.node.App_spec.node_name ~pe:task.Task.pe_label
            ~pe_index:h.Core.h_index
            ~service_ns:(task.Task.completed_at - task.Task.dispatched_at)
            ~pe_depth:h.Core.h_inflight ~inflight:!inflight
        end;
        task.Task.status <- Task.Done;
        stats.Core.records <-
          {
            Stats.app = task.Task.app_name;
            instance = task.Task.instance_id;
            node = task.Task.node.App_spec.node_name;
            pe = task.Task.pe_label;
            ready_ns = task.Task.ready_at;
            dispatched_ns = task.Task.dispatched_at;
            completed_ns = task.Task.completed_at;
          }
          :: stats.Core.records;
        let inst = instances.(task.Task.instance_id) in
        inst.Task.remaining <- inst.Task.remaining - 1;
        if inst.Task.remaining = 0 then begin
          inst.Task.completed_at <- !now;
          decr unfinished
        end;
        let newly = ref 0 in
        List.iter
          (fun (succ : Task.t) ->
            succ.Task.unmet <- succ.Task.unmet - 1;
            if succ.Task.unmet = 0 then begin
              make_ready succ;
              incr newly
            end)
          task.Task.successors;
        if !newly > 0 then
          wm_charge (Cost_model.ready_update_per_task_ns *. float_of_int !newly) 11
        else wm_after_completion ()
    end
  and wm_after_completion () =
    if handlers.(!sw_hi).Core.h_capacity <= 1 then do_schedule 0
    else begin
      sw_batch := true;
      wm_sweep_cont ()
    end
  and do_schedule ret =
    ds_ret := ret;
    let n_idle = ref 0 in
    for i = 0 to n_pes - 1 do
      let b = handlers.(i).Core.h_inflight < handlers.(i).Core.h_capacity in
      idle.(i) <- b;
      if b then incr n_idle
    done;
    if !ready_live = 0 || !n_idle = 0 then ds_end ()
    else begin
      let ready_len = !ready_live in
      let nready = if ready_len < sched_window then ready_len else sched_window in
      if traced then begin
        ds_ready := ready_len;
        ds_nready := nready
      end;
      as_n := 0;
      run_policy nready !n_idle;
      let cost =
        scale
          (float_of_int
             (Scheduler.overhead_ns ~policy_name:plan.p_policy.Scheduler.name
                ~ready:ready_len ~pes:n_pes ~ops:(nready * n_pes)))
      in
      ds_cost := cost;
      stats.Core.wm_ns <- stats.Core.wm_ns + cost;
      if cost <= 0 then wm_after_sched_work ()
      else begin
        wm_pc := 12;
        suspend wm_th;
        add_job 0 wm_th cost
      end
    end
  (* The reference scans its whole <= [sched_window] window, but an
     assignment can only ever land on an idle PE and every other
     per-entry computation is scratch — so once the idle budget is
     exhausted the rest of the walk is unobservable (RANDOM included:
     its candidate list, and hence any PRNG draw, is idle-gated).
     Breaking early there is exact. *)
  and run_policy nready n_idle0 =
    let emit (t : Task.t) i =
      if Array.length !as_task = 0 then as_task := Array.make (max 1 n_pes) t;
      !as_task.(!as_n) <- t;
      as_pe.(!as_n) <- i;
      incr as_n
    in
    let n_idle = ref n_idle0 in
    let cur = ref !rl_head in
    let j = ref 0 in
    (match plan.p_pcode with
    | P_frfs ->
      while !j < nready && !n_idle > 0 do
        let t = tk_of.(!cur) in
        let row = t.Task.id * stride in
        let chosen = ref (-1) in
        for i = 0 to n_pes - 1 do
          if !chosen < 0 && idle.(i) && est.(row + i) <> min_int then chosen := i
        done;
        if !chosen >= 0 then begin
          idle.(!chosen) <- false;
          decr n_idle;
          emit t !chosen
        end;
        cur := rl_nxt.(!cur);
        incr j
      done
    | P_met ->
      while !j < nready && !n_idle > 0 do
        let t = tk_of.(!cur) in
        let row = t.Task.id * stride in
        let best = ref (-1) and best_est = ref 0 in
        for i = 0 to n_pes - 1 do
          if idle.(i) then begin
            let e = est.(row + i) in
            if e <> min_int && (!best < 0 || e < !best_est) then begin
              best := i;
              best_est := e
            end
          end
        done;
        if !best >= 0 then begin
          idle.(!best) <- false;
          decr n_idle;
          emit t !best
        end;
        cur := rl_nxt.(!cur);
        incr j
      done
    | P_eft ->
      let now_v = !now in
      for i = 0 to n_pes - 1 do
        avail.(i) <- (if idle.(i) then now_v else handlers.(i).Core.h_busy_until)
      done;
      while !j < nready && !n_idle > 0 do
        let t = tk_of.(!cur) in
        let row = t.Task.id * stride in
        let best = ref (-1) and best_fin = ref 0 in
        for i = 0 to n_pes - 1 do
          let e = est.(row + i) in
          if e <> min_int then begin
            let fin = max now_v avail.(i) + e in
            if !best < 0 || fin < !best_fin then begin
              best := i;
              best_fin := fin
            end
          end
        done;
        if !best >= 0 then begin
          avail.(!best) <- !best_fin;
          if idle.(!best) then begin
            idle.(!best) <- false;
            decr n_idle;
            emit t !best
          end
        end;
        cur := rl_nxt.(!cur);
        incr j
      done
    | P_power ->
      while !j < nready && !n_idle > 0 do
        let t = tk_of.(!cur) in
        let row = t.Task.id * stride in
        let best = ref (-1) and best_energy = ref 0.0 and best_est = ref 0 in
        for i = 0 to n_pes - 1 do
          if idle.(i) then begin
            let e = est.(row + i) in
            if e <> min_int then begin
              let energy = float_of_int e *. plan.p_pe_busy_w.(i) in
              if
                !best < 0 || energy < !best_energy
                || (energy = !best_energy && e < !best_est)
              then begin
                best := i;
                best_energy := energy;
                best_est := e
              end
            end
          end
        done;
        if !best >= 0 then begin
          idle.(!best) <- false;
          decr n_idle;
          emit t !best
        end;
        cur := rl_nxt.(!cur);
        incr j
      done
    | P_random ->
      while !j < nready && !n_idle > 0 do
        let t = tk_of.(!cur) in
        let row = t.Task.id * stride in
        let cn = ref 0 in
        for i = 0 to n_pes - 1 do
          if idle.(i) && est.(row + i) <> min_int then begin
            cand.(!cn) <- i;
            incr cn
          end
        done;
        if !cn > 0 then begin
          (* The reference builds the candidate list by prepending
             ascending PE indices (so the array Prng.choose indexes is
             descending); replicate the draw against that ordering. *)
          let k = Prng.int prng !cn in
          let i = cand.(!cn - 1 - k) in
          idle.(i) <- false;
          decr n_idle;
          emit t i
        end;
        cur := rl_nxt.(!cur);
        incr j
      done)
  and wm_after_sched_work () =
    stats.Core.sched_ns <- stats.Core.sched_ns + !ds_cost;
    stats.Core.sched_invocations <- stats.Core.sched_invocations + 1;
    if traced then
      Obs.on_sched obs ~now:!now ~ready:!ds_ready ~examined:!ds_nready
        ~ops:(!ds_nready * n_pes) ~cost_ns:!ds_cost ~assigned:!as_n;
    ds_pos := 0;
    wm_dispatch_next ()
  and wm_dispatch_next () =
    if !ds_pos >= !as_n then ds_end ()
    else wm_charge Cost_model.dispatch_per_task_ns 13
  and wm_dispatch_commit () =
    let j = !ds_pos in
    let task = !as_task.(j) and pi = as_pe.(j) in
    let h = handlers.(pi) in
    task.Task.status <- Task.Running;
    task.Task.attempts <- task.Task.attempts + 1;
    rl_unlink task.Task.id;
    decr ready_live;
    task.Task.dispatched_at <- !now;
    task.Task.pe_label <- h.Core.h_pe.Pe.label;
    Queue.add task h.Core.h_pending;
    h.Core.h_inflight <- h.Core.h_inflight + 1;
    incr inflight;
    h.Core.h_busy_until <-
      max !now h.Core.h_busy_until + est.((task.Task.id * stride) + pi);
    if traced then begin
      Obs.on_task_dispatched obs ~now:!now ~task:task.Task.id
        ~instance:task.Task.instance_id ~app:task.Task.app_name
        ~node:task.Task.node.App_spec.node_name ~pe:h.Core.h_pe.Pe.label
        ~pe_index:pi ~wait_ns:(!now - task.Task.ready_at) ~ready_depth:!ready_live
        ~pe_depth:h.Core.h_inflight ~inflight:!inflight;
      if h.Core.h_capacity > 1 then
        Obs.on_reservation_enqueued obs ~now:!now ~pe_index:pi
          ~depth:(Queue.length h.Core.h_pending)
    end;
    signal_rm pi;
    incr ds_pos;
    wm_dispatch_next ()
  and ds_end () =
    match !ds_ret with
    | 0 -> wm_sweep_cont ()
    | 1 -> wm_inject ()
    | _ -> wm_tick_tail ()
  and wm_inject () =
    let injected = ref 0 in
    let now_v = !now in
    while
      !pending_idx < n_items && instances.(!pending_idx).Task.arrival_ns <= now_v
    do
      let inst = instances.(!pending_idx) in
      incr pending_idx;
      if traced then
        Obs.on_instance_injected obs ~now:now_v ~instance:inst.Task.inst_id
          ~app:inst.Task.app.App_spec.app_name;
      List.iter
        (fun t ->
          make_ready t;
          incr injected)
        inst.Task.entry
    done;
    if traced then tick_injected := !injected;
    if !injected > 0 then
      wm_charge (Cost_model.ready_update_per_task_ns *. float_of_int !injected) 14
    else wm_tick_tail ()
  and wm_after_inject () = do_schedule 2
  and wm_tick_tail () =
    (match heap_gauge with
    | Some g -> Obs.Metrics.set g ~t_ns:!now !hn
    | None -> ());
    if traced then
      Obs.on_wm_tick obs ~now:!now ~completions:!tick_completions
        ~injected:!tick_injected;
    if !unfinished = 0 && !pending_idx >= n_items then
      Array.iter
        (fun (h : unit Core.handler) ->
          h.Core.h_stop <- true;
          signal_rm h.Core.h_index)
        handlers
    else begin
      if !wm_pending then begin
        wm_pending := false;
        wm_tick_top ()
      end
      else begin
        wm_waiting := true;
        suspend wm_th;
        if !pending_idx < n_items then
          push instances.(!pending_idx).Task.arrival_ns ev_deadline wm_th w_gen.(wm_th);
        wm_pc := 15
      end
    end
  and wm_goto pc =
    match pc with
    | 10 -> wm_sweep_start ()
    | 11 -> wm_after_completion ()
    | 12 -> wm_after_sched_work ()
    | 13 -> wm_dispatch_commit ()
    | 14 -> wm_after_inject ()
    | 15 -> wm_tick_top ()
    | _ -> assert false
  in
  (* ---- startup (spawn order: resource managers, then the WM) ---- *)
  for i = 0 to n_pes - 1 do
    push 0 ev_start_rm i 0
  done;
  push 0 ev_start_wm 0 0;
  (* ---- event loop ---- *)
  let continue_ = ref true in
  while !continue_ do
    if !hn = 0 then continue_ := false
    else begin
      let t = !ht.(0) and k = !hk.(0) and a = !ha.(0) and b = !hb.(0) in
      hn := !hn - 1;
      if !hn > 0 then begin
        hswap 0 !hn;
        sift_down ()
      end;
      if t > !now then now := t;
      if k = ev_resume then begin
        if a = wm_th then wm_goto !wm_pc else rm_goto a rm_pc.(a)
      end
      else if k = ev_core then core_event a b
      else if k = ev_deadline then begin
        if b = w_gen.(a) && not w_resumed.(a) then begin
          if a = wm_th then wm_waiting := false;
          resume_thread a
        end
      end
      else if k = ev_fab then fab_event a
      else if k = ev_start_rm then rm_await a
      else wm_tick_top ()
    end
  done;
  (* ---- functional outputs: blit the memoized kernel image ---- *)
  Array.iteri
    (fun idx (inst : Task.instance) ->
      match plan.p_classes.(plan.p_item_class.(idx)).c_final with
      | Some final -> Store.blit_from inst.Task.store ~src:final
      | None -> ())
    instances;
  ( Core.report ~host_name:config.Config.host.Host.name ~config ~policy:plan.p_policy
      ~handlers ~instances ~stats ~fabric:fabric_counters,
    instances )

let run ?obs plan params = fst (run_detailed ?obs plan params)
