(** Deterministic virtual-time emulation engine.

    Reimplements the framework's three-component runtime (application
    handler, workload manager, resource managers) on top of a
    discrete-event simulation with a virtual nanosecond clock:

    - Manager threads are lightweight processes (OCaml effects) placed
      on modelled host cores according to the configuration (Section
      II-D).  A core running several manager threads processor-shares
      among them and pays a context-switch penalty, which reproduces
      the contention anomalies of Figs. 9 and 11.
    - CPU task execution charges {!Exec_model.estimate_ns}, scaled by
      the core class; accelerator execution splits into DMA-in /
      device compute / DMA-out, with the manager thread occupying its
      core only during the DMA phases (it "sleeps" while the device
      runs, as Section II-D describes).
    - The workload manager runs on the overlay core and is charged
      completion-monitoring, ready-list-update, scheduling and
      dispatch costs per loop iteration.
    - Every kernel is also executed functionally on the host, so
      emulation output data is real and checkable.

    Determinism: all randomness (execution-time jitter modelling
    run-to-run platform variance, and the RANDOM policy) flows from
    the seed.

    The workload-manager and resource-handler protocol itself lives in
    {!Engine_core}; this module only supplies the discrete-event
    backend (clock, effect threads, processor-shared host cores,
    modelled overhead charging). *)

type params = Engine_core.params = {
  seed : int64;
  jitter : float;
      (** stddev of the multiplicative Gaussian noise on modelled task
          times; [0.] gives perfectly repeatable runs, the default
          [0.03] gives the spread the paper's Fig. 9 box plots show
          across 50 iterations on real hardware *)
  reservation_depth : int;
      (** per-PE reservation-queue depth.  [0] reproduces the paper's
          released framework (no queues: the scheduler runs on every
          task completion and PEs stall until the next dispatch);
          [> 0] implements the future-work optimisation of Section
          III-C — the workload manager queues up to this many extra
          tasks on each PE and batches scheduling invocations, and the
          resource manager starts queued work without a round trip *)
}

val default_params : params
(** seed 1, jitter 0.03, no reservation queues. *)

val run :
  ?params:params ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report
(** Run the workload to completion and return the collected
    statistics.

    [obs] (default {!Dssoc_obs.Obs.disabled}) receives the engine-core
    event stream and metrics, timestamped with the virtual clock —
    event logs are therefore bit-identical for a given seed.  The
    backend additionally emits accelerator DMA-in / device-compute /
    DMA-out phase events and samples the event-heap depth gauge
    ([event_heap_depth]) once per WM tick.

    [fault] (default none) injects the plan's deterministic fault
    schedule and turns on the resilient-dispatch machinery
    (retries, quarantine, degradation — see {!Engine_core.workload_manager});
    the report's [verdict] and [resilience] fields record the outcome.
    Fault draws are keyed on the plan's own seed, not [params.seed].
    @raise Invalid_argument if some task supports no PE of the
    configuration, or if a fault rule targets no PE. *)

val run_detailed :
  ?params:params ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report * Task.instance array
(** Like {!run} but also returns the executed instances (in workload
    order) so callers can inspect final variable stores — the
    functional-verification path. *)

(** {1 Resident service entry point}

    Used by {!Dssoc_serve.Server}: the workload carries the full
    materialized arrival schedule, injection/termination are delegated
    to the {!Engine_core.service} hooks, and the run can be restored
    from a checkpoint taken at a quiescent instant (empty ready list,
    nothing in flight, empty admission queues).  At such an instant
    the only engine state that matters for the future of the run is
    the virtual clock, the engine PRNG, and the per-handler scheduling
    horizon — captured in {!resume_state}. *)

type handler_snapshot = { hs_busy_until : int; hs_busy_ns : int; hs_tasks_run : int }

type resume_state = {
  rs_clock : int;  (** virtual time of the quiescent instant *)
  rs_prng : int64 * int64 * int64 * int64;  (** {!Dssoc_util.Prng.state} *)
  rs_handlers : handler_snapshot array;  (** in placement order *)
}

type service_run = {
  sr_instances : Task.instance array;
  sr_stats : Engine_core.wm_stats;
  sr_fabric : Engine_core.fabric_counters;
  sr_prng : int64 * int64 * int64 * int64;
  sr_handlers : handler_snapshot array;
}

val run_service :
  ?params:params ->
  ?obs:Dssoc_obs.Obs.t ->
  ?resume:resume_state ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  service:(Task.instance array -> Engine_core.service) ->
  unit ->
  service_run
(** Run a resident service over the DES backend.  [workload] must hold
    every instance the service may ever admit; [service] receives the
    instantiated instances (ids index this array) and returns the
    hooks that decide which of them are injected and when.  With [resume] the clock, engine PRNG and handler horizons
    start from the checkpointed values and the workload manager skips
    its first tick ([sv_resume] is forced accordingly), reproducing
    the uninterrupted run's trajectory exactly.  Fault plans are not
    supported in service mode (their timeline is not checkpointable).
    @raise Invalid_argument on a PE-count mismatch with [resume]. *)
