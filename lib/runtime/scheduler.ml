module Pe = Dssoc_soc.Pe
module Cost_model = Dssoc_soc.Cost_model
module Prng = Dssoc_util.Prng

type pe_state = {
  pe : Pe.t;
  mutable idle : bool;
  mutable busy_until : int;
  mutable available : bool;
      (* quarantined/dead PEs are unavailable: no policy may select or
         reserve them.  [idle] implies [available]. *)
}

type context = {
  now : int;
  ready : Task.t array;
  nready : int;
  pes : pe_state array;
  estimate : Task.t -> int -> int;
  prng : Prng.t;
  mutable ops : int;
}

type assignment = { task : Task.t; pe_index : int }

type policy = { name : string; schedule : context -> assignment list }

(* The ready window lives in a scratch array the engine reuses across
   invocations; only entries [0, nready) are meaningful. *)
let iter_ready f ctx =
  for j = 0 to ctx.nready - 1 do
    f ctx.ready.(j)
  done

(* ------------------------------------------------------------------ *)
(* Built-ins                                                           *)
(* ------------------------------------------------------------------ *)

let frfs =
  let schedule ctx =
    let out = ref [] in
    iter_ready
      (fun task ->
        let chosen = ref None in
        Array.iteri
          (fun i st ->
            ctx.ops <- ctx.ops + 1;
            if !chosen = None && st.idle && Task.supports task st.pe then chosen := Some i)
          ctx.pes;
        match !chosen with
        | Some i ->
          ctx.pes.(i).idle <- false;
          out := { task; pe_index = i } :: !out
        | None -> ())
      ctx;
    List.rev !out
  in
  { name = "FRFS"; schedule }

let met =
  let schedule ctx =
    let out = ref [] in
    iter_ready
      (fun task ->
        let best = ref None in
        Array.iteri
          (fun i st ->
            ctx.ops <- ctx.ops + 1;
            if st.idle && Task.supports task st.pe then begin
              let est = ctx.estimate task i in
              match !best with
              | Some (_, best_est) when best_est <= est -> ()
              | _ -> best := Some (i, est)
            end)
          ctx.pes;
        match !best with
        | Some (i, _) ->
          ctx.pes.(i).idle <- false;
          out := { task; pe_index = i } :: !out
        | None -> ())
      ctx;
    List.rev !out
  in
  { name = "MET"; schedule }

let eft =
  let schedule ctx =
    (* Virtual availability starts from the real PE state and advances
       as the pass commits or reserves tasks, so one invocation plans
       several tasks ahead.  A task whose earliest-finish PE is busy
       *reserves* it (pushing the availability horizon) and stays in
       the ready list — the "wait for the better PE" behaviour that
       distinguishes EFT from MET. *)
    let avail = Array.map (fun st -> if st.idle then ctx.now else st.busy_until) ctx.pes in
    let out = ref [] in
    iter_ready
      (fun task ->
        let best = ref None in
        Array.iteri
          (fun i st ->
            ctx.ops <- ctx.ops + 1;
            if st.available && Task.supports task st.pe then begin
              let finish = max ctx.now avail.(i) + ctx.estimate task i in
              match !best with
              | Some (_, best_finish) when best_finish <= finish -> ()
              | _ -> best := Some (i, finish)
            end)
          ctx.pes;
        match !best with
        | None -> ()
        | Some (i, finish) ->
          avail.(i) <- finish;
          if ctx.pes.(i).idle then begin
            ctx.pes.(i).idle <- false;
            out := { task; pe_index = i } :: !out
          end)
      ctx;
    List.rev !out
  in
  { name = "EFT"; schedule }

let power =
  let schedule ctx =
    let out = ref [] in
    iter_ready
      (fun task ->
        let best = ref None in
        Array.iteri
          (fun i st ->
            ctx.ops <- ctx.ops + 1;
            if st.idle && Task.supports task st.pe then begin
              let est = ctx.estimate task i in
              (* Energy-to-completion for this task on this PE; ties
                 broken by execution time. *)
              let energy = float_of_int est *. Pe.busy_w st.pe.Pe.kind in
              match !best with
              | Some (_, best_energy, best_est)
                when best_energy < energy || (best_energy = energy && best_est <= est) ->
                ()
              | _ -> best := Some (i, energy, est)
            end)
          ctx.pes;
        match !best with
        | Some (i, _, _) ->
          ctx.pes.(i).idle <- false;
          out := { task; pe_index = i } :: !out
        | None -> ())
      ctx;
    List.rev !out
  in
  { name = "POWER"; schedule }

let random =
  let schedule ctx =
    let out = ref [] in
    iter_ready
      (fun task ->
        let candidates = ref [] in
        Array.iteri
          (fun i st ->
            ctx.ops <- ctx.ops + 1;
            if st.idle && Task.supports task st.pe then candidates := i :: !candidates)
          ctx.pes;
        match !candidates with
        | [] -> ()
        | cs ->
          let arr = Array.of_list cs in
          let i = Prng.choose ctx.prng arr in
          ctx.pes.(i).idle <- false;
          out := { task; pe_index = i } :: !out)
      ctx;
    List.rev !out
  in
  { name = "RANDOM"; schedule }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, policy) Hashtbl.t = Hashtbl.create 8

let register p = Hashtbl.replace registry (String.uppercase_ascii p.name) p

let () = List.iter register [ frfs; met; eft; random; power ]

let find name =
  match Hashtbl.find_opt registry (String.uppercase_ascii name) with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown scheduling policy %S (available: %s)" name
         (String.concat ", "
            (Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare)))

let names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Overhead model                                                      *)
(* ------------------------------------------------------------------ *)

let overhead_ns ~policy_name ~ready ~pes ~ops =
  let open Cost_model in
  let examined = min ready sched_examined_cap in
  let extra =
    match String.uppercase_ascii policy_name with
    | "FRFS" -> sched_frfs_per_pe_ns *. float_of_int pes
    | "RANDOM" -> sched_frfs_per_pe_ns *. float_of_int (pes + examined)
    | "MET" | "POWER" -> sched_met_per_task_ns *. float_of_int examined
    | "EFT" -> sched_eft_per_pair_ns *. float_of_int (examined * examined)
    | _ -> 60.0 *. float_of_int ops
  in
  int_of_float (Float.round (sched_base_ns +. extra))
