(** Tasks and application instances.

    A task is one DAG node of one application instance; it carries the
    bookkeeping the workload manager needs for scheduling, dispatch
    and measurement (the "DAG node data structure" of Section II-C). *)

type status =
  | Blocked  (** waiting on unfinished predecessors *)
  | Ready  (** in the ready-task list *)
  | Running  (** dispatched to a PE *)
  | Done

type t = {
  id : int;  (** unique within an emulation *)
  instance_id : int;
  app_name : string;
  node : Dssoc_apps.App_spec.node;
  spec : Dssoc_apps.App_spec.t;
  store : Dssoc_apps.Store.t;  (** shared with the other tasks of the instance *)
  mutable status : status;
  mutable unmet : int;  (** outstanding predecessor count *)
  mutable successors : t list;
  mutable ready_at : int;  (** ns, emulation time *)
  mutable dispatched_at : int;
  mutable completed_at : int;
  mutable pe_label : string;  (** PE that executed it, once dispatched *)
  mutable attempts : int;  (** dispatch count, incl. failed attempts *)
  mutable last_failure : (Dssoc_fault.Fault.failure * int) option;
      (** set by the resource handler when an attempt failed: the
          failure and the quarantine to impose on the PE (ns;
          [max_int] = permanent).  Cleared by the workload manager. *)
}

type instance = {
  inst_id : int;
  app : Dssoc_apps.App_spec.t;
  store : Dssoc_apps.Store.t;
  arrival_ns : int;
  tasks : t array;  (** in spec declaration order *)
  entry : t list;  (** tasks with no predecessors *)
  mutable remaining : int;  (** tasks not yet Done *)
  mutable completed_at : int;  (** -1 until the last task finishes *)
  mutable cancelled : bool;
      (** set by the service watchdog: remaining tasks are withdrawn
          and successor release is suppressed (always [false] outside
          service mode) *)
}

val instantiate :
  task_id_base:int -> inst_id:int -> arrival_ns:int -> Dssoc_apps.App_spec.t -> instance
(** Allocate the instance store (initialising variables per the spec)
    and build linked task records.  Returns an instance whose tasks
    occupy ids [task_id_base ..= task_id_base + task_count - 1]. *)

val supports : t -> Dssoc_soc.Pe.t -> bool
(** True when some platform entry of the node matches the PE: the
    generic entry name ["cpu"] matches any CPU-class PE, anything else
    matches by exact PE-class name. *)

val platform_entry_for : t -> Dssoc_soc.Pe.t -> Dssoc_apps.App_spec.platform_entry option
(** The first matching platform entry, if any. *)

val status_to_string : status -> string
