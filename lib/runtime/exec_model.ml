module App_spec = Dssoc_apps.App_spec
module Kernels = Dssoc_apps.Kernels
module Pe = Dssoc_soc.Pe
module Cost_model = Dssoc_soc.Cost_model

let entry_for (task : Task.t) pe =
  match Task.platform_entry_for task pe with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Exec_model: task %s/%s does not support PE %s" task.Task.app_name
         task.Task.node.App_spec.node_name pe.Pe.label)

let dma_bytes (node : App_spec.node) =
  let default = 8 * node.App_spec.size in
  let bi = if node.App_spec.bytes_in > 0 then node.App_spec.bytes_in else default in
  let bo = if node.App_spec.bytes_out > 0 then node.App_spec.bytes_out else default in
  (bi, bo)

let accel_phases_ns (task : Task.t) (acl : Pe.accel_class) =
  let node = task.Task.node in
  let bytes_in, bytes_out = dma_bytes node in
  Cost_model.accel_phases_ns ~bytes_in ~bytes_out ~n:node.App_spec.size acl

let estimate_ns (task : Task.t) pe =
  let entry = entry_for task pe in
  match entry.App_spec.cost_us with
  | Some us -> int_of_float (Float.round (us *. 1e3))
  | None -> (
    let node = task.Task.node in
    match pe.Pe.kind with
    | Pe.Cpu cls ->
      Cost_model.cpu_cost_ns ~kernel:node.App_spec.kernel_class ~n:node.App_spec.size cls
    | Pe.Accel acl ->
      let i, c, o = accel_phases_ns task acl in
      i + c + o)

(* ------------------------------------------------------------------ *)
(* Dense per-run estimate table                                        *)
(* ------------------------------------------------------------------ *)

(* The schedulers (EFT in particular) ask for an estimate for every
   (ready task, PE) pair on every invocation — once per task
   completion.  The estimate only depends on the node's cost metadata
   and the PE class, so the engines precompute the whole
   (task, pe_index) matrix at instantiation time; the inner scheduling
   loops then do a single int-array load instead of hashing a
   polymorphic key.  Unsupported pairs hold a sentinel that [lookup]
   never returns because policies check [Task.supports] first. *)

type table = { base_id : int; stride : int; data : int array }

let unsupported_sentinel = min_int

let build_table ~(instances : Task.instance array) ~(pes : Pe.t array) =
  let base_id, max_id =
    Array.fold_left
      (fun (lo, hi) (inst : Task.instance) ->
        Array.fold_left
          (fun (lo, hi) (t : Task.t) -> (min lo t.Task.id, max hi t.Task.id))
          (lo, hi) inst.Task.tasks)
      (max_int, min_int) instances
  in
  let stride = Array.length pes in
  if max_id < base_id || stride = 0 then { base_id = 0; stride; data = [||] }
  else begin
    let data = Array.make ((max_id - base_id + 1) * stride) unsupported_sentinel in
    (* Many tasks share cost metadata (all 256 pulse-Doppler FFT nodes
       price identically), so memoize the build itself on the metadata
       key; the memo is local to this call, not shared state. *)
    let memo = Hashtbl.create 256 in
    Array.iter
      (fun (inst : Task.instance) ->
        Array.iter
          (fun (t : Task.t) ->
            let row = (t.Task.id - base_id) * stride in
            Array.iteri
              (fun p pe ->
                if Task.supports t pe then begin
                  let node = t.Task.node in
                  let key =
                    ( node.App_spec.kernel_class,
                      node.App_spec.size,
                      node.App_spec.bytes_in,
                      node.App_spec.bytes_out,
                      (entry_for t pe).App_spec.cost_us,
                      pe.Pe.kind )
                  in
                  let v =
                    match Hashtbl.find_opt memo key with
                    | Some v -> v
                    | None ->
                      let v = estimate_ns t pe in
                      Hashtbl.replace memo key v;
                      v
                  in
                  data.(row + p) <- v
                end)
              pes)
          inst.Task.tasks)
      instances;
    { base_id; stride; data }
  end

let lookup tbl (task : Task.t) pe_index =
  tbl.data.(((task.Task.id - tbl.base_id) * tbl.stride) + pe_index)

let resolve_kernel (task : Task.t) pe =
  let entry = entry_for task pe in
  match Kernels.resolve ~app:task.Task.spec ~node:task.Task.node ~platform:entry with
  | Ok k -> k
  | Error msg -> invalid_arg (Printf.sprintf "Exec_model.resolve_kernel: %s" msg)
