module App_spec = Dssoc_apps.App_spec
module Kernels = Dssoc_apps.Kernels
module Pe = Dssoc_soc.Pe
module Cost_model = Dssoc_soc.Cost_model

let entry_for (task : Task.t) pe =
  match Task.platform_entry_for task pe with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Exec_model: task %s/%s does not support PE %s" task.Task.app_name
         task.Task.node.App_spec.node_name pe.Pe.label)

let dma_bytes (node : App_spec.node) =
  let default = 8 * node.App_spec.size in
  let bi = if node.App_spec.bytes_in > 0 then node.App_spec.bytes_in else default in
  let bo = if node.App_spec.bytes_out > 0 then node.App_spec.bytes_out else default in
  (bi, bo)

let accel_phases_ns (task : Task.t) (acl : Pe.accel_class) =
  let node = task.Task.node in
  let bytes_in, bytes_out = dma_bytes node in
  Cost_model.accel_phases_ns ~bytes_in ~bytes_out ~n:node.App_spec.size acl

(* The schedulers (EFT in particular) call estimate_ns for every
   (ready task, PE) pair on every invocation; the result only depends
   on the node's cost metadata and the PE class, so memoize.  The
   table is domain-local: parallel sweeps run whole emulations on
   several domains at once, and Hashtbl must not be mutated
   concurrently. *)
let memo_key : (string * int * int * int * float option * Pe.kind, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let clear_cache () = Hashtbl.reset (Domain.DLS.get memo_key)

let estimate_ns (task : Task.t) pe =
  let memo = Domain.DLS.get memo_key in
  let entry = entry_for task pe in
  match entry.App_spec.cost_us with
  | Some us -> int_of_float (Float.round (us *. 1e3))
  | None -> (
    let node = task.Task.node in
    let key =
      ( node.App_spec.kernel_class,
        node.App_spec.size,
        node.App_spec.bytes_in,
        node.App_spec.bytes_out,
        None,
        pe.Pe.kind )
    in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v =
        match pe.Pe.kind with
        | Pe.Cpu cls ->
          Cost_model.cpu_cost_ns ~kernel:node.App_spec.kernel_class ~n:node.App_spec.size cls
        | Pe.Accel acl ->
          let i, c, o = accel_phases_ns task acl in
          i + c + o
      in
      Hashtbl.replace memo key v;
      v)

let resolve_kernel (task : Task.t) pe =
  let entry = entry_for task pe in
  match Kernels.resolve ~app:task.Task.spec ~node:task.Task.node ~platform:entry with
  | Ok k -> k
  | Error msg -> invalid_arg (Printf.sprintf "Exec_model.resolve_kernel: %s" msg)
