(** Ahead-of-time compiled emulation engine.

    The virtual engine interprets the workload every run: polymorphic
    task records, effect-based threads, `Scheduler.context` closures
    and the `Engine_core` backend record all sit on the hottest loop.
    This module instead {e compiles} one (workload x platform x policy)
    triple into a {!type:plan} of unboxed flat arrays — CSR
    predecessor/successor adjacency over dense task ids, a preresolved
    per-(task, PE) estimate matrix and accelerator phase tables, dense
    PE/core/task state arrays — and then {!val:run}s a monomorphic
    event loop over integer-encoded events with no per-event closure
    allocation, the workload-manager protocol and the chosen policy
    inlined.

    The contract with the reference engines is {e exact replay}: for
    every supported parameter set (any seed, any jitter, any
    reservation depth, all five built-in policies) a compiled run
    produces the same event sequence as the virtual engine — the same
    [Stats.report] (byte-identical [records_csv]) and the same final
    instance stores.  Observability is lowered into the loop rather
    than interpreted: a traced run ([?obs] on {!val:run}) emits the
    same events with the same timestamps in the same order as the
    virtual engine (byte-identical {!Dssoc_obs.Obs.to_jsonl}) and
    populates the same metrics registry, while an untraced run pays
    only one predictable branch per hook site.  Anything v1 cannot
    replay bit-for-bit (fault plans, custom policies) is rejected at
    compile time with {!exception:Unsupported} rather than allowed to
    diverge silently.  The differential matrix in
    [test/test_diff_engines.ml] pins both contracts.

    Because every instance of an application archetype starts from the
    same store bytes and its kernels are deterministic dataflow
    functions, compilation also runs each archetype's kernel chain once
    (in topological order) and records the final store; runs then blit
    that image into every instance store instead of re-executing
    identical kernels hundreds of times.  When a node's platform
    entries resolve to different kernel functions the archetype falls
    back to per-instance kernel execution, preserving the contract. *)

type plan

exception Unsupported of string
(** Raised by {!val:compile} for inputs outside the compiled engine's
    replay contract: a fault plan, or a policy other than the five
    built-ins. *)

val compile :
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  plan
(** Lower the triple into a plan.  The plan is immutable apart from
    internal scratch buffers: it can be kept, reused and interleaved
    with other plans — every {!val:run} starts from fresh instances.
    Observability is a per-run concern ([?obs] on {!val:run} /
    {!val:run_detailed}), not a compile-time one.
    @raise Unsupported for a fault plan or a policy that is not one of
    the five built-ins (the compiler specializes the policy loop and
    cannot inline arbitrary closures).
    @raise Invalid_argument when some task supports no PE of the
    configuration (same validation as the reference engines). *)

val run : ?obs:Dssoc_obs.Obs.t -> plan -> Engine_core.params -> Stats.report
(** Execute one emulation of the plan: instantiate fresh instances,
    replay the workload-manager protocol, assemble the report exactly
    as the virtual engine would.  With [?obs], also emit the virtual
    engine's exact event log and metrics. *)

val run_detailed :
  ?obs:Dssoc_obs.Obs.t ->
  plan ->
  Engine_core.params ->
  Stats.report * Task.instance array
(** Like {!val:run}, also returning the instances (with final store
    contents) for functional inspection. *)
