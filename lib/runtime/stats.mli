(** Emulation statistics (the "scheduling statistics for all the
    applications and their tasks" collected before termination,
    Section II-A). *)

type task_record = {
  app : string;
  instance : int;
  node : string;
  pe : string;
  ready_ns : int;
  dispatched_ns : int;
  completed_ns : int;
}

type pe_usage = {
  pe_label : string;
  pe_kind : string;
  busy_ns : int;  (** accumulated execution occupancy *)
  tasks_run : int;
  busy_energy_mj : float;  (** busy_ns x active power *)
  energy_mj : float;
      (** busy energy plus idle power over the makespan remainder,
          from the PE class's power figures (power-awareness
          extension) *)
}

type app_summary = {
  instances : int;
  mean_latency_ns : float;  (** arrival to last-task completion *)
  max_latency_ns : int;
}

(** How a run ended (fault-injection extension).

    - [Completed]: every task ran to completion with no fault activity.
    - [Degraded]: every remaining obligation was met, but faults were
      injected and/or tasks were retried along the way.
    - [Aborted r]: the workload manager gave up (attempt budget
      exhausted, or a task lost every supporting PE); [r] names the
      first reason. *)
type verdict = Completed | Degraded | Aborted of string

val verdict_name : verdict -> string
(** ["completed"] / ["degraded"] / ["aborted"]. *)

(** Fault-handling counters for one run; all zero without faults. *)
type resilience = {
  faults_injected : int;  (** failed or slowed execution attempts *)
  task_retries : int;  (** re-dispatches after a failed attempt *)
  pe_quarantines : int;  (** PE quarantine entries (incl. deaths) *)
  pe_deaths : int;  (** PEs permanently lost *)
  tasks_lost : int;  (** tasks never completed (aborted runs) *)
}

val no_faults : resilience
(** All-zero counters (the fault-free run). *)

(** Shared-interconnect contention counters for one run; all zero
    under an ideal fabric (interconnect extension). *)
type fabric = {
  dma_streams : int;  (** DMA streams routed through the fabric *)
  fabric_stalls : int;  (** admissions that found the FIFO full *)
  fabric_stall_ns : int;  (** total time initiators spent queued for a slot *)
  max_inflight_streams : int;  (** peak concurrent in-flight streams *)
}

val no_fabric : fabric
(** All-zero counters (the ideal-fabric run). *)

type report = {
  host_name : string;
  config_label : string;
  policy_name : string;
  makespan_ns : int;  (** workload execution time *)
  job_count : int;  (** application instances *)
  task_count : int;
  pe_usage : pe_usage list;
  sched_invocations : int;
  sched_ns : int;  (** time spent inside the scheduling policy *)
  wm_overhead_ns : int;
      (** total workload-manager overhead: completion monitoring +
          ready-list updates + scheduling + dispatch communication
          (the Fig. 10b definition) *)
  records : task_record list;  (** by completion time *)
  app_stats : (string * app_summary) list;  (** sorted by app name *)
  verdict : verdict;
  resilience : resilience;
  fabric : fabric;
}

val completed_fraction : report -> float
(** Completed tasks over total tasks — 1.0 unless the run aborted. *)

val utilization : report -> (string * float) list
(** Per-PE busy-time fraction of the makespan, in PE order. *)

val mean_utilization_by_kind : report -> (string * float) list
(** Average utilisation per PE kind ("cpu", "fft", "big", ...) — the
    Fig. 9b series. *)

val avg_sched_overhead_ns : report -> float
(** Mean workload-manager overhead per scheduling invocation — the
    Fig. 10b metric. *)

val total_energy_mj : report -> float
(** Sum of per-PE energy over the whole emulation. *)

val total_busy_energy_mj : report -> float
(** Active-power component only (excludes idle draw) — the metric a
    race-to-idle comparison needs alongside {!total_energy_mj}. *)

val pp_summary : Format.formatter -> report -> unit
(** Multi-line human-readable summary: makespan, scheduler invocation
    count with total policy time and mean WM overhead per invocation,
    total and busy energy, per-PE occupancy and per-app latencies. *)

val records_csv : report -> string
(** Per-task records as CSV (header + one line per task).  String
    fields are RFC 4180-escaped ({!Dssoc_stats.Table.csv_field}), so
    app/node/PE labels containing commas, quotes or newlines cannot
    corrupt rows; plain labels are emitted unchanged. *)

val chrome_trace : ?obs:Dssoc_obs.Obs.t -> report -> Dssoc_json.Json.t
(** Task records as a Chrome trace-event document (one complete "X"
    event per task, one row per PE) — load the written file in
    chrome://tracing or Perfetto.  Timestamps are emulation-time
    microseconds.

    Without [obs] the document is exactly the pre-observability
    output.  With [obs], recorded accelerator phase events become
    "X" sub-spans (dma_in / compute / dma_out, category "accel") on
    their PE row, and every metrics gauge becomes a "C" counter track
    (e.g. [ready_queue_depth], [in_flight_tasks]) Perfetto renders as
    a time series. *)

val gantt : ?width:int -> report -> string
(** ASCII Gantt chart: one row per PE, time on the x axis scaled to
    the makespan; occupied spans are drawn with per-application
    letters ('a' = first application name alphabetically, continuing
    through 'A'-'Z' and '0'-'9' before wrapping), idle time with
    dots.  Zero-duration spans render as a single cell; [width] is
    clamped to at least 1.  Intended for eyeballing schedules of
    small workloads. *)
