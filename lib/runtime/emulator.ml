type engine =
  | Virtual of Engine_core.params
  | Native of Engine_core.params
  | Compiled of Engine_core.params

let virtual_seeded ?(jitter = 0.03) ?(reservation_depth = 0) seed =
  Virtual { Engine_core.seed; jitter; reservation_depth }

let native_seeded ?(jitter = 0.0) ?(reservation_depth = 0) seed =
  Native { Engine_core.seed; jitter; reservation_depth }

let compiled_seeded ?(jitter = 0.03) ?(reservation_depth = 0) seed =
  Compiled { Engine_core.seed; jitter; reservation_depth }

let native_default = Native Native_engine.default_params

let run ?(engine = Virtual Engine_core.default_params) ?(policy = "FRFS") ?obs ?fault
    ~config ~workload () =
  match Scheduler.find policy with
  | Error _ as e -> e
  | Ok policy -> (
    try
      Ok
        (match engine with
        | Virtual params ->
          Virtual_engine.run ~params ?obs ?fault ~config ~workload ~policy ()
        | Native params ->
          Native_engine.run ~params ?obs ?fault ~config ~workload ~policy ()
        | Compiled params ->
          Compiled_engine.run ?obs
            (Compiled_engine.compile ?fault ~config ~workload ~policy ())
            params)
    with
    | Invalid_argument msg -> Error msg
    | Compiled_engine.Unsupported msg -> Error msg)

let run_exn ?engine ?policy ?obs ?fault ~config ~workload () =
  match run ?engine ?policy ?obs ?fault ~config ~workload () with
  | Ok r -> r
  | Error msg -> invalid_arg (Printf.sprintf "Emulator.run_exn: %s" msg)

let run_detailed ?(engine = Virtual Engine_core.default_params) ?(policy = "FRFS") ?obs
    ?fault ~config ~workload () =
  match Scheduler.find policy with
  | Error _ as e -> e
  | Ok policy -> (
    try
      Ok
        (match engine with
        | Virtual params ->
          Virtual_engine.run_detailed ~params ?obs ?fault ~config ~workload ~policy ()
        | Native params ->
          Native_engine.run_detailed ~params ?obs ?fault ~config ~workload ~policy ()
        | Compiled params ->
          Compiled_engine.run_detailed ?obs
            (Compiled_engine.compile ?fault ~config ~workload ~policy ())
            params)
    with
    | Invalid_argument msg -> Error msg
    | Compiled_engine.Unsupported msg -> Error msg)
