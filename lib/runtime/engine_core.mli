(** The shared engine core: one workload-manager / resource-handler
    protocol, two execution backends.

    The paper's runtime contract (Sections II-B/II-C, Figs. 3-4) is a
    single protocol: a workload manager injects arriving application
    instances, maintains the ready-task list, invokes a scheduling
    policy over a snapshot of ready tasks and PE states, dispatches
    assignments through per-PE resource handlers, and monitors their
    completions; each resource handler runs an [idle]/[run]/[complete]/
    [stop] state machine that executes dispatched tasks on its PE.

    This module implements that protocol {e once}, parameterized over a
    small {!type:backend} record — how to read the clock, block and
    wake the two kinds of actors, charge modelled workload-manager
    overhead, and actually execute a task on a PE.  The virtual engine
    instantiates it over a discrete-event simulation (effects + event
    heap, deterministic virtual nanoseconds); the native engine
    instantiates it over OCaml 5 domains (mutex/condvar, monotonic
    wall clock).  Every protocol-level feature — reservation queues,
    live ready-list accounting, occupancy-based utilisation, the
    dense estimate table — therefore lands in both engines at once. *)

(** {1 Parameters} *)

type params = {
  seed : int64;
      (** root of all engine randomness: execution-time jitter and the
          RANDOM policy's draws (both engines), equal seeds giving
          equal virtual-engine runs bit-for-bit *)
  jitter : float;
      (** stddev of the multiplicative Gaussian noise on modelled task
          times; [0.] gives perfectly repeatable virtual runs, the
          default [0.03] gives the spread the paper's Fig. 9 box plots
          show across 50 iterations on real hardware.  The native
          engine applies it to the modelled device-compute sleep of
          accelerator PEs (its CPU kernels run for real and cannot be
          jittered). *)
  reservation_depth : int;
      (** per-PE reservation-queue depth.  [0] reproduces the paper's
          released framework (no queues: the scheduler runs on every
          task completion and PEs stall until the next dispatch);
          [> 0] implements the future-work optimisation of Section
          III-C — the workload manager queues up to this many extra
          tasks on each PE and batches scheduling invocations, and the
          resource manager starts queued work without a round trip *)
}

val default_params : params
(** seed 1, jitter 0.03, no reservation queues. *)

val jittered : Dssoc_util.Prng.t -> jitter:float -> int -> int
(** Multiplicative Gaussian noise on a modelled duration: one
    [gaussian ~mu:1.0 ~sigma:jitter] draw, factor clamped below at
    0.1, result at 1 ns.  [jitter <= 0.] (or a non-positive duration)
    draws nothing and returns the input unchanged. *)

(** {1 DMA phases} *)

type dma_phase = {
  dp_ideal_ns : int;
      (** legacy per-device duration — what {!Dssoc_soc.Fabric.Ideal}
          replays byte-exactly *)
  dp_bytes : int;  (** bandwidth demand placed on a shared link *)
  dp_chunks : int;  (** BRAM-sized transfers the phase decomposes into *)
  dp_chunk_lat_ns : int;  (** per-transfer device latency (setup + completion) *)
}
(** One DMA direction of an accelerator execution.  Engines no longer
    receive a fixed integer duration at dispatch time: under a shared
    fabric the cost depends on concurrent streams, so the phase is
    charged through the backend's {!field:b_dma} hook. *)

val no_dma : dma_phase
(** The all-zero phase (e.g. a [cost_us]-priced task moves no data). *)

(** {1 Resource handlers} *)

type 'h handler = {
  h_pe : Dssoc_soc.Pe.t;
  h_index : int;  (** this handler's PE index (row in the estimate table) *)
  h_capacity : int;  (** 1 + reservation-queue depth (1 = the paper's baseline) *)
  h_pending : Task.t Queue.t;  (** dispatched by the WM, not yet executed *)
  h_completed : Task.t Queue.t;  (** executed, awaiting WM bookkeeping *)
  mutable h_inflight : int;  (** pending + currently executing; WM-owned *)
  mutable h_stop : bool;
  mutable h_busy_ns : int;  (** occupancy (execution time), not queue residence *)
  mutable h_tasks_run : int;
  mutable h_busy_until : int;  (** EFT availability horizon; WM-owned *)
  mutable h_quarantined_until : int;
      (** fault state: 0 = healthy, [max_int] = permanently dead, else
          the emulation time the quarantine lifts; WM-owned *)
  h_backend : 'h;  (** backend-private per-handler state *)
}
(** One per PE.  The queues and [h_stop] are shared between the
    workload manager and the handler's resource manager and must only
    be touched under the backend's {!field:b_lock} (a no-op for the
    single-threaded virtual engine); [h_inflight], [h_busy_until] and
    [h_quarantined_until] are written by the workload manager only,
    [h_busy_ns] and [h_tasks_run] by the resource manager only (read
    after join). *)

val make_handler :
  pe:Dssoc_soc.Pe.t -> index:int -> reservation_depth:int -> 'h -> 'h handler
(** Fresh idle handler with [h_capacity = 1 + max 0 reservation_depth]. *)

(** {1 Statistics accumulator} *)

type wm_stats = {
  mutable sched_invocations : int;
  mutable sched_ns : int;  (** modelled (virtual) or measured (native) *)
  mutable wm_ns : int;
  mutable records : Stats.task_record list;  (** newest first *)
  mutable faults : int;  (** failed or slowed execution attempts *)
  mutable retries : int;
  mutable quarantines : int;
  mutable pe_deaths : int;
  mutable aborted : string option;  (** first abort reason, if any *)
}

val make_stats : unit -> wm_stats

type fabric_counters = {
  mutable fc_streams : int;  (** DMA streams routed through the fabric *)
  mutable fc_stalls : int;  (** admissions that found the FIFO full *)
  mutable fc_stall_ns : int;  (** total time initiators spent queued *)
  mutable fc_max_inflight : int;  (** peak concurrent in-flight streams *)
}
(** Fabric contention accumulator, all zero under {!Dssoc_soc.Fabric.Ideal}.
    Virtual/compiled mutate it from the single event-loop thread; the
    native engine guards it with its fabric mutex. *)

val make_fabric_counters : unit -> fabric_counters

(** {1 Backends} *)

type 'h backend = {
  b_now : unit -> int;
      (** current time, ns: virtual clock or monotonic wall clock *)
  b_lock : 'h handler -> unit;  (** no-op when the backend is single-threaded *)
  b_unlock : 'h handler -> unit;
  b_handler_await : 'h handler -> unit;
      (** resource-manager side, called with the handler locked:
          return (lock re-held) once [h_stop] is set or work may be
          pending *)
  b_notify_handler : 'h handler -> unit;
      (** workload-manager side, called with the handler locked, after
          enqueueing work or setting [h_stop] *)
  b_wm_await : deadline:int option -> unit;
      (** workload-manager side: block until a completion notification
          or the absolute deadline (next instance arrival); a polling
          backend may return immediately *)
  b_notify_wm : unit -> unit;
      (** resource-manager side: a completion awaits monitoring (no-op
          for a polling backend) *)
  b_charge : float -> unit;
      (** account modelled workload-manager bookkeeping cost
          (monitoring, ready-list updates, dispatch), ns on the
          reference overlay core; the virtual backend scales it and
          occupies the overlay core, the native backend ignores it
          (its loop costs real time instead) *)
  b_dma : 'h handler -> dma_phase -> unit;
      (** charge one DMA phase of an accelerator execution: under
          {!Dssoc_soc.Fabric.Ideal} replay [dp_ideal_ns] on the
          handler's host core exactly as before; under a bus, acquire
          shared-link capacity for [dp_bytes] (stalling FIFO-fashion
          when the link is full) and then pay the fixed chunk/hop
          latency; called without the handler lock *)
  b_execute : 'h handler -> Task.t -> unit;
      (** run one task on this handler's PE, returning when it is
          complete; called without the handler lock *)
  b_delay : 'h handler -> int -> unit;
      (** occupy the handler's PE for a modelled duration (ns) without
          running a kernel — fault-detection latency and slowdown
          tails; called without the handler lock.  The virtual backend
          advances its clock, the native backend sleeps scaled wall
          time. *)
  b_sched_start : unit -> int;
      (** opaque token taken immediately before a policy invocation *)
  b_sched_done : int -> ready:int -> ops:int -> int;
      (** close a policy invocation: given the token, the {e live}
          ready-list length and the policy's recorded elementary
          operations, return the scheduling cost (ns) to record —
          modelled ({!Scheduler.overhead_ns}, charged on the overlay
          core) for the virtual backend, measured wall time for the
          native one *)
  b_wm_tick_start : unit -> int;
  b_wm_tick_end : int -> unit;
      (** bracket one workload-manager loop iteration, for backends
          that measure (rather than charge) manager overhead *)
}

(** {1 The protocol} *)

val instantiate :
  engine_name:string ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  Task.instance array
(** Initialization phase (outside emulation time, Section II-A):
    allocate every instance and its memory up front, with dense task
    ids, and validate that every task supports some PE of the
    configuration.
    @raise Invalid_argument (prefixed with [engine_name]) otherwise. *)

val compile_fault :
  Dssoc_fault.Fault.plan option -> handlers:'h handler array -> Dssoc_fault.Fault.t
(** Compile a fault plan against the run's PE array ([None] gives
    {!Dssoc_fault.Fault.disabled}); shared by both backends so they
    replay identical fault schedules.
    @raise Invalid_argument when a rule targets no PE (surfaced by
    [Emulator.run] as an [Error]). *)

val accel_phases :
  Task.t -> Dssoc_soc.Pe.t -> Dssoc_soc.Pe.accel_class -> dma_phase * int * dma_phase
(** [(dma_in, compute_ns, dma_out)] for an accelerator execution: an
    explicit [cost_us] on the matching platform entry prices the whole
    task as device compute (the JSON override, DMA phases {!no_dma}),
    otherwise the device model prices the three phases — the DMA ones
    as {!dma_phase} decompositions for the {!field:b_dma} hook. *)

val resource_manager :
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.t ->
  ?est_table:Exec_model.table ->
  'h backend ->
  'h handler ->
  unit
(** The per-PE resource-manager body (Fig. 4): await dispatch, drain
    the pending queue — executing each task via {!field:b_execute},
    timestamping completion, accounting occupancy, parking the task on
    the completed queue and notifying the workload manager — then wait
    again; exit when [h_stop] is set.  Each engine runs one instance
    per handler on its own thread abstraction (spawned effect thread /
    domain).  With [obs] and a reservation queue, each pop from the
    pending queue emits a [Reservation_popped] event (sink only — this
    may run off the WM thread).

    With [fault] (and [est_table], which scales failure-detection
    latencies), every attempt first consults {!Dssoc_fault.Fault.decide}:
    a failing attempt occupies the PE for the modelled detection time
    but {e never runs the kernel} (kernels mutate the instance store in
    place and are not idempotent — only the final successful attempt
    executes, keeping functional outputs identical with and without
    retries), then parks the task with [last_failure] set for the
    workload manager to process.  Slowdowns run the kernel once and
    append a modelled delay. *)

(** {1 Service hooks (serve extension)}

    A resident service (admission control, open-loop arrivals,
    watchdog) plugs into the workload manager through these hooks.
    The service decides {e which} instances enter the run and when;
    the WM keeps owning the ready list, dispatch and completion
    monitoring.  With a service installed the fixed-workload pending
    list starts empty and termination is delegated to [sv_finished]. *)

type service_ops = {
  so_inject : Task.instance -> int;
      (** admit one instance now: emits the injection event, makes its
          entry tasks ready; returns how many tasks that was *)
  so_cancel : Task.instance -> unit;
      (** watchdog abort: marks the instance cancelled (suppressing
          successor release), withdraws its Ready tasks by the same
          lazy-deletion trick dispatch uses, and purges its retry
          entries.  Only call on instances with no Running task — an
          in-flight attempt must drain naturally first. *)
  so_ready_live : unit -> int;  (** live ready-list length *)
  so_inflight : unit -> int;  (** dispatched-but-unmonitored count *)
  so_retry_empty : unit -> bool;  (** no task sleeping out a backoff *)
}

type service = {
  sv_tick : service_ops -> now:int -> int;
      (** one service sweep per WM tick, replacing the fixed-workload
          injection drain: admission control over due arrivals,
          completion harvesting, watchdog; returns the number of tasks
          made ready (charged like an injection burst) *)
  sv_next : now:int -> int option;
      (** next service deadline (arrival or watchdog expiry), strictly
          in the future; [None] when only completions can wake the WM *)
  sv_finished : service_ops -> now:int -> bool;
      (** termination test, evaluated at the end of every tick *)
  sv_resume : bool;
      (** restored from a checkpoint taken at a quiescent instant: the
          WM skips the first tick and goes straight to the await on
          [sv_next], reproducing the uninterrupted run's clock
          trajectory exactly *)
}

val workload_manager :
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.t ->
  ?service:service ->
  'h backend ->
  handlers:'h handler array ->
  instances:Task.instance array ->
  est_table:Exec_model.table ->
  policy:Scheduler.policy ->
  prng:Dssoc_util.Prng.t ->
  stats:wm_stats ->
  unit
(** The workload-manager loop (Fig. 3): monitor completions (releasing
    successors and charging per-PE monitoring cost), inject arrived
    instances, and invoke the policy over a snapshot of the ready
    window and PE states ({!Scheduler.context}, estimate queries
    backed by the dense table) — once per completion at capacity 1, as
    the paper prescribes, or batched per sweep when reservation queues
    are configured.  The ready queue deletes dispatched entries
    lazily; the charged O(n)/O(n²) policy cost follows a live-count
    accounting, not [Queue.length].  Returns once every instance has
    completed and all handlers have been told to stop.

    With [obs] (default {!Dssoc_obs.Obs.disabled}, a guaranteed no-op)
    the loop emits injection / ready / scheduler-invocation / dispatch
    / completion / reservation / WM-tick events and updates the engine
    metrics (ready-queue depth, in-flight count, per-PE queue depth,
    wait and service latency, scheduling cost) — all from this thread,
    timestamped with [b_now].

    With [fault] the loop becomes resilient: failed attempts are
    counted and retried with capped exponential backoff under a
    per-task attempt budget; failing PEs are quarantined (policies see
    them as unavailable) with timed recovery for transients and
    permanent removal for deaths — a dead PE's reservation queue
    drains back to the ready list and its tasks re-dispatch onto
    surviving PEs from their [platforms] lists; planned deaths fire
    proactively at their scheduled emulation time.  The run aborts
    (recorded in [stats.aborted], stopping dispatch and injection and
    draining in-flight work) when a task exhausts its attempt budget
    or loses every supporting PE. *)

val report :
  host_name:string ->
  config:Dssoc_soc.Config.t ->
  policy:Scheduler.policy ->
  handlers:'h handler array ->
  instances:Task.instance array ->
  stats:wm_stats ->
  fabric:fabric_counters ->
  Stats.report
(** Assemble the run report: makespan, per-PE usage and energy,
    scheduling statistics, task records (oldest first), per-app
    latency summaries and fabric contention counters. *)
