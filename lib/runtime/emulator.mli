(** Top-level emulation API.

    Wraps engine selection, policy lookup and workload construction so
    examples, the CLI and the benchmark harness share one entry
    point.  Both engines run the same {!Engine_core} protocol and take
    the same {!Engine_core.params}; they differ only in backend
    (discrete-event simulation vs. real OCaml 5 domains). *)

type engine =
  | Virtual of Engine_core.params
      (** deterministic virtual-time simulation (used by all figure
          benches) *)
  | Native of Engine_core.params
      (** OCaml 5 domains executing the same handler protocol in real
          time on the machine running the emulator *)
  | Compiled of Engine_core.params
      (** ahead-of-time specialization of (workload x platform x
          policy) into a flat-array event loop; replays the virtual
          engine byte-for-byte for the five built-in policies — see
          {!Compiled_engine}.  Fault plans, enabled observability and
          custom policies are outside its contract and turn into
          [Error] here. *)

val virtual_seeded : ?jitter:float -> ?reservation_depth:int -> int64 -> engine
(** Convenience: virtual engine with the given seed (jitter defaults
    to 0.03, reservation queues off — see {!Engine_core.params}). *)

val native_seeded : ?jitter:float -> ?reservation_depth:int -> int64 -> engine
(** Convenience: native engine with the given seed (jitter defaults to
    0. — native kernels run for real; the jitter only shapes the
    modelled device-compute sleeps — reservation queues off). *)

val compiled_seeded : ?jitter:float -> ?reservation_depth:int -> int64 -> engine
(** Convenience: compiled engine with the given seed (same defaults as
    {!virtual_seeded}, whose runs it replays exactly).  Each call to
    {!run} compiles the triple afresh; callers that re-run one
    workload many times should use {!Compiled_engine.compile} once and
    {!Compiled_engine.run} per emulation instead. *)

val native_default : engine
(** Native engine with {!Native_engine.default_params}. *)

val run :
  ?engine:engine ->
  ?policy:string ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  unit ->
  (Stats.report, string) result
(** Defaults: deterministic virtual engine (seed 1, 3% jitter), FRFS,
    observation disabled, no fault injection.  [obs] threads an
    observation bundle (event sink and/or metrics registry) through
    the selected engine's run — see {!Dssoc_obs.Obs}.  [fault]
    injects a deterministic fault plan and enables resilient dispatch
    — see {!Dssoc_fault.Fault} and {!Engine_core.workload_manager};
    the report's [verdict] and [resilience] fields record the
    outcome.  Errors on unknown policy names, unsupported tasks, or a
    fault rule targeting no PE of the configuration. *)

val run_exn :
  ?engine:engine ->
  ?policy:string ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  unit ->
  Stats.report

val run_detailed :
  ?engine:engine ->
  ?policy:string ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  unit ->
  (Stats.report * Task.instance array, string) result
(** Like {!run} but also returns the executed instances (in workload
    order), giving access to the final variable stores for functional
    verification. *)
