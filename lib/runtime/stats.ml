type task_record = {
  app : string;
  instance : int;
  node : string;
  pe : string;
  ready_ns : int;
  dispatched_ns : int;
  completed_ns : int;
}

type pe_usage = {
  pe_label : string;
  pe_kind : string;
  busy_ns : int;
  tasks_run : int;
  busy_energy_mj : float;
  energy_mj : float;
}

type app_summary = { instances : int; mean_latency_ns : float; max_latency_ns : int }

type verdict = Completed | Degraded | Aborted of string

let verdict_name = function
  | Completed -> "completed"
  | Degraded -> "degraded"
  | Aborted _ -> "aborted"

type resilience = {
  faults_injected : int;
  task_retries : int;
  pe_quarantines : int;
  pe_deaths : int;
  tasks_lost : int;
}

let no_faults =
  { faults_injected = 0; task_retries = 0; pe_quarantines = 0; pe_deaths = 0; tasks_lost = 0 }

type fabric = {
  dma_streams : int;
  fabric_stalls : int;
  fabric_stall_ns : int;
  max_inflight_streams : int;
}

let no_fabric =
  { dma_streams = 0; fabric_stalls = 0; fabric_stall_ns = 0; max_inflight_streams = 0 }

type report = {
  host_name : string;
  config_label : string;
  policy_name : string;
  makespan_ns : int;
  job_count : int;
  task_count : int;
  pe_usage : pe_usage list;
  sched_invocations : int;
  sched_ns : int;
  wm_overhead_ns : int;
  records : task_record list;
  app_stats : (string * app_summary) list;
  verdict : verdict;
  resilience : resilience;
  fabric : fabric;
}

let completed_fraction r =
  float_of_int (List.length r.records) /. float_of_int (max 1 r.task_count)

let utilization r =
  let span = float_of_int (max 1 r.makespan_ns) in
  List.map (fun u -> (u.pe_label, float_of_int u.busy_ns /. span)) r.pe_usage

let mean_utilization_by_kind r =
  let span = float_of_int (max 1 r.makespan_ns) in
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun u ->
      let sum, n = Option.value ~default:(0.0, 0) (Hashtbl.find_opt tbl u.pe_kind) in
      Hashtbl.replace tbl u.pe_kind (sum +. (float_of_int u.busy_ns /. span), n + 1))
    r.pe_usage;
  Hashtbl.fold (fun k (sum, n) acc -> (k, sum /. float_of_int n) :: acc) tbl []
  |> List.sort compare

let total_energy_mj r = List.fold_left (fun acc u -> acc +. u.energy_mj) 0.0 r.pe_usage

let total_busy_energy_mj r = List.fold_left (fun acc u -> acc +. u.busy_energy_mj) 0.0 r.pe_usage

let avg_sched_overhead_ns r =
  if r.sched_invocations = 0 then 0.0
  else float_of_int r.wm_overhead_ns /. float_of_int r.sched_invocations

let pp_summary fmt r =
  let ms ns = float_of_int ns /. 1e6 in
  Format.fprintf fmt "== %s | %s | %s ==@." r.host_name r.config_label r.policy_name;
  Format.fprintf fmt "  jobs: %d   tasks: %d   makespan: %.3f ms@." r.job_count r.task_count
    (ms r.makespan_ns);
  Format.fprintf fmt "  scheduler: %d invocations, %.3f ms total, %.2f us avg WM overhead@."
    r.sched_invocations (ms r.sched_ns) (avg_sched_overhead_ns r /. 1e3);
  Format.fprintf fmt "  energy: %.3f mJ across all PEs (%.3f mJ busy)@." (total_energy_mj r)
    (total_busy_energy_mj r);
  (* Fault-free runs keep the historical output byte-for-byte. *)
  (match (r.verdict, r.resilience) with
  | Completed, res when res = no_faults -> ()
  | v, res ->
    Format.fprintf fmt
      "  resilience: verdict %s%s; %d faults, %d retries, %d quarantines, %d PE deaths, \
       %.1f%% tasks completed@."
      (verdict_name v)
      (match v with Aborted reason -> Printf.sprintf " (%s)" reason | _ -> "")
      res.faults_injected res.task_retries res.pe_quarantines res.pe_deaths
      (100.0 *. completed_fraction r));
  (* Ideal-fabric runs keep the historical output byte-for-byte. *)
  (if r.fabric <> no_fabric then
     Format.fprintf fmt
       "  fabric: %d DMA streams, %d stalls, %.3f ms stalled, peak %d in flight@."
       r.fabric.dma_streams r.fabric.fabric_stalls
       (ms r.fabric.fabric_stall_ns)
       r.fabric.max_inflight_streams);
  List.iter
    (fun u ->
      Format.fprintf fmt "  %-8s busy %.3f ms (%d tasks, %.1f%% util)@." u.pe_label (ms u.busy_ns)
        u.tasks_run
        (100.0 *. float_of_int u.busy_ns /. float_of_int (max 1 r.makespan_ns)))
    r.pe_usage;
  List.iter
    (fun (app, s) ->
      Format.fprintf fmt "  %-16s x%d  mean latency %.3f ms  max %.3f ms@." app s.instances
        (s.mean_latency_ns /. 1e6) (ms s.max_latency_ns))
    r.app_stats

let records_csv r =
  let field = Dssoc_stats.Table.csv_field in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "app,instance,node,pe,ready_ns,dispatched_ns,completed_ns\n";
  List.iter
    (fun rec_ ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%d,%d,%d\n" (field rec_.app) rec_.instance
           (field rec_.node) (field rec_.pe) rec_.ready_ns rec_.dispatched_ns
           rec_.completed_ns))
    r.records;
  Buffer.contents buf

let chrome_trace ?obs r =
  let module Json = Dssoc_json.Json in
  let module Obs = Dssoc_obs.Obs in
  let module Analyze = Dssoc_obs.Analyze in
  let pe_index =
    List.mapi (fun i u -> (u.pe_label, i)) r.pe_usage
  in
  let events =
    List.map
      (fun t ->
        Json.obj
          [
            ("name", Json.str (Printf.sprintf "%s/%d:%s" t.app t.instance t.node));
            ("cat", Json.str t.app);
            ("ph", Json.str "X");
            ("ts", Json.float (float_of_int t.dispatched_ns /. 1e3));
            ("dur", Json.float (float_of_int (t.completed_ns - t.dispatched_ns) /. 1e3));
            ("pid", Json.int 1);
            ("tid", Json.int (Option.value ~default:0 (List.assoc_opt t.pe pe_index)));
            ("args", Json.obj [ ("ready_us", Json.float (float_of_int t.ready_ns /. 1e3)) ]);
          ])
      r.records
  in
  let threads =
    List.map
      (fun (label, i) ->
        Json.obj
          [
            ("name", Json.str "thread_name");
            ("ph", Json.str "M");
            ("pid", Json.int 1);
            ("tid", Json.int i);
            ("args", Json.obj [ ("name", Json.str label) ]);
          ])
      pe_index
  in
  (* Observation extras: accelerator DMA/compute sub-spans nested on
     the PE rows, and one Perfetto counter track per metrics gauge.
     Handler order equals [pe_usage] order, so the recorded [pe_index]
     is directly a [tid] here. *)
  let obs_extras =
    match obs with
    | None -> []
    | Some o ->
      let phases =
        List.filter_map
          (fun (e : Obs.event) ->
            match e.Obs.body with
            | Obs.Phase p ->
              Some
                (Json.obj
                   [
                     ("name", Json.str (Obs.phase_name p.phase));
                     ("cat", Json.str "accel");
                     ("ph", Json.str "X");
                     ("ts", Json.float (float_of_int p.start_ns /. 1e3));
                     ("dur", Json.float (float_of_int p.dur_ns /. 1e3));
                     ("pid", Json.int 1);
                     ("tid", Json.int p.pe_index);
                     ("args", Json.obj [ ("task", Json.int p.task) ]);
                   ])
            | _ -> None)
          (Obs.recorded_events o)
      in
      let counters =
        List.concat_map
          (fun (name, series) ->
            List.map
              (fun (t_ns, v) ->
                Json.obj
                  [
                    ("name", Json.str name);
                    ("ph", Json.str "C");
                    ("ts", Json.float (float_of_int t_ns /. 1e3));
                    ("pid", Json.int 1);
                    ("args", Json.obj [ ("value", Json.int v) ]);
                  ])
              series)
          (Obs.counter_tracks o)
      in
      (* Critical-path highlighting: the binding chain of the realized
         schedule on its own thread row, one span per step, so the
         bottleneck sequence reads straight across the trace. *)
      let crit =
        let cp = Analyze.critical_path (Analyze.of_events (Obs.recorded_events o)) in
        match cp.Analyze.cp_steps with
        | [] -> []
        | steps ->
          let tid = List.length pe_index in
          Json.obj
            [
              ("name", Json.str "thread_name");
              ("ph", Json.str "M");
              ("pid", Json.int 1);
              ("tid", Json.int tid);
              ("args", Json.obj [ ("name", Json.str "critical path") ]);
            ]
          :: List.map
               (fun (s : Analyze.step) ->
                 let x = s.Analyze.s_task in
                 Json.obj
                   [
                     ( "name",
                       Json.str
                         (Printf.sprintf "%s/%d:%s" x.Analyze.x_app x.Analyze.x_instance
                            x.Analyze.x_node) );
                     ("cat", Json.str "crit");
                     ("ph", Json.str "X");
                     ("ts", Json.float (float_of_int x.Analyze.x_dispatched_ns /. 1e3));
                     ( "dur",
                       Json.float
                         (float_of_int (x.Analyze.x_completed_ns - x.Analyze.x_dispatched_ns)
                         /. 1e3) );
                     ("pid", Json.int 1);
                     ("tid", Json.int tid);
                     ( "args",
                       Json.obj
                         [
                           ("pe", Json.str x.Analyze.x_pe);
                           ("edge", Json.str (Analyze.edge_name s.Analyze.s_edge));
                           ("slack_us", Json.float (float_of_int s.Analyze.s_slack_ns /. 1e3));
                         ] );
                   ])
               steps
      in
      phases @ counters @ crit
  in
  Json.obj
    [
      ("traceEvents", Json.list (threads @ events @ obs_extras));
      ("displayTimeUnit", Json.str "ms");
      ( "otherData",
        Json.obj
          [
            ("config", Json.str r.config_label);
            ("policy", Json.str r.policy_name);
            ("host", Json.str r.host_name);
          ] );
    ]

(* a-z, then A-Z, then 0-9; beyond 62 applications the alphabet wraps
   (letters are a reading aid, not an identifier). *)
let gantt_alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let gantt ?(width = 100) r =
  let width = max 1 width in
  let span = float_of_int (max 1 r.makespan_ns) in
  let apps = List.sort_uniq compare (List.map (fun t -> t.app) r.records) in
  let letter app =
    match List.find_index (fun a -> a = app) apps with
    | Some i -> gantt_alphabet.[i mod String.length gantt_alphabet]
    | None -> '?'
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (app : string) -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" (letter app) app))
    apps;
  List.iter
    (fun u ->
      let row = Bytes.make width '.' in
      List.iter
        (fun t ->
          if t.pe = u.pe_label then begin
            let pos ns =
              min (width - 1)
                (max 0 (int_of_float (float_of_int ns /. span *. float_of_int width)))
            in
            (* Clamp into the row and give zero-width (or malformed
               negative-duration) spans one cell, so an instantaneous
               task is still visible and the fill loop bounds are
               always ordered. *)
            let first = pos t.dispatched_ns in
            let last = max first (pos t.completed_ns) in
            for i = first to last do
              Bytes.set row i (letter t.app)
            done
          end)
        r.records;
      Buffer.add_string buf (Printf.sprintf "%-8s |%s|\n" u.pe_label (Bytes.to_string row)))
    r.pe_usage;
  Buffer.add_string buf
    (Printf.sprintf "%-8s  0%s%.3f ms\n" "" (String.make (max 1 (width - 8)) ' ')
       (float_of_int r.makespan_ns /. 1e6));
  Buffer.contents buf
