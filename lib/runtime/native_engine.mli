(** Native emulation engine: the framework running for real.

    One OCaml 5 domain per PE plays the resource-manager thread; the
    calling domain plays the workload manager.  Both run the shared
    {!Engine_core} protocol — the very same workload-manager loop and
    resource-handler state machine as the virtual engine — over a
    backend of mutex/condvar handler queues, a polling manager loop
    and the monotonic wall clock ({!Dssoc_util.Mclock}).

    Kernels execute for real and times are wall-clock measurements, so
    results vary with the machine — this engine demonstrates the
    framework is a genuine user-space runtime and cross-checks the
    virtual engine's functional outputs.  Hardware accelerators do not
    exist on the host, so an accelerator PE performs its DMA phases as
    real buffer copies and emulates device compute with a timed sleep
    of the modelled duration (substitution documented in DESIGN.md).

    Because kernels and manager overheads are real, {!params} shapes
    rather than determines a native run: the seed drives the RANDOM
    policy and the jitter on modelled device-compute sleeps, and
    [reservation_depth] configures the same per-PE reservation queues
    as the virtual engine. *)

val default_params : Engine_core.params
(** seed 7, no jitter, no reservation queues (the engine's historical
    behavior). *)

val run :
  ?params:Engine_core.params ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report
(** Run to completion using real domains.

    [obs] (default {!Dssoc_obs.Obs.disabled}) receives the engine-core
    event stream and metrics, timestamped with the monotonic clock
    (ns since run start).  DMA and device-compute phase events are
    emitted from the handler domains (the sink is mutex-protected);
    metrics are only updated by the workload-manager domain.

    [fault] (default none) injects the plan's deterministic fault
    schedule — the same schedule the virtual engine replays for the
    same plan, since draws are keyed on (task, attempt) rather than
    timing — and turns on resilient dispatch (see
    {!Engine_core.workload_manager}).

    Whatever happens — including a policy or kernel exception — every
    handler domain is stopped and joined before this function returns
    or re-raises; a poisoned run leaks no domains.
    @raise Invalid_argument if some task supports no PE of the
    configuration, or if a fault rule targets no PE. *)

val run_detailed :
  ?params:Engine_core.params ->
  ?obs:Dssoc_obs.Obs.t ->
  ?fault:Dssoc_fault.Fault.plan ->
  config:Dssoc_soc.Config.t ->
  workload:Dssoc_apps.Workload.t ->
  policy:Scheduler.policy ->
  unit ->
  Stats.report * Task.instance array
(** Like {!run} but also returns the executed instances so callers can
    inspect final variable stores. *)
