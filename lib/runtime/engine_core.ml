module Pe = Dssoc_soc.Pe
module Config = Dssoc_soc.Config
module Cost_model = Dssoc_soc.Cost_model
module Fabric = Dssoc_soc.Fabric
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng
module Obs = Dssoc_obs.Obs
module Fault = Dssoc_fault.Fault

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

type params = { seed : int64; jitter : float; reservation_depth : int }

let default_params = { seed = 1L; jitter = 0.03; reservation_depth = 0 }

let jittered prng ~jitter ns =
  if jitter <= 0.0 || ns <= 0 then ns
  else begin
    let f = Prng.gaussian prng ~mu:1.0 ~sigma:jitter in
    max 1 (int_of_float (Float.round (float_of_int ns *. Float.max 0.1 f)))
  end

(* ------------------------------------------------------------------ *)
(* DMA phases                                                          *)
(* ------------------------------------------------------------------ *)

(* A DMA phase is no longer a fixed duration decided at dispatch time:
   under a shared fabric its cost depends on who else is on the link.
   The engines receive the decomposition and charge it through their
   [b_dma] hook — [dp_ideal_ns] is the legacy per-device duration
   (what [Fabric.Ideal] replays exactly); under a bus the phase places
   [dp_bytes] of bandwidth demand on the shared link plus a fixed
   latency of [dp_chunks] per-transfer setups (and per-hop fabric
   latency, resolved per PE by the engine). *)
type dma_phase = {
  dp_ideal_ns : int;
  dp_bytes : int;
  dp_chunks : int;
  dp_chunk_lat_ns : int;
}

let no_dma = { dp_ideal_ns = 0; dp_bytes = 0; dp_chunks = 0; dp_chunk_lat_ns = 0 }

(* ------------------------------------------------------------------ *)
(* Resource handlers                                                   *)
(* ------------------------------------------------------------------ *)

type 'h handler = {
  h_pe : Pe.t;
  h_index : int;  (** this handler's PE index (row in the estimate table) *)
  h_capacity : int;  (** 1 + reservation-queue depth (1 = the paper's baseline) *)
  h_pending : Task.t Queue.t;  (** dispatched by the WM, not yet executed *)
  h_completed : Task.t Queue.t;  (** executed, awaiting WM bookkeeping *)
  mutable h_inflight : int;  (** pending + currently executing; WM-owned *)
  mutable h_stop : bool;
  mutable h_busy_ns : int;  (** occupancy (execution time), not queue residence *)
  mutable h_tasks_run : int;
  mutable h_busy_until : int;  (** EFT availability horizon; WM-owned *)
  mutable h_quarantined_until : int;
      (** WM-owned fault state: 0 = healthy, [max_int] = permanently
          dead, else the emulation time the quarantine lifts *)
  h_backend : 'h;  (** backend-private per-handler state *)
}

let make_handler ~pe ~index ~reservation_depth backend =
  {
    h_pe = pe;
    h_index = index;
    h_capacity = 1 + max 0 reservation_depth;
    h_pending = Queue.create ();
    h_completed = Queue.create ();
    h_inflight = 0;
    h_stop = false;
    h_busy_ns = 0;
    h_tasks_run = 0;
    h_busy_until = 0;
    h_quarantined_until = 0;
    h_backend = backend;
  }

(* ------------------------------------------------------------------ *)
(* Statistics accumulator                                              *)
(* ------------------------------------------------------------------ *)

type wm_stats = {
  mutable sched_invocations : int;
  mutable sched_ns : int;
  mutable wm_ns : int;
  mutable records : Stats.task_record list;
  mutable faults : int;  (** failed or slowed execution attempts *)
  mutable retries : int;
  mutable quarantines : int;
  mutable pe_deaths : int;
  mutable aborted : string option;  (** first abort reason, if any *)
}

let make_stats () =
  {
    sched_invocations = 0;
    sched_ns = 0;
    wm_ns = 0;
    records = [];
    faults = 0;
    retries = 0;
    quarantines = 0;
    pe_deaths = 0;
    aborted = None;
  }

(* Fabric contention accumulator.  Virtual/compiled mutate it from the
   single event-loop thread; native guards it with the fabric mutex. *)
type fabric_counters = {
  mutable fc_streams : int;  (** DMA streams routed through the fabric *)
  mutable fc_stalls : int;  (** admissions that found the FIFO full *)
  mutable fc_stall_ns : int;  (** total time initiators spent queued *)
  mutable fc_max_inflight : int;  (** peak concurrent in-flight streams *)
}

let make_fabric_counters () =
  { fc_streams = 0; fc_stalls = 0; fc_stall_ns = 0; fc_max_inflight = 0 }

(* ------------------------------------------------------------------ *)
(* Backends                                                            *)
(* ------------------------------------------------------------------ *)

type 'h backend = {
  b_now : unit -> int;
  b_lock : 'h handler -> unit;
  b_unlock : 'h handler -> unit;
  b_handler_await : 'h handler -> unit;
  b_notify_handler : 'h handler -> unit;
  b_wm_await : deadline:int option -> unit;
  b_notify_wm : unit -> unit;
  b_charge : float -> unit;
  b_dma : 'h handler -> dma_phase -> unit;
      (** charge one DMA phase: acquire/release shared-fabric capacity
          (or replay [dp_ideal_ns] under {!Fabric.Ideal}) *)
  b_execute : 'h handler -> Task.t -> unit;
  b_delay : 'h handler -> int -> unit;
      (** occupy the handler's PE for a modelled duration without
          running a kernel (fault detection latency, slowdown tail) *)
  b_sched_start : unit -> int;
  b_sched_done : int -> ready:int -> ops:int -> int;
  b_wm_tick_start : unit -> int;
  b_wm_tick_end : int -> unit;
}

(* ------------------------------------------------------------------ *)
(* Shared protocol pieces                                              *)
(* ------------------------------------------------------------------ *)

let instantiate ~engine_name ~(config : Config.t) ~(workload : Workload.t) =
  (* Initialization phase (outside emulation time, as in Section II-A):
     allocate every instance and its memory up front. *)
  let items = Array.of_list workload.Workload.items in
  let task_id_base = ref 0 in
  let instances =
    Array.mapi
      (fun i (item : Workload.item) ->
        let inst =
          Task.instantiate ~task_id_base:!task_id_base ~inst_id:i
            ~arrival_ns:item.Workload.arrival_ns item.Workload.spec
        in
        task_id_base := !task_id_base + Array.length inst.Task.tasks;
        inst)
      items
  in
  let pes = Config.pes config in
  Array.iter
    (fun inst ->
      Array.iter
        (fun (t : Task.t) ->
          if not (List.exists (Task.supports t) pes) then
            invalid_arg
              (Printf.sprintf "%s: task %s/%s supports no PE of configuration %s"
                 engine_name t.Task.app_name t.Task.node.App_spec.node_name
                 config.Config.label))
        inst.Task.tasks)
    instances;
  instances

(* Resolve an engine-facing fault plan against the run's handler
   array; shared by both backends so they compile identical plans. *)
let compile_fault plan ~(handlers : 'h handler array) =
  match plan with
  | None -> Fault.disabled
  | Some plan ->
    Fault.compile plan
      ~pes:
        (Array.map
           (fun h ->
             {
               Fault.pe_label = h.h_pe.Pe.label;
               pe_kind = Pe.kind_name h.h_pe.Pe.kind;
               pe_is_cpu = Pe.is_cpu h.h_pe.Pe.kind;
             })
           handlers)

let accel_phases (task : Task.t) pe acl =
  let entry = Task.platform_entry_for task pe in
  match Option.bind entry (fun e -> e.App_spec.cost_us) with
  | Some us -> (no_dma, int_of_float (us *. 1e3), no_dma)
  | None ->
    let dma_in, compute, dma_out = Exec_model.accel_phases_ns task acl in
    let bytes_in, bytes_out = Exec_model.dma_bytes task.Task.node in
    let phase ideal bytes =
      {
        dp_ideal_ns = ideal;
        dp_bytes = bytes;
        dp_chunks = Cost_model.chunk_count acl ~bytes;
        dp_chunk_lat_ns = acl.Pe.dma.Dssoc_soc.Dma.latency_ns;
      }
    in
    (phase dma_in bytes_in, compute, phase dma_out bytes_out)

(* ------------------------------------------------------------------ *)
(* Resource manager (Fig. 4)                                           *)
(* ------------------------------------------------------------------ *)

let resource_manager ?(obs = Obs.disabled) ?(fault = Fault.disabled) ?est_table
    (b : 'h backend) (h : 'h handler) =
  (* One execution attempt.  A faulted attempt burns PE time but MUST
     NOT run the kernel: kernels mutate the instance store in place and
     are not idempotent, so only the final (successful) attempt may
     execute — that keeps functional outputs identical with and
     without retries. *)
  let execute (task : Task.t) started =
    if not (Fault.enabled fault) then b.b_execute h task
    else begin
      let est_ns =
        match est_table with
        | Some tbl -> Exec_model.lookup tbl task h.h_index
        | None -> 0
      in
      match
        Fault.decide fault ~pe:h.h_index ~now:started ~task_id:task.Task.id
          ~attempt:task.Task.attempts ~est_ns
      with
      | Fault.Proceed -> b.b_execute h task
      | Fault.Proceed_slow extra_ns ->
        if Obs.enabled obs then
          Obs.on_fault_injected obs ~now:started ~task:task.Task.id
            ~pe:h.h_pe.Pe.label ~pe_index:h.h_index ~fault:"slowdown"
            ~attempt:task.Task.attempts;
        b.b_execute h task;
        if extra_ns > 0 then b.b_delay h extra_ns
      | Fault.Fail { after_ns; reason; quarantine_ns } ->
        if Obs.enabled obs then
          Obs.on_fault_injected obs ~now:started ~task:task.Task.id
            ~pe:h.h_pe.Pe.label ~pe_index:h.h_index
            ~fault:(Fault.failure_name reason) ~attempt:task.Task.attempts;
        if after_ns > 0 then b.b_delay h after_ns;
        task.Task.last_failure <- Some (reason, quarantine_ns)
    end
  in
  let rec loop () =
    b.b_lock h;
    b.b_handler_await h;
    if h.h_stop then b.b_unlock h
    else begin
      (* With a reservation queue the next task starts with no
         workload-manager round trip — the future-work optimisation
         Section III-C sketches. *)
      let rec drain () =
        match Queue.take_opt h.h_pending with
        | None -> ()
        | Some task ->
          if h.h_capacity > 1 && Obs.enabled obs then
            Obs.on_reservation_popped obs ~now:(b.b_now ()) ~pe_index:h.h_index
              ~depth:(Queue.length h.h_pending);
          b.b_unlock h;
          let started = b.b_now () in
          execute task started;
          let finished = b.b_now () in
          task.Task.completed_at <- finished;
          b.b_lock h;
          (* Occupancy, not queue residence: utilisation stays
             meaningful when a reservation queue is configured.  Failed
             attempts still occupied the PE, but only successful runs
             count as tasks run. *)
          h.h_busy_ns <- h.h_busy_ns + (finished - started);
          if task.Task.last_failure = None then h.h_tasks_run <- h.h_tasks_run + 1;
          Queue.add task h.h_completed;
          b.b_notify_wm ();
          drain ()
      in
      drain ();
      b.b_unlock h;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Service hooks (serve extension)                                     *)
(* ------------------------------------------------------------------ *)

(* Capabilities the workload manager hands to a resident service: the
   service decides *which* instances enter the run and when, the WM
   keeps owning the ready list, dispatch and completion monitoring. *)
type service_ops = {
  so_inject : Task.instance -> int;
      (* admit one instance now: emits the injection event, makes its
         entry tasks ready, returns how many tasks that was *)
  so_cancel : Task.instance -> unit;
      (* watchdog abort: withdraw the instance's Ready tasks (lazy
         deletion, as dispatch does), purge its retry entries and
         suppress successor release via [Task.cancelled].  The caller
         must only cancel instances with no Running task. *)
  so_ready_live : unit -> int;
  so_inflight : unit -> int;
  so_retry_empty : unit -> bool;
}

type service = {
  sv_tick : service_ops -> now:int -> int;
      (* one service sweep, replacing the fixed-workload injection
         drain: run admission control over due arrivals, harvest
         completions, run the watchdog; returns the number of tasks
         made ready (charged like an injection burst) *)
  sv_next : now:int -> int option;
      (* next service deadline (arrival or watchdog expiry), strictly
         in the future; [None] when only completions can wake the WM *)
  sv_finished : service_ops -> now:int -> bool;
      (* termination: every arrival consumed (or a drain was requested)
         and the run is quiescent *)
  sv_resume : bool;
      (* restored from a checkpoint: skip the first WM tick and go
         straight to the await, so the resumed clock trajectory is
         identical to the uninterrupted run's (which awaited right
         after the tick that observed the quiescent instant) *)
}

(* ------------------------------------------------------------------ *)
(* Workload manager (Fig. 3)                                           *)
(* ------------------------------------------------------------------ *)

(* Cap on how many ready tasks a single policy invocation examines.
   The *charged* (or measured) overhead still grows with the full
   ready-list length (that is the paper's O(n)/O(n^2) effect); the cap
   only bounds the engine's own compute, and idle-PE counts make
   deeper windows pointless. *)
let sched_window = Cost_model.sched_examined_cap

let workload_manager ?(obs = Obs.disabled) ?(fault = Fault.disabled) ?service
    (b : 'h backend) ~(handlers : 'h handler array)
    ~(instances : Task.instance array) ~est_table ~(policy : Scheduler.policy)
    ~prng ~(stats : wm_stats) =
  let n_pes = Array.length handlers in
  let fault_on = Fault.enabled fault in
  let ready : Task.t Queue.t = Queue.create () in
  (* Tasks leave the ready queue lazily (dispatch flips them to
     Running but only the front is ever popped), so [Queue.length]
     overstates the live ready-list length.  The scheduler's charged
     O(n)/O(n^2) cost must follow the *live* count, kept here. *)
  let ready_live = ref 0 in
  (* WM-owned dispatched-but-not-yet-monitored count, feeding the
     in-flight gauge; metrics are only ever touched on this thread. *)
  let inflight = ref 0 in
  (* Under a service the injection schedule is owned by the service
     hooks (admission control decides which instances ever enter), so
     the fixed-workload pending list starts empty and [unfinished] is
     not the termination criterion. *)
  let pending = ref (match service with None -> Array.to_list instances | Some _ -> []) in
  let unfinished = ref (Array.length instances) in
  let make_ready (task : Task.t) =
    task.Task.status <- Task.Ready;
    task.Task.ready_at <- b.b_now ();
    Queue.add task ready;
    incr ready_live;
    if Obs.enabled obs then
      Obs.on_task_ready obs ~now:task.Task.ready_at ~task:task.Task.id
        ~instance:task.Task.instance_id ~app:task.Task.app_name
        ~node:task.Task.node.App_spec.node_name ~ready_depth:!ready_live
  in
  (* ---- fault handling (all WM-owned; no-ops when [fault_on] is false) ---- *)
  (* Tasks sleeping out a retry backoff, sorted by release time. *)
  let retry_q : (int * Task.t) list ref = ref [] in
  let insert_retry at task =
    let rec ins = function
      | ((t, _) as hd) :: tl when t <= at -> hd :: ins tl
      | rest -> (at, task) :: rest
    in
    retry_q := ins !retry_q
  in
  let abort reason = if stats.aborted = None then stats.aborted <- Some reason in
  let pe_alive h = h.h_quarantined_until <> max_int in
  let has_alive_support (task : Task.t) =
    Array.exists (fun h -> pe_alive h && Task.supports task h.h_pe) handlers
  in
  (* Permanent loss of a PE: quarantine it forever, drain its
     reservation queue back to the ready list (those tasks never
     started, so re-dispatching them elsewhere is safe), and give up
     on the run if some unfinished task now has no surviving PE. *)
  let kill_pe (h : 'h handler) ~now =
    if pe_alive h then begin
      h.h_quarantined_until <- max_int;
      stats.quarantines <- stats.quarantines + 1;
      stats.pe_deaths <- stats.pe_deaths + 1;
      if Obs.enabled obs then
        Obs.on_pe_quarantined obs ~now ~pe:h.h_pe.Pe.label ~pe_index:h.h_index
          ~until_ns:max_int ~permanent:true;
      let drained = ref [] in
      b.b_lock h;
      Queue.iter (fun t -> drained := t :: !drained) h.h_pending;
      Queue.clear h.h_pending;
      b.b_unlock h;
      List.iter
        (fun (t : Task.t) ->
          h.h_inflight <- h.h_inflight - 1;
          decr inflight;
          make_ready t)
        (List.rev !drained);
      Array.iter
        (fun inst ->
          Array.iter
            (fun (t : Task.t) ->
              if t.Task.status <> Task.Done && not (has_alive_support t) then
                abort
                  (Printf.sprintf "task %s/%s supports no surviving PE" t.Task.app_name
                     t.Task.node.App_spec.node_name))
            inst.Task.tasks)
        instances
    end
  in
  let quarantine_pe (h : 'h handler) ~until ~now =
    if pe_alive h && until > h.h_quarantined_until then begin
      h.h_quarantined_until <- until;
      stats.quarantines <- stats.quarantines + 1;
      if Obs.enabled obs then
        Obs.on_pe_quarantined obs ~now ~pe:h.h_pe.Pe.label ~pe_index:h.h_index
          ~until_ns:until ~permanent:false
    end
  in
  (* WM bookkeeping of one failed execution attempt: count it,
     quarantine the PE as the fault plan dictates, then either
     schedule a retry (capped exponential backoff) or abort. *)
  let handle_failure (h : 'h handler) (task : Task.t) reason quarantine_ns =
    stats.faults <- stats.faults + 1;
    let now = b.b_now () in
    if Obs.enabled obs then
      Obs.on_task_failed obs ~now ~task:task.Task.id ~instance:task.Task.instance_id
        ~app:task.Task.app_name ~node:task.Task.node.App_spec.node_name
        ~pe:h.h_pe.Pe.label ~pe_index:h.h_index ~fault:(Fault.failure_name reason)
        ~attempt:task.Task.attempts;
    (match reason with
    | Fault.Pe_dead -> kill_pe h ~now
    | _ when quarantine_ns = max_int -> kill_pe h ~now
    | _ when quarantine_ns > 0 -> quarantine_pe h ~until:(now + quarantine_ns) ~now
    | _ -> ());
    if not (has_alive_support task) then
      abort
        (Printf.sprintf "task %s/%s supports no surviving PE" task.Task.app_name
           task.Task.node.App_spec.node_name)
    else if task.Task.attempts >= Fault.max_attempts fault then
      abort
        (Printf.sprintf "task %s/%s exhausted its %d-attempt budget" task.Task.app_name
           task.Task.node.App_spec.node_name (Fault.max_attempts fault))
    else begin
      stats.retries <- stats.retries + 1;
      let backoff = Fault.backoff_ns fault ~attempt:task.Task.attempts in
      task.Task.status <- Task.Blocked;
      insert_retry (now + backoff) task;
      if Obs.enabled obs then
        Obs.on_task_retried obs ~now ~task:task.Task.id ~instance:task.Task.instance_id
          ~app:task.Task.app_name ~node:task.Task.node.App_spec.node_name
          ~attempt:task.Task.attempts ~backoff_ns:backoff
    end
  in
  (* Scratch structures reused by every scheduling invocation: the
     policy-facing PE states are refreshed in place, and the ready
     window is snapshotted into a reusable array (sized once to the
     examination cap).  Reallocating these per invocation — once per
     task completion — dominated the scheduler hot path. *)
  (* A PE at or past its scheduled death time must never receive work,
     even if the proactive kill sweep has not reached it yet: the
     engines' clocks pass the death time at different wall points, and
     a dispatch that slips through on one engine but not the other
     consumes an attempt (without a fault draw) and desynchronises the
     replay. *)
  let dead_at h ~now =
    match Fault.death_ns fault ~pe:h.h_index with
    | Some t -> now >= t
    | None -> false
  in
  let sweep_deaths ~now =
    Array.iter
      (fun h ->
        if dead_at h ~now && pe_alive h then begin
          stats.faults <- stats.faults + 1;
          kill_pe h ~now
        end)
      handlers
  in
  (* Capabilities handed to the service hooks.  [so_cancel] withdraws
     Ready tasks by the same lazy-deletion trick dispatch uses (status
     flip + live-count decrement; the queue entry goes stale). *)
  let service_ops =
    {
      so_inject =
        (fun (inst : Task.instance) ->
          if Obs.enabled obs then
            Obs.on_instance_injected obs ~now:(b.b_now ()) ~instance:inst.Task.inst_id
              ~app:inst.Task.app.App_spec.app_name;
          List.iter make_ready inst.Task.entry;
          List.length inst.Task.entry);
      so_cancel =
        (fun (inst : Task.instance) ->
          inst.Task.cancelled <- true;
          Array.iter
            (fun (t : Task.t) ->
              if t.Task.status = Task.Ready then begin
                t.Task.status <- Task.Blocked;
                decr ready_live
              end)
            inst.Task.tasks;
          retry_q :=
            List.filter
              (fun (_, (t : Task.t)) -> t.Task.instance_id <> inst.Task.inst_id)
              !retry_q);
      so_ready_live = (fun () -> !ready_live);
      so_inflight = (fun () -> !inflight);
      so_retry_empty = (fun () -> !retry_q = []);
    }
  in
  let pes_scratch =
    Array.map
      (fun h -> { Scheduler.pe = h.h_pe; idle = false; busy_until = 0; available = true })
      handlers
  in
  let ready_scratch = ref [||] in
  (* One scheduling invocation: snapshot the ready window, run the
     policy, account its cost, dispatch the selected tasks.  Invoked
     after every task completion and after every injection burst, as
     the paper's workload manager does (it has no PE reservation
     queues, so "a scheduling algorithm incurs this overhead every
     time a task completes"). *)
  let do_schedule () =
    while (not (Queue.is_empty ready)) && (Queue.peek ready).Task.status <> Task.Ready do
      ignore (Queue.pop ready)
    done;
    let now0 = if fault_on then b.b_now () else 0 in
    let pe_ok h =
      (not fault_on) || (h.h_quarantined_until <= now0 && not (dead_at h ~now:now0))
    in
    let usable h = h.h_inflight < h.h_capacity && pe_ok h in
    let have_idle = Array.exists usable handlers in
    if stats.aborted = None && (not (Queue.is_empty ready)) && have_idle then begin
      let ready_len = !ready_live in
      let nready =
        let taken = ref 0 in
        (try
           Seq.iter
             (fun t ->
               if t.Task.status = Task.Ready then begin
                 if Array.length !ready_scratch = 0 then
                   ready_scratch := Array.make sched_window t;
                 !ready_scratch.(!taken) <- t;
                 incr taken;
                 if !taken >= sched_window then raise Exit
               end)
             (Queue.to_seq ready)
         with Exit -> ());
        !taken
      in
      Array.iteri
        (fun i h ->
          let st = pes_scratch.(i) in
          st.Scheduler.available <- pe_ok h;
          st.Scheduler.idle <- st.Scheduler.available && h.h_inflight < h.h_capacity;
          st.Scheduler.busy_until <- h.h_busy_until)
        handlers;
      let t0 = b.b_sched_start () in
      let ctx =
        {
          Scheduler.now = b.b_now ();
          ready = !ready_scratch;
          nready;
          pes = pes_scratch;
          estimate = (fun task i -> Exec_model.lookup est_table task i);
          prng;
          ops = 0;
        }
      in
      let assignments = policy.Scheduler.schedule ctx in
      let sched_cost = b.b_sched_done t0 ~ready:ready_len ~ops:ctx.Scheduler.ops in
      stats.sched_ns <- stats.sched_ns + sched_cost;
      stats.sched_invocations <- stats.sched_invocations + 1;
      if Obs.enabled obs then
        Obs.on_sched obs ~now:(b.b_now ()) ~ready:ready_len ~examined:nready
          ~ops:ctx.Scheduler.ops ~cost_ns:sched_cost
          ~assigned:(List.length assignments);
      (* Communicate selected tasks to their resource managers (setting
         the status to Running also lazily removes each task from the
         ready queue). *)
      List.iter
        (fun (a : Scheduler.assignment) ->
          let task = a.Scheduler.task and h = handlers.(a.Scheduler.pe_index) in
          if
            fault_on
            && (h.h_quarantined_until > b.b_now ()
               || dead_at h ~now:(b.b_now ())
               || h.h_inflight >= h.h_capacity)
          then
            (* A custom policy ignored [Scheduler.pe_state.available]
               (or overcommitted); drop the assignment — the task stays
               in the ready list for the next invocation. *)
            ()
          else begin
            b.b_charge Cost_model.dispatch_per_task_ns;
            b.b_lock h;
            task.Task.status <- Task.Running;
            task.Task.attempts <- task.Task.attempts + 1;
            decr ready_live;
            task.Task.dispatched_at <- b.b_now ();
            task.Task.pe_label <- h.h_pe.Pe.label;
            Queue.add task h.h_pending;
            h.h_inflight <- h.h_inflight + 1;
            incr inflight;
            h.h_busy_until <-
              max (b.b_now ()) h.h_busy_until + Exec_model.lookup est_table task h.h_index;
            if Obs.enabled obs then begin
              let now = task.Task.dispatched_at in
              Obs.on_task_dispatched obs ~now ~task:task.Task.id
                ~instance:task.Task.instance_id ~app:task.Task.app_name
                ~node:task.Task.node.App_spec.node_name ~pe:h.h_pe.Pe.label
                ~pe_index:h.h_index ~wait_ns:(now - task.Task.ready_at)
                ~ready_depth:!ready_live ~pe_depth:h.h_inflight ~inflight:!inflight;
              if h.h_capacity > 1 then
                Obs.on_reservation_enqueued obs ~now ~pe_index:h.h_index
                  ~depth:(Queue.length h.h_pending)
            end;
            b.b_notify_handler h;
            b.b_unlock h
          end)
        assignments
    end
  in
  (* Bookkeeping for one completed task: statistics, instance
     accounting, and releasing newly ready successors. *)
  let process_completion (task : Task.t) =
    task.Task.status <- Task.Done;
    (* A resident service never reads the per-task record list and
       would grow it without bound; its per-tenant aggregates are kept
       by the service layer instead. *)
    (match service with
    | Some _ -> ()
    | None ->
      stats.records <-
        {
          Stats.app = task.Task.app_name;
          instance = task.Task.instance_id;
          node = task.Task.node.App_spec.node_name;
          pe = task.Task.pe_label;
          ready_ns = task.Task.ready_at;
          dispatched_ns = task.Task.dispatched_at;
          completed_ns = task.Task.completed_at;
        }
        :: stats.records);
    let inst = instances.(task.Task.instance_id) in
    if not inst.Task.cancelled then begin
      inst.Task.remaining <- inst.Task.remaining - 1;
      if inst.Task.remaining = 0 then begin
        inst.Task.completed_at <- b.b_now ();
        decr unfinished
      end;
      let newly_ready = ref 0 in
      List.iter
        (fun (succ : Task.t) ->
          succ.Task.unmet <- succ.Task.unmet - 1;
          if succ.Task.unmet = 0 then begin
            make_ready succ;
            incr newly_ready
          end)
        task.Task.successors;
      if !newly_ready > 0 then
        b.b_charge (Cost_model.ready_update_per_task_ns *. float_of_int !newly_ready)
    end
  in
  let rec loop () =
    let tick = b.b_wm_tick_start () in
    (* Planned deaths fire before anything else in the iteration: the
       first tick may already carry due arrivals (the virtual clock is
       past t=0 once setup costs are charged), and a death must take
       effect before any dispatch decision of the same tick. *)
    if fault_on then sweep_deaths ~now:(b.b_now ());
    (* -- one completion-monitoring sweep over the resource handlers -- *)
    b.b_charge (Cost_model.monitor_per_pe_ns *. float_of_int n_pes);
    let batch_completions = ref false in
    let completions = ref 0 in
    Array.iter
      (fun h ->
        (* Pop one completion at a time, re-taking the lock between
           pops, so a capacity-1 handler's scheduling round never runs
           while this handler is locked. *)
        let continue_ = ref true in
        while !continue_ do
          b.b_lock h;
          match Queue.take_opt h.h_completed with
          | None ->
            b.b_unlock h;
            continue_ := false
          | Some task ->
            b.b_unlock h;
            h.h_inflight <- h.h_inflight - 1;
            decr inflight;
            (match task.Task.last_failure with
            | Some (reason, quarantine_ns) ->
              task.Task.last_failure <- None;
              handle_failure h task reason quarantine_ns
            | None ->
              incr completions;
              if Obs.enabled obs then
                Obs.on_task_completed obs ~now:task.Task.completed_at
                  ~task:task.Task.id ~instance:task.Task.instance_id
                  ~app:task.Task.app_name ~node:task.Task.node.App_spec.node_name
                  ~pe:task.Task.pe_label ~pe_index:h.h_index
                  ~service_ns:(task.Task.completed_at - task.Task.dispatched_at)
                  ~pe_depth:h.h_inflight ~inflight:!inflight;
              process_completion task);
            if h.h_capacity <= 1 then
              (* No reservation queue: the scheduler runs once per
                 completed task, as in the paper. *)
              do_schedule ()
            else batch_completions := true
        done)
      handlers;
    if !batch_completions then do_schedule ();
    (* -- inject newly arrived application instances -- *)
    let injected = ref 0 in
    let now = b.b_now () in
    let rec drain () =
      match !pending with
      | inst :: rest when inst.Task.arrival_ns <= now ->
        pending := rest;
        if Obs.enabled obs then
          Obs.on_instance_injected obs ~now ~instance:inst.Task.inst_id
            ~app:inst.Task.app.App_spec.app_name;
        List.iter
          (fun t ->
            make_ready t;
            incr injected)
          inst.Task.entry;
        drain ()
      | _ -> ()
    in
    (match service with
    | None -> if stats.aborted = None then drain ()
    | Some sv -> if stats.aborted = None then injected := sv.sv_tick service_ops ~now);
    if !injected > 0 then begin
      b.b_charge (Cost_model.ready_update_per_task_ns *. float_of_int !injected);
      do_schedule ()
    end;
    (* -- fault timeline: planned deaths, quarantine expiry, retries -- *)
    if fault_on then begin
      let now = b.b_now () in
      (* Planned deaths fire proactively, so a PE dies at its scheduled
         time on both engines even if nothing was dispatched to it.
         (Also swept at the top of the iteration; this catches deaths
         whose time was crossed by charges within the iteration.) *)
      sweep_deaths ~now;
      let recovered = ref false in
      Array.iter
        (fun h ->
          if h.h_quarantined_until > 0 && pe_alive h && now >= h.h_quarantined_until
          then begin
            h.h_quarantined_until <- 0;
            recovered := true;
            if Obs.enabled obs then
              Obs.on_pe_recovered obs ~now ~pe:h.h_pe.Pe.label ~pe_index:h.h_index
          end)
        handlers;
      let released = ref 0 in
      let rec release () =
        match !retry_q with
        | (t, task) :: rest when t <= now && stats.aborted = None ->
          retry_q := rest;
          make_ready task;
          incr released;
          release ()
        | _ -> ()
      in
      release ();
      if !released > 0 || !recovered then do_schedule ()
    end;
    b.b_wm_tick_end tick;
    if Obs.enabled obs then
      Obs.on_wm_tick obs ~now:(b.b_now ()) ~completions:!completions
        ~injected:!injected;
    (* -- terminate or wait for the next event -- *)
    let finished =
      match service with
      | None -> !unfinished = 0 && !pending = []
      | Some sv -> sv.sv_finished service_ops ~now:(b.b_now ())
    in
    (* An aborted run stops once in-flight work has drained: doomed
       tasks never complete, so [unfinished] cannot reach zero. *)
    let gave_up = stats.aborted <> None && !inflight = 0 in
    if finished || gave_up then
      Array.iter
        (fun h ->
          b.b_lock h;
          h.h_stop <- true;
          b.b_notify_handler h;
          b.b_unlock h)
        handlers
    else begin
      let deadline =
        if stats.aborted <> None then
          (* Only waiting for in-flight tasks; their completions wake
             the WM. *)
          None
        else begin
          let best = ref (match !pending with [] -> None | i :: _ -> Some i.Task.arrival_ns) in
          let add t = match !best with Some b when b <= t -> () | _ -> best := Some t in
          (match service with
          | Some sv -> (
            match sv.sv_next ~now:(b.b_now ()) with Some t -> add t | None -> ())
          | None -> ());
          if fault_on then begin
            (match !retry_q with (t, _) :: _ -> add t | [] -> ());
            Array.iter
              (fun h ->
                if pe_alive h then begin
                  if h.h_quarantined_until > 0 then add h.h_quarantined_until;
                  match Fault.death_ns fault ~pe:h.h_index with
                  | Some t -> add t
                  | None -> ()
                end)
              handlers
          end;
          !best
        end
      in
      b.b_wm_await ~deadline;
      loop ()
    end
  in
  (* A checkpoint is only taken at a quiescent instant, right after the
     tick that observed it.  The uninterrupted run's next action at that
     point is the await on the next service deadline — so a restored run
     must start with that await, not with a fresh tick (whose monitoring
     charge the uninterrupted run never paid at this clock value). *)
  (match service with
  | Some sv when sv.sv_resume -> b.b_wm_await ~deadline:(sv.sv_next ~now:(b.b_now ()))
  | _ -> ());
  loop ()

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

let report ~host_name ~(config : Config.t) ~(policy : Scheduler.policy)
    ~(handlers : 'h handler array) ~(instances : Task.instance array)
    ~(stats : wm_stats) ~(fabric : fabric_counters) =
  let makespan =
    Array.fold_left (fun acc inst -> max acc inst.Task.completed_at) 0 instances
  in
  let app_tbl = Hashtbl.create 4 in
  Array.iter
    (fun inst ->
      let name = inst.Task.app.App_spec.app_name in
      let lat = inst.Task.completed_at - inst.Task.arrival_ns in
      let lats = Option.value ~default:[] (Hashtbl.find_opt app_tbl name) in
      Hashtbl.replace app_tbl name (lat :: lats))
    instances;
  let app_stats =
    Hashtbl.fold
      (fun name lats acc ->
        let n = List.length lats in
        let sum = List.fold_left ( + ) 0 lats in
        ( name,
          {
            Stats.instances = n;
            mean_latency_ns = float_of_int sum /. float_of_int (max 1 n);
            max_latency_ns = List.fold_left max 0 lats;
          } )
        :: acc)
      app_tbl []
    |> List.sort compare
  in
  let task_count =
    Array.fold_left (fun acc i -> acc + Array.length i.Task.tasks) 0 instances
  in
  let verdict =
    match stats.aborted with
    | Some reason -> Stats.Aborted reason
    | None -> if stats.faults > 0 || stats.retries > 0 then Stats.Degraded else Stats.Completed
  in
  {
    Stats.host_name;
    config_label = config.Config.label;
    policy_name = policy.Scheduler.name;
    makespan_ns = makespan;
    job_count = Array.length instances;
    task_count;
    pe_usage =
      Array.to_list
        (Array.map
           (fun h ->
             {
               Stats.pe_label = h.h_pe.Pe.label;
               pe_kind = Pe.kind_name h.h_pe.Pe.kind;
               busy_ns = h.h_busy_ns;
               tasks_run = h.h_tasks_run;
               busy_energy_mj = float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind *. 1e-6;
               energy_mj =
                 (float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind
                 +. float_of_int (max 0 (makespan - h.h_busy_ns))
                    *. Pe.idle_w h.h_pe.Pe.kind)
                 *. 1e-6;
             })
           handlers);
    sched_invocations = stats.sched_invocations;
    sched_ns = stats.sched_ns;
    wm_overhead_ns = stats.wm_ns;
    records = List.rev stats.records;
    app_stats;
    verdict;
    resilience =
      {
        Stats.faults_injected = stats.faults;
        task_retries = stats.retries;
        pe_quarantines = stats.quarantines;
        pe_deaths = stats.pe_deaths;
        tasks_lost = task_count - List.length stats.records;
      };
    fabric =
      {
        Stats.dma_streams = fabric.fc_streams;
        fabric_stalls = fabric.fc_stalls;
        fabric_stall_ns = fabric.fc_stall_ns;
        max_inflight_streams = fabric.fc_max_inflight;
      };
  }
