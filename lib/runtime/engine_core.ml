module Pe = Dssoc_soc.Pe
module Config = Dssoc_soc.Config
module Cost_model = Dssoc_soc.Cost_model
module App_spec = Dssoc_apps.App_spec
module Workload = Dssoc_apps.Workload
module Prng = Dssoc_util.Prng
module Obs = Dssoc_obs.Obs

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

type params = { seed : int64; jitter : float; reservation_depth : int }

let default_params = { seed = 1L; jitter = 0.03; reservation_depth = 0 }

let jittered prng ~jitter ns =
  if jitter <= 0.0 || ns <= 0 then ns
  else begin
    let f = Prng.gaussian prng ~mu:1.0 ~sigma:jitter in
    max 1 (int_of_float (Float.round (float_of_int ns *. Float.max 0.1 f)))
  end

(* ------------------------------------------------------------------ *)
(* Resource handlers                                                   *)
(* ------------------------------------------------------------------ *)

type 'h handler = {
  h_pe : Pe.t;
  h_index : int;  (** this handler's PE index (row in the estimate table) *)
  h_capacity : int;  (** 1 + reservation-queue depth (1 = the paper's baseline) *)
  h_pending : Task.t Queue.t;  (** dispatched by the WM, not yet executed *)
  h_completed : Task.t Queue.t;  (** executed, awaiting WM bookkeeping *)
  mutable h_inflight : int;  (** pending + currently executing; WM-owned *)
  mutable h_stop : bool;
  mutable h_busy_ns : int;  (** occupancy (execution time), not queue residence *)
  mutable h_tasks_run : int;
  mutable h_busy_until : int;  (** EFT availability horizon; WM-owned *)
  h_backend : 'h;  (** backend-private per-handler state *)
}

let make_handler ~pe ~index ~reservation_depth backend =
  {
    h_pe = pe;
    h_index = index;
    h_capacity = 1 + max 0 reservation_depth;
    h_pending = Queue.create ();
    h_completed = Queue.create ();
    h_inflight = 0;
    h_stop = false;
    h_busy_ns = 0;
    h_tasks_run = 0;
    h_busy_until = 0;
    h_backend = backend;
  }

(* ------------------------------------------------------------------ *)
(* Statistics accumulator                                              *)
(* ------------------------------------------------------------------ *)

type wm_stats = {
  mutable sched_invocations : int;
  mutable sched_ns : int;
  mutable wm_ns : int;
  mutable records : Stats.task_record list;
}

let make_stats () = { sched_invocations = 0; sched_ns = 0; wm_ns = 0; records = [] }

(* ------------------------------------------------------------------ *)
(* Backends                                                            *)
(* ------------------------------------------------------------------ *)

type 'h backend = {
  b_now : unit -> int;
  b_lock : 'h handler -> unit;
  b_unlock : 'h handler -> unit;
  b_handler_await : 'h handler -> unit;
  b_notify_handler : 'h handler -> unit;
  b_wm_await : deadline:int option -> unit;
  b_notify_wm : unit -> unit;
  b_charge : float -> unit;
  b_execute : 'h handler -> Task.t -> unit;
  b_sched_start : unit -> int;
  b_sched_done : int -> ready:int -> ops:int -> int;
  b_wm_tick_start : unit -> int;
  b_wm_tick_end : int -> unit;
}

(* ------------------------------------------------------------------ *)
(* Shared protocol pieces                                              *)
(* ------------------------------------------------------------------ *)

let instantiate ~engine_name ~(config : Config.t) ~(workload : Workload.t) =
  (* Initialization phase (outside emulation time, as in Section II-A):
     allocate every instance and its memory up front. *)
  let items = Array.of_list workload.Workload.items in
  let task_id_base = ref 0 in
  let instances =
    Array.mapi
      (fun i (item : Workload.item) ->
        let inst =
          Task.instantiate ~task_id_base:!task_id_base ~inst_id:i
            ~arrival_ns:item.Workload.arrival_ns item.Workload.spec
        in
        task_id_base := !task_id_base + Array.length inst.Task.tasks;
        inst)
      items
  in
  let pes = Config.pes config in
  Array.iter
    (fun inst ->
      Array.iter
        (fun (t : Task.t) ->
          if not (List.exists (Task.supports t) pes) then
            invalid_arg
              (Printf.sprintf "%s: task %s/%s supports no PE of configuration %s"
                 engine_name t.Task.app_name t.Task.node.App_spec.node_name
                 config.Config.label))
        inst.Task.tasks)
    instances;
  instances

let accel_phases (task : Task.t) pe acl =
  let entry = Task.platform_entry_for task pe in
  match Option.bind entry (fun e -> e.App_spec.cost_us) with
  | Some us -> (0, int_of_float (us *. 1e3), 0)
  | None -> Exec_model.accel_phases_ns task acl

(* ------------------------------------------------------------------ *)
(* Resource manager (Fig. 4)                                           *)
(* ------------------------------------------------------------------ *)

let resource_manager ?(obs = Obs.disabled) (b : 'h backend) (h : 'h handler) =
  let rec loop () =
    b.b_lock h;
    b.b_handler_await h;
    if h.h_stop then b.b_unlock h
    else begin
      (* With a reservation queue the next task starts with no
         workload-manager round trip — the future-work optimisation
         Section III-C sketches. *)
      let rec drain () =
        match Queue.take_opt h.h_pending with
        | None -> ()
        | Some task ->
          if h.h_capacity > 1 && Obs.enabled obs then
            Obs.on_reservation_popped obs ~now:(b.b_now ()) ~pe_index:h.h_index
              ~depth:(Queue.length h.h_pending);
          b.b_unlock h;
          let started = b.b_now () in
          b.b_execute h task;
          let finished = b.b_now () in
          task.Task.completed_at <- finished;
          b.b_lock h;
          (* Occupancy, not queue residence: utilisation stays
             meaningful when a reservation queue is configured. *)
          h.h_busy_ns <- h.h_busy_ns + (finished - started);
          h.h_tasks_run <- h.h_tasks_run + 1;
          Queue.add task h.h_completed;
          b.b_notify_wm ();
          drain ()
      in
      drain ();
      b.b_unlock h;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Workload manager (Fig. 3)                                           *)
(* ------------------------------------------------------------------ *)

(* Cap on how many ready tasks a single policy invocation examines.
   The *charged* (or measured) overhead still grows with the full
   ready-list length (that is the paper's O(n)/O(n^2) effect); the cap
   only bounds the engine's own compute, and idle-PE counts make
   deeper windows pointless. *)
let sched_window = Cost_model.sched_examined_cap

let workload_manager ?(obs = Obs.disabled) (b : 'h backend)
    ~(handlers : 'h handler array) ~(instances : Task.instance array) ~est_table
    ~(policy : Scheduler.policy) ~prng ~(stats : wm_stats) =
  let n_pes = Array.length handlers in
  let ready : Task.t Queue.t = Queue.create () in
  (* Tasks leave the ready queue lazily (dispatch flips them to
     Running but only the front is ever popped), so [Queue.length]
     overstates the live ready-list length.  The scheduler's charged
     O(n)/O(n^2) cost must follow the *live* count, kept here. *)
  let ready_live = ref 0 in
  (* WM-owned dispatched-but-not-yet-monitored count, feeding the
     in-flight gauge; metrics are only ever touched on this thread. *)
  let inflight = ref 0 in
  let pending = ref (Array.to_list instances) in
  let unfinished = ref (Array.length instances) in
  let make_ready (task : Task.t) =
    task.Task.status <- Task.Ready;
    task.Task.ready_at <- b.b_now ();
    Queue.add task ready;
    incr ready_live;
    if Obs.enabled obs then
      Obs.on_task_ready obs ~now:task.Task.ready_at ~task:task.Task.id
        ~instance:task.Task.instance_id ~app:task.Task.app_name
        ~node:task.Task.node.App_spec.node_name ~ready_depth:!ready_live
  in
  (* Scratch structures reused by every scheduling invocation: the
     policy-facing PE states are refreshed in place, and the ready
     window is snapshotted into a reusable array (sized once to the
     examination cap).  Reallocating these per invocation — once per
     task completion — dominated the scheduler hot path. *)
  let pes_scratch =
    Array.map (fun h -> { Scheduler.pe = h.h_pe; idle = false; busy_until = 0 }) handlers
  in
  let ready_scratch = ref [||] in
  (* One scheduling invocation: snapshot the ready window, run the
     policy, account its cost, dispatch the selected tasks.  Invoked
     after every task completion and after every injection burst, as
     the paper's workload manager does (it has no PE reservation
     queues, so "a scheduling algorithm incurs this overhead every
     time a task completes"). *)
  let do_schedule () =
    while (not (Queue.is_empty ready)) && (Queue.peek ready).Task.status <> Task.Ready do
      ignore (Queue.pop ready)
    done;
    let have_idle = Array.exists (fun h -> h.h_inflight < h.h_capacity) handlers in
    if (not (Queue.is_empty ready)) && have_idle then begin
      let ready_len = !ready_live in
      let nready =
        let taken = ref 0 in
        (try
           Seq.iter
             (fun t ->
               if t.Task.status = Task.Ready then begin
                 if Array.length !ready_scratch = 0 then
                   ready_scratch := Array.make sched_window t;
                 !ready_scratch.(!taken) <- t;
                 incr taken;
                 if !taken >= sched_window then raise Exit
               end)
             (Queue.to_seq ready)
         with Exit -> ());
        !taken
      in
      Array.iteri
        (fun i h ->
          let st = pes_scratch.(i) in
          st.Scheduler.idle <- h.h_inflight < h.h_capacity;
          st.Scheduler.busy_until <- h.h_busy_until)
        handlers;
      let t0 = b.b_sched_start () in
      let ctx =
        {
          Scheduler.now = b.b_now ();
          ready = !ready_scratch;
          nready;
          pes = pes_scratch;
          estimate = (fun task i -> Exec_model.lookup est_table task i);
          prng;
          ops = 0;
        }
      in
      let assignments = policy.Scheduler.schedule ctx in
      let sched_cost = b.b_sched_done t0 ~ready:ready_len ~ops:ctx.Scheduler.ops in
      stats.sched_ns <- stats.sched_ns + sched_cost;
      stats.sched_invocations <- stats.sched_invocations + 1;
      if Obs.enabled obs then
        Obs.on_sched obs ~now:(b.b_now ()) ~ready:ready_len ~examined:nready
          ~ops:ctx.Scheduler.ops ~cost_ns:sched_cost
          ~assigned:(List.length assignments);
      (* Communicate selected tasks to their resource managers (setting
         the status to Running also lazily removes each task from the
         ready queue). *)
      List.iter
        (fun (a : Scheduler.assignment) ->
          let task = a.Scheduler.task and h = handlers.(a.Scheduler.pe_index) in
          b.b_charge Cost_model.dispatch_per_task_ns;
          b.b_lock h;
          task.Task.status <- Task.Running;
          decr ready_live;
          task.Task.dispatched_at <- b.b_now ();
          task.Task.pe_label <- h.h_pe.Pe.label;
          Queue.add task h.h_pending;
          h.h_inflight <- h.h_inflight + 1;
          incr inflight;
          h.h_busy_until <-
            max (b.b_now ()) h.h_busy_until + Exec_model.lookup est_table task h.h_index;
          if Obs.enabled obs then begin
            let now = task.Task.dispatched_at in
            Obs.on_task_dispatched obs ~now ~task:task.Task.id
              ~instance:task.Task.instance_id ~app:task.Task.app_name
              ~node:task.Task.node.App_spec.node_name ~pe:h.h_pe.Pe.label
              ~pe_index:h.h_index ~wait_ns:(now - task.Task.ready_at)
              ~ready_depth:!ready_live ~pe_depth:h.h_inflight ~inflight:!inflight;
            if h.h_capacity > 1 then
              Obs.on_reservation_enqueued obs ~now ~pe_index:h.h_index
                ~depth:(Queue.length h.h_pending)
          end;
          b.b_notify_handler h;
          b.b_unlock h)
        assignments
    end
  in
  (* Bookkeeping for one completed task: statistics, instance
     accounting, and releasing newly ready successors. *)
  let process_completion (task : Task.t) =
    task.Task.status <- Task.Done;
    stats.records <-
      {
        Stats.app = task.Task.app_name;
        instance = task.Task.instance_id;
        node = task.Task.node.App_spec.node_name;
        pe = task.Task.pe_label;
        ready_ns = task.Task.ready_at;
        dispatched_ns = task.Task.dispatched_at;
        completed_ns = task.Task.completed_at;
      }
      :: stats.records;
    let inst = instances.(task.Task.instance_id) in
    inst.Task.remaining <- inst.Task.remaining - 1;
    if inst.Task.remaining = 0 then begin
      inst.Task.completed_at <- b.b_now ();
      decr unfinished
    end;
    let newly_ready = ref 0 in
    List.iter
      (fun (succ : Task.t) ->
        succ.Task.unmet <- succ.Task.unmet - 1;
        if succ.Task.unmet = 0 then begin
          make_ready succ;
          incr newly_ready
        end)
      task.Task.successors;
    if !newly_ready > 0 then
      b.b_charge (Cost_model.ready_update_per_task_ns *. float_of_int !newly_ready)
  in
  let rec loop () =
    let tick = b.b_wm_tick_start () in
    (* -- one completion-monitoring sweep over the resource handlers -- *)
    b.b_charge (Cost_model.monitor_per_pe_ns *. float_of_int n_pes);
    let batch_completions = ref false in
    let completions = ref 0 in
    Array.iter
      (fun h ->
        (* Pop one completion at a time, re-taking the lock between
           pops, so a capacity-1 handler's scheduling round never runs
           while this handler is locked. *)
        let continue_ = ref true in
        while !continue_ do
          b.b_lock h;
          match Queue.take_opt h.h_completed with
          | None ->
            b.b_unlock h;
            continue_ := false
          | Some task ->
            b.b_unlock h;
            h.h_inflight <- h.h_inflight - 1;
            decr inflight;
            incr completions;
            if Obs.enabled obs then
              Obs.on_task_completed obs ~now:task.Task.completed_at
                ~task:task.Task.id ~instance:task.Task.instance_id
                ~app:task.Task.app_name ~node:task.Task.node.App_spec.node_name
                ~pe:task.Task.pe_label ~pe_index:h.h_index
                ~service_ns:(task.Task.completed_at - task.Task.dispatched_at)
                ~pe_depth:h.h_inflight ~inflight:!inflight;
            process_completion task;
            if h.h_capacity <= 1 then
              (* No reservation queue: the scheduler runs once per
                 completed task, as in the paper. *)
              do_schedule ()
            else batch_completions := true
        done)
      handlers;
    if !batch_completions then do_schedule ();
    (* -- inject newly arrived application instances -- *)
    let injected = ref 0 in
    let now = b.b_now () in
    let rec drain () =
      match !pending with
      | inst :: rest when inst.Task.arrival_ns <= now ->
        pending := rest;
        if Obs.enabled obs then
          Obs.on_instance_injected obs ~now ~instance:inst.Task.inst_id
            ~app:inst.Task.app.App_spec.app_name;
        List.iter
          (fun t ->
            make_ready t;
            incr injected)
          inst.Task.entry;
        drain ()
      | _ -> ()
    in
    drain ();
    if !injected > 0 then begin
      b.b_charge (Cost_model.ready_update_per_task_ns *. float_of_int !injected);
      do_schedule ()
    end;
    b.b_wm_tick_end tick;
    if Obs.enabled obs then
      Obs.on_wm_tick obs ~now:(b.b_now ()) ~completions:!completions
        ~injected:!injected;
    (* -- terminate or wait for the next event -- *)
    if !unfinished = 0 && !pending = [] then
      Array.iter
        (fun h ->
          b.b_lock h;
          h.h_stop <- true;
          b.b_notify_handler h;
          b.b_unlock h)
        handlers
    else begin
      let deadline = match !pending with [] -> None | inst :: _ -> Some inst.Task.arrival_ns in
      b.b_wm_await ~deadline;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

let report ~host_name ~(config : Config.t) ~(policy : Scheduler.policy)
    ~(handlers : 'h handler array) ~(instances : Task.instance array)
    ~(stats : wm_stats) =
  let makespan =
    Array.fold_left (fun acc inst -> max acc inst.Task.completed_at) 0 instances
  in
  let app_tbl = Hashtbl.create 4 in
  Array.iter
    (fun inst ->
      let name = inst.Task.app.App_spec.app_name in
      let lat = inst.Task.completed_at - inst.Task.arrival_ns in
      let lats = Option.value ~default:[] (Hashtbl.find_opt app_tbl name) in
      Hashtbl.replace app_tbl name (lat :: lats))
    instances;
  let app_stats =
    Hashtbl.fold
      (fun name lats acc ->
        let n = List.length lats in
        let sum = List.fold_left ( + ) 0 lats in
        ( name,
          {
            Stats.instances = n;
            mean_latency_ns = float_of_int sum /. float_of_int (max 1 n);
            max_latency_ns = List.fold_left max 0 lats;
          } )
        :: acc)
      app_tbl []
    |> List.sort compare
  in
  {
    Stats.host_name;
    config_label = config.Config.label;
    policy_name = policy.Scheduler.name;
    makespan_ns = makespan;
    job_count = Array.length instances;
    task_count = Array.fold_left (fun acc i -> acc + Array.length i.Task.tasks) 0 instances;
    pe_usage =
      Array.to_list
        (Array.map
           (fun h ->
             {
               Stats.pe_label = h.h_pe.Pe.label;
               pe_kind = Pe.kind_name h.h_pe.Pe.kind;
               busy_ns = h.h_busy_ns;
               tasks_run = h.h_tasks_run;
               busy_energy_mj = float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind *. 1e-6;
               energy_mj =
                 (float_of_int h.h_busy_ns *. Pe.busy_w h.h_pe.Pe.kind
                 +. float_of_int (max 0 (makespan - h.h_busy_ns))
                    *. Pe.idle_w h.h_pe.Pe.kind)
                 *. 1e-6;
             })
           handlers);
    sched_invocations = stats.sched_invocations;
    sched_ns = stats.sched_ns;
    wm_overhead_ns = stats.wm_ns;
    records = List.rev stats.records;
    app_stats;
  }
