let is_power_of_two n = n > 0 && n land (n - 1) = 0

module Plan = struct
  type t = {
    size : int;
    log2 : int;
    bitrev : int array;
    (* Twiddles for the forward transform, one per butterfly distance:
       tw_re.(k) = cos(-2*pi*k/n), laid out stage-major for locality. *)
    tw_re : float array;
    tw_im : float array;
  }

  let make n =
    if not (is_power_of_two n) then invalid_arg "Fft.Plan.make: size must be a power of two";
    let log2 =
      let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
      go 0 n
    in
    let bitrev =
      Array.init n (fun i ->
          let r = ref 0 and v = ref i in
          for _ = 1 to log2 do
            r := (!r lsl 1) lor (!v land 1);
            v := !v lsr 1
          done;
          !r)
    in
    let half = max 1 (n / 2) in
    let tw_re = Array.make half 1.0 and tw_im = Array.make half 0.0 in
    for k = 0 to half - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
      tw_re.(k) <- cos ang;
      tw_im.(k) <- sin ang
    done;
    { size = n; log2; bitrev; tw_re; tw_im }

  let size t = t.size

  (* FFTW-style plan cache, keyed by transform size.  Plans are pure
     precomputed tables, but the cache Hashtbl itself must not be
     shared across domains (parallel sweeps run whole emulations on
     several domains at once), so it is domain-local.  [Plan.make] is
     deterministic, hence a cached plan is indistinguishable from a
     fresh one — cached and fresh transforms are bit-identical. *)
  let cache : (int, t) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 16)

  let cached n =
    let tbl = Domain.DLS.get cache in
    match Hashtbl.find_opt tbl n with
    | Some p -> p
    | None ->
      let p = make n in
      Hashtbl.replace tbl n p;
      p

  let exec t ~inverse (x : Cbuf.t) =
    if Cbuf.length x <> t.size then invalid_arg "Fft.Plan.exec: buffer length mismatch";
    let n = t.size in
    let out = Cbuf.create n in
    let re = out.Cbuf.re and im = out.Cbuf.im in
    for i = 0 to n - 1 do
      re.(i) <- x.Cbuf.re.(t.bitrev.(i));
      im.(i) <- x.Cbuf.im.(t.bitrev.(i))
    done;
    let sign = if inverse then -1.0 else 1.0 in
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let step = n / !len in
      let i = ref 0 in
      while !i < n do
        for k = 0 to half - 1 do
          let tr = t.tw_re.(k * step) and ti = sign *. t.tw_im.(k * step) in
          let a = !i + k and b = !i + k + half in
          let br = (re.(b) *. tr) -. (im.(b) *. ti) in
          let bi = (re.(b) *. ti) +. (im.(b) *. tr) in
          re.(b) <- re.(a) -. br;
          im.(b) <- im.(a) -. bi;
          re.(a) <- re.(a) +. br;
          im.(a) <- im.(a) +. bi
        done;
        i := !i + !len
      done;
      len := !len * 2
    done;
    if inverse then begin
      let inv_n = 1.0 /. float_of_int n in
      for i = 0 to n - 1 do
        re.(i) <- re.(i) *. inv_n;
        im.(i) <- im.(i) *. inv_n
      done
    end;
    out
end

(* Bluestein's chirp-z reduction: an arbitrary-size DFT becomes a
   circular convolution, computed with power-of-two FFTs of size >= 2n-1. *)
let bluestein ~inverse (x : Cbuf.t) =
  let n = Cbuf.length x in
  let sign = if inverse then 1.0 else -1.0 in
  let m =
    let rec go m = if m >= (2 * n) - 1 then m else go (m * 2) in
    go 1
  in
  let plan = Plan.cached m in
  (* chirp.(k) = exp(sign * i * pi * k^2 / n) *)
  let chirp_re = Array.make n 0.0 and chirp_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* k^2 mod 2n keeps the angle argument small and exact. *)
    let k2 = k * k mod (2 * n) in
    let ang = sign *. Float.pi *. float_of_int k2 /. float_of_int n in
    chirp_re.(k) <- cos ang;
    chirp_im.(k) <- sin ang
  done;
  let a = Cbuf.create m in
  for k = 0 to n - 1 do
    a.Cbuf.re.(k) <- (x.Cbuf.re.(k) *. chirp_re.(k)) -. (x.Cbuf.im.(k) *. chirp_im.(k));
    a.Cbuf.im.(k) <- (x.Cbuf.re.(k) *. chirp_im.(k)) +. (x.Cbuf.im.(k) *. chirp_re.(k))
  done;
  let b = Cbuf.create m in
  b.Cbuf.re.(0) <- chirp_re.(0);
  b.Cbuf.im.(0) <- -.chirp_im.(0);
  for k = 1 to n - 1 do
    b.Cbuf.re.(k) <- chirp_re.(k);
    b.Cbuf.im.(k) <- -.chirp_im.(k);
    b.Cbuf.re.(m - k) <- chirp_re.(k);
    b.Cbuf.im.(m - k) <- -.chirp_im.(k)
  done;
  let fa = Plan.exec plan ~inverse:false a in
  let fb = Plan.exec plan ~inverse:false b in
  let prod = Cbuf.mul_pointwise fa fb in
  let conv = Plan.exec plan ~inverse:true prod in
  let out = Cbuf.create n in
  for k = 0 to n - 1 do
    let cr = conv.Cbuf.re.(k) and ci = conv.Cbuf.im.(k) in
    out.Cbuf.re.(k) <- (cr *. chirp_re.(k)) -. (ci *. chirp_im.(k));
    out.Cbuf.im.(k) <- (cr *. chirp_im.(k)) +. (ci *. chirp_re.(k))
  done;
  if inverse then begin
    let inv_n = 1.0 /. float_of_int n in
    for k = 0 to n - 1 do
      out.Cbuf.re.(k) <- out.Cbuf.re.(k) *. inv_n;
      out.Cbuf.im.(k) <- out.Cbuf.im.(k) *. inv_n
    done
  end;
  out

let transform ~inverse x =
  let n = Cbuf.length x in
  if n = 0 then invalid_arg "Fft: empty buffer"
  else if n = 1 then Cbuf.copy x
  else if is_power_of_two n then Plan.exec (Plan.cached n) ~inverse x
  else bluestein ~inverse x

let fft x = transform ~inverse:false x
let ifft x = transform ~inverse:true x
