(* Built eagerly at module init: CRC kernels run on spawned domains
   (native engine, parallel sweeps), and concurrently forcing a shared
   lazy from several domains is undefined. *)
let table =
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        if Int32.logand !c 1l <> 0l then
          c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else c := Int32.shift_right_logical !c 1
      done;
      !c)

let update crc byte =
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl) in
  Int32.logxor table.(idx) (Int32.shift_right_logical crc 8)

let of_bytes b =
  let crc = ref 0xFFFFFFFFl in
  Bytes.iter (fun c -> crc := update !crc (Char.code c)) b;
  Int32.logxor !crc 0xFFFFFFFFl

let of_string s = of_bytes (Bytes.of_string s)

let pack_bits bits =
  let n = Array.length bits in
  let nbytes = (n + 7) / 8 in
  let out = Bytes.make nbytes '\000' in
  Array.iteri
    (fun i b ->
      if b then
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set out byte (Char.chr (Char.code (Bytes.get out byte) lor (1 lsl bit))))
    bits;
  out

let of_bits bits = of_bytes (pack_bits bits)

let crc_to_bits crc = Array.init 32 (fun i -> Int32.logand (Int32.shift_right_logical crc i) 1l <> 0l)

let append_bits payload =
  let crc = of_bits payload in
  Array.append payload (crc_to_bits crc)

let check_bits framed =
  let n = Array.length framed in
  if n < 32 then false
  else begin
    let payload = Array.sub framed 0 (n - 32) in
    let crc_bits = Array.sub framed (n - 32) 32 in
    let expect = crc_to_bits (of_bits payload) in
    expect = crc_bits
  end
