(** Fast Fourier transforms.

    The optimized transform the framework offers as an "FFT library"
    substitution target (the FFTW analogue of Case Study 4) and the
    compute model behind the FFT accelerator.  Power-of-two sizes use
    an iterative radix-2 Cooley-Tukey with precomputed twiddles and
    bit-reversal; other sizes go through Bluestein's algorithm. *)

val is_power_of_two : int -> bool

val fft : Cbuf.t -> Cbuf.t
(** Forward DFT of any size n >= 1 (out-of-place). *)

val ifft : Cbuf.t -> Cbuf.t
(** Inverse DFT, normalised by 1/n, so [ifft (fft x) = x]. *)

(** Plans precompute twiddles and the bit-reversal permutation for a
    fixed power-of-two size; repeated transforms of the same size (the
    pulse-Doppler matched filter runs 256 of them) reuse the plan.
    [fft]/[ifft] (and the Bluestein path) go through a domain-local,
    size-keyed plan cache, so repeated same-size transforms pay the
    twiddle/bit-reversal setup once per domain. *)
module Plan : sig
  type t

  val make : int -> t
  (** Always builds a fresh plan.
      @raise Invalid_argument if the size is not a power of two. *)

  val cached : int -> t
  (** The calling domain's cached plan for this size, built on first
      use.  Plans are immutable; a cached plan computes bit-identical
      results to a fresh one.
      @raise Invalid_argument if the size is not a power of two. *)

  val size : t -> int

  val exec : t -> inverse:bool -> Cbuf.t -> Cbuf.t
  (** Transform of a buffer whose length equals [size t]. *)
end
