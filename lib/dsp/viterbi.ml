let n_states = 64 (* 2^(K-1) *)

let parity x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc lxor (x land 1)) in
  go x 0

(* Branch outputs for (state, input): the encoder register is
   (input << 6) | state, with the most recent previous input at state
   bit 5 — must mirror Conv_code.encode exactly. *)
(* Built eagerly at module init: the decode kernel runs on spawned
   domains (native engine, parallel sweeps), and concurrently forcing
   a shared lazy from several domains is undefined. *)
let branch_out =
  Array.init (n_states * 2) (fun idx ->
      let state = idx lsr 1 and input = idx land 1 in
      let reg = (input lsl 6) lor state in
      let o0 = parity (reg land Conv_code.g0) in
      let o1 = parity (reg land Conv_code.g1) in
      (o0 = 1, o1 = 1))

let next_state state input = (input lsl 5) lor (state lsr 1)

let hamming_distance a b =
  if Array.length a <> Array.length b then invalid_arg "Viterbi.hamming_distance";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let decode ~message_length coded =
  let steps = message_length + Conv_code.constraint_length - 1 in
  if Array.length coded < 2 * steps then invalid_arg "Viterbi.decode: coded input too short";
  let outs = branch_out in
  let infinity_metric = max_int / 2 in
  let metric = Array.make n_states infinity_metric in
  metric.(0) <- 0;
  (* survivors.(t).(s) = (previous state, input bit) leading into s at step t *)
  let survivors = Array.make_matrix steps n_states (-1) in
  let next_metric = Array.make n_states 0 in
  for t = 0 to steps - 1 do
    Array.fill next_metric 0 n_states infinity_metric;
    let r0 = coded.(2 * t) and r1 = coded.((2 * t) + 1) in
    for s = 0 to n_states - 1 do
      if metric.(s) < infinity_metric then
        for input = 0 to 1 do
          let o0, o1 = outs.((s lsl 1) lor input) in
          let cost = (if o0 <> r0 then 1 else 0) + (if o1 <> r1 then 1 else 0) in
          let ns = next_state s input in
          let m = metric.(s) + cost in
          if m < next_metric.(ns) then begin
            next_metric.(ns) <- m;
            survivors.(t).(ns) <- (s lsl 1) lor input
          end
        done
    done;
    Array.blit next_metric 0 metric 0 n_states
  done;
  (* Tail bits drive the encoder back to state 0, so trace back from 0. *)
  let bits = Array.make steps false in
  let s = ref 0 in
  for t = steps - 1 downto 0 do
    let packed = survivors.(t).(!s) in
    if packed < 0 then invalid_arg "Viterbi.decode: broken trellis";
    bits.(t) <- packed land 1 = 1;
    s := packed lsr 1
  done;
  Array.sub bits 0 message_length
