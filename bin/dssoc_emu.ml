(* dssoc_emu — command-line front end of the user-space DSSoC emulation
   framework: list applications and platforms, run emulations in
   validation or performance mode on either engine, and convert
   monolithic C programs into DAG applications. *)

module App_spec = Dssoc_apps.App_spec
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module Host = Dssoc_soc.Host
module Emulator = Dssoc_runtime.Emulator
module Scheduler = Dssoc_runtime.Scheduler
module Stats = Dssoc_runtime.Stats
module Driver = Dssoc_compiler.Driver
module Table = Dssoc_stats.Table
module Grid = Dssoc_explore.Grid
module Sweep = Dssoc_explore.Sweep
module Cache = Dssoc_explore.Cache
module Frontier = Dssoc_explore.Frontier
module Presets = Dssoc_explore.Presets
module Pool = Dssoc_explore.Pool
module Obs = Dssoc_obs.Obs
module Fault = Dssoc_fault.Fault
module Server = Dssoc_serve.Server

open Cmdliner

(* ---------------------- shared options ---------------------- *)

let host_arg =
  let doc = "Host COTS platform: zcu102 or odroid-xu3." in
  Arg.(value & opt string "zcu102" & info [ "host" ] ~docv:"HOST" ~doc)

let cores_arg =
  Arg.(value & opt int 3 & info [ "cores" ] ~docv:"N" ~doc:"CPU PEs (zcu102).")

let ffts_arg =
  Arg.(value & opt int 2 & info [ "ffts" ] ~docv:"N" ~doc:"FFT accelerator PEs (zcu102).")

let big_arg = Arg.(value & opt int 3 & info [ "big" ] ~docv:"N" ~doc:"big-core PEs (odroid).")

let little_arg =
  Arg.(value & opt int 2 & info [ "little" ] ~docv:"N" ~doc:"LITTLE-core PEs (odroid).")

let config_of host cores ffts big little =
  match String.lowercase_ascii host with
  | "zcu102" -> Ok (Config.zcu102_cores_ffts ~cores ~ffts)
  | "odroid-xu3" | "odroid" -> Ok (Config.odroid_big_little ~big ~little)
  | other -> Error (Printf.sprintf "unknown host %S (try zcu102 or odroid-xu3)" other)
  | exception Invalid_argument msg -> Error msg

let policy_arg =
  Arg.(value & opt string "FRFS" & info [ "policy" ] ~docv:"POLICY" ~doc:"Scheduling policy.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Random seed (virtual: all randomness; native: RANDOM policy and sleep jitter).")

let jitter_arg =
  Arg.(
    value & opt float 0.0
    & info [ "jitter" ] ~docv:"SIGMA"
        ~doc:
          "Execution-time jitter stddev fraction (native runs apply it to the modelled \
           device-compute sleeps only).")

let native_arg =
  Arg.(value & flag & info [ "native" ] ~doc:"Run on real OCaml domains instead of the virtual engine.")

let engine_arg =
  Arg.(
    value & opt string "virtual"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Engine: virtual (default; deterministic virtual-time simulation), native (real OCaml \
           domains; same as --native), or compiled (ahead-of-time specialization of the workload \
           x platform x policy triple into a flat-array event loop — replays the virtual engine \
           byte-for-byte, including traced runs' event logs and metrics, but rejects fault \
           plans and non-built-in policies).")

let resolve_engine ~engine ~native ~jitter ~reservation ~seed =
  let seed = Int64.of_int seed in
  match (String.lowercase_ascii engine, native) with
  | "virtual", false -> Ok (Emulator.virtual_seeded ~jitter ~reservation_depth:reservation seed)
  | ("virtual" | "native"), _ ->
    Ok (Emulator.native_seeded ~jitter ~reservation_depth:reservation seed)
  | "compiled", false ->
    Ok (Emulator.compiled_seeded ~jitter ~reservation_depth:reservation seed)
  | "compiled", true -> Error "--native conflicts with --engine compiled"
  | other, _ ->
    Error (Printf.sprintf "unknown engine %S (try virtual, native or compiled)" other)

let reservation_arg =
  Arg.(
    value & opt int 0
    & info [ "reservation" ] ~docv:"DEPTH"
        ~doc:"Per-PE reservation-queue depth on either engine (0 = the paper's released framework).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Deterministic fault-injection plan enabling resilient dispatch (retries, \
              quarantine, degradation).  %s  Example: \
              'fft0:die\\@1ms,*:transient:p=0.1:recover=0.5ms'."
             Fault.spec_grammar))

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the fault plan's own PRNG stream (independent of --seed, so the same fault \
           schedule replays across engines and policies).")

let parse_faults faults fault_seed =
  match faults with
  | None -> Ok None
  | Some spec ->
    Result.map Option.some (Fault.of_spec ~seed:(Int64.of_int fault_seed) spec)

let fabric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fabric" ] ~docv:"SPEC"
        ~doc:
          "Shared-interconnect model every accelerator DMA stream is charged through: 'ideal' \
           (the default — each device's private DMA cost model, no contention) or \
           'bus:bw=BWMB/s,fifo=N,hop=NSns,hops=crossbar|meshWxH' (an arbitrated bus of \
           aggregate bandwidth BW, fair-shared among in-flight streams, with an N-deep \
           admission FIFO that stalls initiators when full).  Example: \
           'bus:bw=200MB/s,fifo=2'.")

(* [None] means "no override": run keeps the platform default and sweep
   keeps whatever fabric the grid preset baked into its configs. *)
let parse_fabric = function
  | None -> Ok None
  | Some spec -> Result.map Option.some (Fabric.of_spec spec)

(* ---------------------- apps ---------------------- *)

let apps_cmd =
  let dump =
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"NAME" ~doc:"Print the JSON of one application.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write JSON to FILE.")
  in
  let run dump out =
    match dump with
    | Some name -> (
      match Reference_apps.by_name name with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok spec -> (
        match out with
        | Some path ->
          App_spec.to_file path spec;
          Printf.printf "wrote %s\n" path;
          0
        | None ->
          print_endline (Dssoc_json.Json.to_string (App_spec.to_json spec));
          0))
    | None ->
      let rows =
        List.map
          (fun spec ->
            [
              spec.App_spec.app_name;
              string_of_int (App_spec.task_count spec);
              string_of_int (App_spec.critical_path_length spec);
              spec.App_spec.shared_object;
            ])
          (Reference_apps.all ())
      in
      print_string
        (Table.render ~header:[ "application"; "tasks"; "critical path"; "shared object" ] ~rows);
      0
  in
  Cmd.v (Cmd.info "apps" ~doc:"List or dump the built-in reference applications.")
    Term.(const run $ dump $ out)

(* ---------------------- platforms ---------------------- *)

let platforms_cmd =
  let run host cores ffts big little =
    Format.printf "%a@.%a@.@." Host.pp Host.zcu102 Host.pp Host.odroid_xu3;
    match config_of host cores ffts big little with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok config ->
      Format.printf "%a" Config.pp config;
      0
  in
  Cmd.v
    (Cmd.info "platforms" ~doc:"Describe host platforms and a configuration's PE placement.")
    Term.(const run $ host_arg $ cores_arg $ ffts_arg $ big_arg $ little_arg)

(* ---------------------- policies ---------------------- *)

let policies_cmd =
  let run () =
    List.iter print_endline (Scheduler.names ());
    0
  in
  Cmd.v (Cmd.info "policies" ~doc:"List available scheduling policies.") Term.(const run $ const ())

(* ---------------------- run ---------------------- *)

let parse_app_counts spec_str =
  (* "range_detection=2,wifi_tx=5" *)
  let parts = String.split_on_char ',' spec_str in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun acc ->
          match String.split_on_char '=' (String.trim part) with
          | [ name; count ] -> (
            match (Reference_apps.by_name name, int_of_string_opt count) with
            | Ok app, Some n when n > 0 -> Ok ((app, n) :: acc)
            | Error msg, _ -> Error msg
            | _, _ -> Error (Printf.sprintf "bad count in %S" part))
          | _ -> Error (Printf.sprintf "expected name=count, got %S" part)))
    (Ok []) parts
  |> Result.map List.rev

let run_cmd =
  let mode =
    Arg.(value & opt string "validation" & info [ "mode" ] ~docv:"MODE" ~doc:"validation or performance.")
  in
  let apps =
    Arg.(
      value
      & opt string "pulse_doppler=1,range_detection=1,wifi_tx=1,wifi_rx=1"
      & info [ "apps" ] ~docv:"SPEC" ~doc:"Validation-mode workload, e.g. wifi_rx=3,range_detection=2.")
  in
  let rate =
    Arg.(value & opt float 1.71 & info [ "rate" ] ~docv:"R" ~doc:"Performance-mode Table-II injection rate (jobs/ms).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-task records to FILE.")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace-event file (open in chrome://tracing or Perfetto).")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the schedule.") in
  let trace_level =
    Arg.(
      value & opt string "off"
      & info [ "trace-level" ] ~docv:"LEVEL"
          ~doc:
            "Observability level: off (default, zero-cost null sink), summary (metrics only, \
             printed after the run summary), or full (metrics plus the event recorder feeding \
             --events and the trace counter tracks).")
  in
  let events =
    Arg.(
      value & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Write the recorded engine events as JSON Lines to FILE (implies --trace-level full).")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Append periodic snapshots of the metrics registry to FILE as JSON Lines, one \
             object per elapsed $(b,--metrics-period) of emulated time (implies --trace-level \
             summary at least).  Each line carries t_ns plus every counter, gauge and \
             histogram summary, so the file is a time series of the run's queueing state.")
  in
  let metrics_period =
    Arg.(
      value & opt int 10
      & info [ "metrics-period" ] ~docv:"MS"
          ~doc:"Emulated-time period between --metrics-out snapshots, in milliseconds.")
  in
  let app_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "app-file" ] ~docv:"FILE"
          ~doc:
            "Load an application from a Listing-1-style JSON file instead of --apps (validation \
             mode, one instance).  Its runfuncs must resolve against the built-in shared objects.")
  in
  (* Validate what we just wrote by reading it back — a trace file that
     does not parse should fail the run, not surface in Perfetto. *)
  let validate_jsonl path =
    In_channel.with_open_bin path (fun ic ->
        let rec go n =
          match In_channel.input_line ic with
          | None -> Ok n
          | Some line -> (
            match Dssoc_json.Json.parse line with
            | Ok _ -> go (n + 1)
            | Error e ->
              Error
                (Printf.sprintf "%s: line %d: %s" path (n + 1)
                   (Dssoc_json.Json.error_to_string e)))
        in
        go 0)
  in
  let validate_json path =
    match Dssoc_json.Json.of_file path with
    | Ok _ -> Ok ()
    | Error e -> Error (Printf.sprintf "%s: %s" path (Dssoc_json.Json.error_to_string e))
  in
  let run host cores ffts big little policy seed jitter native engine_name reservation mode
      apps_spec rate csv trace gantt trace_level events metrics_out metrics_period app_file
      faults fault_seed fabric =
    let ( let* ) = Result.bind in
    let result =
      let* config = config_of host cores ffts big little in
      let* fab = parse_fabric fabric in
      let config =
        match fab with Some f -> Config.with_fabric f config | None -> config
      in
      let* fault = parse_faults faults fault_seed in
      let* workload =
        match (app_file, String.lowercase_ascii mode) with
        | Some path, _ ->
          Reference_apps.ensure_kernels_registered ();
          let* spec = App_spec.of_file path in
          Ok (Workload.validation [ (spec, 1) ])
        | None, "validation" ->
          let* apps = parse_app_counts apps_spec in
          Ok (Workload.validation apps)
        | None, "performance" -> (
          match Workload.table2_workload ~rate () with
          | wl -> Ok wl
          | exception Invalid_argument msg -> Error msg)
        | None, other -> Error (Printf.sprintf "unknown mode %S" other)
      in
      let* level =
        match String.lowercase_ascii trace_level with
        | "off" -> Ok `Off
        | "summary" -> Ok `Summary
        | "full" -> Ok `Full
        | other -> Error (Printf.sprintf "unknown trace level %S (try off, summary or full)" other)
      in
      (* Recording events to a file needs the full level; a metrics
         time series needs at least the metrics registry. *)
      let level = if events <> None && level <> `Full then `Full else level in
      let level = if metrics_out <> None && level = `Off then `Summary else level in
      let obs =
        match level with
        | `Off -> Obs.disabled
        | `Summary -> Obs.make ~metrics:(Obs.Metrics.create ()) ()
        | `Full -> Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) ()
      in
      let* flusher =
        match (metrics_out, Obs.metrics obs) with
        | None, _ | _, None -> Ok None
        | Some path, Some m ->
          if metrics_period <= 0 then Error "--metrics-period must be positive"
          else begin
            let f = Obs.Flush.every ~period_ms:metrics_period ~path m in
            Obs.set_flush obs f;
            Ok (Some f)
          end
      in
      let* engine = resolve_engine ~engine:engine_name ~native ~jitter ~reservation ~seed in
      let run_result = Emulator.run ~engine ~policy ~obs ?fault ~config ~workload () in
      (* The flusher holds an open channel: close (final snapshot) on
         both success and failure. *)
      Option.iter Obs.Flush.close flusher;
      let* report = run_result in
      Ok (report, obs, flusher)
    in
    match result with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (report, obs, flusher) ->
      Format.printf "%a" Stats.pp_summary report;
      (match Obs.metrics obs with
      | None -> ()
      | Some m ->
        (* Fold the ring's overwrite count into the metrics first so
           the summary surfaces silent event loss. *)
        Obs.record_drops obs;
        Format.printf "%a" Obs.Metrics.pp m);
      let ring_dropped = Obs.Sink.dropped (Obs.sink obs) in
      if ring_dropped > 0 then
        Printf.eprintf
          "warning: event ring overflowed; the oldest %d events were dropped (raise the ring \
           capacity or lower the trace level)\n"
          ring_dropped;
      (match flusher with
      | None -> ()
      | Some f ->
        Printf.printf "wrote %d metric snapshots to %s\n" (Obs.Flush.snapshots f)
          (Obs.Flush.path f));
      (match csv with
      | None -> ()
      | Some path ->
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Stats.records_csv report));
        Printf.printf "wrote %d task records to %s\n" (List.length report.Stats.records) path);
      let failures = ref [] in
      (match events with
      | None -> ()
      | Some path ->
        let recorded = Obs.recorded_events obs in
        Out_channel.with_open_bin path (fun oc -> Obs.output_jsonl oc recorded);
        (match validate_jsonl path with
        | Ok n ->
          let dropped = Obs.Sink.dropped (Obs.sink obs) in
          Printf.printf "wrote %d events to %s (%d dropped, JSONL validated)\n" n path dropped
        | Error msg -> failures := msg :: !failures));
      (match trace with
      | None -> ()
      | Some path ->
        let trace_obs = if Obs.enabled obs then Some obs else None in
        Dssoc_json.Json.to_file path (Stats.chrome_trace ?obs:trace_obs report);
        (match validate_json path with
        | Ok () -> Printf.printf "wrote Chrome trace to %s (validated)\n" path
        | Error msg -> failures := msg :: !failures));
      if gantt then print_string (Stats.gantt report);
      (match !failures with
      | [] -> 0
      | msgs ->
        List.iter prerr_endline (List.rev msgs);
        1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an emulation and print the collected statistics.")
    Term.(
      const run $ host_arg $ cores_arg $ ffts_arg $ big_arg $ little_arg $ policy_arg $ seed_arg
      $ jitter_arg $ native_arg $ engine_arg $ reservation_arg $ mode $ apps $ rate $ csv
      $ trace $ gantt $ trace_level $ events $ metrics_out $ metrics_period $ app_file
      $ faults_arg $ fault_seed_arg $ fabric_arg)

(* ---------------------- sweep ---------------------- *)

let sweep_cmd =
  let grid_name =
    Arg.(
      value
      & pos 0 string "fig9"
      & info [] ~docv:"GRID" ~doc:"Sweep grid preset: fig9, fig10 or fig11.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (0 = one per recommended core). The result table is bit-identical \
                for any N.")
  in
  let replicates =
    Arg.(
      value & opt (some int) None
      & info [ "replicates" ] ~docv:"N" ~doc:"Override the preset's replicate count.")
  in
  let policies =
    Arg.(
      value & opt (some string) None
      & info [ "policies" ] ~docv:"P1,P2" ~doc:"Comma-separated policy list overriding the preset.")
  in
  let sweep_seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the preset's base seed.")
  in
  let sweep_jitter =
    Arg.(
      value & opt (some float) None
      & info [ "jitter" ] ~docv:"SIGMA" ~doc:"Override the preset's jitter stddev fraction.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the result table as CSV to FILE (- for stdout).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the result table as JSON to FILE (- for stdout).")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ] ~doc:"Collapse replicates into per-cell quartile summaries.")
  in
  let sweep_engine =
    Arg.(
      value & opt string "virtual"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Evaluation engine: virtual (default) or compiled.  The compiled engine produces \
             the same table faster: its lowered observability hooks replay the virtual \
             engine's event stream byte-for-byte, so every column — including the \
             metrics-derived and critical-path ones — is byte-identical.  It cannot evaluate \
             fault plans.")
  in
  let cache_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache directory.  Finished points are looked up before \
             being evaluated and new rows are appended (one JSONL file per shard, \
             fsync-batched), so interrupted sweeps resume and warm re-sweeps are near-free.  \
             Keys include the engine and the code revision ($(b,--code-rev)).")
  in
  let shard_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Evaluate only the deterministic index shard I of N (points with index mod N = I). \
             Run the N shards in separate processes against the same $(b,--cache), then join \
             them with $(b,--merge).")
  in
  let merge_arg =
    Arg.(
      value & flag
      & info [ "merge" ]
          ~doc:
            "Do not evaluate anything: reassemble the grid's full result table from the \
             $(b,--cache) store (byte-identical to a single-process run) and fail listing the \
             missing points if any shard has not finished.")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Successive-halving exploration instead of the exhaustive grid: (config x policy x \
             workload) cells are arms, replicates the rung budget; dominated arms are pruned \
             between rungs, never an arm holding a point on the current Pareto frontier \
             (makespan x energy x completed fraction).  Deterministic for a given grid and \
             seed.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Stream CSV rows to FILE as points complete (flushed per row, completion order), \
             so an aborted sweep keeps its partial table.  Unlike $(b,--csv), which writes the \
             full table in point order at the end.")
  in
  let code_rev_arg =
    Arg.(
      value & opt (some string) None
      & info [ "code-rev" ] ~docv:"REV"
          ~doc:
            "Code revision for cache keys (default: $(b,DSSOC_CODE_REV), else git rev-parse \
             --short HEAD, else \"unknown\").  Rows cached under one revision are never served \
             to another.")
  in
  let run grid_name jobs replicates policies seed jitter csv json summary engine_name faults
      fault_seed fabric cache_dir shard merge adaptive out code_rev =
    let policies = Option.map (fun s -> List.map String.trim (String.split_on_char ',' s)) policies in
    let base_seed = Option.map Int64.of_int seed in
    let setup =
      let ( let* ) = Result.bind in
      let* engine =
        match String.lowercase_ascii engine_name with
        | "virtual" -> Ok `Virtual
        | "compiled" ->
          if faults = None then Ok `Compiled
          else Error "--faults conflicts with --engine compiled (fault plans are outside its replay contract)"
        | other -> Error (Printf.sprintf "unknown sweep engine %S (try virtual or compiled)" other)
      in
      let* shard =
        match shard with
        | None -> Ok None
        | Some s -> (
          match String.split_on_char '/' s with
          | [ i; n ] -> (
            match (int_of_string_opt (String.trim i), int_of_string_opt (String.trim n)) with
            | Some i, Some n when n > 0 && 0 <= i && i < n -> Ok (Some (i, n))
            | _ -> Error (Printf.sprintf "bad --shard %S (want I/N with 0 <= I < N)" s))
          | _ -> Error (Printf.sprintf "bad --shard %S (want I/N, e.g. 0/2)" s))
      in
      let* () =
        if merge && cache_dir = None then Error "--merge needs --cache DIR to merge from"
        else if merge && (shard <> None || adaptive) then
          Error "--merge conflicts with --shard and --adaptive"
        else if merge && out <> None then
          Error "--merge conflicts with --out (use --csv for the merged table)"
        else if adaptive && shard <> None then
          Error "--adaptive conflicts with --shard (the rung schedule is not index-sharded)"
        else Ok ()
      in
      let* grid =
        match Presets.by_name ?replicates ?base_seed ?jitter ?policies grid_name with
        | Ok g -> (
          match parse_faults faults fault_seed with
          | Ok fault -> Ok { g with Grid.fault }
          | Error _ as e -> e)
        | Error msg -> Error msg
        | exception Invalid_argument msg -> Error msg
      in
      let* grid =
        match parse_fabric fabric with
        | Ok None -> Ok grid
        | Ok (Some f) ->
          (* Override every grid config's interconnect, including any
             the preset itself baked in (e.g. fig9-contended). *)
          Ok
            {
              grid with
              Grid.configs =
                List.map (fun (l, c) -> (l, Config.with_fabric f c)) grid.Grid.configs;
            }
        | Error _ as e -> e
      in
      Ok (engine, shard, grid)
    in
    match setup with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (engine, shard, grid) -> (
      let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
      let cache =
        Option.map
          (fun dir ->
            Cache.open_ ~readonly:merge
              ?shard:(if merge then None else shard)
              ?code_rev ~dir ())
          cache_dir
      in
      let finally () = Option.iter Cache.close cache in
      let write_or_stdout path s =
        if path = "-" then print_string s
        else begin
          Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
          Printf.printf "wrote %s\n" path
        end
      in
      let emit_table ?(extra_json = []) table =
        (match csv with
        | Some path -> write_or_stdout path (Sweep.to_csv table)
        | None -> ());
        (match json with
        | Some path ->
          let j =
            match (Sweep.to_json table, extra_json) with
            | j, [] -> j
            | Dssoc_json.Json.Obj fields, extra -> Dssoc_json.Json.Obj (fields @ extra)
            | j, _ -> j
          in
          write_or_stdout path (Dssoc_json.Json.to_string j ^ "\n")
        | None -> ());
        if csv = None && json = None then
          if summary then Format.printf "%a" Sweep.pp_summary table
          else Format.printf "%a" Sweep.pp table
        else if summary then Format.printf "%a" Sweep.pp_summary table
      in
      (* All progress/timing chatter goes to stderr so stdout stays
         byte-comparable across runs, shard counts and cache states. *)
      let stats_lines (s : Sweep.stats) =
        Printf.eprintf "%d points on %d domain%s in %.3f s\n" s.Sweep.points jobs
          (if jobs = 1 then "" else "s")
          (float_of_int s.Sweep.elapsed_ns /. 1e9);
        if cache <> None then
          Printf.eprintf "cache: %d hits, %d misses\n" s.Sweep.cache_hits s.Sweep.cache_misses;
        if engine = `Compiled then
          Printf.eprintf "plans: %d compiled, %d reused\n" s.Sweep.plan_compiles
            s.Sweep.plan_reuses
      in
      let with_out k =
        match out with
        | None -> k None
        | Some path ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (Sweep.csv_header ^ "\n");
              Out_channel.flush oc;
              let r =
                k
                  (Some
                     (fun row ->
                       Out_channel.output_string oc (Sweep.csv_row row ^ "\n");
                       Out_channel.flush oc))
              in
              Printf.eprintf "streamed rows to %s\n" path;
              r)
      in
      Fun.protect ~finally (fun () ->
          if merge then begin
            match Sweep.of_cache ~engine ~cache:(Option.get cache) grid with
            | Ok table ->
              emit_table table;
              Printf.eprintf "merged %d points from %s\n" (List.length table.Sweep.rows)
                (Option.get cache_dir);
              0
            | Error msg ->
              prerr_endline msg;
              1
          end
          else if adaptive then begin
            let a = with_out (fun on_row -> Sweep.run_adaptive ~jobs ~engine ?cache ?on_row grid) in
            let frontier_table =
              { Sweep.grid_label = grid.Grid.label ^ "/frontier"; rows = a.Sweep.a_frontier }
            in
            let extra_json =
              [
                ( "adaptive",
                  Dssoc_json.Json.obj
                    [
                      ("exhaustive_points", Dssoc_json.Json.int a.Sweep.a_exhaustive_points);
                      ("evaluated_points", Dssoc_json.Json.int a.Sweep.a_stats.Sweep.points);
                      ( "survivors",
                        Dssoc_json.Json.list
                          (List.map
                             (fun arm ->
                               let c, p, w = Sweep.arm_cell grid arm in
                               Dssoc_json.Json.list
                                 [ Dssoc_json.Json.str c; Dssoc_json.Json.str p;
                                   Dssoc_json.Json.str w ])
                             a.Sweep.a_survivors) );
                      ( "frontier",
                        Dssoc_json.Json.list
                          (List.map
                             (fun (r : Sweep.row) ->
                               Dssoc_json.Json.list
                                 [ Dssoc_json.Json.str r.Sweep.config;
                                   Dssoc_json.Json.str r.Sweep.policy;
                                   Dssoc_json.Json.str r.Sweep.workload;
                                   Dssoc_json.Json.int r.Sweep.replicate ])
                             a.Sweep.a_frontier) );
                    ] );
              ]
            in
            emit_table ~extra_json a.Sweep.a_table;
            if csv = None && json = None then begin
              Format.printf "@.Pareto frontier (makespan x energy x completed fraction):@.";
              Format.printf "%a" Sweep.pp frontier_table
            end;
            List.iter
              (fun (r : Frontier.rung) ->
                Printf.eprintf "rung %d: %d arms at %d replicate%s, pruned %d\n" r.Frontier.rung
                  (List.length r.Frontier.arms_in)
                  r.Frontier.cumulative_replicates
                  (if r.Frontier.cumulative_replicates = 1 then "" else "s")
                  (List.length r.Frontier.pruned))
              a.Sweep.a_rungs;
            Printf.eprintf "adaptive: evaluated %d of %d points (%.0f%%), %d survivor arm%s\n"
              a.Sweep.a_stats.Sweep.points a.Sweep.a_exhaustive_points
              (100.0
              *. float_of_int a.Sweep.a_stats.Sweep.points
              /. float_of_int (max 1 a.Sweep.a_exhaustive_points))
              (List.length a.Sweep.a_survivors)
              (if List.length a.Sweep.a_survivors = 1 then "" else "s");
            stats_lines a.Sweep.a_stats;
            0
          end
          else begin
            let table, stats =
              with_out (fun on_row -> Sweep.run_stats ~jobs ~engine ?cache ?shard ?on_row grid)
            in
            emit_table table;
            (match shard with
            | Some (i, n) -> Printf.eprintf "shard %d/%d: " i n
            | None -> ());
            stats_lines stats;
            0
          end))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a design-space exploration grid across a pool of worker domains.  Output is \
          deterministic: the same grid and seed produce a byte-identical result table for any \
          --jobs value, any --shard split (after --merge) and any --cache state.")
    Term.(
      const run $ grid_name $ jobs $ replicates $ policies $ sweep_seed $ sweep_jitter $ csv
      $ json $ summary $ sweep_engine $ faults_arg $ fault_seed_arg $ fabric_arg $ cache_arg
      $ shard_arg
      $ merge_arg $ adaptive_arg $ out_arg $ code_rev_arg)

(* ---------------------- analyze ---------------------- *)

let analyze_cmd =
  let module Analyze = Dssoc_obs.Analyze in
  let events_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EVENTS.jsonl"
          ~doc:"Event log written by $(b,run --events) (either engine).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as JSON on stdout.") in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to FILE instead of stdout.")
  in
  (* Strict load: an unparseable line means a truncated or corrupt log,
     and silently analysing a prefix would misreport the critical path. *)
  let load_events_exn path =
    In_channel.with_open_bin path (fun ic ->
        let rec go n acc =
          match In_channel.input_line ic with
          | None -> Ok (List.rev acc)
          | Some line when String.trim line = "" -> go (n + 1) acc
          | Some line -> (
            match Dssoc_json.Json.parse line with
            | Error e ->
              Error
                (Printf.sprintf "%s: line %d: %s" path (n + 1)
                   (Dssoc_json.Json.error_to_string e))
            | Ok j -> (
              match Obs.event_of_json j with
              | Error msg -> Error (Printf.sprintf "%s: line %d: %s" path (n + 1) msg)
              | Ok ev -> go (n + 1) (ev :: acc)))
        in
        go 0 [])
  in
  let load_events path = try load_events_exn path with Sys_error msg -> Error msg in
  let run path json out =
    match load_events path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok events ->
      let t = Analyze.of_events events in
      let text =
        if json then Dssoc_json.Json.to_string (Analyze.to_json t) ^ "\n"
        else Format.asprintf "%a" Analyze.pp t
      in
      (match out with
      | None -> print_string text
      | Some file ->
        Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc text);
        Printf.printf "wrote %s\n" file);
      0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Post-run analytics over a recorded event log: critical path of the realized schedule \
          (with per-step slack and a DMA/stall decomposition), per-PE-class utilization, and \
          the wait/service/stall queueing breakdown.  Engine-agnostic — the log alone \
          determines the report.")
    Term.(const run $ events_file $ json $ out)

(* ---------------------- serve ---------------------- *)

let serve_cmd =
  let tenants =
    Arg.(
      required
      & opt (some string) None
      & info [ "tenants" ] ~docv:"SPEC"
          ~doc:
            "Tenant registrations, ';'-separated: \
             'NAME:apps=APP[*W][+APP..]:rate=R[:prio=P][:slo=MS][:seed=S]'.  $(b,apps) is a \
             weighted application mix, $(b,rate) the mean Poisson arrival rate in jobs per \
             emulated millisecond.  Example: \
             'gold:apps=wifi_tx*3+range_detection:rate=1.5:prio=2:slo=5ms;bulk:apps=wifi_rx:rate=4'.")
  in
  let duration =
    Arg.(
      value & opt float 10.0
      & info [ "duration-ms" ] ~docv:"MS"
          ~doc:"Emulated arrival window: arrivals are generated strictly inside [0, MS).")
  in
  let admission =
    Arg.(
      value & opt string ""
      & info [ "admission" ] ~docv:"SPEC"
          ~doc:
            "Admission control: 'policy=block|shed|degrade:queue=N:max-ready=N:timeout=DUR' \
             (all fields optional; default shed with a 16-deep queue, 128 max-ready, no \
             watchdog).  $(b,block) stalls the arrival stream, $(b,shed) rejects the newest \
             arrival with a typed verdict, $(b,degrade) sheds from the lowest-priority tenant \
             below the arrival's priority.  $(b,timeout) arms the watchdog that aborts \
             instances exceeding the bound from arrival.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "On a drain request (SIGTERM/SIGINT, --drain-at-ms or --wall-budget-s), stop at \
             the next quiescent instant and atomically write a versioned checkpoint here.")
  in
  let restore =
    Arg.(
      value & opt (some string) None
      & info [ "restore" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by --checkpoint.  The spec must match the run \
             that produced it; the final report is byte-identical to an uninterrupted run.")
  in
  let drain_at =
    Arg.(
      value & opt (some float) None
      & info [ "drain-at-ms" ] ~docv:"MS"
          ~doc:"Deterministic drain trigger at emulated time MS (for reproducible checkpoints).")
  in
  let wall_budget =
    Arg.(
      value & opt (some float) None
      & info [ "wall-budget-s" ] ~docv:"S"
          ~doc:"Drain once S wall-clock seconds have elapsed (soak harness).")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Append periodic metric snapshots to FILE as JSON Lines (see $(b,run)).")
  in
  let metrics_period =
    Arg.(
      value & opt int 10
      & info [ "metrics-period" ] ~docv:"MS" ~doc:"Emulated-time period between snapshots.")
  in
  let report_out =
    Arg.(
      value & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:"Also write the per-tenant report to FILE (for byte-comparison across restores).")
  in
  let run host cores ffts big little policy seed jitter tenants duration admission checkpoint
      restore drain_at wall_budget metrics_out metrics_period report_out =
    let ( let* ) = Result.bind in
    let result =
      let* config = config_of host cores ffts big little in
      let* policy = Scheduler.find policy in
      let* admission = Server.admission_of_spec admission in
      let* tenants = Server.tenants_of_spec tenants in
      let* () = if duration <= 0.0 then Error "--duration-ms must be positive" else Ok () in
      let spec =
        {
          Server.sp_config = config;
          sp_policy = policy;
          sp_seed = Int64.of_int seed;
          sp_jitter = jitter;
          sp_duration_ms = duration;
          sp_admission = admission;
          sp_tenants = tenants;
        }
      in
      let obs =
        match metrics_out with
        | None -> Obs.disabled
        | Some _ -> Obs.make ~metrics:(Obs.Metrics.create ()) ()
      in
      let* flusher =
        match (metrics_out, Obs.metrics obs) with
        | None, _ | _, None -> Ok None
        | Some path, Some m ->
          if metrics_period <= 0 then Error "--metrics-period must be positive"
          else begin
            let f = Obs.Flush.every ~period_ms:metrics_period ~path m in
            Obs.set_flush obs f;
            Ok (Some f)
          end
      in
      (* A drain request stops the server at the next quiescent instant:
         SIGTERM/SIGINT (graceful shutdown), an emulated-time trigger
         (reproducible checkpoints), or a wall-clock budget (soak). *)
      let stop = ref false in
      let install s =
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true))
        with Invalid_argument _ | Sys_error _ -> ()
      in
      install Sys.sigterm;
      install Sys.sigint;
      let t0 = Unix.gettimeofday () in
      let drain ~now_ns =
        !stop
        || (match drain_at with Some ms -> float_of_int now_ns >= ms *. 1e6 | None -> false)
        ||
        match wall_budget with
        | Some s -> Unix.gettimeofday () -. t0 >= s
        | None -> false
      in
      let r = Server.run ~obs ~drain ?checkpoint ?restore spec in
      (* The flusher's close writes the final snapshot — on the drain
         path this is the "flush observability, then checkpoint was
         written" part of graceful shutdown. *)
      Option.iter Obs.Flush.close flusher;
      let* outcome = r in
      Ok (outcome, flusher)
    in
    match result with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (outcome, flusher) ->
      let report = Server.render_report outcome in
      print_string report;
      (match report_out with
      | None -> ()
      | Some path ->
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc report);
        Printf.printf "wrote report to %s\n" path);
      (match flusher with
      | None -> ()
      | Some f ->
        Printf.printf "wrote %d metric snapshots to %s\n" (Obs.Flush.snapshots f)
          (Obs.Flush.path f));
      if outcome.Server.oc_drained then begin
        match outcome.Server.oc_checkpoint with
        | Some path ->
          Printf.printf "drained at %d ns; checkpoint written to %s (restore with --restore)\n"
            outcome.Server.oc_clock_ns path;
          0
        | None ->
          Printf.printf "drained at %d ns; no --checkpoint given, pending work was discarded\n"
            outcome.Server.oc_clock_ns;
          0
      end
      else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident emulation service: open-loop tenant arrival streams with admission \
          control, backpressure, a watchdog, and checkpoint/restore at quiescent instants.  \
          Virtual engine only.  SIGTERM/SIGINT drain gracefully (finish in-flight work, \
          flush metrics, write the checkpoint if --checkpoint is set).")
    Term.(
      const run $ host_arg $ cores_arg $ ffts_arg $ big_arg $ little_arg $ policy_arg $ seed_arg
      $ jitter_arg $ tenants $ duration $ admission $ checkpoint $ restore $ drain_at
      $ wall_budget $ metrics_out $ metrics_period $ report_out)

(* ---------------------- convert ---------------------- *)

let convert_cmd =
  let source =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"FILE" ~doc:"Mini-C source file (default: the built-in monolithic range detection).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the generated DAG JSON to FILE.")
  in
  let no_optimize =
    Arg.(value & flag & info [ "no-optimize" ] ~doc:"Disable hash-based kernel recognition/substitution.")
  in
  let parallelize =
    Arg.(
      value & flag
      & info [ "parallelize" ]
          ~doc:"Link nodes by memory-dependence edges so independent kernels run in parallel.")
  in
  let emulate = Arg.(value & flag & info [ "emulate" ] ~doc:"Also run the converted app on 3Core+1FFT.") in
  let run source out no_optimize parallelize emulate =
    let name, src, inputs =
      match source with
      | None ->
        ("rd_monolithic", Driver.range_detection_source, Driver.range_detection_inputs ())
      | Some path ->
        ( Filename.remove_extension (Filename.basename path),
          In_channel.with_open_bin path In_channel.input_all,
          Driver.range_detection_inputs () )
    in
    match Driver.convert ~optimize:(not no_optimize) ~parallelize ~name ~source:src ~inputs () with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok conv ->
      print_string (Driver.summary conv);
      (match out with
      | None -> ()
      | Some path ->
        App_spec.to_file path conv.Driver.spec;
        Printf.printf "wrote %s\n" path);
      if emulate then begin
        let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
        let workload = Workload.validation [ (conv.Driver.spec, 1) ] in
        match Emulator.run ~engine:(Emulator.virtual_seeded ~jitter:0.0 1L) ~config ~workload () with
        | Ok report -> Format.printf "@.%a" Stats.pp_summary report
        | Error msg -> prerr_endline msg
      end;
      0
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Automatically convert monolithic C code into a DAG application.")
    Term.(const run $ source $ out $ no_optimize $ parallelize $ emulate)

let () =
  let info =
    Cmd.info "dssoc_emu" ~version:"1.0.0"
      ~doc:"User-space emulation framework for domain-specific SoC design."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            apps_cmd;
            platforms_cmd;
            policies_cmd;
            run_cmd;
            serve_cmd;
            sweep_cmd;
            analyze_cmd;
            convert_cmd;
          ]))
