(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section III) and hosts Bechamel
   micro-benchmarks of the underlying machinery.

   Usage:
     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- table1       # one experiment
     dune exec bench/main.exe -- micro        # Bechamel micro benches
     dune exec bench/main.exe -- engine --json  # machine-readable engine bench
   Experiments: table1 table2 fig9a fig9b fig10a fig10b fig11 sweep cs4 ablation engine serve micro *)

module Cbuf = Dssoc_dsp.Cbuf
module Fft = Dssoc_dsp.Fft
module Dft = Dssoc_dsp.Dft
module App_spec = Dssoc_apps.App_spec
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Fabric = Dssoc_soc.Fabric
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Obs = Dssoc_obs.Obs
module Driver = Dssoc_compiler.Driver
module Quantile = Dssoc_stats.Quantile
module Table = Dssoc_stats.Table
module Prng = Dssoc_util.Prng
module Mclock = Dssoc_util.Mclock
module Grid = Dssoc_explore.Grid
module Cache = Dssoc_explore.Cache
module Sweep = Dssoc_explore.Sweep
module Presets = Dssoc_explore.Presets
module Pool = Dssoc_explore.Pool
module Server = Dssoc_serve.Server

let det_engine = Emulator.virtual_seeded ~jitter:0.0 1L

let run_validation ?(policy = "FRFS") ?(engine = det_engine) config apps =
  Emulator.run_exn ~engine ~policy ~config ~workload:(Workload.validation apps) ()

let ms ns = float_of_int ns /. 1e6

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

(* ------------------------------------------------------------------ *)
(* Table I: standalone application execution time and task count       *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  [ ("range_detection", 0.32, 6); ("pulse_doppler", 5.60, 770); ("wifi_tx", 0.13, 7); ("wifi_rx", 2.22, 9) ]

let table1 () =
  header "Table I: application execution time and task count (3Core+2FFT, FRFS)";
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let rows =
    List.map
      (fun (name, paper_ms, paper_tasks) ->
        let app = Result.get_ok (Reference_apps.by_name name) in
        let r = run_validation config [ (app, 1) ] in
        [
          name;
          Printf.sprintf "%.2f" paper_ms;
          Printf.sprintf "%.2f" (ms r.Stats.makespan_ns);
          string_of_int paper_tasks;
          string_of_int r.Stats.task_count;
        ])
      paper_table1
  in
  print_string
    (Table.render
       ~header:[ "Application"; "paper ms"; "measured ms"; "paper tasks"; "measured tasks" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Table II: instance counts per injection rate                        *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table II: application instance count per injection rate (100 ms window)";
  let apps = [ "pulse_doppler"; "range_detection"; "wifi_tx"; "wifi_rx" ] in
  let rows =
    List.map
      (fun rate ->
        let wl = Workload.table2_workload ~rate () in
        let counts = Workload.count_by_app wl in
        let paper = Workload.table2_counts rate in
        (Printf.sprintf "%.2f" rate
         :: List.concat_map
              (fun app ->
                [
                  string_of_int (List.assoc app paper);
                  string_of_int (Option.value ~default:0 (List.assoc_opt app counts));
                ])
              apps)
        @ [ Printf.sprintf "%.2f" (Workload.injection_rate_per_ms wl) ])
      Workload.table2_rates
  in
  print_string
    (Table.render
       ~header:
         (("rate" :: List.concat_map (fun a -> [ a ^ " (paper)"; "(meas)" ]) apps)
         @ [ "meas rate" ])
       ~rows)

(* ------------------------------------------------------------------ *)
(* Fig. 9: validation-mode design-space sweep (on the sweep engine)    *)
(* ------------------------------------------------------------------ *)

let fig9a () =
  header "Fig. 9a: workload execution time per DSSoC configuration (50 replicates, FRFS)";
  let grid = Presets.fig9 ~replicates:50 ~base_seed:500L () in
  let table = Sweep.run grid in
  let results =
    List.map (fun s -> (s.Sweep.s_config, s.Sweep.makespan_ms)) (Sweep.summarize table)
  in
  let scale_hi = List.fold_left (fun acc (_, b) -> Float.max acc b.Quantile.hi) 0.0 results in
  List.iter
    (fun (label, b) ->
      Printf.printf "  %-12s %s  med %6.2f ms [%.2f .. %.2f]\n" label
        (Table.box_row ~width:44 ~scale_hi ~lo:b.Quantile.lo ~q1:b.Quantile.q1 ~med:b.Quantile.med
           ~q3:b.Quantile.q3 ~hi:b.Quantile.hi ())
        b.Quantile.med b.Quantile.lo b.Quantile.hi)
    results;
  let med label = (List.assoc label results).Quantile.med in
  Printf.printf "\nshape checks against the paper's reading of Fig. 9a:\n";
  Printf.printf "  [%s] adding a core helps more than adding an FFT (2C+1F beats 1C+2F)\n"
    (if med "2Core+1FFT" < med "1Core+2FFT" then "ok" else "??");
  Printf.printf "  [%s] 2C+2F within 5%% of 2C+1F (FFT managers share one core)\n"
    (if Float.abs (med "2Core+1FFT" -. med "2Core+2FFT") /. med "2Core+1FFT" < 0.05 then "ok" else "??");
  Printf.printf "  [%s] execution time improves with CPU count among 0-FFT configs\n"
    (if med "3Core+0FFT" < med "2Core+0FFT" && med "2Core+0FFT" < med "1Core+0FFT" then "ok" else "??");
  Printf.printf "  [%s] 2C+1F delivers comparable performance to 3C+0F (area-efficient pick)\n"
    (if Float.abs (med "2Core+1FFT" -. med "3Core+0FFT") /. med "3Core+0FFT" < 0.10 then "ok" else "??")

let fig9b () =
  header "Fig. 9b: average PE utilisation per configuration (FRFS)";
  let grid = Presets.fig9 ~replicates:1 ~jitter:0.0 () in
  let table = Sweep.run grid in
  let pct util k =
    match List.assoc_opt k util with
    | Some u -> Printf.sprintf "%.1f%%" (100.0 *. u)
    | None -> "-"
  in
  let rows =
    List.map
      (fun (r : Sweep.row) -> [ r.Sweep.config; pct r.Sweep.util_by_kind "cpu"; pct r.Sweep.util_by_kind "fft" ])
      table.Sweep.rows
  in
  print_string (Table.render ~header:[ "configuration"; "cpu util"; "fft util" ] ~rows);
  let util_of label =
    (List.find (fun (r : Sweep.row) -> r.Sweep.config = label) table.Sweep.rows).Sweep.util_by_kind
  in
  let cpu_util = List.assoc "cpu" (util_of "1Core+0FFT") in
  Printf.printf "\npaper: max CPU utilisation ~80%% at 1Core+0FFT; measured %.1f%%\n" (100.0 *. cpu_util);
  let u22 = util_of "2Core+2FFT" in
  Printf.printf "paper: CPU utilisation higher than FFT accelerators — %s\n"
    (if List.assoc "cpu" u22 > List.assoc "fft" u22 then "holds" else "violated")

(* ------------------------------------------------------------------ *)
(* Fig. 10: scheduling policies under increasing injection rate        *)
(* ------------------------------------------------------------------ *)

let fig10_policies = [ "FRFS"; "MET"; "EFT" ]

let fig10_table = lazy (Sweep.run (Presets.fig10 ()))

let sweep_row (table : Sweep.table) ~policy ~config_pred ~rate =
  let wl = Printf.sprintf "rate%.2f" rate in
  List.find
    (fun (r : Sweep.row) -> r.Sweep.policy = policy && r.Sweep.workload = wl && config_pred r.Sweep.config)
    table.Sweep.rows

let fig10_row policy rate =
  sweep_row (Lazy.force fig10_table) ~policy ~config_pred:(fun _ -> true) ~rate

let fig10a () =
  header "Fig. 10a: workload execution time vs injection rate (3Core+2FFT)";
  let curves =
    List.map
      (fun p -> (p, List.map (fun rate -> ms (fig10_row p rate).Sweep.makespan_ns) Workload.table2_rates))
      fig10_policies
  in
  print_string (Table.series ~x_label:"jobs/ms" ~xs:Workload.table2_rates ~curves ());
  Printf.printf "\nshape checks:\n";
  Printf.printf "  [%s] FRFS < MET < EFT at every rate (simple policy wins, as in the paper)\n"
    (if
       List.for_all
         (fun rate ->
           let m p = (fig10_row p rate).Sweep.makespan_ns in
           m "FRFS" <= m "MET" && m "MET" <= m "EFT")
         Workload.table2_rates
     then "ok"
     else "??");
  let frfs_first = ms (fig10_row "FRFS" (List.hd Workload.table2_rates)).Sweep.makespan_ns in
  let frfs_last = ms (fig10_row "FRFS" (List.nth Workload.table2_rates 4)).Sweep.makespan_ns in
  Printf.printf "  [%s] FRFS grows roughly linearly with rate (%.0f ms at 1.71 -> %.0f ms at 6.92)\n"
    (if frfs_last < 4.0 *. frfs_first then "ok" else "??")
    frfs_first frfs_last

let fig10b () =
  header "Fig. 10b: average scheduling overhead vs injection rate (3Core+2FFT)";
  Printf.printf "total workload-manager overhead per scheduling invocation (us):\n";
  let wm_cost (r : Sweep.row) =
    if r.Sweep.sched_invocations = 0 then 0.0
    else float_of_int r.Sweep.wm_overhead_ns /. float_of_int r.Sweep.sched_invocations /. 1e3
  in
  let curves =
    List.map
      (fun p -> (p, List.map (fun rate -> wm_cost (fig10_row p rate)) Workload.table2_rates))
      fig10_policies
  in
  print_string (Table.series ~x_label:"jobs/ms" ~xs:Workload.table2_rates ~curves ());
  Printf.printf "\npure policy cost per invocation (us) — the paper's 2.5 us FRFS constant:\n";
  let policy_cost (r : Sweep.row) =
    float_of_int r.Sweep.sched_ns /. float_of_int (max 1 r.Sweep.sched_invocations) /. 1e3
  in
  let curves =
    List.map
      (fun p -> (p, List.map (fun rate -> policy_cost (fig10_row p rate)) Workload.table2_rates))
      fig10_policies
  in
  print_string (Table.series ~x_label:"jobs/ms" ~xs:Workload.table2_rates ~curves ());
  let frfs_costs =
    Array.of_list (List.map (fun rate -> policy_cost (fig10_row "FRFS" rate)) Workload.table2_rates)
  in
  let spread = Quantile.max frfs_costs -. Quantile.min frfs_costs in
  Printf.printf "\n  [%s] FRFS policy cost constant across rates (spread %.2f us; paper: 2.5 us constant)\n"
    (if spread < 0.3 then "ok" else "??")
    spread

(* ------------------------------------------------------------------ *)
(* Fig. 11: Odroid XU3 big.LITTLE sweep                                *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Fig. 11: execution time on Odroid XU3 BIG/LITTLE mixes (FRFS, performance mode)";
  let table = Sweep.run (Presets.fig11 ()) in
  let results =
    List.map
      (fun (big, little) ->
        let label = (Config.odroid_big_little ~big ~little).Config.label in
        ( label,
          List.map
            (fun rate ->
              ms
                (sweep_row table ~policy:"FRFS" ~config_pred:(( = ) label) ~rate).Sweep.makespan_ns)
            Workload.table2_rates ))
      Presets.fig11_mixes
  in
  print_string (Table.series ~x_label:"jobs/ms" ~xs:Workload.table2_rates ~curves:results ());
  let top label = List.nth (List.assoc label results) 4 in
  Printf.printf "\nshape checks at the top rate:\n";
  Printf.printf
    "  [%s] 4BIG+2LTL and 4BIG+3LTL slower than 4BIG+1LTL (FRFS cost ~ PE count on the LITTLE overlay)\n"
    (if top "4BIG+2LTL" > top "4BIG+1LTL" && top "4BIG+3LTL" > top "4BIG+1LTL" then "ok" else "??");
  let best = List.fold_left (fun acc (_, ys) -> Float.min acc (List.nth ys 4)) Float.infinity results in
  Printf.printf "  [%s] 3BIG+2LTL, 3BIG+1LTL and 4BIG+1LTL within 3%% of the best configuration\n"
    (if List.for_all (fun l -> (top l -. best) /. best < 0.03) [ "3BIG+2LTL"; "3BIG+1LTL"; "4BIG+1LTL" ]
     then "ok"
     else "??");
  Printf.printf "  [%s] execution time increases with injection rate for every mix\n"
    (if
       List.for_all
         (fun (_, ys) ->
           let rec mono = function a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest | _ -> true in
           mono ys)
         results
     then "ok"
     else "??")

(* ------------------------------------------------------------------ *)
(* Sweep engine: determinism and wall-clock scaling                    *)
(* ------------------------------------------------------------------ *)

(* Set by the --json flag: the engine and sweep experiments then emit
   one JSON document on stdout instead of the human-readable table, so
   CI and regression scripts can track emulations/sec and cache
   behaviour without scraping. *)
let json_mode = ref false

(* The working-tree revision, so an exported bench JSON is
   self-describing when archived as a CI artifact.  Same resolution as
   the sweep cache keys (DSSOC_CODE_REV, then git, then "unknown"). *)
let code_rev () = Cache.detect_code_rev ()

let rm_rf_cache_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let sweep () =
  let module Json = Dssoc_json.Json in
  let secs ns = float_of_int ns /. 1e9 in
  let grid = Presets.fig9 ~replicates:10 ~base_seed:500L () in
  let points = Grid.size grid in
  let t1, n1 = Sweep.run_timed ~jobs:1 grid in
  let jn = max 2 (Pool.default_jobs ()) in
  let tn, nn = Sweep.run_timed ~jobs:jn grid in
  let s1 = secs n1 and sn = secs nn in
  (* Warm-cache experiment (fig10-class): a cold cached run fills a
     fresh store, then a second process-equivalent run (new handle,
     same directory) must serve every point from disk.  The warm run
     re-parses and re-renders every row, so its speedup is the honest
     "resume this campaign" figure, not just a hashtable lookup. *)
  let wgrid = Presets.fig10 ~base_seed:500L () in
  let wpoints = Grid.size wgrid in
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dssoc-bench-cache-%d" (Unix.getpid ()))
  in
  rm_rf_cache_dir cache_dir;
  let cold_t, cold =
    let cache = Cache.open_ ~code_rev:"bench" ~dir:cache_dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> Sweep.run_stats ~jobs:1 ~cache wgrid)
  in
  let warm_t, warm =
    let cache = Cache.open_ ~code_rev:"bench" ~dir:cache_dir () in
    Fun.protect
      ~finally:(fun () -> Cache.close cache)
      (fun () -> Sweep.run_stats ~jobs:1 ~cache wgrid)
  in
  rm_rf_cache_dir cache_dir;
  let cold_s = secs cold.Sweep.elapsed_ns and warm_s = secs warm.Sweep.elapsed_ns in
  let speedup = cold_s /. Float.max 1e-9 warm_s in
  let tables_identical = Sweep.to_csv cold_t = Sweep.to_csv warm_t in
  if !json_mode then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("experiment", Json.String "sweep");
              ("code_rev", Json.String (code_rev ()));
              ("grid", Json.String "fig9");
              ("points", Json.Int points);
              ("jobs1_s", Json.Float s1);
              ("jobsN", Json.Int jn);
              ("jobsN_s", Json.Float sn);
              ( "cache",
                Json.Obj
                  [
                    ("grid", Json.String "fig10");
                    ("points", Json.Int wpoints);
                    ("cold_s", Json.Float cold_s);
                    ("warm_s", Json.Float warm_s);
                    ("speedup", Json.Float speedup);
                    ("cold_hits", Json.Int cold.Sweep.cache_hits);
                    ("cold_misses", Json.Int cold.Sweep.cache_misses);
                    ("warm_hits", Json.Int warm.Sweep.cache_hits);
                    ("warm_misses", Json.Int warm.Sweep.cache_misses);
                    ("tables_identical", Json.Bool tables_identical);
                  ] );
            ]))
  else begin
    header "Sweep engine: deterministic sharding across worker domains";
    Printf.printf "  fig9 grid, %d points\n" points;
    Printf.printf "  jobs=1:  %8.3f s\n" s1;
    Printf.printf "  jobs=%-2d: %8.3f s   speedup %.2fx\n" jn sn (s1 /. Float.max 1e-9 sn);
    Printf.printf "  [%s] result tables byte-identical across worker counts (CSV and JSON)\n"
      (if
         Sweep.to_csv t1 = Sweep.to_csv tn
         && Dssoc_json.Json.to_string (Sweep.to_json t1)
            = Dssoc_json.Json.to_string (Sweep.to_json tn)
       then "ok"
       else "??");
    if Pool.default_jobs () <= 1 then
      Printf.printf
        "  note: this host recommends %d domain(s); speedup ~1x or below is expected here and\n\
        \  the extra domains only add spawn overhead.  On a multi-core host the same sweep\n\
        \  scales with the worker count.\n"
        (Pool.default_jobs ());
    header "Result cache: warm re-sweep served from the content-addressed store";
    Printf.printf "  fig10 grid, %d points, cache at a throwaway temp dir\n" wpoints;
    Printf.printf "  cold (fills store):  %8.3f s   %d hits / %d misses\n" cold_s
      cold.Sweep.cache_hits cold.Sweep.cache_misses;
    Printf.printf "  warm (new handle):   %8.3f s   %d hits / %d misses   speedup %.1fx\n"
      warm_s warm.Sweep.cache_hits warm.Sweep.cache_misses speedup;
    Printf.printf "  [%s] warm table byte-identical to cold table\n"
      (if tables_identical then "ok" else "??");
    Printf.printf "  [%s] warm run fully cache-served\n"
      (if warm.Sweep.cache_hits = wpoints && warm.Sweep.cache_misses = 0 then "ok" else "??")
  end

(* ------------------------------------------------------------------ *)
(* Case Study 4: automatic application conversion                      *)
(* ------------------------------------------------------------------ *)

let cs4 () =
  header "Case Study 4: automatic conversion of monolithic range detection (3Core+1FFT)";
  let inputs = Driver.range_detection_inputs () in
  let conv =
    Result.get_ok
      (Driver.convert ~optimize:false ~name:"rd_monolithic" ~source:Driver.range_detection_source
         ~inputs ())
  in
  let conv_opt =
    Result.get_ok
      (Driver.convert ~optimize:true ~name:"rd_monolithic_opt" ~source:Driver.range_detection_source
         ~inputs ())
  in
  (* Variant with the DFT nodes pinned to the FPGA accelerator, for the
     paper's 94x accelerator-substitution figure. *)
  let accel_spec =
    let nodes =
      List.map
        (fun (n : App_spec.node) ->
          if List.mem_assoc n.App_spec.node_name conv_opt.Driver.substitutions then
            {
              n with
              App_spec.platforms = List.filter (fun e -> e.App_spec.platform = "fft") n.App_spec.platforms;
            }
          else n)
        conv_opt.Driver.spec.App_spec.nodes
    in
    Result.get_ok (App_spec.validate { conv_opt.Driver.spec with App_spec.nodes })
  in
  print_string (Driver.summary conv_opt);
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
  let run spec =
    Result.get_ok
      (Emulator.run_detailed ~engine:det_engine ~config ~workload:(Workload.validation [ (spec, 1) ]) ())
  in
  let r_naive, _ = run conv.Driver.spec in
  let r_fftw, i_fftw = run conv_opt.Driver.spec in
  let r_accel, i_accel = run accel_spec in
  let node_us (r : Stats.report) name =
    let t = List.find (fun (t : Stats.task_record) -> t.Stats.node = name) r.Stats.records in
    float_of_int (t.Stats.completed_ns - t.Stats.dispatched_ns) /. 1e3
  in
  let naive_avg = (node_us r_naive "KERNEL_5" +. node_us r_naive "KERNEL_7") /. 2.0 in
  let fftw_avg = (node_us r_fftw "DFT_5" +. node_us r_fftw "DFT_7") /. 2.0 in
  let accel_avg = (node_us r_accel "DFT_5" +. node_us r_accel "DFT_7") /. 2.0 in
  print_string
    (Table.render
       ~header:[ "DFT kernel implementation"; "avg time (us)"; "speedup"; "paper" ]
       ~rows:
         [
           [ "naive for-loop DFT (converted)"; Printf.sprintf "%.1f" naive_avg; "1x"; "1x" ];
           [
             "FFT library substitution (CPU)";
             Printf.sprintf "%.1f" fftw_avg;
             Printf.sprintf "%.0fx" (naive_avg /. fftw_avg);
             "102x";
           ];
           [
             "FFT accelerator substitution";
             Printf.sprintf "%.1f" accel_avg;
             Printf.sprintf "%.0fx" (naive_avg /. accel_avg);
             "94x";
           ];
         ]);
  let best (inst : Dssoc_runtime.Task.instance array) =
    int_of_float (Dssoc_apps.Store.get_f32_array inst.(0).Dssoc_runtime.Task.store "__out_ch3").(0)
  in
  Printf.printf "\n  [%s] application output remains correct after both substitutions (echo @ %d)\n"
    (if best i_fftw = Driver.range_detection_echo_delay && best i_accel = Driver.range_detection_echo_delay
     then "ok"
     else "??")
    Driver.range_detection_echo_delay

(* ------------------------------------------------------------------ *)
(* Ablations: the paper's future-work extensions                       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation 1: per-PE task reservation queues (Section III-C / V future work)";
  Printf.printf
    "The paper: \"we will incorporate task reservation queues on each PE to reduce the\n\
     impact of the scheduling overhead\".  Depth 0 is the released framework.\n\n";
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let rows =
    List.map
      (fun depth ->
        let engine = Emulator.virtual_seeded ~jitter:0.0 ~reservation_depth:depth 1L in
        let pd =
          Emulator.run_exn ~engine ~config
            ~workload:(Workload.validation [ (Reference_apps.pulse_doppler (), 1) ])
            ()
        in
        let perf =
          Emulator.run_exn ~engine ~config ~workload:(Workload.table2_workload ~rate:3.42 ()) ()
        in
        [
          string_of_int depth;
          Printf.sprintf "%.2f" (ms pd.Stats.makespan_ns);
          string_of_int pd.Stats.sched_invocations;
          Printf.sprintf "%.2f" (ms pd.Stats.wm_overhead_ns);
          Printf.sprintf "%.2f" (ms perf.Stats.makespan_ns);
        ])
      [ 0; 1; 2; 4 ]
  in
  print_string
    (Table.render
       ~header:
         [ "queue depth"; "PD standalone ms"; "sched invocations"; "WM overhead ms"; "rate 3.42 ms" ]
       ~rows);
  Printf.printf
    "\nDepth 1 removes the per-completion dispatch stall and batches scheduling; deeper\n\
     queues bind tasks early and start to cost load balance - the trade-off the paper\n\
     anticipates.\n";
  header "Ablation 2: power-aware scheduling on Odroid XU3 (Section V future work)";
  let config = Config.odroid_big_little ~big:4 ~little:3 in
  let rows =
    List.map
      (fun policy ->
        let r =
          Emulator.run_exn ~engine:det_engine ~policy ~config
            ~workload:(Workload.table2_workload ~rate:1.71 ())
            ()
        in
        [
          policy;
          Printf.sprintf "%.2f" (ms r.Stats.makespan_ns);
          Printf.sprintf "%.1f" (Stats.total_busy_energy_mj r);
          Printf.sprintf "%.1f" (Stats.total_energy_mj r);
        ])
      [ "FRFS"; "MET"; "POWER" ]
  in
  print_string
    (Table.render
       ~header:[ "policy"; "exec time (ms)"; "busy energy (mJ)"; "total energy (mJ)" ]
       ~rows);
  Printf.printf
    "\nPOWER steers work to LITTLE cores: active energy drops, but the longer makespan\n\
     accumulates idle power on the big cluster - with these platform constants,\n\
     race-to-idle (FRFS) wins on total energy, which is itself a useful pre-silicon\n\
     insight the framework surfaces.\n";
  header "Ablation 3: automatic kernel parallelization in the conversion toolchain";
  Printf.printf
    "The paper: \"support for automatic parallelization of independent kernels via\n\
     analysis of their runtime memory access patterns\".  Dependence edges replace the\n\
     sequential chain; scratch scalars are privatised by group-level liveness.\n\n";
  let inputs = Driver.range_detection_inputs () in
  let variants =
    [
      ("sequential chain (paper's tool)", false, false);
      ("parallel DAG", false, true);
      ("parallel DAG + FFT substitution", true, true);
    ]
  in
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1 in
  let rows =
    List.mapi
      (fun i (label, optimize, parallelize) ->
        let conv =
          Result.get_ok
            (Driver.convert ~optimize ~parallelize
               ~name:(Printf.sprintf "rd_abl%d" i)
               ~source:Driver.range_detection_source ~inputs ())
        in
        let spec = conv.Driver.spec in
        let r, insts =
          Result.get_ok
            (Emulator.run_detailed ~engine:det_engine ~config
               ~workload:(Workload.validation [ (spec, 1) ])
               ())
        in
        let best =
          int_of_float (Dssoc_apps.Store.get_f32_array insts.(0).Dssoc_runtime.Task.store "__out_ch3").(0)
        in
        [
          label;
          string_of_int (App_spec.task_count spec);
          string_of_int (App_spec.critical_path_length spec);
          Printf.sprintf "%.2f" (ms r.Stats.makespan_ns);
          (if best = Driver.range_detection_echo_delay then "ok" else "WRONG");
        ])
      variants
  in
  print_string
    (Table.render
       ~header:[ "converted application"; "nodes"; "critical path"; "makespan (ms)"; "output" ]
       ~rows);
  Printf.printf
    "\nThe two file loads and the two DFT kernels run concurrently on the 3 cores; with\n\
     FFT substitution on top, the full pipeline stacks both future-work optimisations.\n"

(* ------------------------------------------------------------------ *)
(* Engine throughput: whole-emulation repetition rate                  *)
(* ------------------------------------------------------------------ *)

let engine () =
  let module Json = Dssoc_json.Json in
  let mix () = Workload.validation (List.map (fun a -> (a, 1)) (Reference_apps.all ())) in
  (* Fig. 9-class: the four reference apps once each, across DSSoC
     configurations.  Fig. 10-class: performance mode at a fixed
     injection rate under the cheap and the expensive policy.  One
     native scenario tracks the real-domain backend of the same
     Engine_core protocol (its makespan is wall time, not simulated
     time, so only throughput is comparable across machines).  The
     compiled scenarios replay the matching virtual runs through
     Compiled_engine — the plan is compiled once outside the timing
     loop (that is the engine's intended reuse pattern), so
     emulations/s measures the specialized event loop alone. *)
  let scenarios =
    [
      ("fig9/mix/1C+0F/FRFS", `Virtual, Config.zcu102_cores_ffts ~cores:1 ~ffts:0, mix, "FRFS");
      ("fig9/mix/3C+2F/FRFS", `Virtual, Config.zcu102_cores_ffts ~cores:3 ~ffts:2, mix, "FRFS");
      ( "fig9/mix/3C+2F/FRFS/compiled",
        `Compiled,
        Config.zcu102_cores_ffts ~cores:3 ~ffts:2,
        mix,
        "FRFS" );
      ( "fig10/rate3.42/3C+2F/FRFS",
        `Virtual,
        Config.zcu102_cores_ffts ~cores:3 ~ffts:2,
        (fun () -> Workload.table2_workload ~rate:3.42 ()),
        "FRFS" );
      ( "fig10/rate3.42/3C+2F/FRFS/compiled",
        `Compiled,
        Config.zcu102_cores_ffts ~cores:3 ~ffts:2,
        (fun () -> Workload.table2_workload ~rate:3.42 ()),
        "FRFS" );
      ( "fig10/rate3.42/3C+2F/EFT",
        `Virtual,
        Config.zcu102_cores_ffts ~cores:3 ~ffts:2,
        (fun () -> Workload.table2_workload ~rate:3.42 ()),
        "EFT" );
      ( "fig10/rate3.42/3C+2F/EFT/compiled",
        `Compiled,
        Config.zcu102_cores_ffts ~cores:3 ~ffts:2,
        (fun () -> Workload.table2_workload ~rate:3.42 ()),
        "EFT" );
      ( "fig9/mix/2C+1F/FRFS/native",
        `Native,
        Config.zcu102_cores_ffts ~cores:2 ~ffts:1,
        mix,
        "FRFS" );
    ]
    (* DMA storm: both accelerators stream through the interconnect at
       once.  The ideal pair is the zero-contention baseline; the bus
       pair charges every stream through a starved 100 MB/s, 1-deep
       fabric, so emulations/s prices the fabric event machinery and
       total_fabric_stall_ns in the JSON shows the queueing it models. *)
    @ (let storm_config = Config.zcu102_cores_ffts ~cores:2 ~ffts:2 in
       let storm_bus =
         match Fabric.of_spec "bus:bw=100MB/s,fifo=1" with
         | Ok f -> f
         | Error msg -> invalid_arg msg
       in
       [
         ("storm/mix/2C+2F/FRFS/ideal", `Virtual, storm_config, mix, "FRFS");
         ( "storm/mix/2C+2F/FRFS/bus100",
           `Virtual,
           Config.with_fabric storm_bus storm_config,
           mix,
           "FRFS" );
         ( "storm/mix/2C+2F/FRFS/bus100/compiled",
           `Compiled,
           Config.with_fabric storm_bus storm_config,
           mix,
           "FRFS" );
       ])
  in
  let variant_name = function
    | `Virtual -> "virtual"
    | `Compiled -> "compiled"
    | `Native -> "native"
  in
  let measure (name, variant, config, wl, policy) =
    let once =
      match variant with
      | `Virtual ->
        fun () -> Emulator.run_exn ~engine:det_engine ~policy ~config ~workload:(wl ()) ()
      | `Native ->
        fun () ->
          Emulator.run_exn ~engine:(Emulator.native_seeded 1L) ~policy ~config
            ~workload:(wl ()) ()
      | `Compiled ->
        let module Compiled = Dssoc_runtime.Compiled_engine in
        let pol =
          match Dssoc_runtime.Scheduler.find policy with
          | Ok p -> p
          | Error msg -> invalid_arg msg
        in
        let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:pol () in
        let params =
          { Dssoc_runtime.Engine_core.seed = 1L; jitter = 0.0; reservation_depth = 0 }
        in
        fun () -> Compiled.run plan params
    in
    let sample = once () (* warm-up; also yields the per-run task count *) in
    let target_ns = 1_000_000_000 and min_runs = 3 in
    let t0 = Mclock.now_ns () in
    let runs = ref 0 in
    while !runs < min_runs || Mclock.now_ns () - t0 < target_ns do
      ignore (once ());
      incr runs
    done;
    let wall_s = float_of_int (Mclock.now_ns () - t0) /. 1e9 in
    let emu_per_s = float_of_int !runs /. wall_s in
    ( name,
      variant_name variant,
      sample,
      !runs,
      wall_s,
      emu_per_s,
      emu_per_s *. float_of_int sample.Stats.task_count )
  in
  let results = List.map measure scenarios in
  (* Tracing-overhead check: re-run the fig9 3C+2F scenario with the
     full observation bundle (ring sink + metrics, rebuilt for every
     run) and compare against the null-sink measurement above.  The
     null sink is the default everywhere else in this suite; every
     emit site hides behind a single [Obs.enabled] load, so the
     scenarios measured above must stay within 2% of a build without
     observability at all — a regression there means the guard has
     been lost. *)
  let baseline_name = "fig9/mix/3C+2F/FRFS" in
  let rate_of once =
    once () (* warm-up *);
    let target_ns = 1_000_000_000 and min_runs = 3 in
    let t0 = Mclock.now_ns () in
    let runs = ref 0 in
    while !runs < min_runs || Mclock.now_ns () - t0 < target_ns do
      once ();
      incr runs
    done;
    float_of_int !runs /. (float_of_int (Mclock.now_ns () - t0) /. 1e9)
  in
  let untraced_emu_s name =
    let _, _, _, _, _, emu_s, _ = List.find (fun (n, _, _, _, _, _, _) -> n = name) results in
    emu_s
  in
  let traced_emu_s =
    let _, _, config, wl, policy =
      List.find (fun (n, _, _, _, _) -> n = baseline_name) scenarios
    in
    (* One bundle reused across runs with [Obs.reset] — the sweep's
       usage pattern (one bundle per worker domain). *)
    let obs = Obs.make ~sink:(Obs.Sink.ring ()) ~metrics:(Obs.Metrics.create ()) () in
    rate_of (fun () ->
        Obs.reset obs;
        ignore (Emulator.run_exn ~engine:det_engine ~policy ~config ~workload:(wl ()) ~obs ()))
  in
  let baseline_emu_s = untraced_emu_s baseline_name in
  let overhead_pct =
    (baseline_emu_s -. traced_emu_s) /. baseline_emu_s *. 100.0
  in
  (* Lowered-tracing overhead on the compiled engine: replay the
     heaviest compiled scenario with a full observation bundle (ring
     sink + metrics, rebuilt per run — the sweep's usage pattern)
     against the untraced flat-array loop measured above.  CI gates on
     this number: the traced loop shares the untraced one, so tracing
     cost beyond the gate means an emit leaked outside its
     [if traced] guard. *)
  let compiled_traced_name = "fig10/rate3.42/3C+2F/EFT/compiled" in
  let compiled_baseline_emu_s, compiled_traced_emu_s =
    let _, _, config, wl, policy =
      List.find (fun (n, _, _, _, _) -> n = compiled_traced_name) scenarios
    in
    let module Compiled = Dssoc_runtime.Compiled_engine in
    let pol =
      match Dssoc_runtime.Scheduler.find policy with
      | Ok p -> p
      | Error msg -> invalid_arg msg
    in
    let plan = Compiled.compile ~config ~workload:(wl ()) ~policy:pol () in
    let params =
      { Dssoc_runtime.Engine_core.seed = 1L; jitter = 0.0; reservation_depth = 0 }
    in
    let task_count =
      List.fold_left
        (fun acc (it : Workload.item) ->
          acc + List.length it.Workload.spec.App_spec.nodes)
        0 (wl ()).Workload.items
    in
    (* Same observation setup a sweep worker uses for this point: a
       drop-free ring sized off the task count plus metrics, reused
       across runs with [Obs.reset]. *)
    let obs =
      Obs.make
        ~sink:(Obs.Sink.ring ~capacity:(max 65536 (32 * task_count)) ())
        ~metrics:(Obs.Metrics.create ()) ()
    in
    let untraced_once () = ignore (Compiled.run plan params) in
    let traced_once () =
      Obs.reset obs;
      ignore (Compiled.run ~obs plan params)
    in
    (* The overhead ratio is gated in CI, so untraced and traced runs
       alternate within one timing loop rather than being measured in
       separate windows — machine-load drift between windows would
       otherwise dominate the tracing cost being measured. *)
    untraced_once ();
    traced_once ();
    let t_untraced = ref 0 and t_traced = ref 0 and runs = ref 0 in
    let target_ns = 2_000_000_000 and min_runs = 5 in
    while !runs < min_runs || !t_untraced + !t_traced < target_ns do
      let t0 = Mclock.now_ns () in
      untraced_once ();
      let t1 = Mclock.now_ns () in
      traced_once ();
      let t2 = Mclock.now_ns () in
      t_untraced := !t_untraced + (t1 - t0);
      t_traced := !t_traced + (t2 - t1);
      incr runs
    done;
    let rate t = float_of_int !runs /. (float_of_int t /. 1e9) in
    (rate !t_untraced, rate !t_traced)
  in
  let compiled_overhead_pct =
    (compiled_baseline_emu_s -. compiled_traced_emu_s) /. compiled_baseline_emu_s *. 100.0
  in
  if !json_mode then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("experiment", Json.String "engine");
              ("code_rev", Json.String (code_rev ()));
              ( "scenarios",
                Json.List
                  (List.map
                     (fun (name, variant, (sample : Stats.report), runs, wall_s, emu_s, task_s) ->
                       Json.Obj
                         [
                           ("name", Json.String name);
                           ("engine", Json.String variant);
                           ("policy", Json.String sample.Stats.policy_name);
                           ("config", Json.String sample.Stats.config_label);
                           ("tasks_per_emulation", Json.Int sample.Stats.task_count);
                           ("simulated_makespan_ns", Json.Int sample.Stats.makespan_ns);
                           ( "total_fabric_stall_ns",
                             Json.Int sample.Stats.fabric.Stats.fabric_stall_ns );
                           ( "dma_streams",
                             Json.Int sample.Stats.fabric.Stats.dma_streams );
                           ("runs", Json.Int runs);
                           ("wall_s", Json.Float wall_s);
                           ("emulations_per_s", Json.Float emu_s);
                           ("tasks_per_s", Json.Float task_s);
                         ])
                     results) );
              ( "tracing_overhead",
                Json.Obj
                  [
                    ("scenario", Json.String baseline_name);
                    ("null_sink_emulations_per_s", Json.Float baseline_emu_s);
                    ("full_trace_emulations_per_s", Json.Float traced_emu_s);
                    ("overhead_pct", Json.Float overhead_pct);
                  ] );
              ( "compiled_tracing_overhead",
                Json.Obj
                  [
                    ("scenario", Json.String compiled_traced_name);
                    ("null_sink_emulations_per_s", Json.Float compiled_baseline_emu_s);
                    ("full_trace_emulations_per_s", Json.Float compiled_traced_emu_s);
                    ("overhead_pct", Json.Float compiled_overhead_pct);
                  ] );
            ]))
  else begin
    header
      "Engine throughput: full emulations per second (virtual jitter-0, compiled replay, one \
       native scenario)";
    print_string
      (Table.render
         ~header:
           [
             "scenario"; "engine"; "tasks/emu"; "runs"; "wall s"; "emulations/s"; "tasks/s";
             "stall ms";
           ]
         ~rows:
           (List.map
              (fun (name, variant, (sample : Stats.report), runs, wall_s, emu_s, task_s) ->
                [
                  name;
                  variant;
                  string_of_int sample.Stats.task_count;
                  string_of_int runs;
                  Printf.sprintf "%.2f" wall_s;
                  Printf.sprintf "%.1f" emu_s;
                  Printf.sprintf "%.0f" task_s;
                  Printf.sprintf "%.3f"
                    (float_of_int sample.Stats.fabric.Stats.fabric_stall_ns /. 1e6);
                ])
              results));
    Printf.printf
      "\nTracing overhead on %s: null sink %.1f emu/s,\n\
       full ring sink + metrics %.1f emu/s (%.1f%% overhead).  The table above\n\
       uses the default null sink, whose per-event cost is one Obs.enabled load.\n"
      baseline_name baseline_emu_s traced_emu_s overhead_pct;
    Printf.printf
      "\nCompiled-engine lowered tracing on %s:\n\
       untraced %.1f emu/s, full ring sink + metrics %.1f emu/s (%.1f%% overhead).\n"
      compiled_traced_name compiled_baseline_emu_s compiled_traced_emu_s
      compiled_overhead_pct;
    Printf.printf
      "\nEach run is a complete emulation (instantiation, event loop, statistics);\n\
       emulations/s is the design-space-exploration currency — points evaluated per\n\
       second per domain.  Pass --json for machine-readable output.\n"
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (one per table/figure family)";
  let open Bechamel in
  let open Toolkit in
  let signal n =
    let g = Prng.create ~seed:11L in
    let b = Cbuf.create n in
    for i = 0 to n - 1 do
      Cbuf.set b i (Prng.float g 2.0 -. 1.0) (Prng.float g 2.0 -. 1.0)
    done;
    b
  in
  let s512 = signal 512 in
  let rd = Reference_apps.range_detection () in
  let tx = Reference_apps.wifi_tx () in
  let small_cfg = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let tests =
    [
      Test.make ~name:"dsp/fft-512" (Staged.stage (fun () -> ignore (Fft.fft s512)));
      Test.make ~name:"dsp/dft-512-naive" (Staged.stage (fun () -> ignore (Dft.dft s512)));
      Test.make ~name:"engine/table1-range-detection"
        (Staged.stage (fun () -> ignore (run_validation small_cfg [ (rd, 1) ])));
      Test.make ~name:"engine/fig10-wifi-tx-burst-eft"
        (Staged.stage (fun () -> ignore (run_validation ~policy:"EFT" small_cfg [ (tx, 8) ])));
      Test.make ~name:"engine/fig11-odroid-mix"
        (Staged.stage (fun () ->
             ignore (run_validation (Config.odroid_big_little ~big:2 ~little:1) [ (rd, 2) ])));
      Test.make ~name:"compiler/cs4-parse+lower"
        (Staged.stage (fun () ->
             ignore (Dssoc_compiler.Ir.lower (Dssoc_compiler.Parser.parse_exn Driver.range_detection_source))));
      Test.make ~name:"workload/table2-trace-6.92"
        (Staged.stage (fun () -> ignore (Workload.table2_workload ~rate:6.92 ())));
    ]
  in
  let test = Test.make_grouped ~name:"dssoc" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-44s %12s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 58 '-');
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) ->
           let pretty =
             if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
             else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
             else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
             else Printf.sprintf "%.0f ns" est
           in
           Printf.printf "%-44s %12s\n" name pretty
         | _ -> Printf.printf "%-44s %12s\n" name "n/a")

(* ------------------------------------------------------------------ *)
(* Service mode: ramp to saturation                                    *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  header "Service mode: open-loop ramp to saturation (3Core+1FFT, FRFS, admission=shed)";
  let policy = Result.get_ok (Dssoc_runtime.Scheduler.find "FRFS") in
  let admission = Result.get_ok (Server.admission_of_spec "policy=shed:queue=8:max-ready=32") in
  let spec_at rate =
    {
      Server.sp_config = Config.zcu102_cores_ffts ~cores:3 ~ffts:1;
      sp_policy = policy;
      sp_seed = 1L;
      sp_jitter = 0.0;
      sp_duration_ms = 4.0;
      sp_admission = admission;
      sp_tenants =
        Result.get_ok
          (Server.tenants_of_spec
             (Printf.sprintf "load:apps=range_detection:rate=%.2f:slo=3ms" rate));
    }
  in
  (* Ramp the offered load through the saturation knee: goodput grows
     linearly while the platform keeps up, then flattens at service
     capacity and the shed column absorbs the difference. *)
  let rates = [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let rows, steady =
    List.fold_left
      (fun (rows, steady) rate ->
        let t0 = Mclock.now_ns () in
        let oc = Result.get_ok (Server.run (spec_at rate)) in
        let wall_ns = Mclock.now_ns () - t0 in
        let tr = List.hd oc.Server.oc_tenants in
        let span_ms = float_of_int oc.Server.oc_clock_ns /. 1e6 in
        let goodput = float_of_int tr.Server.tr_completed /. span_ms in
        let row =
          [
            Printf.sprintf "%.2f" rate;
            string_of_int tr.Server.tr_offered;
            string_of_int tr.Server.tr_completed;
            string_of_int tr.Server.tr_shed;
            Printf.sprintf "%.2f" goodput;
            Printf.sprintf "%.3f" tr.Server.tr_p95_ms;
            Printf.sprintf "%.1f%%"
              (100.0 *. float_of_int tr.Server.tr_slo_miss
              /. float_of_int (max 1 tr.Server.tr_completed));
          ]
        in
        let steady =
          (* steady-state service rate = best goodput seen at or past
             the knee; carry the wall time of that run for tasks/s *)
          match steady with
          | Some (g, _, _) when g >= goodput -> steady
          | _ -> Some (goodput, tr.Server.tr_completed, wall_ns)
        in
        (row :: rows, steady))
      ([], None) rates
  in
  print_string
    (Table.render
       ~header:
         [ "rate/ms"; "offered"; "completed"; "shed"; "goodput/ms"; "p95 ms"; "slo miss" ]
       ~rows:(List.rev rows));
  (match steady with
  | Some (goodput, completed, wall_ns) ->
    let tasks =
      completed * App_spec.task_count (Reference_apps.range_detection ())
    in
    Printf.printf
      "\nsteady state: %.2f jobs/ms emulated goodput at saturation; the saturating run \
       executed %d tasks in %.2f s wall = %.0f tasks/s\n"
      goodput tasks
      (float_of_int wall_ns /. 1e9)
      (float_of_int tasks /. (float_of_int wall_ns /. 1e9))
  | None -> ());
  Printf.printf
    "Past the knee the shed column grows while goodput and p95 stay flat: admission \
     control keeps the resident server live under overload.\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig11", fig11);
    ("sweep", sweep);
    ("cs4", cs4);
    ("ablation", ablation);
    ("engine", engine);
    ("serve", serve_bench);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let requested = List.filter (fun a -> a <> "--json") args in
  json_mode := List.length requested < List.length args;
  let to_run =
    if requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (available: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 1)
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run
