(* Quickstart: define a new DAG application against the public API,
   emulate it on a hypothetical DSSoC configuration, and read back both
   the performance estimates and the functional results.

   The application is a tiny two-stage spectral analyzer:

       GEN (synthesize a noisy two-tone signal)
        |
       FFT (CPU or FFT-accelerator)
        |
       PEAK (find the dominant tone)

   Run with:  dune exec examples/quickstart.exe *)

module Cbuf = Dssoc_dsp.Cbuf
module Fft = Dssoc_dsp.Fft
module Radar = Dssoc_dsp.Radar
module Store = Dssoc_apps.Store
module App_spec = Dssoc_apps.App_spec
module Kernels = Dssoc_apps.Kernels
module Workload = Dssoc_apps.Workload
module Config = Dssoc_soc.Config
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Task = Dssoc_runtime.Task

let n = 256
let tone_bin = 42

(* 1. Implement the kernels.  A kernel gets the instance's variable
   store plus the node's argument list, and communicates only through
   the store (which is what makes accelerator DMA sizes derivable). *)
let register_kernels () =
  Kernels.register_object "spectral.so"
    [
      ( "spectral_GEN",
        fun store _args ->
          let signal = Cbuf.create n in
          for t = 0 to n - 1 do
            let ang k = 2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
            Cbuf.set signal t
              ((0.3 *. cos (ang 7)) +. cos (ang tone_bin))
              ((0.3 *. sin (ang 7)) +. sin (ang tone_bin))
          done;
          Store.set_cbuf store "signal" signal );
      ( "spectral_FFT_CPU",
        fun store _args -> Store.set_cbuf store "spectrum" (Fft.fft (Store.get_cbuf store "signal")) );
      ( "spectral_PEAK",
        fun store _args ->
          let bin, mag = Radar.peak (Store.get_cbuf store "spectrum") in
          Store.set_i32 store "peak_bin" bin;
          Store.set_f32 store "peak_mag" mag );
    ];
  (* The accelerator entry points at a different "shared object", just
     like the fft_accel.so reference in Listing 1 of the paper. *)
  Kernels.register_object "fft_accel.so"
    [
      ( "spectral_FFT_ACCEL",
        fun store _args -> Store.set_cbuf store "spectrum" (Fft.fft (Store.get_cbuf store "signal")) );
    ]

(* 2. Describe the application as a DAG (this is the programmatic
   equivalent of the JSON in Listing 1; App_spec.to_file would emit
   that JSON). *)
let spectral_app () =
  register_kernels ();
  let cbytes k = 8 * k in
  let ptr alloc : Store.var_spec = { bytes = 8; is_ptr = true; ptr_alloc_bytes = alloc; init = [] } in
  let i32 v : Store.var_spec =
    { bytes = 4; is_ptr = false; ptr_alloc_bytes = 0;
      init = [ v land 0xFF; (v lsr 8) land 0xFF; (v lsr 16) land 0xFF; (v lsr 24) land 0xFF ] }
  in
  let cpu runfunc : App_spec.platform_entry =
    { platform = "cpu"; runfunc; shared_object = None; cost_us = None }
  in
  let node ?(kernel = "generic") ?(size = 1) ?accel_runfunc name args preds runfunc : App_spec.node =
    {
      App_spec.node_name = name;
      arguments = args;
      predecessors = preds;
      successors = [];
      platforms =
        (cpu runfunc
        ::
        (match accel_runfunc with
        | None -> []
        | Some rf ->
          [ { App_spec.platform = "fft"; runfunc = rf; shared_object = Some "fft_accel.so"; cost_us = None } ]));
      kernel_class = kernel;
      size;
      bytes_in = (if accel_runfunc <> None then cbytes size else 0);
      bytes_out = (if accel_runfunc <> None then cbytes size else 0);
    }
  in
  App_spec.of_edges ~app_name:"spectral" ~shared_object:"spectral.so"
    ~variables:
      [ ("signal", ptr (cbytes n)); ("spectrum", ptr (cbytes n)); ("peak_bin", i32 0); ("peak_mag", i32 0) ]
    ~nodes:
      [
        node "GEN" ~kernel:"lfm_gen" ~size:n [ "signal" ] [] "spectral_GEN";
        node "FFT" ~kernel:"fft" ~size:n ~accel_runfunc:"spectral_FFT_ACCEL" [ "signal"; "spectrum" ]
          [ "GEN" ] "spectral_FFT_CPU";
        node "PEAK" ~kernel:"peak_max" ~size:n [ "spectrum"; "peak_bin"; "peak_mag" ] [ "FFT" ] "spectral_PEAK";
      ]

let () =
  let app = spectral_app () in
  (* 3. Optionally persist / reload the Listing-1 JSON form. *)
  let json = App_spec.to_json app in
  Format.printf "--- JSON head of the generated application ---@.%s...@.@."
    (String.sub (Dssoc_json.Json.to_string json) 0 220);
  (* 4. Build a hypothetical DSSoC (2 A53 cores + 1 PL FFT on ZCU102)
     and run three instances in validation mode. *)
  let config = Config.zcu102_cores_ffts ~cores:2 ~ffts:1 in
  let workload = Workload.validation [ (app, 3) ] in
  let report, instances =
    Result.get_ok
      (Emulator.run_detailed ~engine:(Emulator.virtual_seeded ~jitter:0.0 42L) ~config ~workload ())
  in
  Format.printf "%a@." Stats.pp_summary report;
  Array.iter
    (fun inst ->
      Format.printf "instance %d: dominant tone at bin %d (expected %d)@." inst.Task.inst_id
        (Store.get_i32 inst.Task.store "peak_bin")
        tone_bin)
    instances;
  (* 5. The same workload runs natively on OCaml domains. *)
  let native = Emulator.run_exn ~engine:Emulator.native_default ~config ~workload () in
  Format.printf "@.native run on this machine: %d tasks in %.3f ms wall time@."
    (List.length native.Stats.records)
    (float_of_int native.Stats.makespan_ns /. 1e6)
