(* Case Study 1 (validation mode): sweep hypothetical ZCU102 DSSoC
   configurations for a mixed SDR workload and report execution time
   plus PE utilisation — the experiment behind Fig. 9 of the paper.

   Built on the parallel sweep engine (Dssoc_explore): the grid is
   sharded across worker domains, and the result table is identical
   for any worker count.

   Run with:  dune exec examples/design_space.exe [iterations] [jobs] *)

module Quantile = Dssoc_stats.Quantile
module Table = Dssoc_stats.Table
module Grid = Dssoc_explore.Grid
module Sweep = Dssoc_explore.Sweep
module Presets = Dssoc_explore.Presets
module Pool = Dssoc_explore.Pool

let () =
  let iterations =
    if Array.length Sys.argv > 1 then max 2 (int_of_string Sys.argv.(1)) else 20
  in
  let jobs =
    if Array.length Sys.argv > 2 then max 1 (int_of_string Sys.argv.(2)) else Pool.default_jobs ()
  in
  Format.printf
    "Validation-mode design-space sweep (1x pulse_doppler + range_detection + wifi_tx + wifi_rx,@.\
     FRFS, %d jittered replicates per configuration, %d worker domain(s))@.@."
    iterations jobs;
  (* Jittered replicates for the boxplots... *)
  let grid = Presets.fig9 ~replicates:iterations ~base_seed:1000L () in
  let table, elapsed_ns = Sweep.run_timed ~jobs grid in
  let seconds = float_of_int elapsed_ns /. 1e9 in
  (* ...and one deterministic run per configuration for utilisation. *)
  let det = Sweep.run ~jobs (Presets.fig9 ~replicates:1 ~jitter:0.0 ()) in
  let results =
    List.map
      (fun s ->
        let util =
          (List.find (fun (r : Sweep.row) -> r.Sweep.config = s.Sweep.s_config) det.Sweep.rows)
            .Sweep.util_by_kind
        in
        (s.Sweep.s_config, s.Sweep.makespan_ms, util))
      (Sweep.summarize table)
  in
  let scale_hi = List.fold_left (fun acc (_, b, _) -> Float.max acc b.Quantile.hi) 0.0 results in
  Format.printf "Execution time (ms) — box over %d replicates, scale 0..%.1f ms:@." iterations scale_hi;
  List.iter
    (fun (label, b, _) ->
      Format.printf "  %-12s %s  med %6.2f [%6.2f..%6.2f]@." label
        (Table.box_row ~width:46 ~scale_hi ~lo:b.Quantile.lo ~q1:b.Quantile.q1 ~med:b.Quantile.med
           ~q3:b.Quantile.q3 ~hi:b.Quantile.hi ())
        b.Quantile.med b.Quantile.lo b.Quantile.hi)
    results;
  Format.printf "@.Average PE utilisation per kind:@.";
  List.iter
    (fun (label, _, util) ->
      Format.printf "  %-12s" label;
      List.iter (fun (k, u) -> Format.printf "  %s %5.1f%%" k (100.0 *. u)) util;
      Format.printf "@.")
    results;
  Format.printf "@.%d points evaluated in %.3f s on %d domain(s).@." (Grid.size grid) seconds jobs;
  Format.printf
    "@.Reading the sweep (cf. Fig. 9): CPU cores buy more than FFT accelerators at this FFT@.\
     size (DMA overhead), 2Core+2FFT barely improves on 2Core+1FFT because both accelerator@.\
     manager threads share the one remaining host core, and 3Core+0FFT has the best raw time@.\
     while 2Core+1FFT is the area-efficient alternative.@."
