module Store = Dssoc_apps.Store
module App_spec = Dssoc_apps.App_spec
module Kernels = Dssoc_apps.Kernels
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Cbuf = Dssoc_dsp.Cbuf
module Prng = Dssoc_util.Prng

let qtest = QCheck_alcotest.to_alcotest

(* ---------------------- Store ---------------------- *)

let test_store_scalars () =
  let store =
    Store.create
      [
        ("n", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [ 0; 1; 0; 0 ] });
        ("f", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] });
      ]
  in
  (* Listing 1: n_samples 256 encoded little-endian as [0,1,0,0]. *)
  Alcotest.(check int) "little-endian init" 256 (Store.get_i32 store "n");
  Store.set_i32 store "n" (-7);
  Alcotest.(check int) "i32 roundtrip" (-7) (Store.get_i32 store "n");
  Store.set_f32 store "f" 2.5;
  Alcotest.(check (float 1e-6)) "f32 roundtrip" 2.5 (Store.get_f32 store "f")

let test_store_blocks () =
  let store =
    Store.create [ ("buf", { Store.bytes = 8; is_ptr = true; ptr_alloc_bytes = 64; init = [] }) ]
  in
  Alcotest.(check int) "payload bytes" 64 (Store.payload_bytes store "buf");
  let a = Array.init 16 (fun i -> float_of_int i /. 4.0) in
  Store.set_f32_array store "buf" a;
  Alcotest.(check bool) "f32 array roundtrip" true (Store.get_f32_array store "buf" = a);
  let ints = Array.init 16 (fun i -> i * 3) in
  Store.set_i32_array store "buf" ints;
  Alcotest.(check bool) "i32 array roundtrip" true (Store.get_i32_array store "buf" = ints)

let test_store_cbuf () =
  let store =
    Store.create [ ("c", { Store.bytes = 8; is_ptr = true; ptr_alloc_bytes = 32; init = [] }) ]
  in
  let buf = Cbuf.of_complex_list [ (1.0, 2.0); (3.0, 4.0); (5.0, 6.0); (7.0, 8.0) ] in
  Store.set_cbuf store "c" buf;
  Alcotest.(check bool) "cbuf roundtrip" true (Cbuf.max_abs_diff buf (Store.get_cbuf store "c") = 0.0);
  let slice = Store.get_cbuf_slice store "c" ~off:1 ~len:2 in
  Alcotest.(check bool) "slice read" true (Cbuf.to_complex_list slice = [ (3.0, 4.0); (5.0, 6.0) ]);
  Store.set_cbuf_slice store "c" ~off:3 (Cbuf.of_complex_list [ (9.0, 9.0) ]);
  Alcotest.(check bool) "slice write" true (Cbuf.get (Store.get_cbuf store "c") 3 = (9.0, 9.0))

let test_store_slice_bounds () =
  let store =
    Store.create [ ("c", { Store.bytes = 8; is_ptr = true; ptr_alloc_bytes = 32; init = [] }) ]
  in
  Alcotest.(check bool) "oob slice" true
    (try
       ignore (Store.get_cbuf_slice store "c" ~off:3 ~len:2);
       false
     with Invalid_argument _ -> true)

let test_store_bits () =
  let store =
    Store.create [ ("b", { Store.bytes = 8; is_ptr = true; ptr_alloc_bytes = 8; init = [ 1; 0; 1 ] }) ]
  in
  let bits = Store.get_bits store "b" in
  Alcotest.(check bool) "init bits" true
    (Array.to_list bits = [ true; false; true; false; false; false; false; false ]);
  Store.set_bits store "b" (Array.make 8 true);
  Alcotest.(check bool) "bits roundtrip" true (Array.for_all Fun.id (Store.get_bits store "b"))

let test_store_copy_independent () =
  let store =
    Store.create [ ("n", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] }) ]
  in
  Store.set_i32 store "n" 1;
  let copy = Store.copy store in
  Store.set_i32 store "n" 2;
  Alcotest.(check int) "copy unaffected" 1 (Store.get_i32 copy "n")

let test_store_duplicate () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore
         (Store.create
            [
              ("x", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] });
              ("x", { Store.bytes = 4; is_ptr = false; ptr_alloc_bytes = 0; init = [] });
            ]);
       false
     with Invalid_argument _ -> true)

(* ---------------------- App_spec ---------------------- *)

let simple_node ?(preds = []) ?(args = []) name : App_spec.node =
  {
    App_spec.node_name = name;
    arguments = args;
    predecessors = preds;
    successors = [];
    platforms = [ { App_spec.platform = "cpu"; runfunc = "f"; shared_object = None; cost_us = None } ];
    kernel_class = "generic";
    size = 1;
    bytes_in = 0;
    bytes_out = 0;
  }

let test_of_edges_builds_successors () =
  let spec =
    App_spec.of_edges ~app_name:"t" ~shared_object:"t.so" ~variables:[]
      ~nodes:[ simple_node "a"; simple_node "b" ~preds:[ "a" ]; simple_node "c" ~preds:[ "a"; "b" ] ]
  in
  Alcotest.(check (list string)) "a successors" [ "b"; "c" ] (App_spec.node spec "a").App_spec.successors;
  Alcotest.(check (list string)) "entries" [ "a" ]
    (List.map (fun n -> n.App_spec.node_name) (App_spec.entry_nodes spec));
  Alcotest.(check int) "critical path" 3 (App_spec.critical_path_length spec);
  Alcotest.(check (list string)) "topological order" [ "a"; "b"; "c" ]
    (List.map (fun n -> n.App_spec.node_name) (App_spec.topological_order spec))

let test_validate_cycle () =
  let nodes =
    [
      { (simple_node "a" ~preds:[ "b" ]) with App_spec.successors = [ "b" ] };
      { (simple_node "b" ~preds:[ "a" ]) with App_spec.successors = [ "a" ] };
    ]
  in
  Alcotest.(check bool) "cycle rejected" true
    (Result.is_error (App_spec.validate { App_spec.app_name = "t"; shared_object = "t.so"; variables = []; nodes }))

let test_validate_unknown_pred () =
  Alcotest.(check bool) "unknown predecessor" true
    (try
       ignore
         (App_spec.of_edges ~app_name:"t" ~shared_object:"t.so" ~variables:[]
            ~nodes:[ simple_node "a" ~preds:[ "ghost" ] ]);
       false
     with Invalid_argument _ -> true)

let test_validate_unknown_var () =
  Alcotest.(check bool) "unknown variable" true
    (try
       ignore
         (App_spec.of_edges ~app_name:"t" ~shared_object:"t.so" ~variables:[]
            ~nodes:[ simple_node "a" ~args:[ "missing" ] ]);
       false
     with Invalid_argument _ -> true)

let test_validate_inconsistent_links () =
  (* successors listed without the matching predecessor entry *)
  let nodes = [ { (simple_node "a") with App_spec.successors = [ "b" ] }; simple_node "b" ] in
  Alcotest.(check bool) "inconsistent links rejected" true
    (Result.is_error
       (App_spec.validate { App_spec.app_name = "t"; shared_object = "t.so"; variables = []; nodes }))

let test_validate_no_platform () =
  let nodes = [ { (simple_node "a") with App_spec.platforms = [] } ] in
  Alcotest.(check bool) "no platforms rejected" true
    (Result.is_error
       (App_spec.validate { App_spec.app_name = "t"; shared_object = "t.so"; variables = []; nodes }))

(* Rejections must name the offending node, not just fail: a 20-node
   JSON application with one typo is undebuggable otherwise. *)
let check_validate_message ~name ~needle nodes =
  match App_spec.validate { App_spec.app_name = "t"; shared_object = "t.so"; variables = []; nodes } with
  | Ok _ -> Alcotest.failf "%s: expected validation to reject the spec" name
  | Error msg ->
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      nl = 0 || go 0
    in
    if not (contains needle msg) then
      Alcotest.failf "%s: error %S does not mention %S" name msg needle

let test_validate_messages () =
  check_validate_message ~name:"unknown predecessor"
    ~needle:{|node "a" lists unknown predecessor "ghost"|}
    [ simple_node "a" ~preds:[ "ghost" ] ];
  check_validate_message ~name:"unknown successor"
    ~needle:{|node "a" lists unknown successor "ghost"|}
    [ { (simple_node "a") with App_spec.successors = [ "ghost" ] } ];
  check_validate_message ~name:"empty platforms"
    ~needle:{|node "b" has no platform entries|}
    [ simple_node "a"; { (simple_node "b") with App_spec.platforms = [] } ];
  check_validate_message ~name:"self-loop"
    ~needle:{|node "a" depends on itself|}
    [ { (simple_node "a" ~preds:[ "a" ]) with App_spec.successors = [ "a" ] } ]

let test_json_roundtrip_all_reference_apps () =
  List.iter
    (fun spec ->
      let json = App_spec.to_json spec in
      match App_spec.of_json json with
      | Error msg -> Alcotest.failf "%s does not roundtrip: %s" spec.App_spec.app_name msg
      | Ok spec' ->
        Alcotest.(check bool)
          (spec.App_spec.app_name ^ " roundtrips")
          true (spec = spec'))
    [ Reference_apps.range_detection (); Reference_apps.wifi_tx (); Reference_apps.wifi_rx () ]

let test_json_file_roundtrip () =
  let spec = Reference_apps.range_detection () in
  let path = Filename.temp_file "rd" ".json" in
  App_spec.to_file path spec;
  (match App_spec.of_file path with
  | Ok spec' -> Alcotest.(check bool) "file roundtrip" true (spec = spec')
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* ---------------------- Reference apps ---------------------- *)

let test_task_counts_match_table1 () =
  Alcotest.(check int) "range detection" 6 (App_spec.task_count (Reference_apps.range_detection ()));
  Alcotest.(check int) "pulse doppler" 770 (App_spec.task_count (Reference_apps.pulse_doppler ()));
  Alcotest.(check int) "wifi tx" 7 (App_spec.task_count (Reference_apps.wifi_tx ()));
  Alcotest.(check int) "wifi rx" 9 (App_spec.task_count (Reference_apps.wifi_rx ()))

let test_by_name () =
  Alcotest.(check bool) "known" true (Result.is_ok (Reference_apps.by_name "wifi_tx"));
  Alcotest.(check bool) "unknown" true (Result.is_error (Reference_apps.by_name "nope"))

let test_kernels_registered () =
  Reference_apps.ensure_kernels_registered ();
  List.iter
    (fun obj ->
      Alcotest.(check bool) (obj ^ " registered") true (List.mem obj (Kernels.objects ())))
    [ "range_detection.so"; "pulse_doppler.so"; "wifi_tx.so"; "wifi_rx.so"; "fft_accel.so" ];
  Alcotest.(check bool) "accel object holds RD FFT" true
    (List.mem "range_detect_FFT_0_ACCEL" (Kernels.symbols "fft_accel.so"))

let test_kernel_lookup_errors () =
  Alcotest.(check bool) "unknown object" true
    (Result.is_error (Kernels.lookup ~shared_object:"missing.so" ~symbol:"f"));
  Alcotest.(check bool) "unknown symbol" true
    (Result.is_error (Kernels.lookup ~shared_object:"wifi_tx.so" ~symbol:"missing"))

let run_app_sequentially spec =
  (* Execute a spec's nodes in topological order on a fresh store,
     always using the first (CPU) platform entry. *)
  let store = Store.create spec.App_spec.variables in
  List.iter
    (fun (node : App_spec.node) ->
      let entry = List.hd node.App_spec.platforms in
      let kernel =
        match Kernels.resolve ~app:spec ~node ~platform:entry with
        | Ok k -> k
        | Error msg -> Alcotest.fail msg
      in
      kernel store node.App_spec.arguments)
    (App_spec.topological_order spec);
  store

let test_range_detection_functional () =
  let store = run_app_sequentially (Reference_apps.range_detection ()) in
  Alcotest.(check int) "lag = echo delay" Reference_apps.Truth.rd_echo_delay
    (Store.get_i32 store "lag");
  Alcotest.(check bool) "peak magnitude positive" true (Store.get_f32 store "max_corr" > 0.0)

let test_wifi_loopback_functional () =
  let store = run_app_sequentially (Reference_apps.wifi_rx ()) in
  Alcotest.(check int) "crc ok" 1 (Store.get_i32 store "crc_ok");
  let payload = Array.sub (Store.get_bits store "payload_out") 0 64 in
  Alcotest.(check bool) "payload recovered" true (payload = Reference_apps.Truth.wifi_payload)

let test_pulse_doppler_functional () =
  let store = run_app_sequentially (Reference_apps.pulse_doppler ()) in
  Alcotest.(check int) "range bin" Reference_apps.Truth.pd_range_bin (Store.get_i32 store "range_bin");
  Alcotest.(check int) "doppler bin" Reference_apps.Truth.pd_doppler_bin
    (Store.get_i32 store "doppler_bin");
  Alcotest.(check bool) "velocity" true
    (Float.abs (Store.get_f32 store "velocity" -. Reference_apps.Truth.pd_velocity) < 1.0)

(* ---------------------- Workload ---------------------- *)

let test_validation_mode () =
  let rd = Reference_apps.range_detection () in
  let wl = Workload.validation [ (rd, 3) ] in
  Alcotest.(check int) "3 instances" 3 (Workload.job_count wl);
  List.iter
    (fun (item : Workload.item) ->
      Alcotest.(check int) "arrival 0" 0 item.Workload.arrival_ns)
    wl.Workload.items;
  Alcotest.(check (list int)) "instance ids" [ 0; 1; 2 ]
    (List.map (fun (i : Workload.item) -> i.Workload.instance) wl.Workload.items)

let test_performance_mode_deterministic () =
  let rd = Reference_apps.range_detection () in
  let prng = Prng.create ~seed:1L in
  let wl =
    Workload.performance ~prng ~window_ns:10_000_000
      [ { Workload.app = rd; period_ns = 1_000_000; probability = 1.0 } ]
  in
  Alcotest.(check int) "10 periodic arrivals" 10 (Workload.job_count wl);
  let arrivals = List.map (fun (i : Workload.item) -> i.Workload.arrival_ns) wl.Workload.items in
  Alcotest.(check (list int)) "arrival times" (List.init 10 (fun i -> i * 1_000_000)) arrivals

let test_performance_mode_probabilistic () =
  let rd = Reference_apps.range_detection () in
  let prng = Prng.create ~seed:1L in
  let wl =
    Workload.performance ~prng ~window_ns:100_000_000
      [ { Workload.app = rd; period_ns = 100_000; probability = 0.5 } ]
  in
  let n = Workload.job_count wl in
  Alcotest.(check bool) "roughly half injected" true (n > 380 && n < 620)

let test_table2_counts () =
  List.iter
    (fun rate ->
      let wl = Workload.table2_workload ~rate () in
      let expected = List.sort compare (Workload.table2_counts rate) in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counts at %.2f" rate)
        expected (Workload.count_by_app wl);
      let measured = Workload.injection_rate_per_ms wl in
      Alcotest.(check bool)
        (Printf.sprintf "rate %.2f within 2%%" rate)
        true
        (Float.abs (measured -. rate) /. rate < 0.02))
    Workload.table2_rates

let test_workload_validation_errors () =
  let rd = Reference_apps.range_detection () in
  Alcotest.(check bool) "negative count" true
    (try
       ignore (Workload.validation [ (rd, -1) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad window" true
    (try
       ignore (Workload.performance ~prng:(Prng.create ~seed:1L) ~window_ns:0 []);
       false
     with Invalid_argument _ -> true)

let prop_performance_sorted =
  QCheck.Test.make ~name:"performance arrivals sorted" ~count:50
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, periods) ->
      let rd = Reference_apps.range_detection () in
      let prng = Prng.create ~seed:(Int64.of_int seed) in
      let wl =
        Workload.performance ~prng ~window_ns:1_000_000
          [ { Workload.app = rd; period_ns = 1_000_000 / periods; probability = 0.7 } ]
      in
      let arr = List.map (fun (i : Workload.item) -> i.Workload.arrival_ns) wl.Workload.items in
      List.sort compare arr = arr)

let () =
  Alcotest.run "apps"
    [
      ( "store",
        [
          Alcotest.test_case "scalars" `Quick test_store_scalars;
          Alcotest.test_case "blocks" `Quick test_store_blocks;
          Alcotest.test_case "cbuf + slices" `Quick test_store_cbuf;
          Alcotest.test_case "slice bounds" `Quick test_store_slice_bounds;
          Alcotest.test_case "bits" `Quick test_store_bits;
          Alcotest.test_case "copy independence" `Quick test_store_copy_independent;
          Alcotest.test_case "duplicate names" `Quick test_store_duplicate;
        ] );
      ( "app_spec",
        [
          Alcotest.test_case "of_edges successors" `Quick test_of_edges_builds_successors;
          Alcotest.test_case "cycle" `Quick test_validate_cycle;
          Alcotest.test_case "unknown pred" `Quick test_validate_unknown_pred;
          Alcotest.test_case "unknown var" `Quick test_validate_unknown_var;
          Alcotest.test_case "inconsistent links" `Quick test_validate_inconsistent_links;
          Alcotest.test_case "no platforms" `Quick test_validate_no_platform;
          Alcotest.test_case "rejection messages name the node" `Quick test_validate_messages;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip_all_reference_apps;
          Alcotest.test_case "file roundtrip" `Quick test_json_file_roundtrip;
        ] );
      ( "reference_apps",
        [
          Alcotest.test_case "Table I task counts" `Quick test_task_counts_match_table1;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "kernels registered" `Quick test_kernels_registered;
          Alcotest.test_case "kernel lookup errors" `Quick test_kernel_lookup_errors;
          Alcotest.test_case "range detection recovers echo" `Quick test_range_detection_functional;
          Alcotest.test_case "wifi loopback decodes payload" `Quick test_wifi_loopback_functional;
          Alcotest.test_case "pulse doppler recovers target" `Slow test_pulse_doppler_functional;
        ] );
      ( "workload",
        [
          Alcotest.test_case "validation mode" `Quick test_validation_mode;
          Alcotest.test_case "performance deterministic" `Quick test_performance_mode_deterministic;
          Alcotest.test_case "performance probabilistic" `Quick test_performance_mode_probabilistic;
          Alcotest.test_case "Table II counts" `Quick test_table2_counts;
          Alcotest.test_case "input validation" `Quick test_workload_validation_errors;
          qtest prop_performance_sorted;
        ] );
    ]
