module Dma = Dssoc_soc.Dma
module Pe = Dssoc_soc.Pe
module Host = Dssoc_soc.Host
module Config = Dssoc_soc.Config
module Cost_model = Dssoc_soc.Cost_model

let qtest = QCheck_alcotest.to_alcotest

(* ---------------------- DMA ---------------------- *)

let test_dma_pricing () =
  let dma = Dma.make ~latency_ns:1000 ~bandwidth_mb_s:100.0 in
  (* 100 MB/s = 100 bytes/us: 1000 bytes -> 10 us + 1 us latency. *)
  Alcotest.(check int) "1000 bytes" 11_000 (Dma.transfer_ns dma ~bytes:1000);
  Alcotest.(check int) "zero bytes pays latency" 1_000 (Dma.transfer_ns dma ~bytes:0);
  Alcotest.(check int) "round trip" 22_000 (Dma.round_trip_ns dma ~bytes_in:1000 ~bytes_out:1000)

let test_dma_validation () =
  Alcotest.check_raises "neg latency" (Invalid_argument "Dma.make: negative latency") (fun () ->
      ignore (Dma.make ~latency_ns:(-1) ~bandwidth_mb_s:1.0));
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Dma.make: bandwidth must be positive")
    (fun () -> ignore (Dma.make ~latency_ns:0 ~bandwidth_mb_s:0.0))

(* transfer_ns must refuse to return a wrapped-negative duration: the
   float duration of a huge transfer at low bandwidth exceeds max_int,
   and int_of_float on such a value is undefined on amd64. *)
let test_dma_transfer_boundaries () =
  let slow = Dma.make ~latency_ns:1000 ~bandwidth_mb_s:0.001 in
  Alcotest.check_raises "overflowing product"
    (Invalid_argument "Dma.transfer_ns: duration overflows") (fun () ->
      ignore (Dma.transfer_ns slow ~bytes:max_int));
  Alcotest.check_raises "negative size" (Invalid_argument "Dma.transfer_ns: negative size")
    (fun () -> ignore (Dma.transfer_ns slow ~bytes:(-1)));
  (* Just inside the guard: the largest duration at 1 MB/s that still
     fits must come back positive, not wrapped (the float product is
     rounded, so only the sign and scale are exact at this magnitude). *)
  let unit = Dma.make ~latency_ns:7 ~bandwidth_mb_s:1.0 in
  let big = (max_int - 7) / 1000 - 1 in
  let near_max = Dma.transfer_ns unit ~bytes:big in
  Alcotest.(check bool) "near-max transfer stays positive" true (near_max > big);
  Alcotest.check_raises "twice the representable duration overflows"
    (Invalid_argument "Dma.transfer_ns: duration overflows") (fun () ->
      ignore (Dma.transfer_ns unit ~bytes:(max_int / 500)))

let prop_dma_never_negative =
  QCheck.Test.make ~name:"transfer time is positive or raises, never wraps" ~count:300
    QCheck.(pair (int_range 0 max_int) (float_range 0.001 4000.0))
    (fun (bytes, bw) ->
      let dma = Dma.make ~latency_ns:100 ~bandwidth_mb_s:bw in
      match Dma.transfer_ns dma ~bytes with
      | ns -> ns >= 100
      | exception Invalid_argument _ -> true)

let prop_dma_monotone =
  QCheck.Test.make ~name:"transfer time monotone in size" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (a, b) ->
      let dma = Dma.make ~latency_ns:500 ~bandwidth_mb_s:400.0 in
      let ta = Dma.transfer_ns dma ~bytes:(min a b) and tb = Dma.transfer_ns dma ~bytes:(max a b) in
      ta <= tb)

(* ---------------------- Cost model ---------------------- *)

let test_cpu_cost_scaling () =
  let cost cls = Cost_model.cpu_cost_ns ~kernel:"fft" ~n:512 cls in
  let a53 = cost Pe.a53 in
  let big = cost Pe.a15_big in
  Alcotest.(check bool) "big core is faster" true (big < a53);
  Alcotest.(check bool) "factor ~2.6" true
    (Float.abs ((float_of_int a53 /. float_of_int big) -. Pe.a15_big.Pe.perf_factor) < 0.05)

let test_unknown_kernel () =
  Alcotest.(check bool) "unknown kernel raises" true
    (try
       ignore (Cost_model.cpu_cost_ns ~kernel:"no_such_kernel" ~n:1 Pe.a53);
       false
     with Invalid_argument _ -> true)

let test_register_kernel () =
  Cost_model.register "test_kernel_xyz" { Cost_model.base_ns = 100.0; lin_ns = 1.0; nlogn_ns = 0.0; quad_ns = 0.0 };
  Alcotest.(check int) "custom profile" 1100 (Cost_model.cpu_cost_ns ~kernel:"test_kernel_xyz" ~n:1000 Pe.a53);
  Alcotest.(check bool) "listed" true (List.mem "test_kernel_xyz" (Cost_model.known_kernels ()))

let test_fft128_accel_slower_than_cpu () =
  (* The central Fig. 9 / Case Study 1 calibration fact. *)
  let cpu = Cost_model.cpu_cost_ns ~kernel:"fft" ~n:128 Pe.a53 in
  let accel = Cost_model.accel_cost_ns ~bytes_in:1024 ~bytes_out:1024 ~n:128 Pe.zynq_fft in
  Alcotest.(check bool) "128-pt FFT loses on the accelerator" true (accel > cpu)

let test_fft512_accel_faster_than_cpu () =
  let cpu = Cost_model.cpu_cost_ns ~kernel:"fft" ~n:512 Pe.a53 in
  let accel = Cost_model.accel_cost_ns ~bytes_in:4096 ~bytes_out:4096 ~n:512 Pe.zynq_fft in
  Alcotest.(check bool) "512-pt FFT wins on the accelerator" true (accel < cpu)

let test_accel_phases_sum () =
  let i, c, o = Cost_model.accel_phases_ns ~bytes_in:1024 ~bytes_out:2048 ~n:128 Pe.zynq_fft in
  Alcotest.(check int) "phases sum to total"
    (Cost_model.accel_cost_ns ~bytes_in:1024 ~bytes_out:2048 ~n:128 Pe.zynq_fft)
    (i + c + o);
  Alcotest.(check bool) "larger output transfer" true (o > i)

let test_accel_chunking () =
  (* Transfers beyond local memory are chunked, paying latency per chunk. *)
  let small = Cost_model.accel_cost_ns ~bytes_in:32_768 ~bytes_out:0 ~n:1 Pe.zynq_fft in
  let large = Cost_model.accel_cost_ns ~bytes_in:65_536 ~bytes_out:0 ~n:1 Pe.zynq_fft in
  let single_latency = Pe.zynq_fft.Pe.dma.Dma.latency_ns in
  Alcotest.(check bool) "two chunks pay two latencies" true
    (large - (2 * (small - 0)) >= -single_latency)

let test_substitution_factors () =
  (* Case Study 4 calibration: naive DFT-512 vs FFTW-like vs accel. *)
  let naive = Cost_model.cpu_cost_ns ~kernel:"dft_naive" ~n:512 Pe.a53 in
  let fftw = Cost_model.cpu_cost_ns ~kernel:"fft_lib" ~n:512 Pe.a53 in
  let accel = Cost_model.accel_cost_ns ~bytes_in:4096 ~bytes_out:4096 ~n:512 Pe.zynq_fft in
  let r1 = float_of_int naive /. float_of_int fftw in
  let r2 = float_of_int naive /. float_of_int accel in
  Alcotest.(check bool) "FFTW speedup ~102x" true (r1 > 85.0 && r1 < 120.0);
  Alcotest.(check bool) "accel speedup ~94x" true (r2 > 80.0 && r2 < 110.0);
  Alcotest.(check bool) "FFTW slightly beats accel" true (r1 > r2)

(* ---------------------- Hosts ---------------------- *)

let test_host_shapes () =
  Alcotest.(check int) "zcu102 pool" 3 (Host.pool_size Host.zcu102);
  Alcotest.(check int) "zcu102 accel slots" 2 (List.length Host.zcu102.Host.accel_slots);
  Alcotest.(check int) "odroid pool" 7 (Host.pool_size Host.odroid_xu3);
  Alcotest.(check string) "odroid overlay is LITTLE" "little"
    Host.odroid_xu3.Host.overlay.Host.core_class.Pe.cpu_name

(* ---------------------- Config / placement ---------------------- *)

let test_config_labels () =
  Alcotest.(check string) "zcu102 label" "3Core+2FFT"
    (Config.zcu102_cores_ffts ~cores:3 ~ffts:2).Config.label;
  Alcotest.(check string) "cpu-only keeps 0FFT" "2Core+0FFT"
    (Config.zcu102_cores_ffts ~cores:2 ~ffts:0).Config.label;
  Alcotest.(check string) "odroid label" "3BIG+2LTL"
    (Config.odroid_big_little ~big:3 ~little:2).Config.label

let core_of cfg label =
  let p =
    List.find (fun p -> p.Config.pe.Pe.label = label) cfg.Config.placements
  in
  p.Config.host_core.Host.core_id

let test_placement_2c2f_shares_core3 () =
  (* The Fig. 9 anomaly setup: both FFT manager threads land on the one
     leftover core and contend. *)
  let cfg = Config.zcu102_cores_ffts ~cores:2 ~ffts:2 in
  Alcotest.(check int) "fft2 on core 3" 3 (core_of cfg "fft2");
  Alcotest.(check int) "fft3 on core 3" 3 (core_of cfg "fft3");
  let sharing = Config.core_sharing cfg in
  Alcotest.(check (list string)) "core 3 hosts both" [ "fft2"; "fft3" ] (List.assoc 3 sharing)

let test_placement_3c2f_spreads_over_cpu_cores () =
  (* With every pool core dedicated, accel managers share CPU cores. *)
  let cfg = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let f1 = core_of cfg "fft3" and f2 = core_of cfg "fft4" in
  Alcotest.(check bool) "different cores" true (f1 <> f2);
  Alcotest.(check bool) "both on pool cores" true (List.mem f1 [ 1; 2; 3 ] && List.mem f2 [ 1; 2; 3 ])

let test_placement_1c1f_dedicated () =
  let cfg = Config.zcu102_cores_ffts ~cores:1 ~ffts:1 in
  List.iter
    (fun p -> Alcotest.(check bool) "dedicated" true p.Config.dedicated)
    cfg.Config.placements

let test_placement_cpu_overflow () =
  Alcotest.(check bool) "too many cores fails" true
    (Result.is_error
       (Config.make ~host:Host.zcu102 ~requests:[ { Config.kind = Pe.Cpu Pe.a53; count = 4 } ]))

let test_placement_accel_overflow () =
  Alcotest.(check bool) "too many accels fails" true
    (Result.is_error
       (Config.make ~host:Host.zcu102
          ~requests:
            [
              { Config.kind = Pe.Cpu Pe.a53; count = 1 };
              { Config.kind = Pe.Accel Pe.zynq_fft; count = 3 };
            ]))

let test_placement_empty () =
  Alcotest.(check bool) "empty config fails" true
    (Result.is_error (Config.make ~host:Host.zcu102 ~requests:[]))

let test_odroid_class_matching () =
  (* big PEs must land on A15 cores, little PEs on A7 cores. *)
  let cfg = Config.odroid_big_little ~big:2 ~little:2 in
  List.iter
    (fun p ->
      match p.Config.pe.Pe.kind with
      | Pe.Cpu cls ->
        Alcotest.(check string) "class matches host core" cls.Pe.cpu_name
          p.Config.host_core.Host.core_class.Pe.cpu_name
      | Pe.Accel _ -> Alcotest.fail "unexpected accel")
    cfg.Config.placements

let test_odroid_overflow () =
  Alcotest.(check bool) "5 big cores impossible" true
    (try
       ignore (Config.odroid_big_little ~big:5 ~little:0);
       false
     with Invalid_argument _ -> true)

let test_pe_ids_dense () =
  let cfg = Config.zcu102_cores_ffts ~cores:3 ~ffts:2 in
  let ids = List.map (fun (pe : Pe.t) -> pe.Pe.id) (Config.pes cfg) in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3; 4 ] ids

let prop_valid_configs_place_all =
  QCheck.Test.make ~name:"every requested PE is placed" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 2))
    (fun (cores, ffts) ->
      QCheck.assume (cores + ffts > 0);
      let cfg = Config.zcu102_cores_ffts ~cores ~ffts in
      List.length cfg.Config.placements = cores + ffts)

let () =
  Alcotest.run "soc"
    [
      ( "dma",
        [
          Alcotest.test_case "pricing" `Quick test_dma_pricing;
          Alcotest.test_case "validation" `Quick test_dma_validation;
          Alcotest.test_case "transfer boundaries" `Quick test_dma_transfer_boundaries;
          qtest prop_dma_monotone;
          qtest prop_dma_never_negative;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "cpu scaling" `Quick test_cpu_cost_scaling;
          Alcotest.test_case "unknown kernel" `Quick test_unknown_kernel;
          Alcotest.test_case "register" `Quick test_register_kernel;
          Alcotest.test_case "fft-128 accel slower" `Quick test_fft128_accel_slower_than_cpu;
          Alcotest.test_case "fft-512 accel faster" `Quick test_fft512_accel_faster_than_cpu;
          Alcotest.test_case "accel phases" `Quick test_accel_phases_sum;
          Alcotest.test_case "accel chunking" `Quick test_accel_chunking;
          Alcotest.test_case "cs4 substitution factors" `Quick test_substitution_factors;
        ] );
      ( "host",
        [ Alcotest.test_case "shapes" `Quick test_host_shapes ] );
      ( "config",
        [
          Alcotest.test_case "labels" `Quick test_config_labels;
          Alcotest.test_case "2C+2F share core" `Quick test_placement_2c2f_shares_core3;
          Alcotest.test_case "3C+2F spreads" `Quick test_placement_3c2f_spreads_over_cpu_cores;
          Alcotest.test_case "1C+1F dedicated" `Quick test_placement_1c1f_dedicated;
          Alcotest.test_case "cpu overflow" `Quick test_placement_cpu_overflow;
          Alcotest.test_case "accel overflow" `Quick test_placement_accel_overflow;
          Alcotest.test_case "empty" `Quick test_placement_empty;
          Alcotest.test_case "odroid class matching" `Quick test_odroid_class_matching;
          Alcotest.test_case "odroid overflow" `Quick test_odroid_overflow;
          Alcotest.test_case "dense PE ids" `Quick test_pe_ids_dense;
          qtest prop_valid_configs_place_all;
        ] );
    ]
