(* Fault-injection and resilient-dispatch tests.

   The fault plan is pure data: draws are keyed on (task, attempt)
   alone, so a plan's schedule is a function of the workload, never of
   the engine, the clock, or the PE a task happens to land on.  The
   unit tests pin that purity down; the run tests exercise the
   workload manager's retry / quarantine / degradation machinery on
   the deterministic virtual engine; the property test checks the
   central safety invariant — no dispatch to a quarantined PE. *)

module Fault = Dssoc_fault.Fault
module Task = Dssoc_runtime.Task
module Emulator = Dssoc_runtime.Emulator
module Stats = Dssoc_runtime.Stats
module Scheduler = Dssoc_runtime.Scheduler
module Native_engine = Dssoc_runtime.Native_engine
module Config = Dssoc_soc.Config
module Reference_apps = Dssoc_apps.Reference_apps
module Workload = Dssoc_apps.Workload
module Obs = Dssoc_obs.Obs

let qtest = QCheck_alcotest.to_alcotest

let plan_of_spec ?seed spec =
  match Fault.of_spec ?seed spec with
  | Ok plan -> plan
  | Error msg -> Alcotest.failf "spec %S rejected: %s" spec msg

(* ---------------- spec parsing ---------------- *)

let test_spec_ok () =
  let plan = plan_of_spec ~seed:9L "fft0:die@2ms,*:transient:p=0.1:recover=0.5ms,retries=6" in
  Alcotest.(check int64) "seed" 9L plan.Fault.fault_seed;
  Alcotest.(check int) "two rules" 2 (List.length plan.Fault.rules);
  Alcotest.(check int) "retries knob" 6 plan.Fault.max_attempts;
  (match plan.Fault.rules with
  | [ { Fault.target = Fault.Pe_named "fft0"; fault = Fault.Die_at t }; _ ] ->
    Alcotest.(check int) "die time" 2_000_000 t
  | _ -> Alcotest.fail "first rule should be fft0:die@2ms");
  match List.nth plan.Fault.rules 1 with
  | { Fault.target = Fault.All; fault = Fault.Transient_faults { p; recover_ns } } ->
    Alcotest.(check (float 1e-9)) "p" 0.1 p;
    Alcotest.(check int) "recover" 500_000 recover_ns
  | _ -> Alcotest.fail "second rule should be *:transient"

let test_spec_knobs () =
  let plan = plan_of_spec "*:hang:p=0.2,backoff=50us,backoff-cap=2ms" in
  Alcotest.(check int) "backoff base" 50_000 plan.Fault.backoff_base_ns;
  Alcotest.(check int) "backoff cap" 2_000_000 plan.Fault.backoff_cap_ns;
  match plan.Fault.rules with
  | [ { Fault.fault = Fault.Hangs { p; recover_ns }; _ } ] ->
    Alcotest.(check (float 1e-9)) "p" 0.2 p;
    Alcotest.(check int) "default recover" 1_000_000 recover_ns
  | _ -> Alcotest.fail "expected one hang rule"

let test_spec_rejects () =
  let rejects spec =
    match Fault.of_spec spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should be rejected" spec
  in
  rejects "";
  rejects "fft0:die";  (* missing @TIME *)
  rejects "fft0:die@soon";
  rejects "*:transient";  (* missing p *)
  rejects "*:transient:p=1.5";
  rejects "*:meteor:p=0.1";
  rejects "*:slow:p=0.5";  (* missing factor *)
  rejects "*:slow:p=0.5:factor=0.5";  (* factor < 1 *)
  rejects "retries=0";
  rejects "backoff=fast"

(* Error messages name the offending clause: index, text and character
   offset, then the specific complaint — pinned so the CLI surface
   stays diagnosable. *)
let test_spec_error_messages () =
  let pin spec expected =
    match Fault.of_spec spec with
    | Ok _ -> Alcotest.failf "spec %S should be rejected" spec
    | Error msg -> Alcotest.(check string) (Printf.sprintf "message for %S" spec) expected msg
  in
  pin "fft0:die@soon"
    {|fault spec: clause 1 ("fft0:die@soon", at offset 0): die@ wants a duration, got "soon"|};
  pin "fft0:die@1ms,*:meteor:p=0.1"
    {|fault spec: clause 2 ("*:meteor:p=0.1", at offset 13): unknown fault kind "meteor"|};
  pin "retries=3,*:transient"
    "fault spec: clause 2 (\"*:transient\", at offset 10): missing p=PROB";
  pin "*:hang:p=0.2,retries=0"
    {|fault spec: clause 2 ("retries=0", at offset 13): retries wants a positive integer, got "0"|};
  pin "*:slow:p=0.5:factor=0.5"
    {|fault spec: clause 1 ("*:slow:p=0.5:factor=0.5", at offset 0): factor wants a float >= 1, got "0.5"|};
  pin "" "empty fault spec"

(* ---------------- compilation ---------------- *)

let cpu label = { Fault.pe_label = label; pe_kind = "cpu_a53"; pe_is_cpu = true }
let fft label = { Fault.pe_label = label; pe_kind = "accel_fft"; pe_is_cpu = false }
let pes () = [| cpu "cpu0"; cpu "cpu1"; fft "fft2" |]

let test_compile_targets () =
  let compiled spec = Fault.compile (plan_of_spec spec) ~pes:(pes ()) in
  Alcotest.(check bool) "label target" true (Fault.enabled (compiled "fft2:die@1ms"));
  Alcotest.(check bool) "kind target" true (Fault.enabled (compiled "accel_fft:die@1ms"));
  Alcotest.(check bool) "group target" true (Fault.enabled (compiled "accel:dma:p=0.5"));
  Alcotest.(check bool) "empty plan disabled" false
    (Fault.enabled (Fault.compile Fault.default_plan ~pes:(pes ())));
  let raises spec =
    match compiled spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "compiling %S should raise" spec
  in
  raises "fft9:die@1ms";
  (* dma only applies to accelerator PEs, so a cpu-targeted dma rule
     ends up matching nothing *)
  raises "cpu:dma:p=0.5"

let test_death_schedule () =
  let t = Fault.compile (plan_of_spec "fft2:die@3ms,accel:die@1ms") ~pes:(pes ()) in
  Alcotest.(check (option int)) "earliest death wins" (Some 1_000_000)
    (Fault.death_ns t ~pe:2);
  Alcotest.(check (option int)) "cpus never die" None (Fault.death_ns t ~pe:0);
  Alcotest.(check (option int)) "disabled: no deaths" None
    (Fault.death_ns Fault.disabled ~pe:2)

(* ---------------- decisions ---------------- *)

let test_decide_pure () =
  (* The decision for (task, attempt) under an all-PE rule must not
     depend on the PE or the clock — that is what makes fault
     schedules replay identically across engines. *)
  let t = Fault.compile (plan_of_spec ~seed:3L "*:transient:p=0.5") ~pes:(pes ()) in
  for task_id = 0 to 40 do
    for attempt = 1 to 3 do
      let d0 = Fault.decide t ~pe:0 ~now:0 ~task_id ~attempt ~est_ns:10_000 in
      let d1 = Fault.decide t ~pe:2 ~now:987_654 ~task_id ~attempt ~est_ns:10_000 in
      Alcotest.(check bool)
        (Printf.sprintf "task %d attempt %d agrees across PEs and times" task_id attempt)
        true (d0 = d1)
    done
  done

let test_decide_extremes () =
  let t0 = Fault.compile (plan_of_spec "*:transient:p=0") ~pes:(pes ()) in
  let t1 = Fault.compile (plan_of_spec "*:transient:p=1:recover=7us") ~pes:(pes ()) in
  for task_id = 0 to 20 do
    (match Fault.decide t0 ~pe:0 ~now:0 ~task_id ~attempt:1 ~est_ns:1000 with
    | Fault.Proceed -> ()
    | _ -> Alcotest.fail "p=0 must always proceed");
    match Fault.decide t1 ~pe:0 ~now:0 ~task_id ~attempt:1 ~est_ns:1000 with
    | Fault.Fail { reason = Fault.Transient; quarantine_ns; _ } ->
      Alcotest.(check int) "quarantine from recover" 7_000 quarantine_ns
    | _ -> Alcotest.fail "p=1 must always fail"
  done;
  (* a dead PE fails everything, permanently *)
  let td = Fault.compile (plan_of_spec "fft2:die@1ms") ~pes:(pes ()) in
  match Fault.decide td ~pe:2 ~now:2_000_000 ~task_id:0 ~attempt:1 ~est_ns:1000 with
  | Fault.Fail { reason = Fault.Pe_dead; quarantine_ns; _ } ->
    Alcotest.(check bool) "permanent quarantine" true (quarantine_ns = max_int)
  | _ -> Alcotest.fail "dispatch past the death time must fail"

let test_backoff_and_watchdog () =
  let t = Fault.compile (plan_of_spec "*:transient:p=0.5,backoff=100us,backoff-cap=1ms") ~pes:(pes ()) in
  Alcotest.(check int) "first backoff is the base" 100_000 (Fault.backoff_ns t ~attempt:1);
  Alcotest.(check int) "doubles" 200_000 (Fault.backoff_ns t ~attempt:2);
  Alcotest.(check int) "caps" 1_000_000 (Fault.backoff_ns t ~attempt:5);
  Alcotest.(check int) "stays capped far out" 1_000_000 (Fault.backoff_ns t ~attempt:62);
  Alcotest.(check int) "watchdog floor" 1_000_000 (Fault.watchdog_ns t ~est_ns:10);
  Alcotest.(check int) "watchdog scales" 8_000_000 (Fault.watchdog_ns t ~est_ns:1_000_000)

(* ---------------- resilient runs (virtual engine) ---------------- *)

let det_engine = Emulator.virtual_seeded ~jitter:0.0 1L

let config () = Config.zcu102_cores_ffts ~cores:2 ~ffts:1

let workload () =
  Workload.validation [ (Reference_apps.range_detection (), 2); (Reference_apps.wifi_tx (), 1) ]

let run_fault plan =
  Result.get_ok
    (Emulator.run ~engine:det_engine ~fault:plan ~config:(config ()) ~workload:(workload ()) ())

let test_fault_free_pristine () =
  (* No plan — and an empty plan — must leave the run Completed with
     zeroed resilience counters. *)
  let r = Result.get_ok (Emulator.run ~engine:det_engine ~config:(config ()) ~workload:(workload ()) ()) in
  Alcotest.(check string) "verdict" "completed" (Stats.verdict_name r.Stats.verdict);
  Alcotest.(check bool) "no resilience activity" true (r.Stats.resilience = Stats.no_faults);
  Alcotest.(check (float 1e-9)) "all tasks" 1.0 (Stats.completed_fraction r)

let test_transient_degraded () =
  let r = run_fault (plan_of_spec ~seed:5L "*:transient:p=0.2:recover=0.1ms") in
  Alcotest.(check string) "verdict" "degraded" (Stats.verdict_name r.Stats.verdict);
  Alcotest.(check bool) "faults recorded" true (r.Stats.resilience.Stats.faults_injected > 0);
  Alcotest.(check bool) "retries recorded" true (r.Stats.resilience.Stats.task_retries > 0);
  Alcotest.(check (float 1e-9)) "still completes everything" 1.0 (Stats.completed_fraction r);
  Alcotest.(check int) "no tasks lost" 0 r.Stats.resilience.Stats.tasks_lost

let test_accel_death_cpu_fallback () =
  (* Kill the only accelerator: every FFT task must fall back to a CPU
     from its platform list and the run must degrade, not abort. *)
  let r = run_fault (plan_of_spec "fft2:die@0") in
  Alcotest.(check string) "verdict" "degraded" (Stats.verdict_name r.Stats.verdict);
  Alcotest.(check int) "one death" 1 r.Stats.resilience.Stats.pe_deaths;
  Alcotest.(check (float 1e-9)) "workload survives" 1.0 (Stats.completed_fraction r);
  List.iter
    (fun (t : Stats.task_record) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s avoided the dead PE" t.Stats.app t.Stats.node)
        true
        (t.Stats.pe <> "fft2"))
    r.Stats.records

let test_midrun_death_degrades () =
  let r = run_fault (plan_of_spec "fft2:die@100us") in
  Alcotest.(check string) "verdict" "degraded" (Stats.verdict_name r.Stats.verdict);
  Alcotest.(check (float 1e-9)) "workload survives" 1.0 (Stats.completed_fraction r)

let contains ~needle haystack =
  let n = String.length needle in
  let rec go i = i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_budget_exhaustion_aborts () =
  let r = run_fault (plan_of_spec "*:transient:p=1:recover=1us") in
  (match r.Stats.verdict with
  | Stats.Aborted reason ->
    Alcotest.(check bool) "reason names the budget" true (contains ~needle:"attempt budget" reason)
  | _ -> Alcotest.fail "p=1 transients must exhaust the attempt budget");
  Alcotest.(check bool) "tasks lost" true (r.Stats.resilience.Stats.tasks_lost > 0);
  Alcotest.(check bool) "fraction below 1" true (Stats.completed_fraction r < 1.0)

let test_no_survivor_aborts () =
  (* A cpu-only workload whose only PE dies has nowhere left to go. *)
  let config = Config.zcu102_cores_ffts ~cores:1 ~ffts:0 in
  let workload = Workload.validation [ (Reference_apps.wifi_tx (), 1) ] in
  let r =
    Result.get_ok
      (Emulator.run ~engine:det_engine ~fault:(plan_of_spec "cpu0:die@0") ~config ~workload ())
  in
  match r.Stats.verdict with
  | Stats.Aborted _ -> Alcotest.(check bool) "nothing completed" true (r.Stats.records = [])
  | v -> Alcotest.failf "expected an abort, got %s" (Stats.verdict_name v)

let test_deterministic_replay () =
  let spec = "fft2:die@1ms,*:transient:p=0.1:recover=0.2ms" in
  let r1 = run_fault (plan_of_spec ~seed:11L spec) in
  let r2 = run_fault (plan_of_spec ~seed:11L spec) in
  Alcotest.(check string) "same records CSV" (Stats.records_csv r1) (Stats.records_csv r2);
  Alcotest.(check int) "same makespan" r1.Stats.makespan_ns r2.Stats.makespan_ns;
  Alcotest.(check bool) "same resilience" true (r1.Stats.resilience = r2.Stats.resilience);
  let r3 = run_fault (plan_of_spec ~seed:12L spec) in
  Alcotest.(check bool) "fault seed matters" true
    (r3.Stats.resilience <> r1.Stats.resilience || r3.Stats.makespan_ns <> r1.Stats.makespan_ns)

(* ---------------- event-level safety property ---------------- *)

(* No Task_dispatched event may target a PE inside one of its
   quarantine windows: [t_quarantine, until_ns) for transients,
   [t_quarantine, inf) for deaths. *)
let quarantine_violations events =
  let windows = Hashtbl.create 8 in
  let violations = ref 0 in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.body with
      | Obs.Pe_quarantined { pe_index; until_ns; permanent; _ } ->
        let until = if permanent then max_int else until_ns in
        Hashtbl.replace windows pe_index (max until (Option.value ~default:0 (Hashtbl.find_opt windows pe_index)))
      | Obs.Task_dispatched { pe_index; _ } ->
        (match Hashtbl.find_opt windows pe_index with
        | Some until when e.Obs.t_ns < until -> incr violations
        | _ -> ())
      | _ -> ())
    events;
  !violations

let prop_no_dispatch_to_quarantined =
  QCheck.Test.make ~name:"retry/backoff never dispatches to a quarantined PE" ~count:25
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, policy_idx) ->
      let policy = List.nth [ "FRFS"; "MET"; "EFT"; "POWER" ] policy_idx in
      let plan =
        plan_of_spec ~seed:(Int64.of_int seed) "fft2:die@100us,*:transient:p=0.15:recover=0.3ms"
      in
      let obs = Obs.make ~sink:(Obs.Sink.ring ~capacity:(1 lsl 16) ()) () in
      let r =
        Result.get_ok
          (Emulator.run ~engine:det_engine ~policy ~obs ~fault:plan ~config:(config ())
             ~workload:(workload ()) ())
      in
      ignore r;
      quarantine_violations (Obs.recorded_events obs) = 0)

(* ---------------- obs drop accounting (satellite) ---------------- *)

let test_drop_count_surfaced () =
  (* A deliberately tiny ring must overflow; record_drops has to fold
     the loss into the events_dropped counter that Metrics.pp prints. *)
  let metrics = Obs.Metrics.create () in
  let obs = Obs.make ~sink:(Obs.Sink.ring ~capacity:16 ()) ~metrics () in
  ignore
    (Result.get_ok (Emulator.run ~engine:det_engine ~obs ~config:(config ()) ~workload:(workload ()) ()));
  let dropped = Obs.Sink.dropped (Obs.sink obs) in
  Alcotest.(check bool) "ring overflowed" true (dropped > 0);
  Obs.record_drops obs;
  Obs.record_drops obs (* idempotent *);
  (match Obs.Metrics.find_counter metrics "events_dropped" with
  | None -> Alcotest.fail "events_dropped counter missing"
  | Some c -> Alcotest.(check int) "counter tracks the sink" dropped (Obs.Metrics.counter_value c));
  let rendered = Format.asprintf "%a" Obs.Metrics.pp metrics in
  Alcotest.(check bool) "pp mentions events_dropped" true
    (contains ~needle:"events_dropped" rendered)

(* ---------------- native teardown (satellite) ---------------- *)

let test_native_poisoned_run_joins_domains () =
  (* A policy that raises mid-run poisons the workload manager.  The
     native engine must still join every handler domain and re-raise.
     Leaks would accumulate across iterations and blow OCaml's domain
     limit long before 40 x 3 spawns, so looping doubles as a
     no-live-domains check. *)
  let config = Config.zcu102_cores_ffts ~cores:3 ~ffts:0 in
  let poison = { Scheduler.name = "POISON"; schedule = (fun _ -> failwith "poisoned policy") } in
  for i = 1 to 40 do
    match
      Native_engine.run ~config
        ~workload:(Workload.validation [ (Reference_apps.wifi_tx (), 1) ])
        ~policy:poison ()
    with
    | _ -> Alcotest.failf "iteration %d: the poisoned policy must raise" i
    | exception Failure msg ->
      Alcotest.(check string) (Printf.sprintf "iteration %d propagates the error" i)
        "poisoned policy" msg
  done;
  (* and the engine still works afterwards *)
  let r =
    Native_engine.run ~config
      ~workload:(Workload.validation [ (Reference_apps.wifi_tx (), 1) ])
      ~policy:Scheduler.frfs ()
  in
  Alcotest.(check string) "subsequent run completes" "completed" (Stats.verdict_name r.Stats.verdict)

let test_emulator_surfaces_fault_plan_errors () =
  (* A rule that matches no PE must come back as an Error, not an
     exception, through the Emulator facade — on both engines. *)
  let plan = plan_of_spec "fft9:die@1ms" in
  List.iter
    (fun engine ->
      match Emulator.run ~engine ~fault:plan ~config:(config ()) ~workload:(workload ()) () with
      | Error msg -> Alcotest.(check bool) "names the target" true (contains ~needle:"fft9" msg)
      | Ok _ -> Alcotest.fail "a no-match fault rule must be rejected")
    [ det_engine; Emulator.native_default ]

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parses rules and knobs" `Quick test_spec_ok;
          Alcotest.test_case "knob clauses" `Quick test_spec_knobs;
          Alcotest.test_case "rejects malformed specs" `Quick test_spec_rejects;
          Alcotest.test_case "error messages name token and position" `Quick
            test_spec_error_messages;
        ] );
      ( "compile",
        [
          Alcotest.test_case "target resolution" `Quick test_compile_targets;
          Alcotest.test_case "death schedule" `Quick test_death_schedule;
        ] );
      ( "decide",
        [
          Alcotest.test_case "pure in PE and time" `Quick test_decide_pure;
          Alcotest.test_case "probability extremes" `Quick test_decide_extremes;
          Alcotest.test_case "backoff and watchdog" `Quick test_backoff_and_watchdog;
        ] );
      ( "resilient runs",
        [
          Alcotest.test_case "fault-free runs stay pristine" `Quick test_fault_free_pristine;
          Alcotest.test_case "transients degrade but complete" `Slow test_transient_degraded;
          Alcotest.test_case "accelerator death falls back to CPUs" `Slow
            test_accel_death_cpu_fallback;
          Alcotest.test_case "mid-run death degrades" `Slow test_midrun_death_degrades;
          Alcotest.test_case "budget exhaustion aborts" `Slow test_budget_exhaustion_aborts;
          Alcotest.test_case "no surviving PE aborts" `Quick test_no_survivor_aborts;
          Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
          qtest prop_no_dispatch_to_quarantined;
        ] );
      ( "observability",
        [ Alcotest.test_case "ring drops surface in metrics" `Quick test_drop_count_surfaced ] );
      ( "native teardown",
        [
          Alcotest.test_case "poisoned run joins all domains" `Slow
            test_native_poisoned_run_joins_domains;
          Alcotest.test_case "fault-plan errors surface as Error" `Slow
            test_emulator_surfaces_fault_plan_errors;
        ] );
    ]
